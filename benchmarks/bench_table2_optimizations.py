"""Table 2: performance impact of TCgen's optimizations.

Re-runs the generated TCgen(A) compressor with each optimization disabled
in turn (and all four together) over the three trace types.  Expected
shape, per the paper:

- disabling table sharing or the fast hash leaves the compression rate
  *unchanged* (asserted exactly) but slows the code down;
- disabling the smart update policy or type minimization changes the
  compression rate (smart update strictly helps on the suite average);
- disabling everything is worst overall.
"""

from __future__ import annotations

import time

from repro import generate_compressor, tcgen_a
from repro.metrics import harmonic_mean
from repro.model.optimize import TABLE2_ROWS

from conftest import report
from harness import KIND_LABELS


def _measure_row(options, trace_suite):
    """Per trace kind: (harmonic rate, harmonic d.speed, harmonic c.speed)."""
    module = generate_compressor(tcgen_a(), options)
    results = {}
    for kind, traces in trace_suite.items():
        rates, dspeeds, cspeeds = [], [], []
        for raw in traces.values():
            start = time.perf_counter()
            blob = module.compress(raw)
            ctime = time.perf_counter() - start
            start = time.perf_counter()
            out = module.decompress(blob)
            dtime = time.perf_counter() - start
            assert out == raw
            rates.append(len(raw) / len(blob))
            dspeeds.append(len(raw) / max(dtime, 1e-9))
            cspeeds.append(len(raw) / max(ctime, 1e-9))
        results[kind] = (
            harmonic_mean(rates),
            harmonic_mean(dspeeds),
            harmonic_mean(cspeeds),
        )
    return results


def test_table2_optimization_ablations(benchmark, trace_suite):
    def sweep():
        return {
            name: _measure_row(options, trace_suite)
            for name, options in TABLE2_ROWS
        }

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    kinds = list(trace_suite)
    header = f"{'':24s}" + "".join(
        f"{KIND_LABELS[k]:>14s}{'':>1s}{'rate':>9s}{'d.spd':>10s}{'c.spd':>10s}"
        for k in []
    )
    lines = ["Table 2: performance impact of TCgen's optimizations", ""]
    head = f"{'configuration':24s}"
    for kind in kinds:
        head += f" | {KIND_LABELS[kind]:>30s}"
    lines.append(head)
    sub = f"{'':24s}"
    for _ in kinds:
        sub += f" | {'rate':>10s}{'d.spd':>10s}{'c.spd':>10s}"
    lines.append(sub)
    for name, per_kind in rows.items():
        line = f"{name:24s}"
        for kind in kinds:
            rate, dspd, cspd = per_kind[kind]
            line += f" | {rate:10.1f}{dspd / 1e6:9.2f}M{cspd / 1e6:9.2f}M"
        lines.append(line)
    report("table2_optimizations", "\n".join(lines))

    full = rows["full optimizations"]
    # Sharing and the fast hash must not change the rate at all.
    for name in ("no shared tables", "no fast hash function"):
        for kind in kinds:
            assert rows[name][kind][0] == full[kind][0], (name, kind)
    # The smart update policy improves the suite-average rate.
    for kind in kinds:
        assert full[kind][0] >= rows["no smart update"][kind][0] * 0.999, kind
    # Disabling everything never improves the rate.
    for kind in kinds:
        assert rows["all of the above"][kind][0] <= full[kind][0] * 1.001, kind


def test_benchmark_full_vs_deoptimized_compress(benchmark, representative_trace):
    from repro.model import OptimizationOptions

    module = generate_compressor(tcgen_a(), OptimizationOptions.none())
    blob = benchmark(module.compress, representative_trace)
    assert module.decompress(blob) == representative_trace
