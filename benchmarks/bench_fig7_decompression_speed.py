"""Figure 7: harmonic-mean decompression speeds.

The paper's shape: TCgen fastest on store-address and load-value traces,
SBC marginally (2%) faster on cache-miss traces, VPC3 next, MACHE/PDATS
II/BZIP2 in the bottom half.

Substrate caveat (see EXPERIMENTS.md): our six special-purpose algorithms
are pure Python with the same bz2 post-stage, so their relative speeds are
comparable; standalone BZIP2 runs entirely inside the C library and its
throughput is *not* comparable to the Python-implemented pipelines — the
shape assertions therefore exclude it.  The TCgen-vs-VPC3 ordering is the
paper's core speed claim (generated, specialized code beats the generic
engine) and is asserted strictly.
"""

from __future__ import annotations

from repro.baselines import TCgenCompressor, Vpc3Compressor

from conftest import report
from harness import full_comparison, render_figure


def test_figure7_decompression_speeds(benchmark, trace_suite):
    table = benchmark.pedantic(
        full_comparison, args=(trace_suite,), rounds=1, iterations=1
    )
    text = render_figure(
        table,
        "decompression_speed",
        "Figure 7: harmonic-mean decompression speeds (bytes/second)",
        note=(
            "note: standalone BZIP2 runs fully inside libbz2 (native C); its\n"
            "throughput is excluded from shape comparisons against the\n"
            "Python-implemented algorithms."
        ),
    )
    report("fig7_decompression_speed", text)

    summary = table.summary("decompression_speed")
    # Paper: TCgen decompresses 4-8% faster than VPC3 — a small edge from
    # the smart update policy (fewer table writes).  Allow timing noise.
    for kind in table.kinds():
        assert summary[("TCgen", kind)] > summary[("VPC3", kind)] * 0.75, kind


def test_generated_code_beats_generic_engine(benchmark, representative_trace):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _check_generated_vs_engine(representative_trace)


def _check_generated_vs_engine(representative_trace):
    """The codegen speed story: specialized generated code decompresses
    far faster than the generic interpreted engine running the same
    specification (the analog of TCgen's edge over a naive tool).

    Both sides are pinned to the Python substrate: under ``auto`` they
    resolve to the *same* compiled kernel and the comparison collapses
    to FFI timing noise — the claim under test is about code
    specialization, not about the native backend."""
    import time

    from repro import generate_compressor, tcgen_a
    from repro.runtime import TraceEngine

    module = generate_compressor(tcgen_a())
    engine = TraceEngine(tcgen_a(), backend="python")
    blob = module.compress(representative_trace)

    start = time.perf_counter()
    module.decompress(blob, backend="python")
    generated = time.perf_counter() - start
    start = time.perf_counter()
    engine.decompress(blob)
    interpreted = time.perf_counter() - start
    assert generated < interpreted


def test_benchmark_tcgen_decompress(benchmark, representative_trace):
    compressor = TCgenCompressor()
    blob = compressor.compress(representative_trace)
    out = benchmark(compressor.decompress, blob)
    assert out == representative_trace


def test_benchmark_vpc3_decompress(benchmark, representative_trace):
    compressor = Vpc3Compressor()
    blob = compressor.compress(representative_trace)
    out = benchmark(compressor.decompress, blob)
    assert out == representative_trace
