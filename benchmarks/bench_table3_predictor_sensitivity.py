"""Table 3: TCgen(A) vs TCgen(B) — predictor-selection sensitivity.

TCgen(B) (paper Figure 9) is a strict superset of TCgen(A) with 22 instead
of 14 predictions and 35MB instead of 20MB of tables.  The paper finds the
two configurations within a few percent of each other: TCgen(B) compresses
cache-miss and load-value traces slightly better, TCgen(A) wins on store
addresses and is faster to decompress — i.e. TCgen's performance is
relatively insensitive to the exact predictor choice.
"""

from __future__ import annotations

import time

from repro import generate_compressor, tcgen_a, tcgen_b
from repro.metrics import harmonic_mean
from repro.model import build_model

from conftest import report
from harness import KIND_LABELS


def _measure(module, trace_suite):
    results = {}
    for kind, traces in trace_suite.items():
        rates, dspeeds, cspeeds = [], [], []
        for raw in traces.values():
            start = time.perf_counter()
            blob = module.compress(raw)
            ctime = time.perf_counter() - start
            start = time.perf_counter()
            out = module.decompress(blob)
            dtime = time.perf_counter() - start
            assert out == raw
            rates.append(len(raw) / len(blob))
            dspeeds.append(len(raw) / max(dtime, 1e-9))
            cspeeds.append(len(raw) / max(ctime, 1e-9))
        results[kind] = (
            harmonic_mean(rates),
            harmonic_mean(dspeeds),
            harmonic_mean(cspeeds),
        )
    return results


def test_table3_sensitivity(benchmark, trace_suite):
    module_a = generate_compressor(tcgen_a())
    module_b = generate_compressor(tcgen_b())

    def sweep():
        return _measure(module_a, trace_suite), _measure(module_b, trace_suite)

    a, b = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Table 3: harmonic-mean performance of TCgen(A) and TCgen(B)",
        "",
        f"{'trace':20s}{'rate A':>10s}{'rate B':>10s}"
        f"{'d.spd A':>10s}{'d.spd B':>10s}{'c.spd A':>10s}{'c.spd B':>10s}",
    ]
    for kind in trace_suite:
        ra, da, ca = a[kind]
        rb, db, cb = b[kind]
        lines.append(
            f"{KIND_LABELS[kind]:20s}{ra:10.1f}{rb:10.1f}"
            f"{da / 1e6:9.2f}M{db / 1e6:9.2f}M{ca / 1e6:9.2f}M{cb / 1e6:9.2f}M"
        )
    model_a = build_model(tcgen_a())
    model_b = build_model(tcgen_b())
    lines += [
        "",
        f"TCgen(A): {model_a.total_predictions()} predictions, "
        f"{model_a.table_bytes() / 2**20:.0f}MB tables "
        "(paper: 14 predictors, 20MB)",
        f"TCgen(B): {model_b.total_predictions()} predictions, "
        f"{model_b.table_bytes() / 2**20:.0f}MB tables "
        "(paper: 22 predictors, 35MB)",
    ]
    report("table3_predictor_sensitivity", "\n".join(lines))

    # Insensitivity: the two configurations stay within ~25% in rate
    # (the paper observes 2-8% differences).
    for kind in trace_suite:
        ratio = a[kind][0] / b[kind][0]
        assert 0.75 < ratio < 1.35, (kind, ratio)

    # The paper's memory/prediction counts hold exactly.
    assert model_a.total_predictions() == 14
    assert model_b.total_predictions() == 22


def test_benchmark_tcgen_b_compress(benchmark, representative_trace):
    module = generate_compressor(tcgen_b())
    blob = benchmark(module.compress, representative_trace)
    assert module.decompress(blob) == representative_trace
