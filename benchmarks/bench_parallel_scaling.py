"""Parallel scaling of the chunked (v2) compression pipeline.

Measures three things about the chunked container introduced for
multicore operation:

1. **worker scaling** — wall-clock speedup of compress/decompress at 1, 2,
   4, and 8 workers (thread pool over the GIL-releasing codec stage).
   Output bytes are asserted identical at every worker count; the speedup
   curve is bounded by the machine's available parallelism, which the
   report records so single-core CI numbers read honestly;
2. **chunking rate cost** — per-chunk predictor-state resets lose a little
   context, so a v2 container is slightly larger than flat v1.  The bench
   quantifies that compression-rate delta at several chunk sizes;
3. **peak allocation** — chunked compression converts each column to
   Python ints one chunk at a time instead of materializing whole-trace
   lists, so peak memory drops; measured with ``tracemalloc``.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.runtime.engine import TraceEngine
from repro.runtime.parallel import available_parallelism
from repro.spec import tcgen_a
from repro.tio import VPC_FORMAT
from repro.tio.traceformat import unpack_records

from conftest import report

WORKER_COUNTS = (1, 2, 4, 8)


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_parallel_scaling(benchmark, trace_suite):
    engine = TraceEngine(tcgen_a())
    raw = max(
        (r for traces in trace_suite.values() for r in traces.values()), key=len
    )
    mb = len(raw) / 1e6
    cpus = available_parallelism()

    def once():
        lines = [
            "Parallel scaling of the chunked (v2) pipeline",
            "",
            f"trace: {len(raw):,} bytes; available CPUs: {cpus}",
            "(thread-pool speedup is bounded by the CPU count; on a",
            " single-core machine the curve is flat by construction)",
            "",
            "worker scaling (chunk_records=auto, codec stage on threads):",
        ]

        flat = engine.compress(raw)
        reference = engine.compress(raw, chunk_records="auto")
        base_c = base_d = None
        for workers in WORKER_COUNTS:
            t_c = _best_of(
                lambda: engine.compress(raw, chunk_records="auto", workers=workers)
            )
            t_d = _best_of(lambda: engine.decompress(reference, workers=workers))
            blob = engine.compress(raw, chunk_records="auto", workers=workers)
            assert blob == reference  # parallelism never changes the bytes
            if base_c is None:
                base_c, base_d = t_c, t_d
            lines.append(
                f"  workers={workers}  compress {mb / t_c:6.2f} MB/s "
                f"({base_c / t_c:4.2f}x)   decompress {mb / t_d:6.2f} MB/s "
                f"({base_d / t_d:4.2f}x)"
            )

        lines += ["", "chunking rate cost (v2 vs flat v1 container):"]
        flat_rate = len(raw) / len(flat)
        lines.append(f"  v1 flat           rate {flat_rate:7.2f}x  (baseline)")
        for chunk_records in (2_000, 10_000, 50_000, "auto"):
            blob = engine.compress(raw, chunk_records=chunk_records)
            rate = len(raw) / len(blob)
            lines.append(
                f"  chunk={chunk_records!s:>8}  rate {rate:7.2f}x  "
                f"({100.0 * (rate / flat_rate - 1.0):+5.1f}% vs v1)"
            )
            assert engine.decompress(blob) == raw

        lines += ["", "peak allocation, column materialization (tracemalloc):"]
        fmt = VPC_FORMAT
        span = 10_000

        def whole_trace_lists():
            # The pre-chunking engine path: copying unpack, then full
            # whole-trace int lists for every column at once.
            _, columns = unpack_records(fmt, raw)
            return [column.tolist() for column in columns]

        def per_chunk_lists():
            # The chunked path: zero-copy views, one chunk's ints at a time.
            _, views = unpack_records(fmt, raw, copy=False)
            total = len(views[0])
            for start in range(0, total, span):
                for view in views:
                    view[start : start + span].tolist()

        for label, fn in (
            ("whole-trace lists (old v1 path)", whole_trace_lists),
            (f"views + {span}-record chunks", per_chunk_lists),
        ):
            tracemalloc.start()
            fn()
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            lines.append(f"  {label:32s} {peak / 1e6:8.1f} MB peak")

        return "\n".join(lines)

    text = benchmark.pedantic(once, rounds=1, iterations=1)
    report("parallel_scaling", text)
