"""Shared infrastructure for the paper-reproduction benchmarks.

Environment knobs:

- ``REPRO_BENCH_SCALE`` — workload scale factor (default 0.25; the paper
  uses multi-gigabyte traces, we default to tens of thousands of records);
- ``REPRO_FULL_SUITE=1`` — run all 22 workloads instead of the default 8;
- ``REPRO_BENCH_SEED`` — trace generation seed (default 2005).

Every ``bench_*`` module computes one paper table or figure, registers its
rendered text via :func:`report`, and the terminal-summary hook prints all
reports at the end of the run (they are also written to
``benchmarks/results/``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.traces import TRACE_KINDS, build_trace, default_suite, workload_names

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2.0"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "2005"))
FULL_SUITE = os.environ.get("REPRO_FULL_SUITE", "") == "1"

RESULTS_DIR = Path(__file__).parent / "results"

_reports: list[tuple[str, str]] = []


def suite_names() -> list[str]:
    return workload_names() if FULL_SUITE else default_suite()


def report(name: str, text: str) -> None:
    """Register a rendered result table for the terminal summary.

    Every committed results file leads with the host/backend provenance
    header, so numbers from different machines or backend generations
    are never compared blind.
    """
    from harness import host_provenance

    stamped = host_provenance() + "\n\n" + text
    _reports.append((name, stamped))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(stamped + "\n")


def pytest_terminal_summary(terminalreporter):
    for name, text in _reports:
        terminalreporter.write_sep("=", name)
        terminalreporter.write_line(text)


@pytest.fixture(scope="session")
def trace_suite():
    """All evaluation traces: {kind: {workload: raw bytes}}."""
    return {
        kind: {
            workload: build_trace(workload, kind, scale=SCALE, seed=SEED)
            for workload in suite_names()
        }
        for kind in TRACE_KINDS
    }


@pytest.fixture(scope="session")
def representative_trace():
    """One medium trace used for the pytest-benchmark timing anchors."""
    return build_trace("gzip", "store_addresses", scale=SCALE, seed=SEED)
