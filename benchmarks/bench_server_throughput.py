"""Throughput of the tcgen-serve daemon versus client concurrency.

Starts an in-process :class:`~repro.server.daemon.TraceServer` on a
loopback port and drives it with real :class:`~repro.client.TraceClient`
connections, measuring two things:

1. **client scaling** — requests/s and raw-trace MB/s for compress
   roundtrips at 1, 2, 4, and 8 concurrent clients.  Each request is one
   full compress of the representative trace, so this includes framing,
   JSON headers, loopback TCP, admission, and response streaming — the
   honest end-to-end number, not just kernel throughput;
2. **executor scaling** — the same workload against a 1-thread executor
   versus a ``min(8, CPUs)``-thread executor, isolating how much of the
   client-scaling curve the server's thread pool actually delivers
   (prediction kernels hold the GIL; the codec stage releases it, so
   scaling is real but sublinear by construction);
3. **worker-pool scaling** — the real ``tcgen-serve`` process model as a
   subprocess: a pre-fork SO_REUSEPORT pool at 1, 2, and 4 workers under
   8 and 64 concurrent clients.  Separate processes sidestep the GIL
   entirely, so this is where multi-core machines see near-linear
   speedup; on a single-CPU host the sweep mostly measures that the pool
   adds no throughput *loss*.

Every response is asserted byte-identical to the local engine before it
counts, so the numbers can never be bought with wrong bytes.

``REPRO_BENCH_SERVER_SECONDS`` shrinks the per-cell measurement window
(default 2.0) so CI can smoke the sweep quickly.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
import os
import signal
import subprocess
import sys
import threading
import time

from repro.client import TraceClient
from repro.runtime.engine import TraceEngine
from repro.runtime.parallel import available_parallelism
from repro.server.daemon import TraceServer
from repro.server.limits import ServerConfig
from repro.spec import parse_spec
from repro.spec.presets import TCGEN_A_SPEC
from repro.traces import build_trace

from conftest import SEED, report

CLIENT_COUNTS = (1, 2, 4, 8)
SECONDS = float(os.environ.get("REPRO_BENCH_SERVER_SECONDS", "2.0"))


class _ServerThread:
    """A live server on a daemon thread (same shape as tests/test_server)."""

    def __init__(self, config: ServerConfig) -> None:
        self.server = TraceServer(config)
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("benchmark server failed to start")

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            await self.server.start()
            self._started.set()
            await self.server._drain_requested.wait()
            await self.server._drain()

        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout=15)


def _drive(port: int, raw: bytes, expected: bytes, clients: int, seconds: float):
    """Closed-loop load: each client compresses back-to-back for a while."""
    stop_at = time.perf_counter() + seconds
    counts = [0] * clients

    def worker(index: int) -> None:
        with TraceClient("127.0.0.1", port, retries=10, backoff=0.02) as client:
            while time.perf_counter() < stop_at:
                blob = client.compress(TCGEN_A_SPEC, raw, chunk_records="auto")
                assert blob == expected, "server bytes diverged from local engine"
                counts[index] += 1

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        list(pool.map(worker, range(clients)))
    elapsed = time.perf_counter() - start
    requests = sum(counts)
    return requests / elapsed, requests * len(raw) / elapsed / 1e6


def _start_pool(workers: int) -> tuple[subprocess.Popen, int]:
    """A real ``tcgen-serve`` worker pool on a free loopback port."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--workers",
            str(workers),
            "--no-http",
            "--queue-limit",
            "128",
        ],
        stderr=subprocess.PIPE,
        text=True,
    )
    port = None
    started = 0
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line:
            raise RuntimeError(f"pool exited rc={process.poll()}")
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1])
        elif "started (pid" in line:
            started += 1
        if port is not None and started >= workers:
            # Drain the rest of stderr in the background so the pipe
            # never blocks the supervisor.
            threading.Thread(
                target=process.stderr.read, daemon=True
            ).start()
            return process, port
    raise RuntimeError("pool never finished starting")


def test_server_throughput(representative_trace):
    raw = representative_trace
    expected = TraceEngine(parse_spec(TCGEN_A_SPEC)).compress(
        raw, chunk_records="auto"
    )
    cpus = available_parallelism()
    default_workers = min(8, max(2, cpus))
    seconds = SECONDS

    lines = [
        "tcgen-serve throughput (loopback TCP, compress roundtrips)",
        "",
        f"trace: {len(raw):,} bytes; available CPUs: {cpus}",
        "every response asserted byte-identical to the local engine",
        "",
        f"client scaling (exec_workers={default_workers}):",
        "  clients     req/s      MB/s (raw in)",
    ]

    handle = _ServerThread(
        ServerConfig(port=0, queue_limit=64, exec_workers=default_workers)
    )
    try:
        baseline = None
        for clients in CLIENT_COUNTS:
            rps, mbps = _drive(handle.port, raw, expected, clients, seconds)
            baseline = baseline or rps
            lines.append(
                f"  {clients:7d}  {rps:8.2f}  {mbps:9.2f}   "
                f"({rps / baseline:4.2f}x)"
            )
        stats = handle.server.metrics.snapshot()
    finally:
        handle.stop()

    lines += [
        "",
        f"server counters after the run: requests_ok={stats['requests_ok']} "
        f"backpressure={stats['backpressure']} "
        f"cache_hit_rate={stats['cache_hit_rate']}",
        "",
        "executor scaling (8 clients):",
        "  exec_workers   req/s      MB/s (raw in)",
    ]

    for workers in (1, default_workers):
        handle = _ServerThread(
            ServerConfig(port=0, queue_limit=64, exec_workers=workers)
        )
        try:
            rps, mbps = _drive(handle.port, raw, expected, 8, seconds)
        finally:
            handle.stop()
        lines.append(f"  {workers:12d}  {rps:8.2f}  {mbps:9.2f}")

    lines += [
        "",
        "(closed-loop load: requests/s includes framing, JSON headers,",
        " loopback TCP, admission control, and response streaming;",
        " prediction kernels hold the GIL, so executor scaling reflects",
        " the codec stage and I/O overlap, not full linear speedup)",
    ]

    # -- worker-pool sweep (real pre-fork subprocess pool) -------------------
    pool_raw = build_trace("gzip", "store_addresses", scale=0.5, seed=SEED)
    pool_expected = TraceEngine(parse_spec(TCGEN_A_SPEC)).compress(
        pool_raw, chunk_records="auto"
    )
    worker_counts = sorted({1, 2, 4, cpus} - {0})
    lines += [
        "",
        f"worker-pool scaling (pre-fork tcgen-serve subprocess, "
        f"trace {len(pool_raw):,} bytes):",
        "  workers  clients     req/s      MB/s (raw in)",
    ]
    pool_baselines: dict[int, float] = {}
    for workers in worker_counts:
        process, port = _start_pool(workers)
        try:
            for clients in (8, 64):
                rps, mbps = _drive(
                    port, pool_raw, pool_expected, clients, seconds
                )
                baseline = pool_baselines.setdefault(clients, rps)
                lines.append(
                    f"  {workers:7d}  {clients:7d}  {rps:8.2f}  "
                    f"{mbps:9.2f}   ({rps / baseline:4.2f}x vs 1 worker)"
                )
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
    lines += [
        "",
        "(worker-pool rows run separate OS processes, so speedup over",
        " 1 worker tracks available CPUs: on a single-CPU host all rows",
        " are expected to be ~1x, which validates that the supervisor,",
        " SO_REUSEPORT accept spreading, and shared disk engine cache",
        " add no material overhead rather than demonstrating parallel",
        " speedup)",
    ]
    report("server_throughput", "\n".join(lines))
