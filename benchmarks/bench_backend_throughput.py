"""Backend throughput: the generated C binary vs the generated Python.

The paper's absolute numbers (26MB/s decompression, 7.5MB/s compression on
an 833MHz Alpha) were measured on compiled C.  Our C backend emits the
same kind of code; this bench compiles it with ``cc -O3`` and measures
end-to-end filter throughput (including process spawn and pipe transport,
so it is a lower bound).  The comparison quantifies how much of the
Figure 7/8 speed story is language substrate: the same specialized
algorithm runs one to two orders of magnitude faster as C.
"""

from __future__ import annotations

import time

import pytest

from repro import generate_compressor, tcgen_a
from repro.codegen.compile import find_c_compiler, generate_and_compile_c
from repro.model import build_model

from conftest import report

needs_cc = pytest.mark.skipif(
    find_c_compiler() is None, reason="no C compiler available"
)


@pytest.fixture(scope="module")
def compiled(tmp_path_factory):
    if find_c_compiler() is None:
        pytest.skip("no C compiler available")
    return generate_and_compile_c(
        build_model(tcgen_a()), workdir=str(tmp_path_factory.mktemp("bench_c"))
    )


@needs_cc
def test_backend_throughput_comparison(benchmark, compiled, trace_suite):
    python_module = generate_compressor(tcgen_a())
    raw = max(
        (r for traces in trace_suite.values() for r in traces.values()), key=len
    )

    def once():
        timings = {}
        start = time.perf_counter()
        blob_c = compiled.compress(raw)
        timings["c_compress"] = time.perf_counter() - start
        start = time.perf_counter()
        out = compiled.decompress(blob_c)
        timings["c_decompress"] = time.perf_counter() - start
        assert out == raw
        start = time.perf_counter()
        blob_py = python_module.compress(raw)
        timings["py_compress"] = time.perf_counter() - start
        start = time.perf_counter()
        out = python_module.decompress(blob_py)
        timings["py_decompress"] = time.perf_counter() - start
        assert out == raw
        return timings

    timings = benchmark.pedantic(once, rounds=1, iterations=1)
    mb = len(raw) / 1e6
    lines = [
        "Generated-backend throughput (one trace, includes C process spawn)",
        "",
        f"trace: {len(raw):,} bytes",
        f"C   compress   {mb / timings['c_compress']:8.1f} MB/s",
        f"C   decompress {mb / timings['c_decompress']:8.1f} MB/s "
        "(paper's Alpha: 7.5 / 26 MB/s)",
        f"Py  compress   {mb / timings['py_compress']:8.1f} MB/s",
        f"Py  decompress {mb / timings['py_decompress']:8.1f} MB/s",
        "",
        f"C-over-Python speedup: compress "
        f"{timings['py_compress'] / timings['c_compress']:.0f}x, decompress "
        f"{timings['py_decompress'] / timings['c_decompress']:.0f}x",
    ]
    report("backend_throughput", "\n".join(lines))

    # The compiled backend must be at least an order of magnitude faster —
    # the substrate factor EXPERIMENTS.md uses to interpret Figures 7/8.
    assert timings["c_compress"] * 5 < timings["py_compress"]
    assert timings["c_decompress"] * 5 < timings["py_decompress"]
