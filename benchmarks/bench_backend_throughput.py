"""Backend throughput: subprocess C vs in-process native vs pure Python.

The paper's absolute numbers (26MB/s decompression, 7.5MB/s compression on
an 833MHz Alpha) were measured on compiled C.  This bench measures three
ways of running the same specialized algorithm:

- **C (filter)** — the generated standalone C binary, spawned as a
  subprocess filter (includes spawn and pipe transport, a lower bound);
- **native** — the in-process native fast path (`repro.codegen.native`):
  the compiled kernel stage behind the usual Python API, bzip2 codec and
  container framing still in Python;
- **Python** — the generated pure-Python module.

End-to-end numbers share the bzip2 codec cost, which caps the visible
speedup; the kernel-stage rows use the identity codec to isolate exactly
the stage the native backend replaces.  That isolated ratio is the
substrate factor EXPERIMENTS.md uses to interpret Figures 7/8.
"""

from __future__ import annotations

import time

import pytest

from repro import generate_compressor, tcgen_a
from repro.codegen.compile import find_c_compiler, generate_and_compile_c
from repro.model import build_model
from repro.runtime import TraceEngine

from conftest import report

needs_cc = pytest.mark.skipif(
    find_c_compiler() is None, reason="no C compiler available"
)


@pytest.fixture(scope="module")
def compiled(tmp_path_factory):
    if find_c_compiler() is None:
        pytest.skip("no C compiler available")
    return generate_and_compile_c(
        build_model(tcgen_a()), workdir=str(tmp_path_factory.mktemp("bench_c"))
    )


@needs_cc
def test_backend_throughput_comparison(
    benchmark, compiled, trace_suite, monkeypatch
):
    monkeypatch.setenv("TCGEN_NATIVE", "1")
    python_module = generate_compressor(tcgen_a())
    raw = max(
        (r for traces in trace_suite.values() for r in traces.values()), key=len
    )
    # Warm the native artifact cache so the one-time cc -O3 build is not
    # billed to the timed region (a real process pays it once per spec).
    python_module.compress(raw[: 1024 * 16], backend="native")

    def once():
        timings = {}

        def timed(label, fn):
            start = time.perf_counter()
            result = fn()
            timings[label] = time.perf_counter() - start
            return result

        blob = timed("c_compress", lambda: compiled.compress(raw))
        assert timed("c_decompress", lambda: compiled.decompress(blob)) == raw

        blob_nat = timed(
            "nat_compress", lambda: python_module.compress(raw, backend="native")
        )
        assert timed(
            "nat_decompress",
            lambda: python_module.decompress(blob_nat, backend="native"),
        ) == raw

        blob_py = timed(
            "py_compress", lambda: python_module.compress(raw, backend="python")
        )
        assert timed(
            "py_decompress",
            lambda: python_module.decompress(blob_py, backend="python"),
        ) == raw
        assert blob_nat == blob_py  # the fast path is unobservable

        # Kernel stage isolated: identity codec removes the shared bzip2
        # cost, leaving exactly the stage the native backend replaces.
        eng_py = TraceEngine(tcgen_a(), codec="identity", backend="python")
        eng_nat = TraceEngine(tcgen_a(), codec="identity", backend="native")
        kblob = timed("kernel_nat_compress", lambda: eng_nat.compress(raw))
        assert timed(
            "kernel_nat_decompress", lambda: eng_nat.decompress(kblob)
        ) == raw
        kblob_py = timed("kernel_py_compress", lambda: eng_py.compress(raw))
        assert timed(
            "kernel_py_decompress", lambda: eng_py.decompress(kblob_py)
        ) == raw
        assert kblob_py == kblob
        return timings

    timings = benchmark.pedantic(once, rounds=1, iterations=1)
    mb = len(raw) / 1e6

    def rate(label):
        return mb / timings[label]

    lines = [
        "Backend throughput (one trace; C filter includes process spawn)",
        "",
        f"trace: {len(raw):,} bytes",
        "",
        "end-to-end (bzip2 codec shared by all rows)",
        f"  C filter  compress {rate('c_compress'):8.1f} MB/s   "
        f"decompress {rate('c_decompress'):8.1f} MB/s "
        "(paper's Alpha: 7.5 / 26 MB/s)",
        f"  native    compress {rate('nat_compress'):8.1f} MB/s   "
        f"decompress {rate('nat_decompress'):8.1f} MB/s",
        f"  Python    compress {rate('py_compress'):8.1f} MB/s   "
        f"decompress {rate('py_decompress'):8.1f} MB/s",
        "",
        "kernel stage only (identity codec)",
        f"  native    compress {rate('kernel_nat_compress'):8.1f} MB/s   "
        f"decompress {rate('kernel_nat_decompress'):8.1f} MB/s",
        f"  Python    compress {rate('kernel_py_compress'):8.1f} MB/s   "
        f"decompress {rate('kernel_py_decompress'):8.1f} MB/s",
        "",
        f"native-over-Python, end-to-end: compress "
        f"{timings['py_compress'] / timings['nat_compress']:.1f}x, decompress "
        f"{timings['py_decompress'] / timings['nat_decompress']:.1f}x",
        f"native-over-Python, kernel stage: compress "
        f"{timings['kernel_py_compress'] / timings['kernel_nat_compress']:.0f}x, "
        f"decompress "
        f"{timings['kernel_py_decompress'] / timings['kernel_nat_decompress']:.0f}x",
        f"C-filter-over-Python: compress "
        f"{timings['py_compress'] / timings['c_compress']:.0f}x, decompress "
        f"{timings['py_decompress'] / timings['c_decompress']:.0f}x",
    ]
    report("backend_throughput", "\n".join(lines))

    # The compiled substrates must beat the Python kernels by at least an
    # order of magnitude where the kernel dominates: the isolated kernel
    # stage for the in-process native path, end-to-end for the C filter.
    assert timings["kernel_nat_compress"] * 10 < timings["kernel_py_compress"]
    assert timings["kernel_nat_decompress"] * 10 < timings["kernel_py_decompress"]
    assert timings["c_compress"] * 5 < timings["py_compress"]
    assert timings["c_decompress"] * 5 < timings["py_decompress"]
