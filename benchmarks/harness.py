"""Measurement helpers shared by the figure/table benchmarks."""

from __future__ import annotations

import os
import platform

from repro.baselines import all_compressors
from repro.metrics import Measurement, ResultTable, measure

#: Pretty labels for the trace kinds, matching the paper's terminology.
KIND_LABELS = {
    "store_addresses": "store addresses",
    "cache_miss_addresses": "cache miss addrs",
    "load_values": "load values",
}

_comparison_cache: dict[int, ResultTable] = {}

_provenance_cache: list[str] = []


def cpu_model() -> str:
    """Best-effort CPU model string (``/proc/cpuinfo``, then platform)."""
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def host_provenance() -> str:
    """Header lines stamped into every committed results file.

    Throughput numbers are meaningless without the hardware and the
    kernel backend that produced them; stamping both makes committed
    results comparable across machines and backend generations.  The
    backend line records what ``backend="auto"`` resolves to on this
    host for the preset-A model (the default every bench inherits).
    """
    if not _provenance_cache:
        from repro.runtime.engine import TraceEngine
        from repro.spec import tcgen_a

        engine = TraceEngine(tcgen_a())
        _provenance_cache.append(
            f"# host: {os.cpu_count()} cpu(s), {cpu_model()}\n"
            f"# python {platform.python_version()}; "
            f"backend auto -> {engine.backend}"
        )
    return _provenance_cache[0]


def full_comparison(trace_suite) -> ResultTable:
    """Measure all seven algorithms over the whole suite (cached).

    Figures 6, 7, and 8 are three views of the same run, so the expensive
    sweep happens once per session.
    """
    key = id(trace_suite)
    if key not in _comparison_cache:
        table = ResultTable()
        for kind, traces in trace_suite.items():
            for workload, raw in traces.items():
                for compressor in all_compressors():
                    table.add(
                        measure(compressor, raw, workload=workload, kind=kind)
                    )
        _comparison_cache[key] = table
    return _comparison_cache[key]


def render_figure(table: ResultTable, metric: str, title: str, note: str = "") -> str:
    """Paper-figure style rendering: absolute + relative-to-TCgen."""
    parts = [title, ""]
    parts.append("absolute (harmonic mean over the suite):")
    parts.append(table.render(metric))
    parts.append("")
    parts.append("relative to TCgen (the paper's figures normalize this way):")
    parts.append(table.render(metric, relative_to="TCgen"))
    if note:
        parts += ["", note]
    return "\n".join(parts)


def per_trace_extremes(table: ResultTable, metric: str) -> str:
    """The Section 7.1-style per-trace detail: wins and best-case factors."""
    lines = []
    kinds = table.kinds()
    algorithms = [a for a in table.algorithms() if a != "TCgen"]
    wins = 0
    total = 0
    best_factors = {a: 0.0 for a in algorithms}
    for kind in kinds:
        workloads = {m.workload for m in table.select(kind=kind)}
        for workload in workloads:
            total += 1
            values = {
                m.algorithm: getattr(m, metric)
                for m in table.select(kind=kind)
                if m.workload == workload
            }
            tcgen = values["TCgen"]
            if all(tcgen >= v for a, v in values.items() if a != "TCgen"):
                wins += 1
            for algorithm in algorithms:
                factor = tcgen / values[algorithm]
                best_factors[algorithm] = max(best_factors[algorithm], factor)
    lines.append(
        f"TCgen best on {wins} of {total} traces "
        f"(paper: 36 of 55 for compression rate)"
    )
    for algorithm, factor in best_factors.items():
        lines.append(f"  best-case factor over {algorithm}: {factor:.1f}x")
    return "\n".join(lines)
