"""Cost of the v3 container's CRC32C integrity framing.

The v3 container adds a CRC32C per payload section (plus a checksummed
header and an end-of-stream trailer) on top of the v2 chunked layout.
This bench quantifies what that protection costs:

1. **encode rate** — wall-clock compression throughput v2 vs v3 on the
   same trace and chunking (the delta is pure checksumming);
2. **decode rate** — strict decompression throughput v2 vs v3 (v3 pays
   one CRC verification per section before the codec stage);
3. **size overhead** — the framing bytes added per container, which is
   12 fixed bytes plus 4 per section and independent of payload size;
4. **raw CRC32C throughput** — the slicing-by-8 implementation in
   ``repro.tio.checksum``, to show the framing cost is bounded by a
   single cheap pass over the *stored* (already compressed) bytes.
"""

from __future__ import annotations

import time

from repro.runtime.engine import TraceEngine
from repro.spec import tcgen_a
from repro.tio.checksum import crc32c

from conftest import report

CHUNK_RECORDS = 4096


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_crc_overhead(benchmark, representative_trace):
    raw = representative_trace
    mb = len(raw) / 1e6
    v2_engine = TraceEngine(tcgen_a(), container_version=2)
    v3_engine = TraceEngine(tcgen_a())

    def once():
        v2_blob = v2_engine.compress(raw, chunk_records=CHUNK_RECORDS)
        v3_blob = v3_engine.compress(raw, chunk_records=CHUNK_RECORDS)
        chunks = -(-((len(raw) - 4) // 12) // CHUNK_RECORDS)

        enc2 = _best_of(lambda: v2_engine.compress(raw, chunk_records=CHUNK_RECORDS))
        enc3 = _best_of(lambda: v3_engine.compress(raw, chunk_records=CHUNK_RECORDS))
        dec2 = _best_of(lambda: v2_engine.decompress(v2_blob))
        dec3 = _best_of(lambda: v3_engine.decompress(v3_blob))

        payload = bytes(range(256)) * 4096  # 1 MiB
        crc_rate = 1.0 / _best_of(lambda: crc32c(payload))

        lines = [
            "CRC32C integrity framing overhead (v3 vs v2 chunked container)",
            "",
            f"trace: {len(raw):,} bytes, chunk_records={CHUNK_RECORDS} "
            f"({chunks} chunks)",
            "",
            f"encode: v2 {mb / enc2:7.2f} MB/s   v3 {mb / enc3:7.2f} MB/s   "
            f"({100.0 * (enc3 - enc2) / enc2:+.1f}% wall clock)",
            f"decode: v2 {mb / dec2:7.2f} MB/s   v3 {mb / dec3:7.2f} MB/s   "
            f"({100.0 * (dec3 - dec2) / dec2:+.1f}% wall clock)",
            "",
            f"size: v2 {len(v2_blob):,} B, v3 {len(v3_blob):,} B "
            f"(+{len(v3_blob) - len(v2_blob)} B = 12 + 4 per section; "
            f"{100.0 * (len(v3_blob) - len(v2_blob)) / len(v2_blob):.3f}%)",
            "",
            f"raw crc32c throughput: {crc_rate:,.0f} MB/s over stored bytes",
            "(the CRC pass runs over post-compressed bytes, so its cost is",
            " a fraction of the codec stage regardless of trace size)",
        ]
        text = "\n".join(lines)
        report("crc_overhead", text)
        return text

    print(benchmark.pedantic(once, rounds=1, iterations=1))
