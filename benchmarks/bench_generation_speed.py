"""Section 5 claims: generation and compilation are negligible.

The paper: "TCgen is quite fast, taking under three thousandths of a
second ... to generate and optimize code even for sophisticated trace
descriptions.  Compiling the emitted C code with a high optimization level
typically takes under one second."  These benches time parsing + model
resolution + code generation for both backends, the Python module load,
and (when a C compiler is available) the C compile.
"""

from __future__ import annotations

import pytest

from repro.codegen import generate_c, generate_python, load_python_module
from repro.codegen.compile import compile_c, find_c_compiler
from repro.model import build_model
from repro.spec import parse_spec
from repro.spec.presets import TCGEN_B_SPEC

from conftest import report


def _generate_python_pipeline():
    spec = parse_spec(TCGEN_B_SPEC)
    return generate_python(build_model(spec))


def _generate_c_pipeline():
    spec = parse_spec(TCGEN_B_SPEC)
    return generate_c(build_model(spec))


def test_benchmark_generate_python(benchmark):
    source = benchmark(_generate_python_pipeline)
    assert "def compress" in source


def test_benchmark_generate_c(benchmark):
    source = benchmark(_generate_c_pipeline)
    assert "int main(" in source


def test_benchmark_load_generated_module(benchmark):
    source = _generate_python_pipeline()
    module = benchmark(load_python_module, source)
    assert callable(module.compress)


@pytest.mark.skipif(find_c_compiler() is None, reason="no C compiler")
def test_benchmark_compile_c(benchmark, tmp_path_factory):
    source = _generate_c_pipeline()

    def compile_once():
        workdir = tmp_path_factory.mktemp("cc")
        return compile_c(source, workdir=str(workdir))

    compiled = benchmark.pedantic(compile_once, rounds=3, iterations=1)
    assert compiled.binary_path


def test_generation_time_claim(benchmark):
    """The paper's <3ms generation claim, relaxed 10x for CPython."""
    import time

    spec = parse_spec(TCGEN_B_SPEC)
    start = time.perf_counter()
    generate_c(build_model(spec))
    elapsed = time.perf_counter() - start
    report(
        "generation_speed",
        f"TCgen(B) spec -> optimized C source in {elapsed * 1000:.2f} ms "
        "(paper: < 3 ms on an 833MHz Alpha)",
    )
    assert elapsed < 0.03
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
