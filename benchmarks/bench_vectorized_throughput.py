"""Vectorized backend throughput: NumPy columnar kernels vs Python loops,
and batched native chunk calls vs one FFI call per chunk.

Two honest caveats are part of the result:

- The shipped presets (tcgen-a/b) are FCM/DFCM-bound, which the IR
  proves non-vectorizable (``tcgen-lint --cost`` prints ``scalar`` for
  every field, and TC028 says so).  The columnar win is therefore
  measured on a pure last-value spec with the same record layout as
  preset A, over the same preset trace families — that is exactly the
  class of spec ``backend="auto"`` routes to numpy.
- The preset-A row is included to show the degenerate case: on a
  scalar-bound spec the numpy backend falls back to per-field Python
  loops and buys roughly nothing.

Byte-identity across python/numpy (and native, when a compiler exists)
is asserted inside the timed run — the speedup is unobservable in the
output bytes, or the bench fails.
"""

from __future__ import annotations

import time

import pytest

from repro.codegen.compile import find_c_compiler
from repro.runtime import TraceEngine
from repro.runtime.engine import NATIVE_BATCH_CHUNKS
from repro.spec import parse_spec, tcgen_a

from conftest import report

needs_cc = pytest.mark.skipif(
    find_c_compiler() is None, reason="no C compiler available"
)

#: Same record layout as preset A (32-bit header, 32+64-bit fields),
#: but pure last-value predictors: fully vectorizable for compression.
LV_SPEC_TEXT = (
    "TCgen Trace Specification;\n"
    "32-Bit Header;\n"
    "32-Bit Field 1 = {L1 = 1: LV[4]};\n"
    "64-Bit Field 2 = {L1 = 1: LV[4]};\n"
    "PC = Field 1;\n"
)


def _timed(timings, label, fn):
    start = time.perf_counter()
    result = fn()
    timings[label] = time.perf_counter() - start
    return result


def test_numpy_kernel_stage_throughput(benchmark, trace_suite):
    lv_spec = parse_spec(LV_SPEC_TEXT)
    families = {
        kind: max(traces.values(), key=len) for kind, traces in trace_suite.items()
    }

    def once():
        timings = {}
        for kind, raw in families.items():
            eng_py = TraceEngine(lv_spec, codec="identity", backend="python")
            eng_np = TraceEngine(lv_spec, codec="identity", backend="numpy")
            blob = _timed(
                timings, f"{kind}/py_c", lambda: eng_py.compress(raw, chunk_records=4096)
            )
            got = _timed(
                timings, f"{kind}/np_c", lambda: eng_np.compress(raw, chunk_records=4096)
            )
            assert got == blob  # columnar fast path is unobservable
            assert _timed(timings, f"{kind}/py_d", lambda: eng_py.decompress(blob)) == raw
            assert _timed(timings, f"{kind}/np_d", lambda: eng_np.decompress(blob)) == raw
        # Degenerate case: preset A is scalar-bound, numpy buys nothing.
        raw = families["store_addresses"]
        eng_py = TraceEngine(tcgen_a(), codec="identity", backend="python")
        eng_np = TraceEngine(tcgen_a(), codec="identity", backend="numpy")
        blob = _timed(
            timings, "preset_a/py_c", lambda: eng_py.compress(raw, chunk_records=4096)
        )
        got = _timed(
            timings, "preset_a/np_c", lambda: eng_np.compress(raw, chunk_records=4096)
        )
        assert got == blob
        return timings

    timings = benchmark.pedantic(once, rounds=1, iterations=1)

    lines = [
        "Vectorized (NumPy columnar) kernel-stage throughput, identity codec",
        "",
        "LV[4] spec (preset-A record layout; IR-proven vectorizable):",
    ]
    ratios = {}
    for kind, raw in families.items():
        mb = len(raw) / 1e6
        ratios[kind] = timings[f"{kind}/py_c"] / timings[f"{kind}/np_c"]
        lines.append(
            f"  {kind:22s} compress py {mb / timings[f'{kind}/py_c']:7.1f} MB/s"
            f"  np {mb / timings[f'{kind}/np_c']:7.1f} MB/s ({ratios[kind]:5.1f}x)"
            f"   decompress py {mb / timings[f'{kind}/py_d']:7.1f}"
            f"  np {mb / timings[f'{kind}/np_d']:7.1f} MB/s"
            f" ({timings[f'{kind}/py_d'] / timings[f'{kind}/np_d']:.1f}x)"
        )
    mb = len(families["store_addresses"]) / 1e6
    preset_ratio = timings["preset_a/py_c"] / timings["preset_a/np_c"]
    lines += [
        "",
        "  (decompress of LV[4] under SMART update is IR-classified vec-c:",
        "   the decode side needs the push history and stays scalar)",
        "",
        "preset A (tcgen-a, FCM/DFCM scalar-bound; TC028):",
        f"  {'store_addresses':22s} compress py "
        f"{mb / timings['preset_a/py_c']:7.1f} MB/s"
        f"  np {mb / timings['preset_a/np_c']:7.1f} MB/s ({preset_ratio:5.1f}x)",
    ]
    report("vectorized_throughput", "\n".join(lines))

    # The columnar kernels must beat the Python loop by >= 5x on at least
    # one preset trace family; the scalar fallback must not collapse.
    assert max(ratios.values()) >= 5.0, ratios
    assert preset_ratio > 0.2, preset_ratio


@needs_cc
def test_batched_native_calls_amortize_ffi(benchmark, trace_suite, monkeypatch):
    monkeypatch.setenv("TCGEN_NATIVE", "1")
    raw = max(
        (r for traces in trace_suite.values() for r in traces.values()), key=len
    )
    engine = TraceEngine(tcgen_a(), codec="identity", backend="native")
    kernel = engine._backend().kernel
    fmt = engine.format
    chunk = 64  # small chunks make the per-call FFI overhead visible
    count = fmt.record_count(raw)
    slices = [
        raw[
            fmt.header_bytes
            + start * fmt.record_bytes : fmt.header_bytes
            + min(start + chunk, count) * fmt.record_bytes
        ]
        for start in range(0, count, chunk)
    ]

    def once():
        timings = {}
        singles = _timed(
            timings, "single", lambda: [kernel.compress_chunk(s) for s in slices]
        )
        grouped = _timed(
            timings,
            "batched",
            lambda: [
                result
                for i in range(0, len(slices), NATIVE_BATCH_CHUNKS)
                for result in kernel.compress_batch(slices[i : i + NATIVE_BATCH_CHUNKS])
            ],
        )
        assert grouped == singles  # batching is unobservable
        items = [
            (len(s) // fmt.record_bytes, streams[0::2], streams[1::2])
            for s, (streams, _) in zip(slices, singles)
        ]
        d_single = _timed(
            timings, "d_single", lambda: [kernel.decompress_chunk(*it) for it in items]
        )
        d_batched = _timed(
            timings,
            "d_batched",
            lambda: [
                piece
                for i in range(0, len(items), NATIVE_BATCH_CHUNKS)
                for piece in kernel.decompress_batch(items[i : i + NATIVE_BATCH_CHUNKS])
            ],
        )
        assert b"".join(d_batched) == b"".join(d_single) == raw[fmt.header_bytes :]
        return timings

    timings = benchmark.pedantic(once, rounds=1, iterations=1)
    n = len(slices)
    saved_c = (timings["single"] - timings["batched"]) / n * 1e6
    saved_d = (timings["d_single"] - timings["d_batched"]) / n * 1e6
    report(
        "vectorized_ffi_batching",
        "\n".join(
            [
                "Batched native chunk calls (ABI 2) vs one FFI call per chunk",
                "",
                f"{n} chunks of {chunk} records, batch size {NATIVE_BATCH_CHUNKS}",
                "",
                f"compress:   single {timings['single'] * 1e3:7.1f} ms   "
                f"batched {timings['batched'] * 1e3:7.1f} ms   "
                f"({saved_c:.1f} us/chunk saved)",
                f"decompress: single {timings['d_single'] * 1e3:7.1f} ms   "
                f"batched {timings['d_batched'] * 1e3:7.1f} ms   "
                f"({saved_d:.1f} us/chunk saved)",
            ]
        ),
    )
    # Fewer boundary crossings must not be slower; on small chunks the
    # saved per-call overhead should be measurable.
    assert timings["batched"] < timings["single"]
    assert timings["d_batched"] < timings["d_single"]
