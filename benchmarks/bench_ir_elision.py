"""IR-proven elision: does dropping proven-redundant ops buy speed?

The dataflow analyses (:mod:`repro.ir.analysis`) let the backends elide
masks and guards that are provably the identity — the level-1 chain
store mask, the L1 line mask when the PC width already fits, the
scratch-hash step-1 mask, and dead smart-update guards.  This bench
compresses the trace suite with the generated Python module in both
variants (``ir_facts=False`` = the pre-IR baseline, ``ir_facts=True`` =
post-elision) and reports throughput plus the verified byte-identity of
the output.

Honest expectations: in the *Python* backend each elision removes one
interpreted ``&`` per record per chain, a few percent at best and noisy
below that; the C compiler would have folded some of these itself.  The
interesting number is the static one — the cost model's op-count delta
— which the report prints alongside the measured wall-clock.
"""

from __future__ import annotations

import time

from repro.codegen import generate_python, load_python_module
from repro.ir import analyze_model, cost_model
from repro.metrics import harmonic_mean
from repro.model import build_model
from repro.spec import tcgen_a

from conftest import report

#: Per-record op totals are static; measure on a suite subset.
SUBSET = ("gcc", "mcf", "swim")


#: Timing repetitions per workload; the best is kept (least noise).
REPEATS = 3


def _throughput(module, traces) -> tuple[float, float]:
    """(records/s harmonic mean, total best-case seconds) over the subset."""
    rates = []
    total = 0.0
    for workload, raw in traces.items():
        if workload not in SUBSET:
            continue
        records = max(1, (len(raw) - 4) // 12)
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            module.compress(raw)
            best = min(best, time.perf_counter() - start)
        total += best
        rates.append(records / best)
    return harmonic_mean(rates), total


def test_ir_elision_throughput(trace_suite):
    model = build_model(tcgen_a())
    base = load_python_module(generate_python(model, ir_facts=False))
    lean = load_python_module(generate_python(model, ir_facts=True))

    # Byte-identity first: the elisions must be invisible in the output.
    identical = all(
        base.compress(raw) == lean.compress(raw)
        for traces in trace_suite.values()
        for workload, raw in traces.items()
        if workload in SUBSET
    )
    assert identical

    counts = cost_model(analyze_model(model)).totals
    lines = [
        "IR-proven elision: generated Python backend, preset tcgen-a",
        "",
        f"static per-record op count (post-elision): {counts.total}"
        f" ({counts.reads} reads, {counts.stores} stores,"
        f" {counts.hash_steps} hash, {counts.compares} cmp)",
        "",
        f"{'variant':<28} {'rec/s (hmean)':>14} {'total s':>9}",
    ]
    rows = []
    for label, module in (
        ("ir_facts=False (pre-IR)", base),
        ("ir_facts=True  (elided)", lean),
    ):
        rate, total = _throughput(
            module, {w: r for t in trace_suite.values() for w, r in t.items()}
        )
        rows.append((label, rate, total))
        lines.append(f"{label:<28} {rate:>14.0f} {total:>9.2f}")
    speedup = rows[1][1] / rows[0][1]
    lines += [
        "",
        f"python speedup: {speedup:.3f}x  (compressed output "
        f"byte-identical: {'yes' if identical else 'NO'})",
    ]
    lines += _c_section(model, trace_suite)
    lines += [
        "",
        "note: interpreted-Python deltas of a few percent are at the",
        "noise floor of this harness — the masks the proofs remove are",
        "single & ops the interpreter barely notices, and an optimizing",
        "C compiler folds several of them on its own.  The elisions'",
        "value is the proof machinery itself: the same facts that allow",
        "them also catch tampered output (TC30x).",
    ]
    report("ir_elision", "\n".join(lines))


def _c_section(model, trace_suite) -> list[str]:
    """Measure the compiled C filter both ways, if a compiler exists."""
    import tempfile

    from repro.codegen import generate_c
    from repro.codegen.compile import compile_c, find_c_compiler

    if find_c_compiler() is None:
        return ["", "C backend: skipped (no C compiler available)"]
    out = ["", f"{'C filter variant':<28} {'rec/s (hmean)':>14} {'total s':>9}"]
    rows = []
    for label, facts in (
        ("ir_facts=False (pre-IR)", False),
        ("ir_facts=True  (elided)", True),
    ):
        with tempfile.TemporaryDirectory() as workdir:
            binary = compile_c(
                generate_c(model, ir_facts=facts), workdir=workdir
            )
            rate, total = _throughput(
                binary,
                {w: r for t in trace_suite.values() for w, r in t.items()},
            )
        rows.append(rate)
        out.append(f"{label:<28} {rate:>14.0f} {total:>9.2f}")
    out.append(f"\nc speedup: {rows[1] / rows[0]:.3f}x")
    return out
