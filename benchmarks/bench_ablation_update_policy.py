"""Design-choice ablation: the three update policies (paper Section 5.3).

The paper motivates TCgen's *smart* update policy as combining VPC3's
always-update (fast, duplicate-prone) with VPC2's search-update (slow,
best retention): check only the line's first entry.  This bench measures
all three policies on the same traces through the interpreted engine (the
only implementation exposing VPC2's SEARCH policy) and checks the designed
trade-off: SMART and SEARCH never lose to ALWAYS on compression rate.
"""

from __future__ import annotations

import time

from repro.metrics import harmonic_mean
from repro.predictors.tables import UpdatePolicy
from repro.runtime import TraceEngine
from repro.spec import tcgen_a

from conftest import report
from harness import KIND_LABELS


#: The interpreted engine is ~20x slower than generated code, so this
#: ablation runs on a three-workload subset of the suite.
SUBSET = ("gcc", "mcf", "swim")


def test_update_policy_ablation(benchmark, trace_suite):
    def sweep():
        results = {}
        for policy in (UpdatePolicy.ALWAYS, UpdatePolicy.SMART, UpdatePolicy.SEARCH):
            engine = TraceEngine(tcgen_a(), update_policy=policy)
            per_kind = {}
            for kind, traces in trace_suite.items():
                rates, cspeeds = [], []
                for workload, raw in traces.items():
                    if workload not in SUBSET:
                        continue
                    start = time.perf_counter()
                    blob = engine.compress(raw)
                    elapsed = time.perf_counter() - start
                    assert engine.decompress(blob) == raw
                    rates.append(len(raw) / len(blob))
                    cspeeds.append(len(raw) / max(elapsed, 1e-9))
                per_kind[kind] = (harmonic_mean(rates), harmonic_mean(cspeeds))
            results[policy.value] = per_kind
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Update-policy ablation (VPC3=always, TCgen=smart, VPC2=search)", ""]
    lines.append(
        f"{'policy':10s}"
        + "".join(f" | {KIND_LABELS[k]:>18s} rate   c.spd" for k in trace_suite)
    )
    for policy, per_kind in results.items():
        line = f"{policy:10s}"
        for kind in trace_suite:
            rate, cspd = per_kind[kind]
            line += f" | {rate:16.2f} {cspd / 1e6:6.2f}M"
        lines.append(line)
    report("ablation_update_policy", "\n".join(lines))

    for kind in trace_suite:
        always_rate = results["always"][kind][0]
        smart_rate = results["smart"][kind][0]
        search_rate = results["search"][kind][0]
        # Smart never loses to always on rate (the whole point of the
        # policy).  Search (VPC2) improves raw prediction accuracy but not
        # necessarily the post-BZIP2 size, so it is only reported, with a
        # sanity band guarding against gross regressions.
        assert smart_rate >= always_rate * 0.999, kind
        assert search_rate >= always_rate * 0.9, kind
