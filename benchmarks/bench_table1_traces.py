"""Table 1: information about the traces.

Regenerates the paper's trace inventory — per workload, the language and
type plus the sizes of the three trace kinds (here synthetic, so sizes are
scaled down; the *relative* distribution follows Table 1's weights).  The
pytest-benchmark entry times end-to-end trace generation, including the
cache-simulator pass that produces the miss traces.
"""

from __future__ import annotations

from repro.traces import TRACE_KINDS, build_trace, generate_events
from repro.traces.workloads import WORKLOADS

from conftest import SCALE, SEED, report, suite_names


def test_table1_inventory(benchmark, trace_suite):
    lines = [
        "Table 1: information about the (synthetic) traces",
        "",
        f"{'program':10s} {'lang':5s} {'type':15s} "
        f"{'store addr':>12s} {'cache miss':>12s} {'load values':>12s}",
    ]
    for workload in suite_names():
        info = WORKLOADS[workload]
        sizes = []
        for kind in TRACE_KINDS:
            raw = trace_suite[kind][workload]
            sizes.append(f"{len(raw) / 1024:10.1f}kB")
        lines.append(
            f"{workload:10s} {info.lang:5s} {info.kind:15s} "
            + " ".join(f"{s:>12s}" for s in sizes)
        )
        for kind in TRACE_KINDS:
            assert len(trace_suite[kind][workload]) > 4, (workload, kind)
    report("table1_traces", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_trace_records_frame_exactly(benchmark, trace_suite):
    def check():
        for kind, traces in trace_suite.items():
            for workload, raw in traces.items():
                assert (len(raw) - 4) % 12 == 0, (kind, workload)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_benchmark_trace_generation(benchmark):
    raw = benchmark(build_trace, "gcc", "cache_miss_addresses", SCALE, SEED)
    assert len(raw) > 4


def test_benchmark_event_generation(benchmark):
    events = benchmark(generate_events, "mcf", SCALE, SEED)
    assert len(events) > 0
