"""Figure 6: harmonic-mean compression rates of the seven algorithms.

The paper reports TCgen delivering the best harmonic-mean compression rate
on all three trace types, beating VPC3 by 6-13% through the smart update
policy, with SBC strongest among the rest on cache-miss traces and
SEQUITUR weak on strided store-address traces.  This bench regenerates the
figure (absolute and TCgen-relative) and checks the headline shape.  The
pytest-benchmark entries time the two dominant compressors.
"""

from __future__ import annotations

from repro.baselines import TCgenCompressor, Vpc3Compressor

from conftest import report
from harness import full_comparison, per_trace_extremes, render_figure


def test_figure6_compression_rates(benchmark, trace_suite):
    table = benchmark.pedantic(
        full_comparison, args=(trace_suite,), rounds=1, iterations=1
    )
    text = render_figure(
        table,
        "compression_rate",
        "Figure 6: harmonic-mean compression rates",
        note=per_trace_extremes(table, "compression_rate"),
    )
    report("fig6_compression_rate", text)

    summary = table.summary("compression_rate")
    kinds = table.kinds()

    # Headline: TCgen has the best (or within a whisker of the best)
    # harmonic-mean rate on every trace type.  On our scaled-down
    # synthetic store-address traces SBC can edge slightly ahead (see
    # EXPERIMENTS.md); everyone else must trail TCgen outright.
    for kind in kinds:
        tcgen = summary[("TCgen", kind)]
        for algorithm in table.algorithms():
            if algorithm == "TCgen":
                continue
            slack = 0.85 if algorithm == "SBC" else 1.0
            assert tcgen >= summary[(algorithm, kind)] * slack, (
                f"{algorithm} beats TCgen on {kind}: "
                f"{summary[(algorithm, kind)]:.2f} vs {tcgen:.2f}"
            )

    # TCgen >= VPC3 via the improved update policy (paper: 6-13% better).
    for kind in kinds:
        assert summary[("TCgen", kind)] >= summary[("VPC3", kind)] * 0.99

    # TCgen beats plain BZIP2 clearly on address traces; SEQUITUR is the
    # weakest algorithm on strided store-address traces (paper Section 7.1).
    assert summary[("TCgen", "store_addresses")] > summary[
        ("BZIP2", "store_addresses")
    ]
    store_rates = {a: summary[(a, "store_addresses")] for a in table.algorithms()}
    assert min(store_rates, key=store_rates.get) == "SEQUITUR"


def test_benchmark_tcgen_compress(benchmark, representative_trace):
    compressor = TCgenCompressor()
    blob = benchmark(compressor.compress, representative_trace)
    assert len(blob) < len(representative_trace)


def test_benchmark_vpc3_compress(benchmark, representative_trace):
    compressor = Vpc3Compressor()
    blob = benchmark(compressor.compress, representative_trace)
    assert len(blob) < len(representative_trace)
