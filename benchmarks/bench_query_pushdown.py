"""Predicate pushdown vs full-decompress-and-filter.

The query subsystem's pitch is that a selective predicate over an
indexed archive touches a small fraction of the chunks — no bzip2, no
predictor replay for the rest — and therefore beats the only
alternative an opaque archive offers: decompress everything, then
filter.  This bench measures both sides of that claim on a
sorted-address trace (the shape skip indexes exist for):

1. **chunks decoded** — planner statistics for range, point, and
   record-range predicates (the acceptance bar is <20% for selective
   predicates);
2. **wall clock** — the same queries executed via pushdown vs a full
   ``decompress()`` + numpy filter, plus the no-index fallback to show
   the executor without its accelerator;
3. **index cost** — bytes the TCIX frame adds and the one-off time to
   build it offline with ``rebuild_index``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.query import rebuild_index
from repro.runtime.engine import TraceEngine
from repro.spec import tcgen_a
from repro.tio import VPC_FORMAT, pack_records
from repro.tio.traceformat import unpack_records

from conftest import SCALE, report

CHUNK_RECORDS = 2048
RECORDS = int(200_000 * SCALE)


def _best_of(fn, repeats: int = 3):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


#: Program phases in the synthetic trace; each phase reuses its own
#: working set of addresses, interleaved across the address space so
#: min/max summaries cannot distinguish phases — only blooms can.
PHASES = 16
WORKING_SET = 256


def _sorted_trace(n: int) -> bytes:
    rng = np.random.default_rng(2005)
    pcs = np.sort(rng.integers(0x1000, 1 << 30, size=n, dtype=np.uint64))
    phase = (np.arange(n, dtype=np.uint64) * PHASES) // n
    slot = rng.integers(0, WORKING_SET, size=n, dtype=np.uint64)
    data = 0x4000_0000 + (slot * PHASES + phase) * 64
    return pack_records(VPC_FORMAT, b"VPC3", [pcs, data])


def test_query_pushdown(benchmark):
    engine = TraceEngine(tcgen_a())
    raw = _sorted_trace(RECORDS)
    plain = engine.compress(raw, chunk_records=CHUNK_RECORDS, container_version=3)
    _, columns = unpack_records(engine.format, raw)
    pcs = columns[1 - 1]

    lo, hi = int(pcs[len(pcs) // 2]), int(pcs[len(pcs) // 2 + len(pcs) // 50])
    # An address from one phase's working set: every chunk's min/max
    # straddles it, so only the blooms can prove absence.
    needle = int(columns[1][RECORDS // 3])
    queries = [
        ("range (2% of records)", f"pc >= {lo} and pc < {hi}",
         lambda: int(((pcs >= lo) & (pcs < hi)).sum())),
        ("point lookup (bloom)", f"f2 == {needle}",
         lambda: int((columns[1] == needle).sum())),
        ("record range", f"record >= {RECORDS // 2} and record < {RECORDS // 2 + 1000}",
         lambda: 1000),
    ]

    def once():
        index_time, indexed = _best_of(lambda: rebuild_index(engine, plain), 1)

        def full_filter(where_count):
            raw_out = engine.decompress(plain)
            _, cols = unpack_records(engine.format, raw_out)
            return where_count()

        lines = [
            "Predicate pushdown vs full decompress-and-filter",
            "",
            f"trace: {RECORDS:,} records ({len(raw):,} B raw), "
            f"chunk_records={CHUNK_RECORDS}",
            f"archive: {len(plain):,} B; index adds "
            f"{len(indexed) - len(plain):,} B "
            f"({100.0 * (len(indexed) - len(plain)) / len(plain):.2f}%), "
            f"built offline in {index_time * 1000:.0f} ms",
            "",
            f"{'query':<22} {'chunks':>12} {'pushdown':>10} "
            f"{'no index':>10} {'full scan':>10} {'speedup':>8}",
        ]
        for label, where, count_fn in queries:
            push_time, result = _best_of(
                lambda w=where: engine.query(indexed, w, op="count")
            )
            noidx_time, noidx = _best_of(
                lambda w=where: engine.query(plain, w, op="count")
            )
            full_time, expected = _best_of(
                lambda c=count_fn: full_filter(c)
            )
            assert result.count == noidx.count == expected, (
                label, result.count, noidx.count, expected,
            )
            stats = result.stats
            frac = stats.decoded_chunks / stats.total_chunks
            lines.append(
                f"{label:<22} {stats.decoded_chunks:>4}/{stats.total_chunks:<4} "
                f"{100 * frac:4.1f}% {push_time * 1000:8.1f}ms "
                f"{noidx_time * 1000:8.1f}ms {full_time * 1000:8.1f}ms "
                f"{full_time / push_time:7.1f}x"
            )
            assert frac < 0.20, f"{label}: decoded {frac:.0%} of chunks"
            assert push_time < full_time, f"{label}: pushdown slower than full scan"
        lines += [
            "",
            "pushdown  = query over the indexed archive (skip index consulted)",
            "no index  = same executor, no index: every chunk decoded lazily",
            "full scan = decompress() everything + numpy filter (the baseline",
            "            an opaque archive forces); speedup = full scan / pushdown",
        ]
        text = "\n".join(lines)
        report("query_pushdown", text)
        return text

    print(benchmark.pedantic(once, rounds=1, iterations=1))
