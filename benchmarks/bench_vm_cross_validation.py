"""Cross-validation on executed-program traces.

The headline comparisons (Figures 6-8) run on the synthetic workload
suite.  This bench re-checks the central compression-rate orderings on a
fully independent trace source: kernels executed instruction-by-
instruction on the bundled virtual machine (`repro.vm`).  If the paper's
shape only held because of how the synthetic generator is built, it would
break here.
"""

from __future__ import annotations

from repro.baselines import all_compressors
from repro.metrics import ResultTable, measure
from repro.traces import TRACE_KINDS
from repro.vm import vm_trace

from conftest import report

#: Kernels used for the cross-check (kept small; the VM is interpreted).
KERNELS = ("matmul", "list_sum", "binsearch", "hashtable", "quicksort",
           "strsearch", "fib", "stencil")


def test_vm_trace_comparison(benchmark):
    def sweep():
        table = ResultTable()
        traces = {
            (kernel, kind): vm_trace(kernel, kind)
            for kernel in KERNELS
            for kind in TRACE_KINDS
        }
        for (kernel, kind), raw in traces.items():
            for compressor in all_compressors():
                table.add(measure(compressor, raw, workload=kernel, kind=kind))
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Cross-validation: compression rates on executed-program traces",
        "",
        table.render("compression_rate"),
        "",
        "relative to TCgen:",
        table.render("compression_rate", relative_to="TCgen"),
        "",
        "note: the kernels' working sets mostly fit in the 16kB cache, so",
        "cache-miss traces have only a handful of records (fib: 7) and are",
        "dominated by container floors — orderings are asserted only for",
        "the trace kinds with >= 1000 records on average.",
    ]
    report("vm_cross_validation", "\n".join(lines))

    summary = table.summary("compression_rate")
    for kind in table.kinds():
        records = sorted(
            m.uncompressed_bytes // 12 for m in table.select(kind=kind)
        )
        if records[len(records) // 2] < 1000:  # median trace too small
            continue  # floor-dominated (see the report note)
        tcgen = summary[("TCgen", kind)]
        # The orderings asserted on the synthetic suite must also hold on
        # executed programs: TCgen >= VPC3 (the enhancement claim) and
        # TCgen > SEQUITUR.  Offset-based schemes (PDATS II/MACHE) are
        # allowed to win single-kernel *store* traces: with only one live
        # store site, a global delta plus run-collapse is near-optimal —
        # the paper itself records PDATS II winning 3 of 19 store traces.
        assert tcgen >= summary[("VPC3", kind)] * 0.98, kind
        assert tcgen > summary[("SEQUITUR", kind)], kind
        if kind == "load_values":
            assert tcgen > summary[("PDATS II", kind)], kind
