"""Figure 8: harmonic-mean compression speeds.

Paper shape: TCgen and VPC3 dominate the special-purpose compressors; SBC
is slower on every trace (up to 180x) and SEQUITUR up to 17x slower.
As in Figure 7, standalone BZIP2's native-C throughput is reported but
excluded from cross-language shape assertions.
"""

from __future__ import annotations

from repro.baselines import SbcCompressor, SequiturCompressor

from conftest import report
from harness import full_comparison, render_figure


def test_figure8_compression_speeds(benchmark, trace_suite):
    table = benchmark.pedantic(
        full_comparison, args=(trace_suite,), rounds=1, iterations=1
    )
    text = render_figure(
        table,
        "compression_speed",
        "Figure 8: harmonic-mean compression speeds (bytes/second)",
        note=(
            "note: standalone BZIP2 is native C and excluded from shape\n"
            "comparisons (see EXPERIMENTS.md)."
        ),
    )
    report("fig8_compression_speed", text)

    summary = table.summary("compression_speed")
    kinds = table.kinds()

    # Paper: VPC3 is within 2% of TCgen on compression speed; both
    # dominate the other special-purpose compressors.
    for kind in kinds:
        assert summary[("TCgen", kind)] > summary[("VPC3", kind)] * 0.75, kind

    # SEQUITUR is the slowest special-purpose compressor by a wide margin
    # (paper: SBC and SEQUITUR are the two slow outliers).
    for kind in kinds:
        assert summary[("SEQUITUR", kind)] < summary[("TCgen", kind)], kind


def test_benchmark_sequitur_compress(benchmark, representative_trace):
    compressor = SequiturCompressor()
    blob = benchmark(compressor.compress, representative_trace)
    assert compressor.decompress(blob) == representative_trace


def test_benchmark_sbc_compress(benchmark, representative_trace):
    compressor = SbcCompressor()
    blob = benchmark(compressor.compress, representative_trace)
    assert compressor.decompress(blob) == representative_trace
