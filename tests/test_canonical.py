"""Canonical-form printing: fixpoint and comment emission."""

import pytest

from repro.spec import format_spec, parse_spec
from repro.spec.presets import TCGEN_A_SPEC, TCGEN_B_SPEC

from conftest import SPEC_VARIANTS


class TestFixpoint:
    @pytest.mark.parametrize("name", sorted(SPEC_VARIANTS))
    def test_reparse_yields_same_spec(self, name):
        spec = SPEC_VARIANTS[name]()
        text = format_spec(spec)
        assert parse_spec(text) == spec

    @pytest.mark.parametrize("name", sorted(SPEC_VARIANTS))
    def test_canonical_form_is_stable(self, name):
        spec = SPEC_VARIANTS[name]()
        once = format_spec(spec)
        twice = format_spec(parse_spec(once))
        assert once == twice

    def test_tcgen_a_text_roundtrips(self):
        spec = parse_spec(TCGEN_A_SPEC)
        assert parse_spec(format_spec(spec)) == spec

    def test_tcgen_b_text_roundtrips(self):
        spec = parse_spec(TCGEN_B_SPEC)
        assert parse_spec(format_spec(spec)) == spec


class TestFormatting:
    def test_header_omitted_when_zero(self):
        spec = parse_spec(
            "TCgen Trace Specification;\n32-Bit Field 1 = {: LV[1]};\nPC = Field 1;\n"
        )
        assert "Header" not in format_spec(spec)

    def test_defaults_stay_implicit(self):
        spec = parse_spec(
            "TCgen Trace Specification;\n32-Bit Field 1 = {: LV[1]};\nPC = Field 1;\n"
        )
        text = format_spec(spec)
        assert "L1" not in text and "L2" not in text

    def test_explicit_sizes_preserved(self):
        spec = parse_spec(TCGEN_A_SPEC)
        text = format_spec(spec)
        assert "L1 = 65536" in text and "L2 = 131072" in text

    def test_comments_follow_their_field(self):
        spec = parse_spec(TCGEN_A_SPEC)
        text = format_spec(spec, comments={1: "four predictions"})
        lines = text.split("\n")
        field1_index = next(i for i, l in enumerate(lines) if "Field 1" in l)
        assert lines[field1_index + 1] == "# four predictions"

    def test_comment_text_is_reparsable(self):
        spec = parse_spec(TCGEN_A_SPEC)
        text = format_spec(spec, comments={1: "a", 2: "b"})
        assert parse_spec(text) == spec


class TestFingerprint:
    def test_same_spec_same_fingerprint(self):
        assert parse_spec(TCGEN_A_SPEC).fingerprint() == parse_spec(
            TCGEN_A_SPEC
        ).fingerprint()

    def test_different_specs_differ(self):
        assert parse_spec(TCGEN_A_SPEC).fingerprint() != parse_spec(
            TCGEN_B_SPEC
        ).fingerprint()

    def test_fingerprint_is_64_bit(self):
        fp = parse_spec(TCGEN_A_SPEC).fingerprint()
        assert 0 <= fp < 1 << 64
