"""SEQUITUR grammar invariants and serialization tests."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.baselines.sequitur import Grammar, SequiturCompressor
from repro.tio import VPC_FORMAT, pack_records

from conftest import make_vpc_trace


def build(values):
    grammar = Grammar()
    for value in values:
        grammar.push(value)
    return grammar


class TestGrammarInvariants:
    def _check_invariants(self, grammar):
        bodies = grammar.rule_bodies()
        # Rule utility: every rule except the start is used at least twice.
        uses: dict[int, int] = {}
        for body in bodies.values():
            for kind, ref in body:
                if kind == "r":
                    uses[ref] = uses.get(ref, 0) + 1
        for rule in grammar.rules:
            if rule is grammar.start:
                continue
            assert uses.get(rule.id, 0) >= 2, f"rule {rule.id} used once"
        # Digram uniqueness: no digram appears twice anywhere — except
        # overlapping occurrences of XX pairs (the classic "aaa" case).
        occurrences: dict[tuple, list[tuple[int, int]]] = {}
        for rule_id, body in bodies.items():
            for index, pair in enumerate(zip(body, body[1:])):
                occurrences.setdefault(pair, []).append((rule_id, index))
        for pair, places in occurrences.items():
            for i, (rule_a, index_a) in enumerate(places):
                for rule_b, index_b in places[i + 1 :]:
                    overlapping = rule_a == rule_b and abs(index_a - index_b) < 2
                    assert overlapping, (
                        f"digram {pair} duplicated at {(rule_a, index_a)} "
                        f"and {(rule_b, index_b)}"
                    )

    def test_expansion_reproduces_input(self):
        values = [1, 2, 3, 1, 2, 3, 1, 2, 3]
        grammar = build(values)
        assert grammar.expand_start() == values

    def test_repetition_creates_rules(self):
        grammar = build([1, 2] * 20)
        assert len(grammar.rules) > 1

    def test_unique_symbols_create_no_rules(self):
        grammar = build(list(range(30)))
        assert len(grammar.rules) == 1

    def test_invariants_on_periodic_input(self):
        grammar = build([1, 2, 3, 4] * 25)
        self._check_invariants(grammar)
        assert grammar.expand_start() == [1, 2, 3, 4] * 25

    def test_invariants_on_nested_repetition(self):
        block = [1, 2, 1, 2, 3]
        values = block * 10 + [9] + block * 10
        grammar = build(values)
        self._check_invariants(grammar)
        assert grammar.expand_start() == values

    def test_overlapping_digrams_aaa(self):
        # The classic 'aaa' pitfall: overlapping digrams must not pair.
        values = [7] * 50
        grammar = build(values)
        assert grammar.expand_start() == values
        self._check_invariants(grammar)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=0, max_size=120))
    def test_invariants_hold_for_random_inputs(self, values):
        grammar = build(values)
        assert grammar.expand_start() == values
        self._check_invariants(grammar)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 2), min_size=2, max_size=12),
        st.integers(2, 12),
    )
    def test_invariants_hold_for_repeated_blocks(self, block, repeats):
        values = block * repeats
        grammar = build(values)
        assert grammar.expand_start() == values
        self._check_invariants(grammar)


class TestCompressor:
    def test_roundtrip_structured(self, small_trace):
        compressor = SequiturCompressor()
        assert compressor.decompress(compressor.compress(small_trace)) == small_trace

    def test_grammar_segmentation_caps_memory(self):
        # Force tiny segments and confirm losslessness across boundaries.
        compressor = SequiturCompressor(
            max_symbols_per_grammar=100, max_unique_values=50
        )
        raw = make_vpc_trace(n=900)
        assert compressor.decompress(compressor.compress(raw)) == raw

    def test_repetitive_trace_beats_bzip2_on_pc_stream(self):
        # SEQUITUR excels at hierarchical repetition in PC sequences.
        pcs = ([0x100, 0x104, 0x108, 0x10C] * 5 + [0x200, 0x204] * 3) * 40
        data = list(range(len(pcs)))
        raw = pack_records(
            VPC_FORMAT,
            b"TST0",
            [np.array(pcs, np.uint64), np.array(data, np.uint64)],
        )
        compressor = SequiturCompressor()
        assert compressor.decompress(compressor.compress(raw)) == raw

    def test_corrupt_blob_raises(self, small_trace):
        from repro.errors import CompressedFormatError

        blob = SequiturCompressor().compress(small_trace)
        with pytest.raises((CompressedFormatError, OSError, EOFError, ValueError)):
            SequiturCompressor().decompress(blob[: len(blob) // 2])
