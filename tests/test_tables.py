"""Unit tests for prediction tables and update policies."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.predictors.tables import UpdatePolicy, ValueTable

MASK64 = (1 << 64) - 1


class TestGeometry:
    def test_initially_zero(self):
        table = ValueTable(4, 3, MASK64)
        assert table.read(0) == [0, 0, 0]
        assert table.read(3) == [0, 0, 0]

    def test_rejects_zero_lines(self):
        with pytest.raises(ValueError):
            ValueTable(0, 1, MASK64)

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            ValueTable(1, 0, MASK64)

    def test_memory_bytes(self):
        assert ValueTable(1024, 2, MASK64).memory_bytes(8) == 16384


class TestInsert:
    def test_insert_shifts_right(self):
        table = ValueTable(1, 3, MASK64)
        for value in (1, 2, 3):
            table.insert(0, value)
        assert table.read(0) == [3, 2, 1]

    def test_insert_drops_oldest(self):
        table = ValueTable(1, 2, MASK64)
        for value in (1, 2, 3):
            table.insert(0, value)
        assert table.read(0) == [3, 2]

    def test_insert_masks_value(self):
        table = ValueTable(1, 1, 0xFF)
        table.insert(0, 0x1FF)
        assert table.first(0) == 0xFF

    def test_lines_are_independent(self):
        table = ValueTable(2, 2, MASK64)
        table.insert(0, 7)
        assert table.read(1) == [0, 0]

    def test_read_partial(self):
        table = ValueTable(1, 4, MASK64)
        for value in (1, 2, 3, 4):
            table.insert(0, value)
        assert table.read(0, 2) == [4, 3]


class TestPolicies:
    def test_always_inserts_duplicates(self):
        table = ValueTable(1, 2, MASK64)
        table.update(0, 5, UpdatePolicy.ALWAYS)
        table.update(0, 5, UpdatePolicy.ALWAYS)
        assert table.read(0) == [5, 5]

    def test_smart_skips_repeat_of_first(self):
        table = ValueTable(1, 2, MASK64)
        table.update(0, 5, UpdatePolicy.SMART)
        assert not table.update(0, 5, UpdatePolicy.SMART)
        assert table.read(0) == [5, 0]

    def test_smart_first_two_entries_distinct(self):
        """The paper's guarantee: smart updates keep the first two line
        entries distinct (Section 5.3)."""
        table = ValueTable(1, 4, MASK64)
        import random

        rng = random.Random(9)
        for _ in range(500):
            table.update(0, rng.randrange(4), UpdatePolicy.SMART)
            line = table.read(0)
            assert line[0] != line[1] or line == [0, 0, 0, 0]

    def test_smart_reinserts_deeper_duplicates(self):
        table = ValueTable(1, 3, MASK64)
        for value in (1, 2, 3):
            table.update(0, value, UpdatePolicy.SMART)
        # 2 is in the line but not first: smart still inserts it.
        assert table.update(0, 2, UpdatePolicy.SMART)
        assert table.read(0) == [2, 3, 2]

    def test_search_skips_anywhere_in_line(self):
        table = ValueTable(1, 3, MASK64)
        for value in (1, 2, 3):
            table.update(0, value, UpdatePolicy.SEARCH)
        assert not table.update(0, 1, UpdatePolicy.SEARCH)
        assert table.read(0) == [3, 2, 1]

    def test_search_inserts_new_values(self):
        table = ValueTable(1, 2, MASK64)
        table.update(0, 1, UpdatePolicy.SEARCH)
        assert table.update(0, 9, UpdatePolicy.SEARCH)
        assert table.read(0) == [9, 1]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_smart_and_always_agree_on_first_entry(self, values):
        """Both policies keep line[0] equal to the most recent value."""
        smart = ValueTable(1, 3, MASK64)
        always = ValueTable(1, 3, MASK64)
        for value in values:
            smart.update(0, value, UpdatePolicy.SMART)
            always.update(0, value, UpdatePolicy.ALWAYS)
            assert smart.first(0) == always.first(0) == value

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=60))
    def test_depth_prefix_consistency(self, values):
        """Deeper tables evolve identically in their common prefix under
        smart updates (the property table sharing relies on)."""
        shallow = ValueTable(1, 2, MASK64)
        deep = ValueTable(1, 4, MASK64)
        for value in values:
            shallow.update(0, value, UpdatePolicy.SMART)
            deep.update(0, value, UpdatePolicy.SMART)
            assert deep.read(0, 2) == shallow.read(0)
