"""Tests for model resolution: renaming, sizing, sharing, minimization."""

import pytest

from repro.model import OptimizationOptions, build_model
from repro.model.layout import storage_bytes
from repro.model.optimize import TABLE2_ROWS
from repro.spec import parse_spec, tcgen_a, tcgen_b


class TestStorageBytes:
    @pytest.mark.parametrize(
        "bits,expected",
        [(1, 1), (8, 1), (9, 2), (16, 2), (17, 4), (32, 4), (33, 8), (64, 8)],
    )
    def test_smallest_sufficient_width(self, bits, expected):
        assert storage_bytes(bits) == expected

    def test_rejects_over_64(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            storage_bytes(65)


class TestPaperNumbers:
    """The exact figures the paper reports for its two configurations."""

    def test_tcgen_a_has_14_predictions(self):
        assert build_model(tcgen_a()).total_predictions() == 14

    def test_tcgen_b_has_22_predictions(self):
        assert build_model(tcgen_b()).total_predictions() == 22

    def test_tcgen_a_tables_are_20mb(self):
        # "TCgen(A) employs 14 predictors with a total table size of 20MB."
        bytes_total = build_model(tcgen_a()).table_bytes()
        assert abs(bytes_total - 20 * 2**20) < 100 * 1024

    def test_tcgen_b_tables_are_35mb(self):
        # "It uses 22 predictors and requires a total of 35MB of table space."
        bytes_total = build_model(tcgen_b()).table_bytes()
        assert abs(bytes_total - 35 * 2**20) < 200 * 1024


class TestRenaming:
    def test_codes_are_dense_and_ordered(self):
        model = build_model(tcgen_a())
        field2 = model.fields[1]
        codes = [list(p.codes) for p in field2.predictors]
        assert codes == [[0, 1], [2, 3], [4, 5], [6, 7, 8, 9]]
        assert field2.miss_code == 10

    def test_l2_lines_double_per_order(self):
        model = build_model(tcgen_a())
        field1 = model.fields[0]
        fcm3, fcm1 = field1.predictors
        assert fcm3.l2_lines == 131072 * 4
        assert fcm1.l2_lines == 131072


class TestSharing:
    def test_lv_depth_covers_all_users(self):
        model = build_model(tcgen_a())
        # Field 2 has LV[4] and DFCMs: shared last-value depth is 4.
        assert model.fields[1].lv_depth == 4

    def test_dfcm_only_field_gets_depth_one_lv(self):
        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {: LV[1]};\n"
            "64-Bit Field 2 = {L2 = 512: DFCM2[2]};\n"
            "PC = Field 1;\n"
        )
        assert build_model(spec).fields[1].lv_depth == 1

    def test_fcm_only_field_has_no_lv_table(self):
        """Dead-code fact: no last-value table if only FCMs are present."""
        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {L2 = 512: FCM2[2], FCM1[2]};\n"
            "PC = Field 1;\n"
        )
        field = build_model(spec).fields[0]
        assert field.lv_depth == 0
        assert not field.needs_last_value
        assert not field.needs_stride

    def test_stride_needed_only_with_dfcm(self):
        model = build_model(tcgen_a())
        assert not model.fields[0].needs_stride  # FCMs only
        assert model.fields[1].needs_stride  # has DFCMs

    def test_unshared_tables_cost_more_memory(self):
        shared = build_model(tcgen_a(), OptimizationOptions.full())
        unshared = build_model(
            tcgen_a(), OptimizationOptions().without("shared_tables")
        )
        assert unshared.table_bytes() > shared.table_bytes()


class TestTypeMinimization:
    def test_minimized_elements_match_field_width(self):
        model = build_model(tcgen_a())
        assert model.fields[0].elem_bytes == 4
        assert model.fields[1].elem_bytes == 8
        assert model.fields[0].value_bytes == 4
        assert model.fields[0].code_bytes == 1

    def test_unminimized_elements_are_native(self):
        model = build_model(
            tcgen_a(), OptimizationOptions().without("type_minimization")
        )
        assert model.fields[0].elem_bytes == 8
        assert model.fields[0].value_bytes == 8
        assert model.fields[0].code_bytes == 4

    def test_unminimized_tables_cost_more(self):
        full = build_model(tcgen_a())
        fat = build_model(
            tcgen_a(), OptimizationOptions().without("type_minimization")
        )
        assert fat.table_bytes() > full.table_bytes()


class TestProcessOrder:
    def test_pc_field_processed_first(self):
        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "64-Bit Field 1 = {L1 = 64, L2 = 512: LV[2]};\n"
            "32-Bit Field 2 = {L2 = 512: FCM1[1]};\n"
            "PC = Field 2;\n"
        )
        model = build_model(spec)
        assert [f.index for f in model.process_order] == [2, 1]
        assert [f.index for f in model.fields] == [1, 2]

    def test_byte_offsets_follow_record_order(self):
        model = build_model(tcgen_a())
        assert model.fields[0].byte_offset == 0
        assert model.fields[1].byte_offset == 4

    def test_stream_layout(self):
        model = build_model(tcgen_a())
        assert model.stream_count == 5
        assert model.stream_names() == [
            "header",
            "field1_codes",
            "field1_values",
            "field2_codes",
            "field2_values",
        ]

    def test_headerless_spec_has_no_header_stream(self):
        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {: LV[1]};\nPC = Field 1;\n"
        )
        model = build_model(spec)
        assert model.stream_count == 2
        assert "header" not in model.stream_names()


class TestOptions:
    def test_table2_rows_cover_all_four_plus_combined(self):
        names = [name for name, _ in TABLE2_ROWS]
        assert names == [
            "no smart update",
            "no type minimization",
            "no shared tables",
            "no fast hash function",
            "all of the above",
            "full optimizations",
        ]

    def test_without_unknown_flag_raises(self):
        with pytest.raises(ValueError):
            OptimizationOptions().without("bogus")

    def test_vpc3_configuration(self):
        options = OptimizationOptions.vpc3()
        assert not options.smart_update
        assert not options.adaptive_shift
        assert options.fast_hash and options.shared_tables

    def test_update_policy_property(self):
        from repro.predictors.tables import UpdatePolicy

        assert OptimizationOptions.full().update_policy is UpdatePolicy.SMART
        assert OptimizationOptions.vpc3().update_policy is UpdatePolicy.ALWAYS
