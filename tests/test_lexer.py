"""Unit tests for the specification lexer."""

import pytest

from repro.errors import LexError
from repro.spec.lexer import tokenize
from repro.spec.tokens import TokenKind


def kinds_and_texts(text):
    return [(t.kind, t.text) for t in tokenize(text) if t.kind is not TokenKind.EOF]


class TestTokens:
    def test_keywords(self):
        tokens = kinds_and_texts("TCgen Trace Specification")
        assert tokens == [
            (TokenKind.KEYWORD, "TCgen"),
            (TokenKind.KEYWORD, "Trace"),
            (TokenKind.KEYWORD, "Specification"),
        ]

    def test_numbers(self):
        assert kinds_and_texts("32 65536") == [
            (TokenKind.NUMBER, "32"),
            (TokenKind.NUMBER, "65536"),
        ]

    def test_punctuation(self):
        text = "; - = { } : , [ ]"
        tokens = kinds_and_texts(text)
        assert all(kind is TokenKind.PUNCT for kind, _ in tokens)
        assert [t for _, t in tokens] == text.split()

    def test_predictor_name_splits_keyword_and_order(self):
        assert kinds_and_texts("DFCM3") == [
            (TokenKind.KEYWORD, "DFCM"),
            (TokenKind.NUMBER, "3"),
        ]

    def test_fcm_with_brackets(self):
        assert kinds_and_texts("FCM1[2]") == [
            (TokenKind.KEYWORD, "FCM"),
            (TokenKind.NUMBER, "1"),
            (TokenKind.PUNCT, "["),
            (TokenKind.NUMBER, "2"),
            (TokenKind.PUNCT, "]"),
        ]

    def test_l1_l2_are_single_keywords(self):
        assert kinds_and_texts("L1 L2") == [
            (TokenKind.KEYWORD, "L1"),
            (TokenKind.KEYWORD, "L2"),
        ]

    def test_lv_keyword(self):
        assert kinds_and_texts("LV[4]")[0] == (TokenKind.KEYWORD, "LV")

    def test_eof_token_terminates(self):
        tokens = tokenize("PC")
        assert tokens[-1].kind is TokenKind.EOF


class TestCommentsAndWhitespace:
    def test_comments_skipped(self):
        assert kinds_and_texts("# a comment\nPC # trailing\n") == [
            (TokenKind.KEYWORD, "PC")
        ]

    def test_comment_at_end_without_newline(self):
        assert kinds_and_texts("PC # no newline") == [(TokenKind.KEYWORD, "PC")]

    def test_whitespace_variants(self):
        assert kinds_and_texts("\tPC\r\n  Field") == [
            (TokenKind.KEYWORD, "PC"),
            (TokenKind.KEYWORD, "Field"),
        ]

    def test_empty_input(self):
        assert kinds_and_texts("") == []


class TestErrors:
    def test_unknown_word(self):
        with pytest.raises(LexError, match="unknown word 'Foo'"):
            tokenize("Foo")

    def test_case_sensitivity(self):
        with pytest.raises(LexError, match="unknown word"):
            tokenize("tcgen")

    def test_unknown_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("@")

    def test_error_carries_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("PC\n  Bogus")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3

    def test_l_followed_by_other_digit_is_error(self):
        with pytest.raises(LexError):
            tokenize("L3")
