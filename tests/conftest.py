"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import tempfile

import numpy as np
import pytest

# The tier-1 suite exercises hundreds of specs; compiling a native kernel
# for each would dominate the run and make it depend on a C compiler.
# Default the in-process native fast path off so backend="auto" resolves
# to Python everywhere; the dedicated native tests opt back in with
# TCGEN_NATIVE=1 and a temporary TCGEN_CACHE_DIR.
os.environ.setdefault("TCGEN_NATIVE", "0")

# Keep the suite hermetic: server instances publish engine-cache records
# under TCGEN_CACHE_DIR, which must not be the developer's real
# ~/.cache/tcgen.  Tests that need a private cache still override this.
os.environ.setdefault(
    "TCGEN_CACHE_DIR", tempfile.mkdtemp(prefix="tcgen-test-cache-")
)

from repro.spec import parse_spec, tcgen_a, tcgen_b
from repro.tio import VPC_FORMAT, pack_records


def make_vpc_trace(
    n: int = 2000,
    seed: int = 7,
    header: bytes = b"VPC3",
    pc_period: int = 53,
    jump_every: int = 97,
) -> bytes:
    """A small deterministic trace with loops, strides, and jumps."""
    rng = np.random.default_rng(seed)
    pcs = np.zeros(n, dtype=np.uint64)
    data = np.zeros(n, dtype=np.uint64)
    addr = 0x4000_0000
    for i in range(n):
        pcs[i] = 0x1000 + (i % pc_period) * 4
        if jump_every and i % jump_every == 0:
            addr = int(rng.integers(0, 1 << 40))
        addr += 8
        data[i] = addr ^ (i % 11)
    return pack_records(VPC_FORMAT, header, [pcs, data])


def make_random_trace(n: int = 500, seed: int = 3) -> bytes:
    """A fully random (incompressible) trace."""
    rng = np.random.default_rng(seed)
    pcs = rng.integers(0, 1 << 32, size=n, dtype=np.uint64)
    data = rng.integers(0, 1 << 63, size=n, dtype=np.int64).view(np.uint64)
    return pack_records(VPC_FORMAT, b"RND0", [pcs, data])


@pytest.fixture
def small_trace() -> bytes:
    return make_vpc_trace(n=1500)


@pytest.fixture
def random_trace() -> bytes:
    return make_random_trace(n=400)


@pytest.fixture
def empty_trace() -> bytes:
    return pack_records(
        VPC_FORMAT, b"VPC3", [np.zeros(0, np.uint64), np.zeros(0, np.uint64)]
    )


@pytest.fixture
def spec_a():
    return tcgen_a()


@pytest.fixture
def spec_b():
    return tcgen_b()


#: A grab-bag of valid specifications exercising different shapes.
SPEC_VARIANTS = {
    "tcgen_a": tcgen_a,
    "tcgen_b": tcgen_b,
    "single_field": lambda: parse_spec(
        "TCgen Trace Specification;\n"
        "32-Bit Field 1 = {L2 = 1024: FCM2[2], LV[1]};\n"
        "PC = Field 1;\n"
    ),
    "no_header": lambda: parse_spec(
        "TCgen Trace Specification;\n"
        "32-Bit Field 1 = {: LV[2]};\n"
        "64-Bit Field 2 = {L1 = 256, L2 = 512: DFCM2[2], LV[1]};\n"
        "PC = Field 1;\n"
    ),
    "three_fields": lambda: parse_spec(
        "TCgen Trace Specification;\n"
        "16-Bit Header;\n"
        "32-Bit Field 1 = {L2 = 2048: FCM1[1]};\n"
        "8-Bit Field 2 = {L1 = 64, L2 = 256: FCM2[2], LV[2]};\n"
        "64-Bit Field 3 = {L1 = 128, L2 = 1024: DFCM3[2], DFCM1[1], LV[4]};\n"
        "PC = Field 1;\n"
    ),
    "pc_not_first": lambda: parse_spec(
        "TCgen Trace Specification;\n"
        "64-Bit Field 1 = {L1 = 128, L2 = 512: DFCM1[2], LV[2]};\n"
        "32-Bit Field 2 = {L2 = 1024: FCM2[2]};\n"
        "PC = Field 2;\n"
    ),
    "lv_only": lambda: parse_spec(
        "TCgen Trace Specification;\n"
        "32-Bit Header;\n"
        "32-Bit Field 1 = {: LV[4]};\n"
        "PC = Field 1;\n"
    ),
    "fcm_only": lambda: parse_spec(
        "TCgen Trace Specification;\n"
        "32-Bit Field 1 = {L2 = 512: FCM3[2], FCM2[2], FCM1[2]};\n"
        "PC = Field 1;\n"
    ),
}


def spec_trace_for(spec) -> bytes:
    """A small deterministic trace matching an arbitrary specification."""
    rng = np.random.default_rng(11)
    n = 600
    header = bytes(range(spec.header_bytes % 256))[: spec.header_bytes]
    if len(header) < spec.header_bytes:
        header = (header * (spec.header_bytes // max(len(header), 1) + 1))[
            : spec.header_bytes
        ]
    columns = []
    for field in spec.fields:
        mask = (1 << field.bits) - 1
        if field.index == spec.pc_field:
            col = ((0x400 + (np.arange(n) % 31) * 4) & min(mask, (1 << 62) - 1)).astype(
                np.uint64
            )
        else:
            base = np.cumsum(rng.integers(0, 16, size=n)).astype(np.uint64)
            jumps = rng.integers(0, 1 << min(field.bits - 1, 40), size=n).astype(
                np.uint64
            )
            col = np.where(np.arange(n) % 50 == 0, jumps, base + np.uint64(0x1000))
            col &= np.uint64(mask)
        columns.append(col)
    from repro.tio import TraceFormat, pack_records as pack

    fmt = TraceFormat(
        header_bits=spec.header_bits,
        field_bits=tuple(f.bits for f in spec.fields),
        pc_field=spec.pc_field,
    )
    return pack(fmt, header, columns)
