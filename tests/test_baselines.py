"""Roundtrip and behaviour tests for the six comparison compressors."""

import numpy as np
import pytest

from repro.baselines import (
    Bzip2Compressor,
    MacheCompressor,
    PdatsCompressor,
    SbcCompressor,
    SequiturCompressor,
    TCgenCompressor,
    Vpc3Compressor,
    all_baselines,
    all_compressors,
)
from repro.tio import VPC_FORMAT, pack_records

ALL = [
    Bzip2Compressor,
    MacheCompressor,
    PdatsCompressor,
    SequiturCompressor,
    SbcCompressor,
    Vpc3Compressor,
    TCgenCompressor,
]


def trace_from(pcs, data, header=b"TST0"):
    return pack_records(
        VPC_FORMAT,
        header,
        [np.array(pcs, dtype=np.uint64), np.array(data, dtype=np.uint64)],
    )


class TestRoundtripAll:
    @pytest.mark.parametrize("cls", ALL)
    def test_structured_trace(self, cls, small_trace):
        compressor = cls()
        assert compressor.decompress(compressor.compress(small_trace)) == small_trace

    @pytest.mark.parametrize("cls", ALL)
    def test_random_trace(self, cls, random_trace):
        compressor = cls()
        assert (
            compressor.decompress(compressor.compress(random_trace)) == random_trace
        )

    @pytest.mark.parametrize("cls", ALL)
    def test_empty_trace(self, cls, empty_trace):
        compressor = cls()
        assert compressor.decompress(compressor.compress(empty_trace)) == empty_trace

    @pytest.mark.parametrize("cls", ALL)
    def test_single_record(self, cls):
        raw = trace_from([0x1000], [0xDEADBEEF])
        compressor = cls()
        assert compressor.decompress(compressor.compress(raw)) == raw

    @pytest.mark.parametrize("cls", ALL)
    def test_extreme_values(self, cls):
        raw = trace_from(
            [0, (1 << 32) - 1, 0x80000000],
            [0, (1 << 64) - 1, 1 << 63],
        )
        compressor = cls()
        assert compressor.decompress(compressor.compress(raw)) == raw

    @pytest.mark.parametrize("cls", ALL)
    def test_header_preserved(self, cls):
        raw = trace_from([4, 8], [1, 2], header=b"\xff\x00\xaa\x55")
        compressor = cls()
        assert compressor.decompress(compressor.compress(raw))[:4] == b"\xff\x00\xaa\x55"


class TestRegistry:
    def test_all_baselines_order_and_names(self):
        names = [c.name for c in all_baselines()]
        assert names == ["BZIP2", "MACHE", "PDATS II", "SEQUITUR", "SBC", "VPC3"]

    def test_all_compressors_ends_with_tcgen(self):
        assert [c.name for c in all_compressors()][-1] == "TCgen"


class TestMache:
    def test_small_deltas_are_compact(self):
        # 1000 perfectly strided records: ~2 bytes each before bzip2.
        pcs = [0x1000 + (i % 4) * 4 for i in range(1000)]
        data = [0x5000 + i * 8 for i in range(1000)]
        raw = trace_from(pcs, data)
        import bz2

        from repro.baselines.mache import _TAG
        encoded = bz2.decompress(MacheCompressor().compress(raw)[len(_TAG):])
        assert len(encoded) < 4 + 1000 * 3

    def test_large_jumps_emit_full_values(self):
        pcs = [0x1000, 0x90000000]
        data = [0, 1 << 60]
        raw = trace_from(pcs, data)
        compressor = MacheCompressor()
        assert compressor.decompress(compressor.compress(raw)) == raw

    def test_delta_at_escape_boundary(self):
        # Deltas of exactly +127 must use the escape (0xFF is reserved).
        data = [0, 127, 254, 10000]
        raw = trace_from([4] * 4, data)
        compressor = MacheCompressor()
        assert compressor.decompress(compressor.compress(raw)) == raw


class TestPdats:
    def test_strided_run_collapses(self):
        pcs = [0x1000 + i * 4 for i in range(500)]
        data = [0x5000 + i * 16 for i in range(500)]
        raw = trace_from(pcs, data)
        import bz2

        from repro.baselines.pdats import _TAG
        encoded = bz2.decompress(PdatsCompressor().compress(raw)[len(_TAG):])
        # One header byte + offsets + repeat count for the whole run.
        assert len(encoded) < 50

    @pytest.mark.parametrize("offset", [16, -16, 32, -32, 64, -64])
    def test_special_offsets(self, offset):
        data = [0x100000]
        for _ in range(20):
            data.append((data[-1] + offset) & ((1 << 64) - 1))
        raw = trace_from([4] * len(data), data)
        compressor = PdatsCompressor()
        assert compressor.decompress(compressor.compress(raw)) == raw

    def test_unaligned_pc_uses_absolute_encoding(self):
        raw = trace_from([0x1001, 0x1002, 0x2003], [1, 2, 3])
        compressor = PdatsCompressor()
        assert compressor.decompress(compressor.compress(raw)) == raw

    @pytest.mark.parametrize("magnitude", [100, 1 << 14, 1 << 30, 1 << 45, 1 << 62])
    def test_every_offset_size(self, magnitude):
        data = [0, magnitude, 0, magnitude]
        raw = trace_from([4] * 4, data)
        compressor = PdatsCompressor()
        assert compressor.decompress(compressor.compress(raw)) == raw

    def test_long_runs_use_wide_repeat_counts(self):
        n = 70000  # needs a 4-byte repeat count
        pcs = [0x1000 + i * 4 for i in range(n)]
        data = [0x5000 + i * 8 for i in range(n)]
        raw = trace_from(pcs, data)
        compressor = PdatsCompressor()
        assert compressor.decompress(compressor.compress(raw)) == raw


class TestSbc:
    def test_stream_splitting(self):
        from repro.baselines.sbc import _split_streams

        # Ascending short-gap PCs form one stream; the jump back splits.
        pcs = [0x1000, 0x1004, 0x1008, 0x1000, 0x1004, 0x1008]
        assert _split_streams(pcs) == [(0, 3), (3, 3)]

    def test_gap_over_threshold_splits(self):
        from repro.baselines.sbc import _split_streams

        pcs = [0x1000, 0x1010, 0x1030]  # second gap is 0x20 > 16
        assert _split_streams(pcs) == [(0, 2), (2, 1)]

    def test_descending_pcs_split(self):
        from repro.baselines.sbc import _split_streams

        assert _split_streams([0x1008, 0x1004]) == [(0, 1), (1, 1)]

    def test_repeated_streams_share_table_entry(self):
        pcs = [0x1000, 0x1004, 0x1008] * 100
        data = [0x5000 + i * 8 for i in range(300)]
        raw = trace_from(pcs, data)
        import bz2

        from repro.baselines.sbc import _TAG
        encoded = bz2.decompress(SbcCompressor().compress(raw)[len(_TAG):])
        # The PC signature is stored once, not 100 times.
        assert len(encoded) < 3 * 4 + 300 * 2 + 100

    def test_stride_prediction_within_streams(self):
        pcs = [0x1000, 0x1004] * 200
        data = []
        a, b = 0x10000, 0x90000
        for _ in range(200):
            data += [a, b]
            a += 16
            b += 8
        raw = trace_from(pcs, data)
        compressor = SbcCompressor()
        blob = compressor.compress(raw)
        assert compressor.decompress(blob) == raw
        assert len(blob) < len(raw) // 20


class TestVpc3:
    def test_tcgen_compresses_at_least_as_well(self, small_trace):
        # Paper Section 7.1: TCgen outperforms VPC3 via the update policy.
        vpc3 = Vpc3Compressor().compress(small_trace)
        tcgen = TCgenCompressor().compress(small_trace)
        assert len(tcgen) <= len(vpc3) * 1.02

    def test_vpc3_is_not_tcgen(self, small_trace):
        assert Vpc3Compressor().compress(small_trace) != TCgenCompressor().compress(
            small_trace
        )


class TestTCgenWrapper:
    def test_custom_spec(self, small_trace):
        from repro.spec import tcgen_b

        compressor = TCgenCompressor(spec=tcgen_b(), name="TCgen(B)")
        assert compressor.name == "TCgen(B)"
        assert compressor.decompress(compressor.compress(small_trace)) == small_trace

    def test_usage_report_available(self, small_trace):
        compressor = TCgenCompressor()
        compressor.compress(small_trace)
        assert "miss" in compressor.usage_report()
