"""Tests for the interpreted reference engine."""

import pytest

from repro.errors import CompressedFormatError
from repro.model import OptimizationOptions
from repro.runtime import TraceEngine
from repro.spec import tcgen_a, tcgen_b
from repro.tio.container import StreamContainer

from conftest import SPEC_VARIANTS, make_vpc_trace, spec_trace_for


class TestRoundtrip:
    @pytest.mark.parametrize("name", sorted(SPEC_VARIANTS))
    def test_every_spec_shape(self, name):
        spec = SPEC_VARIANTS[name]()
        raw = spec_trace_for(spec)
        engine = TraceEngine(spec)
        assert engine.decompress(engine.compress(raw)) == raw

    @pytest.mark.parametrize(
        "flag", ["smart_update", "type_minimization", "shared_tables", "fast_hash",
                 "adaptive_shift"]
    )
    def test_every_single_ablation(self, flag, small_trace):
        engine = TraceEngine(tcgen_a(), OptimizationOptions().without(flag))
        assert engine.decompress(engine.compress(small_trace)) == small_trace

    def test_all_ablations_together(self, small_trace):
        engine = TraceEngine(tcgen_a(), OptimizationOptions.none())
        assert engine.decompress(engine.compress(small_trace)) == small_trace

    def test_random_trace(self, random_trace):
        engine = TraceEngine(tcgen_a())
        assert engine.decompress(engine.compress(random_trace)) == random_trace

    def test_empty_trace(self, empty_trace):
        engine = TraceEngine(tcgen_a())
        blob = engine.compress(empty_trace)
        assert engine.decompress(blob) == empty_trace

    @pytest.mark.parametrize("codec", ["bzip2", "zlib", "lzma", "identity"])
    def test_every_codec(self, codec, small_trace):
        engine = TraceEngine(tcgen_a(), codec=codec)
        assert engine.decompress(engine.compress(small_trace)) == small_trace

    def test_engine_is_stateless_between_calls(self, small_trace):
        engine = TraceEngine(tcgen_a())
        first = engine.compress(small_trace)
        second = engine.compress(small_trace)
        assert first == second

    def test_search_policy_override_roundtrips(self, small_trace):
        """VPC2's search policy is only reachable via the override."""
        from repro.predictors.tables import UpdatePolicy

        engine = TraceEngine(tcgen_a(), update_policy=UpdatePolicy.SEARCH)
        blob = engine.compress(small_trace)
        assert engine.decompress(blob) == small_trace
        # It genuinely changes behaviour relative to the default.
        assert blob != TraceEngine(tcgen_a()).compress(small_trace)


class TestCompressionQuality:
    def test_strided_trace_compresses_well(self):
        raw = make_vpc_trace(n=4000, jump_every=0)
        engine = TraceEngine(tcgen_a())
        assert len(raw) / len(engine.compress(raw)) > 20

    def test_smart_update_beats_always_update(self):
        # The paper: TCgen outperforms VPC3 because of the update policy.
        raw = make_vpc_trace(n=6000, jump_every=40)
        smart = TraceEngine(tcgen_a(), OptimizationOptions.full())
        always = TraceEngine(tcgen_a(), OptimizationOptions.vpc3())
        assert len(smart.compress(raw)) <= len(always.compress(raw))

    def test_sharing_does_not_change_output_size(self, small_trace):
        """Table 2: disabling sharing leaves the compression rate intact."""
        shared = TraceEngine(tcgen_a(), OptimizationOptions.full())
        unshared = TraceEngine(
            tcgen_a(), OptimizationOptions().without("shared_tables")
        )
        assert len(shared.compress(small_trace)) == len(
            unshared.compress(small_trace)
        )

    def test_fast_hash_does_not_change_output(self, small_trace):
        """Table 2: the slow hash is equivalent, only slower."""
        fast = TraceEngine(tcgen_a(), OptimizationOptions.full())
        slow = TraceEngine(tcgen_a(), OptimizationOptions().without("fast_hash"))
        assert fast.compress(small_trace) == slow.compress(small_trace)


class TestErrors:
    def test_wrong_fingerprint_rejected(self, small_trace):
        blob = TraceEngine(tcgen_a()).compress(small_trace)
        with pytest.raises(CompressedFormatError, match="fingerprint"):
            TraceEngine(tcgen_b()).decompress(blob)

    def test_garbage_rejected(self):
        with pytest.raises(CompressedFormatError):
            TraceEngine(tcgen_a()).decompress(b"not a container at all")

    def test_truncated_blob_rejected(self, small_trace):
        blob = TraceEngine(tcgen_a()).compress(small_trace)
        with pytest.raises(CompressedFormatError):
            TraceEngine(tcgen_a()).decompress(blob[: len(blob) // 2])

    def test_corrupted_payload_rejected(self, small_trace):
        engine = TraceEngine(tcgen_a())
        blob = bytearray(engine.compress(small_trace))
        blob[-1] ^= 0xFF
        with pytest.raises(CompressedFormatError):
            engine.decompress(bytes(blob))

    def test_misframed_trace_rejected(self):
        engine = TraceEngine(tcgen_a())
        from repro.errors import TraceFormatError

        with pytest.raises(TraceFormatError):
            engine.compress(b"\x00" * 17)

    def test_stream_count_mismatch_rejected(self, small_trace):
        engine = TraceEngine(tcgen_a())
        container = StreamContainer.decode(engine.compress(small_trace))
        container.streams.pop()
        with pytest.raises(CompressedFormatError, match="stream"):
            engine.decompress(container.encode())


class TestUsageFeedback:
    def test_counts_sum_to_record_count(self, small_trace):
        engine = TraceEngine(tcgen_a())
        engine.compress(small_trace)
        records = (len(small_trace) - 4) // 12
        for usage in engine.last_usage.fields:
            assert usage.records == records

    def test_report_renders(self, small_trace):
        engine = TraceEngine(tcgen_a())
        engine.compress(small_trace)
        report = engine.usage_report()
        assert "field 1" in report and "field 2" in report
        assert "DFCM3[2]" in report

    def test_report_before_compression(self):
        assert "no compression" in TraceEngine(tcgen_a()).usage_report()

    def test_predictable_trace_has_high_hit_ratio(self):
        raw = make_vpc_trace(n=4000, jump_every=0)
        engine = TraceEngine(tcgen_a())
        engine.compress(raw)
        for usage in engine.last_usage.fields:
            assert usage.hit_ratio > 0.8
