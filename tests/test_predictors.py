"""Behavioural tests for the three standalone predictor families."""


from repro.predictors import (
    DFCMPredictor,
    FCMPredictor,
    LastValuePredictor,
    UpdatePolicy,
)


def run(predictor, values, pc=0):
    """Feed values; return how many were predicted (any slot correct)."""
    hits = 0
    for value in values:
        if value in predictor.predict(pc):
            hits += 1
        predictor.update(value, pc)
    return hits


class TestLastValue:
    def test_predicts_repeating_value(self):
        lv = LastValuePredictor(depth=1)
        values = [7] * 20
        assert run(lv, values) == 19  # everything after warmup

    def test_predicts_alternating_values_with_depth_two(self):
        lv = LastValuePredictor(depth=2)
        values = [1, 2] * 20
        assert run(lv, values) >= 37

    def test_depth_one_misses_alternation(self):
        lv = LastValuePredictor(depth=1)
        assert run(lv, [1, 2] * 20) == 0

    def test_predicts_short_repeating_sequence(self):
        # LV[n] predicts repeating sequences of up to n arbitrary values.
        lv = LastValuePredictor(depth=4)
        values = [3, 1, 4, 1] * 15
        assert run(lv, values) >= len(values) - 5

    def test_per_pc_lines(self):
        lv = LastValuePredictor(depth=1, lines=4)
        lv.update(100, pc=0)
        lv.update(200, pc=1)
        assert lv.predict(pc=0) == [100]
        assert lv.predict(pc=1) == [200]
        assert lv.predict(pc=4) == [100]  # modulo line selection

    def test_width_masking(self):
        lv = LastValuePredictor(depth=1, width_bits=8)
        lv.update(0x1FF)
        assert lv.predict() == [0xFF]


class TestFCM:
    def test_memorizes_repeating_sequence(self):
        fcm = FCMPredictor(order=2, depth=1, l2_size=256)
        values = [10, 20, 30, 40] * 20
        # After the first full period the context always repeats.
        assert run(fcm, values) >= len(values) - 6

    def test_higher_order_disambiguates(self):
        # The value after (1, 2) differs from the value after (5, 2):
        # order 1 (context "2") cannot learn both, order 2 can.  (The
        # values avoid shift-xor digram collisions like (7,3) vs (2,9).)
        values = [1, 2, 7, 5, 2, 9] * 25
        low = FCMPredictor(order=1, depth=1, l2_size=256)
        high = FCMPredictor(order=2, depth=1, l2_size=256)
        assert run(high, list(values)) > run(low, list(values))

    def test_cannot_predict_unseen_values(self):
        fcm = FCMPredictor(order=1, depth=1, l2_size=256)
        assert run(fcm, list(range(1, 50))) == 0

    def test_fast_and_slow_hash_agree(self):
        values = [i * 37 % 11 for i in range(200)]
        fast = FCMPredictor(order=3, depth=2, l2_size=128, fast_hash=True)
        slow = FCMPredictor(order=3, depth=2, l2_size=128, fast_hash=False)
        for value in values:
            assert fast.predict() == slow.predict()
            fast.update(value)
            slow.update(value)

    def test_l2_sizing_follows_paper(self):
        fcm = FCMPredictor(order=3, depth=2, l2_size=131072, width_bits=32)
        assert fcm.l2.lines == 131072 * 4


class TestDFCM:
    def test_predicts_pure_stride(self):
        dfcm = DFCMPredictor(order=1, depth=1, l2_size=256)
        values = [1000 + 16 * i for i in range(50)]
        # After two values the stride is learned; everything else hits.
        assert run(dfcm, values) >= len(values) - 3

    def test_predicts_unseen_values(self):
        """DFCM's signature ability: predicting values never seen before."""
        dfcm = DFCMPredictor(order=1, depth=1, l2_size=256)
        dfcm.update(100)
        dfcm.update(108)  # stride 8 stored under the pre-108 context
        dfcm.update(116)  # stride 8 stored under context "stride 8"
        assert 124 in dfcm.predict()  # 124 has never been seen

    def test_repeating_stride_pattern(self):
        dfcm = DFCMPredictor(order=2, depth=1, l2_size=256)
        values = [0]
        for delta in [4, 4, 64] * 30:
            values.append((values[-1] + delta) & ((1 << 64) - 1))
        assert run(dfcm, values) >= len(values) - 10

    def test_wraparound_strides(self):
        dfcm = DFCMPredictor(order=1, depth=1, l2_size=64, width_bits=8)
        values = [250, 252, 254, 0, 2, 4, 6]  # stride 2 mod 256
        assert run(dfcm, values) >= 4

    def test_beats_fcm_on_fresh_strided_data(self):
        values = [i * 24 for i in range(100)]
        dfcm = DFCMPredictor(order=1, depth=1, l2_size=256)
        fcm = FCMPredictor(order=1, depth=1, l2_size=256)
        assert run(dfcm, list(values)) > run(fcm, list(values))

    def test_fast_and_slow_hash_agree(self):
        values = [i * 13 % 97 for i in range(150)]
        fast = DFCMPredictor(order=2, depth=2, l2_size=128, fast_hash=True)
        slow = DFCMPredictor(order=2, depth=2, l2_size=128, fast_hash=False)
        for value in values:
            assert fast.predict() == slow.predict()
            fast.update(value)
            slow.update(value)


class TestPolicies:
    def test_always_update_floods_lines_with_duplicates(self):
        smart = LastValuePredictor(depth=2, policy=UpdatePolicy.SMART)
        always = LastValuePredictor(depth=2, policy=UpdatePolicy.ALWAYS)
        for value in [5, 5, 5, 9]:
            smart.update(value)
            always.update(value)
        # Smart retained the older distinct value; always flushed it.
        assert smart.predict() == [9, 5]
        assert always.predict() == [9, 5] or always.predict() == [9, 5]

    def test_smart_improves_alternation_with_noise(self):
        # a a b a a b ... : smart keeps {a, b} in a depth-2 line.
        values = [1, 1, 2] * 30
        smart = LastValuePredictor(depth=2, policy=UpdatePolicy.SMART)
        always = LastValuePredictor(depth=2, policy=UpdatePolicy.ALWAYS)
        assert run(smart, list(values)) > run(always, list(values))
