"""Unit tests for the compressed-stream container."""

import pytest

from repro.errors import CompressedFormatError
from repro.tio.container import FORMAT_VERSION, MAGIC, StreamContainer, StreamPayload


def _container() -> StreamContainer:
    return StreamContainer(
        fingerprint=0x1122334455667788,
        record_count=42,
        streams=[
            StreamPayload(codec_id=1, raw_length=10, data=b"abc"),
            StreamPayload(codec_id=0, raw_length=0, data=b""),
            StreamPayload(codec_id=2, raw_length=5, data=b"\x00" * 7),
        ],
    )


class TestRoundtrip:
    def test_encode_decode(self):
        original = _container()
        decoded = StreamContainer.decode(original.encode())
        assert decoded.fingerprint == original.fingerprint
        assert decoded.record_count == original.record_count
        assert len(decoded.streams) == 3
        for a, b in zip(decoded.streams, original.streams):
            assert (a.codec_id, a.raw_length, a.data) == (
                b.codec_id,
                b.raw_length,
                b.data,
            )

    def test_empty_container(self):
        empty = StreamContainer(fingerprint=0, record_count=0, streams=[])
        decoded = StreamContainer.decode(empty.encode())
        assert decoded.streams == []

    def test_starts_with_magic_and_version(self):
        blob = _container().encode()
        assert blob[:4] == MAGIC
        assert blob[4] == FORMAT_VERSION

    def test_fingerprint_check_accepts_match(self):
        blob = _container().encode()
        StreamContainer.decode(blob, expected_fingerprint=0x1122334455667788)

    def test_fingerprint_check_rejects_mismatch(self):
        blob = _container().encode()
        with pytest.raises(CompressedFormatError, match="fingerprint"):
            StreamContainer.decode(blob, expected_fingerprint=1)


class TestCorruption:
    def test_bad_magic(self):
        blob = bytearray(_container().encode())
        blob[0] ^= 0xFF
        with pytest.raises(CompressedFormatError, match="magic"):
            StreamContainer.decode(bytes(blob))

    def test_bad_version(self):
        blob = bytearray(_container().encode())
        blob[4] = 99
        with pytest.raises(CompressedFormatError, match="version"):
            StreamContainer.decode(bytes(blob))

    def test_truncated_payloads(self):
        blob = _container().encode()
        with pytest.raises(CompressedFormatError, match="truncated"):
            StreamContainer.decode(blob[:-3])

    def test_trailing_garbage(self):
        blob = _container().encode() + b"xx"
        with pytest.raises(CompressedFormatError, match="trailing"):
            StreamContainer.decode(blob)

    def test_empty_input(self):
        with pytest.raises(CompressedFormatError):
            StreamContainer.decode(b"")
