"""Unit tests for the compressed-stream container."""

import pytest

from repro.errors import CompressedFormatError
from repro.tio.container import FORMAT_VERSION, MAGIC, StreamContainer, StreamPayload


def _container() -> StreamContainer:
    return StreamContainer(
        fingerprint=0x1122334455667788,
        record_count=42,
        streams=[
            StreamPayload(codec_id=1, raw_length=10, data=b"abc"),
            StreamPayload(codec_id=0, raw_length=0, data=b""),
            StreamPayload(codec_id=2, raw_length=5, data=b"\x00" * 7),
        ],
    )


class TestRoundtrip:
    def test_encode_decode(self):
        original = _container()
        decoded = StreamContainer.decode(original.encode())
        assert decoded.fingerprint == original.fingerprint
        assert decoded.record_count == original.record_count
        assert len(decoded.streams) == 3
        for a, b in zip(decoded.streams, original.streams):
            assert (a.codec_id, a.raw_length, a.data) == (
                b.codec_id,
                b.raw_length,
                b.data,
            )

    def test_empty_container(self):
        empty = StreamContainer(fingerprint=0, record_count=0, streams=[])
        decoded = StreamContainer.decode(empty.encode())
        assert decoded.streams == []

    def test_starts_with_magic_and_version(self):
        blob = _container().encode()
        assert blob[:4] == MAGIC
        assert blob[4] == FORMAT_VERSION

    def test_fingerprint_check_accepts_match(self):
        blob = _container().encode()
        StreamContainer.decode(blob, expected_fingerprint=0x1122334455667788)

    def test_fingerprint_check_rejects_mismatch(self):
        blob = _container().encode()
        with pytest.raises(CompressedFormatError, match="fingerprint"):
            StreamContainer.decode(blob, expected_fingerprint=1)


class TestCorruption:
    def test_bad_magic(self):
        blob = bytearray(_container().encode())
        blob[0] ^= 0xFF
        with pytest.raises(CompressedFormatError, match="magic"):
            StreamContainer.decode(bytes(blob))

    def test_bad_version(self):
        blob = bytearray(_container().encode())
        blob[4] = 99
        with pytest.raises(CompressedFormatError, match="version"):
            StreamContainer.decode(bytes(blob))

    def test_truncated_payloads(self):
        blob = _container().encode()
        with pytest.raises(CompressedFormatError, match="truncated"):
            StreamContainer.decode(blob[:-3])

    def test_trailing_garbage(self):
        blob = _container().encode() + b"xx"
        with pytest.raises(CompressedFormatError, match="trailing"):
            StreamContainer.decode(blob)

    def test_empty_input(self):
        with pytest.raises(CompressedFormatError):
            StreamContainer.decode(b"")


# ---------------------------------------------------------------------------
# v3: CRC-framed chunked containers
# ---------------------------------------------------------------------------

from repro.errors import ChecksumError, ReproError, TruncatedContainerError
from repro.tio.container import (
    ChunkedContainer,
    ContainerChunk,
    DecodeReport,
    FORMAT_VERSION_2,
    FORMAT_VERSION_3,
    container_version,
    decode_container,
)


def _chunked(version=FORMAT_VERSION_3) -> ChunkedContainer:
    return ChunkedContainer(
        fingerprint=0xA1B2C3D4E5F60718,
        record_count=5,
        chunk_records=3,
        global_streams=[StreamPayload(codec_id=0, raw_length=4, data=b"HEAD")],
        chunks=[
            ContainerChunk(
                record_count=3,
                streams=[
                    StreamPayload(codec_id=0, raw_length=6, data=b"AAAAAA"),
                    StreamPayload(codec_id=0, raw_length=2, data=b"aa"),
                ],
            ),
            ContainerChunk(
                record_count=2,
                streams=[
                    StreamPayload(codec_id=0, raw_length=4, data=b"BBBB"),
                    StreamPayload(codec_id=0, raw_length=0, data=b""),
                ],
            ),
        ],
        version=version,
    )


class TestV3Roundtrip:
    def test_version_byte_and_trailer(self):
        blob = _chunked().encode()
        assert blob[4] == FORMAT_VERSION_3
        assert blob[-8:-4] == b"TCEN"

    def test_encode_decode(self):
        original = _chunked()
        decoded = ChunkedContainer.decode(original.encode())
        assert decoded.version == FORMAT_VERSION_3
        assert decoded.fingerprint == original.fingerprint
        assert decoded.record_count == 5
        assert [c.record_count for c in decoded.chunks] == [3, 2]
        assert decoded.global_streams[0].data == b"HEAD"
        assert decoded.chunks[1].streams[0].data == b"BBBB"

    def test_v2_escape_hatch_still_encodes(self):
        blob = _chunked(version=FORMAT_VERSION_2).encode()
        assert blob[4] == FORMAT_VERSION_2
        decoded = ChunkedContainer.decode(blob)
        assert decoded.version == FORMAT_VERSION_2
        assert decoded.chunks[0].streams[0].data == b"AAAAAA"

    def test_v3_is_v2_plus_framing(self):
        """The v3 metadata and payload bytes embed the v2 layout verbatim."""
        v2 = _chunked(version=FORMAT_VERSION_2).encode()
        v3 = _chunked().encode()
        meta_len = len(v2) - len(b"HEAD" + b"AAAAAA" + b"aa" + b"BBBB")
        assert v3[5:meta_len] == v2[5:meta_len]  # identical after version byte

    def test_strict_report_is_intact(self):
        report = DecodeReport()
        decode_container(_chunked().encode(), report=report)
        assert report.intact
        assert report.version == FORMAT_VERSION_3
        assert report.recovered_chunks == [0, 1]
        assert report.recovered_records == 5


class TestV3Corruption:
    def test_header_flip_names_offset(self):
        blob = bytearray(_chunked().encode())
        blob[6] ^= 0x40  # in the fingerprint: parseable, but checksummed
        with pytest.raises(ChecksumError, match=r"header checksum mismatch \(byte offset \d+\)"):
            ChunkedContainer.decode(bytes(blob))

    def test_chunk_flip_names_chunk_and_offset(self):
        blob = bytearray(_chunked().encode())
        blob[blob.index(b"BBBB")] ^= 1
        with pytest.raises(ChecksumError, match=r"chunk 1 .*\(chunk 1, byte offset \d+\)") as info:
            ChunkedContainer.decode(bytes(blob))
        assert info.value.chunk_index == 1

    def test_truncation_names_offset(self):
        blob = _chunked().encode()
        with pytest.raises(TruncatedContainerError, match=r"byte offset \d+"):
            ChunkedContainer.decode(blob[:-1])

    def test_trailer_magic_damage(self):
        blob = bytearray(_chunked().encode())
        blob[-8] ^= 0xFF
        with pytest.raises(CompressedFormatError, match="trailer magic"):
            ChunkedContainer.decode(bytes(blob))

    def test_trailer_crc_damage(self):
        blob = bytearray(_chunked().encode())
        blob[-1] ^= 0xFF
        with pytest.raises(ChecksumError, match="trailer checksum"):
            ChunkedContainer.decode(bytes(blob))

    def test_every_single_bitflip_is_detected_strict(self):
        """No byte of a v3 container is outside some integrity check."""
        blob = _chunked().encode()
        for position in range(len(blob)):
            damaged = bytearray(blob)
            damaged[position] ^= 1
            with pytest.raises(ReproError):
                ChunkedContainer.decode(bytes(damaged))


class TestV3Salvage:
    def test_chunk_flip_recovers_the_rest(self):
        blob = bytearray(_chunked().encode())
        blob[blob.index(b"AAAAAA")] ^= 1
        report = DecodeReport()
        container = decode_container(bytes(blob), mode="salvage", report=report)
        assert report.lost_chunks == [0]
        assert report.recovered_chunks == [1]
        assert report.lost_records == 3
        assert container.chunks[0].streams[0].data == b"BBBB"
        assert "checksum mismatch" in report.reasons[0]

    def test_global_flip_marks_header_stream_lost(self):
        blob = bytearray(_chunked().encode())
        blob[blob.index(b"HEAD")] ^= 1
        report = DecodeReport()
        container = decode_container(bytes(blob), mode="salvage", report=report)
        assert report.header_stream_lost
        assert container.global_streams == []
        assert report.recovered_chunks == [0, 1]

    def test_metadata_flip_recovers_nothing(self):
        blob = bytearray(_chunked().encode())
        blob[6] ^= 0x40
        report = DecodeReport()
        container = decode_container(bytes(blob), mode="salvage", report=report)
        assert report.header_damaged
        assert container.chunks == []
        assert not report.recovered_chunks

    def test_trailer_damage_is_tolerated(self):
        blob = bytearray(_chunked().encode())
        blob[-2] ^= 0xFF
        report = DecodeReport()
        container = decode_container(bytes(blob), mode="salvage", report=report)
        assert report.trailer_damaged
        assert report.recovered_chunks == [0, 1]
        assert len(container.chunks) == 2

    def test_truncation_cascades_to_later_chunks(self):
        blob = _chunked().encode()
        cut = blob.index(b"BBBB") + 2  # mid-chunk-1 payload
        report = DecodeReport()
        container = decode_container(blob[:cut], mode="salvage", report=report)
        assert report.truncated
        assert report.recovered_chunks == [0]
        assert report.lost_chunks == [1]
        assert len(container.chunks) == 1

    def test_fingerprint_mismatch_still_raises_in_salvage(self):
        blob = _chunked().encode()
        with pytest.raises(CompressedFormatError, match="fingerprint"):
            decode_container(blob, expected_fingerprint=1, mode="salvage")

    def test_report_render_mentions_losses(self):
        blob = bytearray(_chunked().encode())
        blob[blob.index(b"AAAAAA")] ^= 1
        report = DecodeReport()
        decode_container(bytes(blob), mode="salvage", report=report)
        text = report.render()
        assert "lost chunk 0" in text
        assert "1/2 recovered" in text


class TestContainerVersionHardening:
    def test_empty_blob_shows_prefix(self):
        with pytest.raises(CompressedFormatError, match=r"got b''"):
            container_version(b"")

    def test_short_blob_shows_prefix(self):
        with pytest.raises(TruncatedContainerError, match=r"got b'TCG'"):
            container_version(b"TCG")

    def test_bad_magic_shows_leading_bytes(self):
        with pytest.raises(CompressedFormatError, match=r"leading bytes b'XXXX'"):
            container_version(b"XXXX" + bytes(20))

    def test_valid_blobs(self):
        assert container_version(_container().encode()) == 1
        assert container_version(_chunked().encode()) == 3
