"""Tests for the crash-safe v4 streaming container.

Covers the wire format (frame grammar, trailer, golden hash), the
:class:`~repro.streaming.StreamingCompressor` writer (flush policies,
resume, crash semantics), the generated-module streaming entry point,
the salvage report's clean-truncation/torn-tail distinction, and the
deterministic truncation/resume fault matrices from
:mod:`repro.testing.streamfaults`.
"""

import hashlib
import io
import os

import pytest

from repro.codegen import generate_python, load_python_module
from repro.errors import (
    ChecksumError,
    CompressedFormatError,
    StreamClosedError,
    TruncatedContainerError,
)
from repro.model import OptimizationOptions, build_model
from repro.runtime.engine import TraceEngine
from repro.spec import tcgen_a
from repro.streaming import FlushPolicy, StreamingCompressor
from repro.testing import resume_matrix, truncation_matrix
from repro.tio.container import MAGIC
from repro.tio.streamv4 import CHUNK_MAGIC, STREAM_TRAILER_MAGIC, scan_stream

from conftest import SPEC_VARIANTS, make_vpc_trace, spec_trace_for

#: Pinned digest of the v4 container for the standard fixture trace.
#: Changing the wire format is allowed, but must be deliberate: update
#: this constant only alongside a docs/FORMAT.md version-bump entry.
GOLDEN_V4_SHA256 = "63603ad9319f06f4bb3e774dbfa155a5455266ff199be320b3fa326ff140b4b1"


@pytest.fixture(scope="module")
def raw():
    return make_vpc_trace(n=2000, seed=7)


@pytest.fixture(scope="module")
def engine():
    return TraceEngine(tcgen_a(), container_version=4)


@pytest.fixture(scope="module")
def blob(engine, raw):
    return engine.compress(raw, chunk_records=256)


class TestWireFormat:
    def test_golden_hash(self, blob):
        assert hashlib.sha256(blob).hexdigest() == GOLDEN_V4_SHA256

    def test_magics_present(self, blob):
        assert blob.startswith(MAGIC)
        assert CHUNK_MAGIC in blob
        assert STREAM_TRAILER_MAGIC in blob

    def test_strict_roundtrip(self, engine, raw, blob):
        assert engine.decompress(blob) == raw
        report = engine.last_report
        assert report.intact
        assert not report.truncated and not report.torn_tail

    def test_content_identical_to_v3(self, raw, blob):
        spec = tcgen_a()
        v3 = TraceEngine(spec, container_version=3).compress(raw, chunk_records=256)
        eng = TraceEngine(spec)
        assert eng.decompress(v3) == eng.decompress(blob)

    @pytest.mark.parametrize("name", sorted(SPEC_VARIANTS))
    def test_every_preset_spec_roundtrips(self, name):
        spec = SPEC_VARIANTS[name]()
        trace = spec_trace_for(spec)
        eng = TraceEngine(spec, container_version=4)
        v4 = eng.compress(trace, chunk_records=100)
        assert eng.decompress(v4) == trace
        v3 = TraceEngine(spec, container_version=3).compress(trace, chunk_records=100)
        assert eng.decompress(v3) == trace

    def test_trailerless_stream_decodes_as_open(self, engine, raw, blob):
        scan = scan_stream(blob)
        open_blob = blob[: scan.frames[-1][3]]  # cut the trailer off
        assert engine.decompress(open_blob, mode="salvage") == raw
        report = engine.last_report
        assert report.truncated and not report.torn_tail
        assert report.clean_truncation
        # Strict mode accepts the open stream too: a live capture is legal.
        assert engine.decompress(open_blob) == raw

    def test_scan_stream_inventory(self, engine, raw, blob):
        scan = scan_stream(blob, expected_fingerprint=engine.model.fingerprint())
        total = (len(raw) - engine.format.header_bytes) // engine.format.record_bytes
        assert scan.records == total
        assert scan.closed and not scan.torn
        assert scan.chunk_records == 256
        assert sum(count for (_i, count, _s, _e) in scan.frames) == total

    def test_scan_stream_rejects_wrong_fingerprint(self, blob):
        with pytest.raises(CompressedFormatError, match="fingerprint"):
            scan_stream(blob, expected_fingerprint=1)


class TestSalvageReport:
    """Satellite: clean truncation must not be reported as corruption."""

    def test_boundary_truncation_is_clean(self, engine, raw, blob):
        scan = scan_stream(blob)
        cut = scan.frames[2][3]  # end of the third frame
        out = engine.decompress(blob[:cut], mode="salvage")
        report = engine.last_report
        assert report.clean_truncation
        assert report.truncated and not report.torn_tail
        assert raw.startswith(out)

    def test_mid_frame_truncation_is_torn_not_corrupt(self, engine, blob):
        scan = scan_stream(blob)
        cut = scan.frames[2][3] + 9  # nine bytes into the fourth frame
        engine.decompress(blob[:cut], mode="salvage")
        report = engine.last_report
        assert report.torn_tail
        assert report.clean_truncation  # torn tail is still not corruption

    def test_one_stray_byte_is_a_torn_tail(self, engine, blob):
        scan = scan_stream(blob)
        cut = scan.frames[2][3] + 1
        engine.decompress(blob[:cut], mode="salvage")
        assert engine.last_report.torn_tail

    def test_mid_frame_truncation_strict_raises_typed(self, engine, blob):
        scan = scan_stream(blob)
        with pytest.raises(TruncatedContainerError):
            engine.decompress(blob[: scan.frames[2][3] + 9])

    def test_corrupt_chunk_is_not_clean(self, engine, blob):
        scan = scan_stream(blob)
        damaged = bytearray(blob)
        damaged[scan.frames[1][2] + 20] ^= 0xFF  # flip inside frame 1
        engine.decompress(bytes(damaged), mode="salvage")
        report = engine.last_report
        assert report.lost_chunks
        assert not report.clean_truncation

    def test_damaged_trailer_is_recoverable(self, engine, raw, blob):
        damaged = bytearray(blob)
        damaged[-2] ^= 0x10
        assert engine.decompress(bytes(damaged), mode="salvage") == raw
        report = engine.last_report
        assert report.trailer_damaged
        assert report.clean_truncation
        with pytest.raises((ChecksumError, CompressedFormatError)):
            engine.decompress(bytes(damaged))


class TestStreamingCompressor:
    def test_matches_one_shot_compress(self, engine, raw, blob):
        sink = io.BytesIO()
        stream = TraceEngine(tcgen_a()).open_stream(sink, chunk_records=256)
        stream.append(raw)
        stream.close()
        assert sink.getvalue() == blob

    def test_watermarks_are_monotonic_and_durable(self, engine, raw):
        fmt = engine.format
        sink = io.BytesIO()
        stream = engine.open_stream(sink, chunk_records=256)
        marks = []
        step = fmt.record_bytes * 300
        pos = 0
        for cut in range(fmt.header_bytes + step, len(raw), step):
            stream.append(raw[pos:cut])
            pos = cut
            marks.append(stream.flush())
        stream.append(raw[pos:])
        marks.append(stream.close())
        records = [m.records for m in marks]
        assert records == sorted(records)
        assert marks[-1].bytes == len(sink.getvalue())
        # Every acked watermark names a decodable prefix.
        for mark in marks:
            out = engine.decompress(sink.getvalue()[: mark.bytes], mode="salvage")
            got = (len(out) - fmt.header_bytes) // fmt.record_bytes
            assert got == mark.records

    def test_max_records_policy_autoflushes(self, engine, raw):
        sink = io.BytesIO()
        stream = engine.open_stream(
            sink, chunk_records=256, policy=FlushPolicy(max_records=100)
        )
        fmt = engine.format
        stream.append(raw[: fmt.header_bytes + 150 * fmt.record_bytes])
        assert stream.watermark.records >= 100  # flushed without flush()
        stream.abort()

    def test_latency_policy_reports_due(self, engine, raw):
        sink = io.BytesIO()
        stream = engine.open_stream(
            sink, chunk_records=256, policy=FlushPolicy(max_latency_ms=1)
        )
        fmt = engine.format
        stream.append(raw[: fmt.header_bytes + 5 * fmt.record_bytes])
        assert stream.latency_due(now=stream.next_deadline() + 0.001)
        stream.flush()
        assert not stream.latency_due()  # nothing pending
        stream.abort()

    def test_resume_after_torn_tail(self, engine, raw, tmp_path):
        fmt = engine.format
        path = os.fspath(tmp_path / "stream.tc4")
        stream = engine.open_stream(path, chunk_records=256)
        cut = fmt.header_bytes + 700 * fmt.record_bytes
        stream.append(raw[:cut])
        stream.flush()
        stream.abort()
        # Tear the tail: leave half a frame's worth of garbage behind.
        with open(path, "ab") as handle:
            handle.write(CHUNK_MAGIC + b"\x7f" * 11)
        resumed = engine.open_stream(path, resume=True)
        durable = resumed.watermark.records
        assert durable == 700
        resumed.append(raw[fmt.header_bytes + durable * fmt.record_bytes :])
        resumed.close()
        with open(path, "rb") as handle:
            assert engine.decompress(handle.read()) == raw

    def test_resume_of_closed_stream_raises(self, engine, raw, tmp_path):
        path = os.fspath(tmp_path / "closed.tc4")
        stream = engine.open_stream(path, chunk_records=256)
        stream.append(raw)
        stream.close()
        with pytest.raises(StreamClosedError):
            engine.open_stream(path, resume=True)

    def test_append_after_close_rejected(self, engine, raw):
        stream = engine.open_stream(io.BytesIO(), chunk_records=256)
        stream.append(raw)
        stream.close()
        with pytest.raises(ValueError):
            stream.append(b"\x00" * engine.format.record_bytes)

    def test_partial_record_bytes_are_buffered(self, engine, raw):
        fmt = engine.format
        sink = io.BytesIO()
        stream = engine.open_stream(sink, chunk_records=256)
        # Split mid-record: nothing may be emitted for the torn half.
        split = fmt.header_bytes + 10 * fmt.record_bytes + 3
        stream.append(raw[:split])
        mark = stream.flush()
        assert mark.records == 10
        stream.append(raw[split:])
        stream.close()
        assert engine.decompress(sink.getvalue()) == raw


class TestGeneratedModuleStreaming:
    @pytest.fixture(scope="class")
    def module(self):
        model = build_model(tcgen_a(), OptimizationOptions.full())
        return load_python_module(generate_python(model))

    def test_generated_stream_matches_engine(self, module, raw, blob):
        sink = io.BytesIO()
        stream = module.open_stream(sink, chunk_records=256)
        stream.append(raw)
        stream.close()
        assert sink.getvalue() == blob

    def test_generated_decode_of_v4(self, module, raw, blob):
        assert module.decompress(blob) == raw

    def test_generated_salvage_of_truncated_v4(self, module, raw, blob):
        scan = scan_stream(blob)
        cut = scan.frames[1][3]
        out = module.decompress(blob[:cut], salvage=True)
        assert raw.startswith(out)
        assert len(out) > 0


class TestFaultMatrices:
    """The ISSUE's truncate/kill matrix, run at pytest scale."""

    def test_truncation_matrix(self, raw):
        engine = TraceEngine(tcgen_a())
        assert truncation_matrix(engine, raw, flush_records=173) == 0

    def test_resume_matrix(self, raw):
        engine = TraceEngine(tcgen_a())
        assert resume_matrix(engine, raw, flush_records=173, points=4) == 0
