"""Property-based tests across the whole system (hypothesis)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import numpy as np

from repro import generate_compressor
from repro.model import OptimizationOptions, build_model
from repro.runtime import TraceEngine
from repro.spec import format_spec, parse_spec
from repro.spec.ast import FieldSpec, PredictorKind, PredictorSpec, TraceSpec
from repro.tio import TraceFormat, pack_records

# -- strategies ---------------------------------------------------------------

predictor_specs = st.one_of(
    st.builds(
        PredictorSpec,
        kind=st.just(PredictorKind.LV),
        order=st.just(0),
        depth=st.integers(1, 4),
    ),
    st.builds(
        PredictorSpec,
        kind=st.sampled_from([PredictorKind.FCM, PredictorKind.DFCM]),
        order=st.integers(1, 3),
        depth=st.integers(1, 3),
    ),
)


def field_specs(index: int, is_pc: bool):
    return st.builds(
        FieldSpec,
        bits=st.sampled_from([8, 16, 32, 64]),
        index=st.just(index),
        predictors=st.lists(predictor_specs, min_size=1, max_size=3).map(tuple),
        l1=st.just(None) if is_pc else st.sampled_from([None, 1, 16, 256]),
        l2=st.sampled_from([None, 64, 256, 1024]),
    )


@st.composite
def trace_specs(draw):
    field_count = draw(st.integers(1, 3))
    pc_field = draw(st.integers(1, field_count))
    fields = tuple(
        draw(field_specs(i, is_pc=i == pc_field)) for i in range(1, field_count + 1)
    )
    header_bits = draw(st.sampled_from([0, 8, 32]))
    return TraceSpec(header_bits=header_bits, fields=fields, pc_field=pc_field)


@st.composite
def specs_with_traces(draw):
    spec = draw(trace_specs())
    n = draw(st.integers(0, 120))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    header = bytes(rng.integers(0, 256, size=spec.header_bytes, dtype=np.uint8))
    columns = []
    for field in spec.fields:
        # Mix of strided and random values, masked to the field width.
        strided = np.cumsum(rng.integers(0, 8, size=n)).astype(np.uint64)
        noise = rng.integers(0, 1 << min(field.bits - 1, 62), size=max(n, 1),
                             dtype=np.int64).view(np.uint64)[:n]
        pick = rng.random(n) < 0.8
        column = np.where(pick, strided, noise) & np.uint64((1 << field.bits) - 1)
        columns.append(column)
    fmt = TraceFormat(
        header_bits=spec.header_bits,
        field_bits=tuple(f.bits for f in spec.fields),
        pc_field=spec.pc_field,
    )
    return spec, pack_records(fmt, header, columns)


option_variants = st.sampled_from(
    [
        OptimizationOptions.full(),
        OptimizationOptions.none(),
        OptimizationOptions.vpc3(),
        OptimizationOptions().without("shared_tables"),
        OptimizationOptions().without("fast_hash"),
    ]
)

# -- properties ---------------------------------------------------------------


class TestSpecProperties:
    @settings(max_examples=60, deadline=None)
    @given(trace_specs())
    def test_canonical_print_reparse_fixpoint(self, spec):
        assert parse_spec(format_spec(spec)) == spec

    @settings(max_examples=60, deadline=None)
    @given(trace_specs())
    def test_model_builds_for_every_valid_spec(self, spec):
        model = build_model(spec)
        assert model.total_predictions() >= 1
        assert model.table_bytes() > 0


class TestCompressionProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(specs_with_traces(), option_variants)
    def test_engine_roundtrip_is_lossless(self, spec_and_trace, options):
        spec, raw = spec_and_trace
        engine = TraceEngine(spec, options, codec="zlib")
        assert engine.decompress(engine.compress(raw)) == raw

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(specs_with_traces(), option_variants)
    def test_generated_python_equals_engine(self, spec_and_trace, options):
        spec, raw = spec_and_trace
        engine = TraceEngine(spec, options, codec="zlib")
        module = generate_compressor(spec, options, codec="zlib")
        blob = module.compress(raw)
        assert blob == engine.compress(raw)
        assert module.decompress(blob) == raw

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(specs_with_traces())
    def test_sharing_and_hash_mode_never_change_output(self, spec_and_trace):
        spec, raw = spec_and_trace
        reference = TraceEngine(spec, OptimizationOptions.full(), codec="zlib")
        for flag in ("shared_tables", "fast_hash"):
            variant = TraceEngine(
                spec, OptimizationOptions().without(flag), codec="zlib"
            )
            assert variant.compress(raw) == reference.compress(raw), flag


class TestBaselineProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.lists(
            st.tuples(
                st.integers(0, (1 << 32) - 1), st.integers(0, (1 << 64) - 1)
            ),
            min_size=0,
            max_size=80,
        )
    )
    def test_all_baselines_lossless_on_arbitrary_records(self, records):
        from repro.baselines import all_baselines
        from repro.tio import VPC_FORMAT

        pcs = np.array([r[0] for r in records], dtype=np.uint64)
        data = np.array([r[1] for r in records], dtype=np.uint64)
        raw = pack_records(VPC_FORMAT, b"PROP", [pcs, data])
        for compressor in all_baselines():
            assert compressor.decompress(compressor.compress(raw)) == raw, (
                compressor.name
            )


class TestIRProperties:
    """The IR pipeline holds for *every* valid spec, not just presets."""

    @settings(max_examples=60, deadline=None)
    @given(trace_specs(), option_variants)
    def test_lint_clean_specs_survive_the_whole_pipeline(self, spec, options):
        from repro.codegen import generate_c, generate_python
        from repro.codegen.plan import plan_field
        from repro.ir import analyze_ir, cost_model, lower_model
        from repro.lint import has_errors, lint_spec_text

        # Valid specs never lint as errors (warnings are fine).
        assert not has_errors(lint_spec_text(format_spec(spec)))

        model = build_model(spec, options)
        ir = lower_model(model)
        facts = analyze_ir(ir, model.options.type_minimization)

        # The analyses prove every planner invariant on arbitrary specs:
        # bounds, sharing, widths — an error here means the planner and
        # the dataflow disagree about the code we are about to emit.
        # (Warnings are allowed: the planner deliberately over-widens
        # chain elements for narrow fields, which is advisory TC302.)
        assert not has_errors(facts.diagnostics)

        # The cost model's state accounting is exactly the plan's.
        report = cost_model(facts)
        assert report.table_bytes == sum(
            plan_field(layout, model.options).table_bytes()
            for layout in model.fields
        )
        assert report.totals.total > 0

        # And both backends still generate from the same facts.
        assert "def compress" in generate_python(model)
        assert "int main(" in generate_c(model)

    @settings(max_examples=40, deadline=None)
    @given(trace_specs())
    def test_elision_facts_are_sound_claims(self, spec):
        from repro.ir import analyze_model

        facts = analyze_model(build_model(spec, OptimizationOptions.full()))
        for field_facts in facts.fields.values():
            # A chain store mask may only be declared redundant for a
            # chain the field actually owns.
            for name in field_facts.redundant_chain_store_mask:
                assert name in facts.ir.tables
            for name, depth in field_facts.live_depth.items():
                decl = facts.ir.tables[name]
                assert 1 <= depth <= decl.span
