"""Tests for the kernel IR (``repro.ir``): lowering, analysis, cost.

The IR is the foundation the TC3xx verification layer stands on, so the
tests here prove three things: (1) lowering is faithful — the IR's state
accounting agrees with the plan's; (2) the dataflow analyses prove the
invariants the backends rely on (bounds, liveness, redundant masks) on
every shipped preset; (3) deliberately tampered IR is *caught* — the
analyses carry the burden of proof, not the generator's good behaviour.
"""

from dataclasses import replace

import pytest

from repro.ir import (
    ValueRange,
    analyze_ir,
    analyze_model,
    cost_model,
    lower_model,
    render_cost,
    render_ir,
)
from repro.codegen.plan import plan_field
from repro.model import OptimizationOptions, build_model
from repro.spec import parse_spec
from repro.spec.presets import TCGEN_A_SPEC, TCGEN_B_SPEC

PRESETS = {"A": TCGEN_A_SPEC, "B": TCGEN_B_SPEC}

ABLATIONS = {
    "full": OptimizationOptions.full(),
    "none": OptimizationOptions.none(),
    "no-shared": OptimizationOptions.full().without("shared_tables"),
    "no-fast-hash": OptimizationOptions.full().without("fast_hash"),
    "no-type-min": OptimizationOptions.full().without("type_minimization"),
}


def model_for(preset, options=None):
    return build_model(
        parse_spec(PRESETS[preset]), options or OptimizationOptions.full()
    )


def planned_bytes(model):
    """Ground-truth state footprint: what the generators actually emit.

    (``model.table_bytes()`` is the layout-level estimate and assumes
    fast-hash chain widths, so it diverges from the plan when
    ``fast_hash`` is off — the plan is what the code allocates.)
    """
    return sum(
        plan_field(layout, model.options).table_bytes()
        for layout in model.fields
    )


class TestValueRange:
    def test_of_width_and_const(self):
        assert ValueRange.of_width(8) == ValueRange(0, 255)
        assert ValueRange.const(7) == ValueRange(7, 7)

    def test_join_is_hull(self):
        assert ValueRange(0, 3).join(ValueRange(10, 20)) == ValueRange(0, 20)

    def test_masked_clips_to_mask(self):
        assert ValueRange(0, 1 << 40).masked(0xFF) == ValueRange(0, 0xFF)

    def test_within_mask_identity(self):
        assert ValueRange(0, 0xFF).within(0xFF)
        assert not ValueRange(0, 0x100).within(0xFF)

    def test_bits(self):
        assert ValueRange(0, 255).bits == 8
        assert ValueRange(0, 256).bits == 9
        assert ValueRange(0, 0).bits == 1


class TestLowering:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    @pytest.mark.parametrize("ablation", sorted(ABLATIONS))
    def test_state_accounting_matches_plan(self, preset, ablation):
        model = model_for(preset, ABLATIONS[ablation])
        ir = lower_model(model)
        assert ir.table_bytes() == planned_bytes(model)
        assert ir.fingerprint == model.fingerprint()

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_every_plan_table_declared(self, preset):
        model = model_for(preset)
        ir = lower_model(model)
        planned = {}
        for layout in model.fields:
            plan = plan_field(layout, model.options)
            for t in plan.lasts:
                planned[t.name] = t.lines * t.depth * t.elem_bytes
            for t in plan.chains:
                planned[t.name] = t.lines * t.span * t.elem_bytes
            for t in plan.l2s:
                planned[t.name] = t.lines * t.depth * t.elem_bytes
        assert set(ir.tables) == set(planned)
        for name, decl in ir.tables.items():
            assert decl.total_bytes == planned[name]

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_fields_in_processing_order_pc_first(self, preset):
        model = model_for(preset)
        ir = lower_model(model)
        assert ir.fields[0].is_pc

    def test_render_ir_mentions_every_table(self):
        ir = lower_model(model_for("A"))
        text = render_ir(ir)
        for name in ir.tables:
            assert name in text


class TestAnalysisOnPresets:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    @pytest.mark.parametrize("ablation", sorted(ABLATIONS))
    def test_presets_prove_clean(self, preset, ablation):
        facts = analyze_model(model_for(preset, ABLATIONS[ablation]))
        assert facts.diagnostics == []

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_bounds_proven_for_every_table(self, preset):
        # The analysis records read slots only for indices it proved in
        # range; a clean diagnostic list plus non-empty read slots on
        # every live table is the bounds proof.
        facts = analyze_model(model_for(preset))
        assert facts.diagnostics == []
        for tf in facts.tables.values():
            assert not tf.dead

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_chain_store_masks_proven_redundant(self, preset):
        # The level-1 chain store masks with order_mask(1), but the fold
        # range already fits (fold_bits <= k1): provable for every chain.
        facts = analyze_model(model_for(preset))
        chains = [n for n in facts.ir.tables if n.endswith("_chain")]
        assert chains
        proved = set()
        for ff in facts.fields.values():
            proved |= ff.redundant_chain_store_mask
        assert proved == set(chains)

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_update_writes_cover_live_tables(self, preset):
        facts = analyze_model(model_for(preset))
        writes = facts.update_writes()
        assert set(writes) == set(facts.ir.tables)
        assert all(count >= 1 for count in writes.values())

    def test_analyze_model_is_cached(self):
        model = model_for("A")
        assert analyze_model(model) is analyze_model(model)

    def test_cache_distinguishes_options(self):
        a = analyze_model(model_for("A"))
        b = analyze_model(model_for("A", OptimizationOptions.none()))
        assert a is not b


class TestTamperedIR:
    """Each tamper class must be caught by dataflow, not pattern match."""

    def _tamper(self, mutate):
        model = model_for("A")
        ir = lower_model(model)
        name = next(
            n for n, d in ir.tables.items() if d.role.value == "l2"
        )
        ir.tables[name] = mutate(ir.tables[name])
        return analyze_ir(ir, type_minimization=True)

    def test_halved_l2_breaks_bounds_and_sharing(self):
        facts = self._tamper(lambda d: replace(d, lines=d.lines // 2))
        codes = {d.code for d in facts.diagnostics}
        assert "TC304" in codes
        assert "TC306" in codes

    def test_widened_element_is_tc302(self):
        facts = self._tamper(lambda d: replace(d, elem_bytes=8))
        codes = {d.code for d in facts.diagnostics}
        assert "TC302" in codes

    def test_narrowed_element_is_tc302(self):
        facts = self._tamper(lambda d: replace(d, elem_bytes=1))
        codes = {d.code for d in facts.diagnostics}
        assert "TC302" in codes

    def test_doubled_l2_breaks_sharing_rule(self):
        facts = self._tamper(lambda d: replace(d, lines=d.lines * 2))
        assert "TC306" in {d.code for d in facts.diagnostics}


class TestCostModel:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_table_bytes_agree_with_plan(self, preset):
        model = model_for(preset)
        report = cost_model(analyze_model(model))
        assert report.table_bytes == planned_bytes(model)
        assert report.table_bytes == model.table_bytes()

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_counts_are_positive_and_additive(self, preset):
        report = cost_model(analyze_model(model_for(preset)))
        assert report.totals.total > 0
        assert report.totals.total == sum(
            f.counts.total for f in report.fields
        )

    def test_elision_reduces_cost(self):
        # Disabling the facts is not possible at the cost layer (costs are
        # post-elision by construction), but type minimization off must
        # not change op counts — only table bytes.
        full = cost_model(analyze_model(model_for("A")))
        fat = cost_model(
            analyze_model(model_for("A", ABLATIONS["no-type-min"]))
        )
        assert full.totals.total == fat.totals.total
        assert full.table_bytes < fat.table_bytes

    def test_render_cost_is_a_table(self):
        report = cost_model(analyze_model(model_for("A")))
        text = render_cost(report, "tcgen-a")
        assert "tcgen-a" in text
        assert "reads" in text and "total" in text
        for field in report.fields:
            assert f"field {field.index}" in text
