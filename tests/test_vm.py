"""Tests for the miniature virtual machine substrate."""

import pytest

from repro.vm import (
    AssemblyError,
    ExecutionError,
    Machine,
    assemble,
    program_names,
    run_program,
    vm_trace,
)
from repro.vm.isa import DATA_BASE, Op, RA, SP, STACK_TOP, TEXT_BASE


def run(source: str, max_steps: int = 100_000) -> Machine:
    machine = Machine(assemble(source))
    machine.run(max_steps=max_steps)
    return machine


class TestAssembler:
    def test_labels_resolve_to_text_addresses(self):
        program = assemble("main:\n  halt\nafter:\n  halt\n")
        assert program.labels["main"] == TEXT_BASE
        assert program.labels["after"] == TEXT_BASE + 4

    def test_data_labels_resolve_to_data_addresses(self):
        program = assemble(
            ".text\n  halt\n.data\nfirst: .space 16\nsecond: .word64 5\n"
        )
        assert program.labels["first"] == DATA_BASE
        assert program.labels["second"] == DATA_BASE + 16
        assert program.data[16:24] == (5).to_bytes(8, "little")

    def test_word64_handles_negative_values(self):
        program = assemble(".text\n halt\n.data\nv: .word64 -1\n")
        assert program.data == b"\xff" * 8

    def test_align_pads(self):
        program = assemble(".text\n halt\n.data\n .byte 1\n .align 8\nv: .space 8\n")
        assert program.labels["v"] == DATA_BASE + 8

    def test_register_aliases(self):
        program = assemble("  mv sp, ra\n  halt\n")
        instruction = program.instructions[0]
        assert instruction.rd == SP
        assert instruction.rs1 == RA

    def test_call_and_ret_expand(self):
        program = assemble("main:\n  call f\n  halt\nf:\n  ret\n")
        assert program.instructions[0].op is Op.JAL
        assert program.instructions[0].rd == RA
        assert program.instructions[2].op is Op.JR

    def test_la_becomes_li_with_address(self):
        program = assemble("  la x1, buf\n  halt\n.data\nbuf: .space 8\n")
        assert program.instructions[0].op is Op.LI
        assert program.instructions[0].imm == DATA_BASE

    def test_comments_and_blank_lines(self):
        program = assemble("# top\n\nmain:  # inline\n  halt  # done\n")
        assert len(program.instructions) == 1

    @pytest.mark.parametrize(
        "source,message",
        [
            ("  bogus x1, x2\n", "unknown instruction"),
            ("  li x99, 5\n", "bad register"),
            ("  li x1, five\n", "bad immediate"),
            ("  j nowhere\n", "undefined label"),
            ("a:\na:\n  halt\n", "duplicate label"),
            ("  ld x1, x2\n", "displacement"),
            ("  add x1, x2\n", "takes 3 operands"),
            (".data\n  halt\n", "instruction inside .data"),
            (".word64 5\n", ".word64 outside .data"),
            ("  .bogus 5\n", "unknown directive"),
        ],
    )
    def test_errors(self, source, message):
        with pytest.raises(AssemblyError, match=message):
            assemble(source)

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("  halt\n  bogus\n")
        assert excinfo.value.line == 2


class TestMachineSemantics:
    def test_arithmetic(self):
        machine = run(
            "  li x1, 7\n  li x2, 3\n  add x3, x1, x2\n  sub x4, x1, x2\n"
            "  mul x5, x1, x2\n  halt\n"
        )
        assert machine.registers[3] == 10
        assert machine.registers[4] == 4
        assert machine.registers[5] == 21

    def test_wrapping_arithmetic(self):
        machine = run("  li x1, -1\n  addi x2, x1, 2\n  halt\n")
        assert machine.registers[1] == (1 << 64) - 1
        assert machine.registers[2] == 1

    def test_signed_division(self):
        machine = run(
            "  li x1, -7\n  li x2, 2\n  div x3, x1, x2\n  rem x4, x1, x2\n  halt\n"
        )
        assert machine.registers[3] == ((-3) & ((1 << 64) - 1))
        assert machine.registers[4] == ((-1) & ((1 << 64) - 1))

    def test_division_by_zero_is_defined(self):
        machine = run("  li x1, 5\n  div x2, x1, x0\n  rem x3, x1, x0\n  halt\n")
        assert machine.registers[2] == 0
        assert machine.registers[3] == 5

    def test_x0_is_hardwired_zero(self):
        machine = run("  li x0, 99\n  halt\n")
        assert machine.registers[0] == 0

    def test_shifts(self):
        machine = run("  li x1, 1\n  shli x2, x1, 10\n  shri x3, x2, 4\n  halt\n")
        assert machine.registers[2] == 1024
        assert machine.registers[3] == 64

    def test_memory_roundtrip(self):
        machine = run(
            "  la x1, buf\n  li x2, 123456789\n  st x2, 8(x1)\n  ld x3, 8(x1)\n"
            "  halt\n.data\nbuf: .space 32\n"
        )
        assert machine.registers[3] == 123456789

    def test_byte_operations(self):
        machine = run(
            "  la x1, buf\n  li x2, 511\n  stb x2, 0(x1)\n  ldb x3, 0(x1)\n"
            "  halt\n.data\nbuf: .space 8\n"
        )
        assert machine.registers[3] == 0xFF  # truncated to a byte

    def test_branches(self):
        machine = run(
            "  li x1, 5\n  li x2, 5\n  beq x1, x2, yes\n  li x3, 1\nyes:\n"
            "  li x4, 2\n  halt\n"
        )
        assert machine.registers[3] == 0  # skipped
        assert machine.registers[4] == 2

    def test_signed_compare(self):
        machine = run(
            "  li x1, -1\n  li x2, 1\n  blt x1, x2, less\n  li x3, 9\nless:\n  halt\n"
        )
        assert machine.registers[3] == 0  # -1 < 1 under signed compare

    def test_call_stack(self):
        machine = run(
            "main:\n  li x1, 10\n  call double\n  halt\n"
            "double:\n  add x1, x1, x1\n  ret\n"
        )
        assert machine.registers[1] == 20

    def test_stack_pointer_initialized(self):
        machine = Machine(assemble("  halt\n"))
        assert machine.registers[SP] == STACK_TOP

    def test_step_budget(self):
        with pytest.raises(ExecutionError, match="budget"):
            run("loop:\n  j loop\n", max_steps=100)

    def test_pc_out_of_text_faults(self):
        with pytest.raises(ExecutionError, match="text segment"):
            run("  jr x1\n  halt\n")  # x1 = 0: jumps outside

    def test_initialized_data_visible(self):
        machine = run(
            "  la x1, v\n  ld x2, 0(x1)\n  halt\n.data\nv: .word64 77\n"
        )
        assert machine.registers[2] == 77


class TestTracing:
    def test_loads_and_stores_recorded_in_order(self):
        machine = run(
            "  la x1, buf\n  li x2, 5\n  st x2, 0(x1)\n  ld x3, 0(x1)\n  halt\n"
            ".data\nbuf: .space 8\n"
        )
        events = machine.events()
        assert len(events) == 2
        assert bool(events.is_store[0]) and not bool(events.is_store[1])
        assert events.addrs[0] == events.addrs[1] == DATA_BASE
        assert events.values[0] == events.values[1] == 5

    def test_pcs_are_real_instruction_addresses(self):
        machine = run(
            "  la x1, buf\n  st x0, 0(x1)\n  halt\n.data\nbuf: .space 8\n"
        )
        events = machine.events()
        assert events.pcs[0] == TEXT_BASE + 4  # the st is instruction 1

    def test_untraced_machine_refuses_events(self):
        machine = Machine(assemble("  halt\n"), trace=False)
        machine.run()
        with pytest.raises(ExecutionError):
            machine.events()


class TestPrograms:
    @pytest.fixture(scope="class")
    def machines(self):
        return {name: run_program(name) for name in program_names()}

    def test_all_programs_halt(self, machines):
        for name, machine in machines.items():
            assert machine.halted, name

    def test_all_programs_touch_memory(self, machines):
        for name, machine in machines.items():
            events = machine.events()
            assert len(events) > 1000, name
            assert events.is_store.sum() > 0, name

    def test_fib_computes_1597(self, machines):
        assert machines["fib"].read_words("result", 1)[0] == 1597

    def test_quicksort_sorts(self, machines):
        values = machines["quicksort"].read_words("values", 1200)
        assert values == sorted(values)

    def test_hashtable_finds_all_inserted_keys(self, machines):
        # The first 1200 lookups re-draw the inserted keys: all must hit.
        assert machines["hashtable"].read_words("hits", 1)[0] >= 1200

    def test_binsearch_finds_plausible_fraction(self, machines):
        # 1024 of 7200 possible keys exist: expect roughly 14% of 2000.
        found = machines["binsearch"].read_words("found", 1)[0]
        assert 150 < found < 450

    def test_matmul_matches_python(self, machines):
        machine = machines["matmul"]
        n = 20
        a = machine.read_words("A", n * n)
        b = machine.read_words("B", n * n)
        c = machine.read_words("C", n * n)
        mask = (1 << 64) - 1
        for i in range(0, n, 7):  # spot-check a few rows
            for j in range(0, n, 7):
                expected = sum(a[i * n + k] * b[k * n + j] for k in range(n)) & mask
                assert c[i * n + j] == expected, (i, j)

    def test_list_sum_total_stored(self, machines):
        assert machines["list_sum"].read_words("total", 1)[0] > 0

    def test_bfs_reaches_every_grid_node(self, machines):
        visits, enqueued = machines["bfs"].read_words("visits", 2)
        assert visits == 1024
        assert enqueued == 1024

    def test_transpose_is_correct(self, machines):
        machine = machines["transpose"]
        n = 48
        a = machine.read_words("A", n * n)
        b = machine.read_words("B", n * n)
        for i in range(0, n, 9):
            for j in range(0, n, 9):
                assert b[j * n + i] == a[i * n + j], (i, j)

    def test_stencil_converges_toward_smooth_values(self, machines):
        grid = machines["stencil"].read_words("grid_a", 1600)
        # After 12 averaging sweeps, neighbouring interior cells are close.
        diffs = [abs(grid[i + 1] - grid[i]) for i in range(700, 900)]
        assert max(diffs) < 1 << 32


class TestVmTraces:
    @pytest.mark.parametrize("kind", ["store_addresses", "cache_miss_addresses",
                                      "load_values"])
    def test_trace_kinds_build(self, kind):
        raw = vm_trace("hashtable", kind)
        assert (len(raw) - 4) % 12 == 0
        assert len(raw) > 4

    def test_vm_traces_compress_losslessly(self):
        from repro.baselines import all_compressors

        raw = vm_trace("binsearch", "load_values")
        for compressor in all_compressors():
            assert compressor.decompress(compressor.compress(raw)) == raw, (
                compressor.name
            )

    def test_executed_code_is_predictable(self):
        """Real loop PCs: TCgen should compress a VM trace far below raw."""
        from repro.baselines import TCgenCompressor

        raw = vm_trace("stencil", "store_addresses")
        blob = TCgenCompressor().compress(raw)
        assert len(raw) / len(blob) > 20

    def test_unknown_kind_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="kind"):
            vm_trace("fib", "branch_traces")


class TestInstructionTraces:
    def test_one_record_per_executed_instruction(self):
        from repro.vm import assemble
        from repro.vm.machine import Machine

        machine = Machine(
            assemble("  li x1, 3\n  addi x1, x1, 1\n  halt\n"),
            trace=False,
            trace_instructions=True,
        )
        machine.run()
        pcs, words = machine.instruction_trace()
        assert len(pcs) == 3
        assert pcs.tolist() == [0x400000, 0x400004, 0x400008]

    def test_static_instructions_repeat_their_word(self):
        """The same PC always carries the same instruction word — the
        invariant instruction-trace compressors exploit."""
        from repro.vm import assemble
        from repro.vm.machine import Machine

        machine = Machine(
            assemble(
                "  li x1, 0\n  li x2, 50\nloop:\n  addi x1, x1, 1\n"
                "  blt x1, x2, loop\n  halt\n"
            ),
            trace=False,
            trace_instructions=True,
        )
        machine.run()
        pcs, words = machine.instruction_trace()
        by_pc = {}
        for pc, word in zip(pcs.tolist(), words.tolist()):
            assert by_pc.setdefault(pc, word) == word

    def test_instruction_trace_compresses_extremely_well(self):
        """Loopy instruction traces are the easiest trace type of all."""
        from repro.baselines import SbcCompressor, TCgenCompressor

        raw = vm_trace("stencil", "instruction_words")
        assert raw[:4] == b"INS\0"
        for compressor in (TCgenCompressor(), SbcCompressor()):
            blob = compressor.compress(raw)
            assert compressor.decompress(blob) == raw
            assert len(raw) / len(blob) > 100, compressor.name

    def test_untraced_machine_refuses_instruction_trace(self):
        from repro.vm import assemble
        from repro.vm.machine import Machine

        machine = Machine(assemble("  halt\n"))
        machine.run()
        with pytest.raises(ExecutionError):
            machine.instruction_trace()
