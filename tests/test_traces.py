"""Tests for the synthetic workload suite and trace builders."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.tio import VPC_FORMAT, unpack_records
from repro.traces import (
    TRACE_KINDS,
    build_trace,
    cache_miss_address_trace,
    default_suite,
    generate_events,
    load_value_trace,
    store_address_trace,
    workload_names,
)
from repro.traces.events import EventBlock, concat_events, interleave_events
from repro.traces.workloads import WORKLOADS


class TestSuiteInventory:
    def test_all_22_table1_programs_present(self):
        expected = {
            "eon", "bzip2", "crafty", "gap", "gcc", "gzip", "mcf", "parser",
            "perlbmk", "twolf", "vortex", "vpr", "ammp", "art", "equake",
            "mesa", "applu", "apsi", "mgrid", "sixtrack", "swim", "wupwise",
        }
        assert set(workload_names()) == expected

    def test_twelve_integer_ten_fp(self):
        kinds = [info.kind for info in WORKLOADS.values()]
        assert kinds.count("integer") == 12
        assert kinds.count("floating point") == 10

    def test_default_suite_is_subset(self):
        assert set(default_suite()) <= set(workload_names())
        assert len(default_suite()) >= 6

    def test_unknown_workload_rejected(self):
        with pytest.raises(ReproError, match="unknown workload"):
            generate_events("quake3")


class TestDeterminism:
    @pytest.mark.parametrize("name", ["mcf", "swim", "gcc"])
    def test_same_seed_same_events(self, name):
        a = generate_events(name, scale=0.2, seed=1)
        b = generate_events(name, scale=0.2, seed=1)
        assert np.array_equal(a.pcs, b.pcs)
        assert np.array_equal(a.addrs, b.addrs)
        assert np.array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        a = generate_events("mcf", scale=0.2, seed=1)
        b = generate_events("mcf", scale=0.2, seed=2)
        assert not np.array_equal(a.addrs, b.addrs)

    def test_scale_controls_size(self):
        small = generate_events("gcc", scale=0.2)
        large = generate_events("gcc", scale=1.0)
        assert len(large) > 3 * len(small)


class TestEventBlocks:
    @pytest.mark.parametrize("name", workload_names())
    def test_every_workload_produces_valid_events(self, name):
        events = generate_events(name, scale=0.1)
        assert len(events) > 100
        assert events.pcs.max() < 1 << 32
        assert len(events.stores) + len(events.loads) == len(events)

    @pytest.mark.parametrize("name", workload_names())
    def test_every_workload_has_loads_and_stores(self, name):
        events = generate_events(name, scale=0.1)
        assert len(events.stores) > 0, f"{name} has no stores"
        assert len(events.loads) > 0, f"{name} has no loads"

    def test_concat_preserves_order(self):
        a = generate_events("mcf", scale=0.05)
        b = generate_events("swim", scale=0.05)
        both = concat_events([a, b])
        assert len(both) == len(a) + len(b)
        assert np.array_equal(both.pcs[: len(a)], a.pcs)

    def test_interleave_round_robin(self):
        a = EventBlock(
            np.array([1, 1], np.uint64), np.array([10, 11], np.uint64),
            np.array([0, 0], np.uint64), np.array([False, False]),
        )
        b = EventBlock(
            np.array([2, 2], np.uint64), np.array([20, 21], np.uint64),
            np.array([0, 0], np.uint64), np.array([True, True]),
        )
        mixed = interleave_events([a, b], np.array([0, 1, 0, 1]))
        assert mixed.pcs.tolist() == [1, 2, 1, 2]
        assert mixed.addrs.tolist() == [10, 20, 11, 21]

    def test_interleave_overflow_rejected(self):
        a = EventBlock(
            np.array([1], np.uint64), np.array([1], np.uint64),
            np.array([1], np.uint64), np.array([False]),
        )
        with pytest.raises(ReproError, match="interleave"):
            interleave_events([a], np.array([0, 0]))

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ReproError, match="length"):
            EventBlock(
                np.zeros(2, np.uint64), np.zeros(3, np.uint64),
                np.zeros(2, np.uint64), np.zeros(2, bool),
            )


class TestBuilders:
    def test_store_trace_contains_only_stores(self):
        events = generate_events("swim", scale=0.1)
        raw = store_address_trace(events)
        _, cols = unpack_records(VPC_FORMAT, raw)
        stores = events.stores
        assert cols[0].tolist() == stores.pcs.astype(np.uint32).tolist()
        assert cols[1].tolist() == stores.addrs.tolist()

    def test_load_trace_contains_values_not_addresses(self):
        events = generate_events("crafty", scale=0.1)
        raw = load_value_trace(events)
        _, cols = unpack_records(VPC_FORMAT, raw)
        assert cols[1].tolist() == events.loads.values.tolist()

    def test_miss_trace_is_subset_of_all_accesses(self):
        events = generate_events("mcf", scale=0.1)
        raw = cache_miss_address_trace(events)
        _, cols = unpack_records(VPC_FORMAT, raw)
        assert 0 < len(cols[0]) < len(events)

    def test_miss_trace_respects_cache_config(self):
        from repro.cachesim import CacheConfig

        events = generate_events("mcf", scale=0.1)
        small = cache_miss_address_trace(events, CacheConfig(1024, 64, 1))
        large = cache_miss_address_trace(events, CacheConfig(256 * 1024, 64, 1))
        assert len(small) > len(large)

    def test_headers_tag_trace_kind(self):
        events = generate_events("art", scale=0.1)
        assert store_address_trace(events)[:4] == b"STA\0"
        assert cache_miss_address_trace(events)[:4] == b"CMA\0"
        assert load_value_trace(events)[:4] == b"LDV\0"

    @pytest.mark.parametrize("name", workload_names())
    def test_every_workload_builds_all_three_kinds(self, name):
        for kind in TRACE_KINDS:
            raw = build_trace(name, kind, scale=0.05)
            assert (len(raw) - 4) % 12 == 0, (name, kind)
            assert len(raw) > 4, (name, kind)

    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_build_trace_dispatch(self, kind):
        raw = build_trace("gzip", kind, scale=0.1)
        assert raw[:4] == {"store_addresses": b"STA\0",
                           "cache_miss_addresses": b"CMA\0",
                           "load_values": b"LDV\0"}[kind]
        assert (len(raw) - 4) % 12 == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="kind"):
            build_trace("gzip", "branch_traces")


class TestTraceCharacter:
    """The paper's qualitative claims about the three trace types."""

    def test_store_addresses_compress_best(self):
        """'Such traces are typically relatively easy to compress.'"""
        from repro.baselines import TCgenCompressor

        compressor = TCgenCompressor()
        rates = {}
        for kind in TRACE_KINDS:
            raw = build_trace("swim", kind, scale=0.2)
            rates[kind] = len(raw) / len(compressor.compress(raw))
        assert rates["store_addresses"] > rates["cache_miss_addresses"]

    def test_cache_filter_distorts_patterns(self):
        """Miss traces are harder than raw address traces (same program)."""
        from repro.baselines import TCgenCompressor

        events = generate_events("swim", scale=0.2)
        compressor = TCgenCompressor()
        all_accesses = store_address_trace(events)
        misses = cache_miss_address_trace(events)
        rate_all = len(all_accesses) / len(compressor.compress(all_accesses))
        rate_miss = len(misses) / len(compressor.compress(misses))
        assert rate_all > rate_miss
