"""Tests for the tcgen-serve daemon and the synchronous client.

An in-process server runs on a background thread with its own event
loop; clients talk to it over real loopback sockets, so the full frame
sequence (REQUEST / CONTINUE / DATA / END / RESPONSE / ERROR) is
exercised exactly as in production.  The drain-on-SIGTERM contract needs
a real process and lives in ``TestGracefulDrain``.
"""

import asyncio
from concurrent.futures import ThreadPoolExecutor
import signal
import socket
import subprocess
import sys
import threading

import pytest

from repro.client import TraceClient
from repro.errors import (
    BackpressureError,
    CompressedFormatError,
    DeadlineExceededError,
    ProtocolError,
    ServiceUnavailableError,
    SpecError,
)
from repro.runtime.engine import TraceEngine
from repro.server import protocol
from repro.server.daemon import TraceServer
from repro.server.limits import ServerConfig
from repro.server.protocol import RequestHeader
from repro.spec import parse_spec
from repro.spec.presets import TCGEN_A_SPEC, TCGEN_B_SPEC
from repro.testing.faults import inject

from conftest import make_vpc_trace


class ServerThread:
    """A live TraceServer on a daemon thread (no signal handlers)."""

    def __init__(self, config: ServerConfig) -> None:
        self.server = TraceServer(config)
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("in-process server failed to start")

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            await self.server.start()
            self._started.set()
            await self.server._drain_requested.wait()
            await self.server._drain()

        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout=15)


@pytest.fixture
def server():
    handle = ServerThread(ServerConfig(port=0, queue_limit=16))
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with TraceClient("127.0.0.1", server.port, retries=4, backoff=0.02) as c:
        yield c


@pytest.fixture(scope="module")
def trace():
    return make_vpc_trace(n=3000, seed=11)


class TestRoundtrip:
    def test_compress_matches_local_engine(self, client, trace):
        remote = client.compress(TCGEN_A_SPEC, trace, chunk_records="auto")
        local = TraceEngine(parse_spec(TCGEN_A_SPEC)).compress(
            trace, chunk_records="auto"
        )
        assert remote == local

    def test_decompress_roundtrip(self, client, trace):
        blob = client.compress(TCGEN_A_SPEC, trace, chunk_records=256)
        assert client.decompress(TCGEN_A_SPEC, blob) == trace

    def test_flat_v1_container_by_default(self, client, trace):
        remote = client.compress(TCGEN_A_SPEC, trace)
        local = TraceEngine(parse_spec(TCGEN_A_SPEC)).compress(trace)
        assert remote == local

    def test_workers_do_not_change_bytes(self, client, trace):
        serial = client.compress(TCGEN_A_SPEC, trace, chunk_records=256)
        parallel = client.compress(
            TCGEN_A_SPEC, trace, chunk_records=256, workers=4
        )
        assert serial == parallel

    def test_empty_trace(self, client, empty_trace):
        blob = client.compress(TCGEN_A_SPEC, empty_trace)
        assert client.decompress(TCGEN_A_SPEC, blob) == empty_trace

    def test_eight_concurrent_clients_byte_identical(self, server, trace):
        specs = {"a": TCGEN_A_SPEC, "b": TCGEN_B_SPEC}
        expected = {
            name: TraceEngine(parse_spec(text)).compress(trace, chunk_records="auto")
            for name, text in specs.items()
        }

        def worker(index: int) -> list[str]:
            problems = []
            with TraceClient(
                "127.0.0.1", server.port, retries=8, backoff=0.02
            ) as c:
                for name, text in specs.items():
                    blob = c.compress(text, trace, chunk_records="auto")
                    if blob != expected[name]:
                        problems.append(f"client {index}: spec {name} bytes differ")
                    if c.decompress(text, blob) != trace:
                        problems.append(f"client {index}: spec {name} lossy")
            return problems

        with ThreadPoolExecutor(max_workers=8) as pool:
            failures = [p for ps in pool.map(worker, range(8)) for p in ps]
        assert failures == []

    def test_streaming_helpers(self, client, trace, tmp_path):
        import io

        compressed = io.BytesIO()
        written = client.compress_stream(
            TCGEN_A_SPEC, io.BytesIO(trace), compressed
        )
        assert written == len(compressed.getvalue())
        local = TraceEngine(parse_spec(TCGEN_A_SPEC)).compress(
            trace, chunk_records="auto"
        )
        assert compressed.getvalue() == local
        restored = io.BytesIO()
        client.decompress_stream(
            TCGEN_A_SPEC, io.BytesIO(compressed.getvalue()), restored
        )
        assert restored.getvalue() == trace


class TestSalvageAndAnalyze:
    def test_salvage_returns_report(self, client, trace):
        blob = client.compress(TCGEN_A_SPEC, trace, chunk_records=128)
        damaged = bytearray(blob)
        damaged[-30] ^= 0x40  # damage the final chunk region
        recovered, report = client.salvage(TCGEN_A_SPEC, bytes(damaged))
        assert trace.startswith(recovered)
        assert report.mode == "salvage"
        assert not report.intact

    def test_salvage_of_intact_blob(self, client, trace):
        blob = client.compress(TCGEN_A_SPEC, trace, chunk_records=128)
        recovered, report = client.salvage(TCGEN_A_SPEC, blob)
        assert recovered == trace
        assert report.intact

    def test_analyze(self, client, trace):
        text, spec_text = client.analyze(trace, budget_bytes=8 << 20)
        assert "records" in text
        parse_spec(spec_text)  # the recommendation is a valid spec


class TestTypedErrors:
    def test_corrupt_blob_maps_to_typed_error(self, client, trace):
        blob = client.compress(TCGEN_A_SPEC, trace, chunk_records="auto")
        damaged, _fault = inject(blob, "bitflip", seed=5)
        with pytest.raises(CompressedFormatError):
            client.decompress(TCGEN_A_SPEC, damaged)

    def test_bad_spec_maps_to_spec_error(self, client, trace):
        with pytest.raises(SpecError):
            client.compress("not a spec at all", trace)

    def test_connection_survives_an_error(self, client, trace):
        with pytest.raises(SpecError):
            client.compress("not a spec", trace)
        # Same connection, next request is fine.
        blob = client.compress(TCGEN_A_SPEC, trace)
        assert client.decompress(TCGEN_A_SPEC, blob) == trace

    def test_unknown_op_is_protocol_error(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            sock.sendall(
                protocol.encode_json_frame(
                    protocol.REQUEST,
                    {"v": protocol.PROTOCOL_VERSION, "op": "explode", "id": 1},
                )
            )
            header = _recv_exact(sock, protocol.HEADER_SIZE)
            frame_type, length = protocol.decode_header(header)
            assert frame_type == protocol.ERROR
            payload = protocol.decode_json_payload(_recv_exact(sock, length))
            assert payload["code"] == "bad_request"

    def test_declared_payload_over_cap_rejected(self, server, trace):
        handle = ServerThread(
            ServerConfig(port=0, max_payload_bytes=1024, queue_limit=4)
        )
        try:
            with TraceClient("127.0.0.1", handle.port, retries=0) as c:
                with pytest.raises(ProtocolError, match="payload_too_large"):
                    c.compress(TCGEN_A_SPEC, trace)
        finally:
            handle.stop()


def _recv_exact(sock: socket.socket, length: int) -> bytes:
    data = b""
    while len(data) < length:
        piece = sock.recv(length - len(data))
        if not piece:
            raise ConnectionError("early EOF")
        data += piece
    return data


class TestBackpressure:
    @pytest.fixture
    def tiny_server(self):
        handle = ServerThread(
            ServerConfig(port=0, queue_limit=1, retry_after_s=0.05)
        )
        yield handle
        handle.stop()

    def _hog_slot(self, port: int) -> socket.socket:
        """Occupy the single queue slot: get admitted, then stall."""
        sock = socket.create_connection(("127.0.0.1", port), timeout=5)
        header = RequestHeader(
            op="compress",
            request_id=1,
            payload_size=None,
            deadline_ms=None,
            params={"spec": TCGEN_A_SPEC},
        )
        sock.sendall(header.encode())
        frame_type, _ = protocol.decode_header(
            _recv_exact(sock, protocol.HEADER_SIZE)
        )
        assert frame_type == protocol.CONTINUE  # admitted; now never send data
        return sock

    def test_queue_full_rejects_with_retry_hint(self, tiny_server, trace):
        hog = self._hog_slot(tiny_server.port)
        try:
            with TraceClient(
                "127.0.0.1", tiny_server.port, retries=0
            ) as c:
                with pytest.raises(BackpressureError) as info:
                    c.compress(TCGEN_A_SPEC, trace)
            assert info.value.retry_after == pytest.approx(0.05)
        finally:
            hog.close()

    def test_client_retries_until_slot_frees(self, tiny_server, trace):
        hog = self._hog_slot(tiny_server.port)
        releaser = threading.Timer(0.3, hog.close)
        releaser.start()
        try:
            with TraceClient(
                "127.0.0.1", tiny_server.port, retries=10, backoff=0.05
            ) as c:
                blob = c.compress(TCGEN_A_SPEC, trace)
            local = TraceEngine(parse_spec(TCGEN_A_SPEC)).compress(trace)
            assert blob == local
        finally:
            releaser.cancel()
            hog.close()
        assert tiny_server.server.metrics.backpressure.child().value > 0


class TestDeadlines:
    def test_deadline_fires_and_connection_survives(self, server):
        big = make_vpc_trace(n=120_000, seed=4)
        with TraceClient("127.0.0.1", server.port, retries=2) as c:
            with pytest.raises(DeadlineExceededError):
                c.compress(TCGEN_B_SPEC, big, deadline=0.001)
            # The error frame terminated the request, not the connection.
            health = c.health()
            assert health["status"] == "ok"
            assert health["deadlines"] >= 1


class TestObservability:
    def test_health_snapshot(self, client, trace):
        client.compress(TCGEN_A_SPEC, trace)
        health = client.health()
        assert health["status"] == "ok"
        assert health["requests_ok"] >= 1
        assert health["queue_limit"] == 16
        assert health["uptime_s"] >= 0
        assert "version" in health

    def test_metrics_exposition_after_work(self, client, trace):
        blob = client.compress(TCGEN_A_SPEC, trace)
        client.decompress(TCGEN_A_SPEC, blob)
        client.compress(TCGEN_A_SPEC, trace)  # cache hit
        text = client.metrics_text()
        assert 'tcgen_requests_total{op="compress",status="ok"} 2' in text
        assert 'tcgen_requests_total{op="decompress",status="ok"} 1' in text
        assert 'tcgen_request_seconds_count{op="compress"} 2' in text
        assert "tcgen_bytes_in_total" in text
        health = client.health()
        assert health["cache_hits"] >= 2  # decompress + second compress
        assert 0 < health["cache_hit_rate"] <= 1

    def test_cache_hit_rate_reported(self, server, trace):
        with TraceClient("127.0.0.1", server.port) as c:
            for _ in range(3):
                c.compress(TCGEN_A_SPEC, trace)
            health = c.health()
        assert health["cache_misses"] == 1
        assert health["cache_hits"] == 2
        assert health["cache_hit_rate"] == pytest.approx(2 / 3, abs=1e-4)


class TestEngineCacheObservability:
    """The pool-era additions to the health/metrics surface."""

    def test_engine_disk_metrics_exposed(self, client, trace):
        client.compress(TCGEN_A_SPEC, trace)
        health = client.health()
        assert isinstance(health["engine_disk_hits"], int)
        assert isinstance(health["engine_disk_misses"], int)
        assert isinstance(health["engines_preloaded"], int)
        text = client.metrics_text()
        assert "tcgen_engine_disk_cache_hits_total" in text
        assert "tcgen_engine_disk_cache_misses_total" in text

    def test_solo_server_reports_no_worker_id(self, client, trace):
        client.compress(TCGEN_A_SPEC, trace)
        assert "worker" not in client.health()
        assert client.last_worker_id is None

    def test_spec_text_variants_share_one_engine(self, server, trace):
        """The per-connection memo keys on the text, the cache on the
        canonical hash: a reformatted spec must not build a second engine."""
        variant = TCGEN_A_SPEC.replace("\n", "\n\n") + "\n"
        with TraceClient("127.0.0.1", server.port) as c:
            first = c.compress(TCGEN_A_SPEC, trace)
            second = c.compress(variant, trace)
            health = c.health()
        assert first == second
        assert health["cache_misses"] == 1
        assert health["cache_hits"] == 1


class TestGracefulDrain:
    def test_sigterm_drains_and_exits_zero(self):
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.server",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
            ],
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = process.stderr.readline()
            assert "listening on" in line
            port = int(line.rsplit(":", 1)[1])
            raw = make_vpc_trace(n=1000)
            with TraceClient("127.0.0.1", port, retries=4) as c:
                blob = c.compress(TCGEN_A_SPEC, raw)
                assert c.decompress(TCGEN_A_SPEC, blob) == raw
            process.send_signal(signal.SIGTERM)
            returncode = process.wait(timeout=30)
            rest = process.stderr.read()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
        assert returncode == 0
        assert "drained, exiting" in rest

    def test_draining_server_refuses_new_work(self, server, trace):
        server.server._draining = True
        try:
            with TraceClient("127.0.0.1", server.port, retries=0) as c:
                with pytest.raises(ServiceUnavailableError, match="draining"):
                    c.compress(TCGEN_A_SPEC, trace)
        finally:
            server.server._draining = False


class TestMisbehavingPeers:
    def test_garbage_bytes_get_error_frame(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\0" * protocol.HEADER_SIZE)
            header = _recv_exact(sock, protocol.HEADER_SIZE)
            frame_type, length = protocol.decode_header(header)
            assert frame_type == protocol.ERROR
            payload = protocol.decode_json_payload(_recv_exact(sock, length))
            assert payload["code"] == "bad_request"

    def test_mismatched_declared_size_is_fatal(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            header = RequestHeader(
                op="compress",
                request_id=1,
                payload_size=100,  # declares 100, sends 3
                deadline_ms=None,
                params={"spec": TCGEN_A_SPEC},
            )
            sock.sendall(header.encode())
            frame_type, length = protocol.decode_header(
                _recv_exact(sock, protocol.HEADER_SIZE)
            )
            assert frame_type == protocol.CONTINUE
            _recv_exact(sock, length)  # consume the CONTINUE body
            sock.sendall(protocol.encode_frame(protocol.DATA, b"abc"))
            sock.sendall(protocol.encode_frame(protocol.END))
            frame_type, length = protocol.decode_header(
                _recv_exact(sock, protocol.HEADER_SIZE)
            )
            assert frame_type == protocol.ERROR
            payload = protocol.decode_json_payload(_recv_exact(sock, length))
            assert payload["code"] == "bad_request"
            assert "declared" in payload["message"]
