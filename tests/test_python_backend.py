"""Tests for the generated Python compressors."""

import pytest

from repro.codegen import generate_python, load_python_module
from repro.errors import CodegenError
from repro.model import OptimizationOptions, build_model
from repro.model.optimize import TABLE2_ROWS
from repro.runtime import TraceEngine
from repro.spec import tcgen_a, tcgen_b

from conftest import SPEC_VARIANTS, make_vpc_trace, spec_trace_for


def module_for(spec, options=None, codec="bzip2"):
    model = build_model(spec, options or OptimizationOptions.full())
    return load_python_module(generate_python(model, codec=codec))


class TestDifferentialAgainstEngine:
    """The paper's artifact: generated code must equal the reference."""

    @pytest.mark.parametrize("name", sorted(SPEC_VARIANTS))
    def test_identical_containers_per_spec(self, name):
        spec = SPEC_VARIANTS[name]()
        raw = spec_trace_for(spec)
        engine = TraceEngine(spec)
        module = module_for(spec)
        assert module.compress(raw) == engine.compress(raw)

    @pytest.mark.parametrize("row", [r[0] for r in TABLE2_ROWS])
    def test_identical_containers_per_ablation(self, row, small_trace):
        options = dict(TABLE2_ROWS)[row]
        engine = TraceEngine(tcgen_a(), options)
        module = module_for(tcgen_a(), options)
        assert module.compress(small_trace) == engine.compress(small_trace)

    @pytest.mark.parametrize("name", sorted(SPEC_VARIANTS))
    def test_roundtrip_per_spec(self, name):
        spec = SPEC_VARIANTS[name]()
        raw = spec_trace_for(spec)
        module = module_for(spec)
        assert module.decompress(module.compress(raw)) == raw

    def test_cross_decompression(self, small_trace):
        """Engine output decompresses with the generated module and back."""
        engine = TraceEngine(tcgen_a())
        module = module_for(tcgen_a())
        assert module.decompress(engine.compress(small_trace)) == small_trace
        assert engine.decompress(module.compress(small_trace)) == small_trace

    @pytest.mark.parametrize("codec", ["bzip2", "zlib", "lzma", "identity"])
    def test_codecs(self, codec, small_trace):
        module = module_for(tcgen_a(), codec=codec)
        engine = TraceEngine(tcgen_a(), codec=codec)
        assert module.compress(small_trace) == engine.compress(small_trace)


class TestGeneratedSourceQuality:
    """The paper's readability claims, checked mechanically."""

    def test_contains_canonical_spec(self):
        source = generate_python(build_model(tcgen_a()))
        assert "TCgen Trace Specification;" in source
        assert "PC = Field 1;" in source

    def test_spec_comment_reports_predictions_and_bytes(self):
        source = generate_python(build_model(tcgen_a()))
        assert "4 predictions" in source
        assert "10 predictions" in source

    def test_meaningful_table_names(self):
        source = generate_python(build_model(tcgen_a()))
        assert "field2_lastvalue" in source
        assert "field2_dfcm3_2_l2" in source
        assert "field1_fcm_chain" in source

    def test_dead_code_eliminated_no_stride_without_dfcm(self):
        from repro.spec import parse_spec

        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {L2 = 512: FCM1[2]};\nPC = Field 1;\n"
        )
        source = generate_python(build_model(spec))
        assert "stride" not in source

    def test_dead_code_eliminated_no_header_stream(self):
        from repro.spec import parse_spec

        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {: LV[1]};\nPC = Field 1;\n"
        )
        source = generate_python(build_model(spec))
        assert "header" not in source.split('"""')[2]  # none outside docstring

    def test_power_of_two_modulo_becomes_mask(self):
        source = generate_python(build_model(tcgen_a()))
        assert "& 65535" in source  # L1 = 65536 line selection
        assert "% 65536" not in source

    def test_no_update_guard_without_smart_policy(self):
        smart = generate_python(build_model(tcgen_a()))
        always = generate_python(
            build_model(tcgen_a(), OptimizationOptions.vpc3())
        )
        assert smart.count("if field2_lastvalue[") > always.count(
            "if field2_lastvalue["
        )

    def test_generated_source_compiles_cleanly(self):
        source = generate_python(build_model(tcgen_b()))
        compile(source, "<generated>", "exec")

    def test_single_statement_per_line(self):
        source = generate_python(build_model(tcgen_a()))
        body = source.split('"""')[2]  # skip the module docstring
        for line in body.split("\n"):
            if line.strip().startswith("#") or '"' in line or "'" in line:
                continue
            assert ";" not in line


class TestGeneratedModuleBehaviour:
    def test_usage_report(self, small_trace):
        module = module_for(tcgen_a())
        module.compress(small_trace)
        report = module.usage_report()
        assert "DFCM3[2]" in report and "miss" in report

    def test_usage_report_before_compression(self):
        assert "no compression" in module_for(tcgen_a()).usage_report()

    def test_bad_framing_raises(self):
        module = module_for(tcgen_a())
        with pytest.raises(ValueError, match="frame"):
            module.compress(b"\x00" * 17)

    def test_wrong_fingerprint_raises(self, small_trace):
        blob = module_for(tcgen_a()).compress(small_trace)
        with pytest.raises(ValueError, match="specification"):
            module_for(tcgen_b()).decompress(blob)

    def test_corrupt_code_raises(self, small_trace):
        from repro.tio.container import StreamContainer

        module = module_for(tcgen_a(), codec="identity")
        container = StreamContainer.decode(module.compress(small_trace))
        codes = bytearray(container.streams[1].data)  # field 1 code stream
        codes[0] = 0xEE  # way past field 1's miss code (4)
        container.streams[1].data = bytes(codes)
        with pytest.raises(ValueError, match="invalid code"):
            module.decompress(container.encode())

    def test_main_compresses_stdin_to_stdout(self, small_trace, monkeypatch, capsys):
        import io
        import sys

        module = module_for(tcgen_a())
        monkeypatch.setattr(
            sys, "stdin", type("S", (), {"buffer": io.BytesIO(small_trace)})()
        )
        out = io.BytesIO()
        monkeypatch.setattr(sys, "stdout", type("S", (), {"buffer": out})())
        assert module.main([]) == 0
        blob = out.getvalue()
        assert module.decompress(blob) == small_trace

    def test_main_decompress_flag(self, small_trace, monkeypatch):
        import io
        import sys

        module = module_for(tcgen_a())
        blob = module.compress(small_trace)
        monkeypatch.setattr(
            sys, "stdin", type("S", (), {"buffer": io.BytesIO(blob)})()
        )
        out = io.BytesIO()
        monkeypatch.setattr(sys, "stdout", type("S", (), {"buffer": out})())
        assert module.main(["-d"]) == 0
        assert out.getvalue() == small_trace


class TestLoader:
    def test_rejects_broken_source(self):
        with pytest.raises(CodegenError, match="compile"):
            load_python_module("def compress(:")

    def test_rejects_incomplete_module(self):
        with pytest.raises(CodegenError, match="decompress"):
            load_python_module("def compress(raw):\n    return raw\n")

    def test_modules_are_independent(self, small_trace):
        a = module_for(tcgen_a())
        b = module_for(tcgen_a())
        a.compress(small_trace)
        assert b.usage_report() == "no compression has run yet"


class TestV3ByteIdentity:
    """Generated modules and the engine must emit identical v3 containers."""

    @pytest.mark.parametrize("codec", ["bzip2", "zlib", "identity"])
    def test_chunked_output_matches_engine(self, codec):
        spec = tcgen_a()
        raw = make_vpc_trace(n=300)
        module = module_for(spec, codec=codec)
        engine = TraceEngine(spec, OptimizationOptions.full(), codec=codec)
        blob = module.compress(raw, chunk_records=64)
        assert blob[4] == 3  # v3 container
        assert engine.compress(raw, chunk_records=64) == blob
        assert engine.decompress(blob) == raw
        assert module.decompress(blob) == raw

    @pytest.mark.parametrize("name", sorted(SPEC_VARIANTS))
    def test_all_spec_variants_match(self, name):
        spec = SPEC_VARIANTS[name]()
        raw = spec_trace_for(spec)
        module = module_for(spec)
        engine = TraceEngine(spec, OptimizationOptions.full())
        blob = module.compress(raw, chunk_records=50)
        assert engine.compress(raw, chunk_records=50) == blob
        assert module.decompress(blob, workers=3) == raw

    def test_engine_v2_blobs_remain_readable(self):
        spec = tcgen_a()
        raw = make_vpc_trace(n=200)
        module = module_for(spec)
        v2 = TraceEngine(
            spec, OptimizationOptions.full(), container_version=2
        ).compress(raw, chunk_records=64)
        assert v2[4] == 2
        assert module.decompress(v2) == raw


class TestGeneratedSalvage:
    def test_salvage_skips_damaged_chunk(self):
        spec = tcgen_a()
        raw = make_vpc_trace(n=240)
        module = module_for(spec, codec="identity")
        blob = bytearray(module.compress(raw, chunk_records=60))
        # Damage chunk 0's payload: find its first byte via the engine's
        # container view so the test does not hard-code offsets.
        from repro.tio.container import ChunkedContainer

        container = ChunkedContainer.decode(bytes(blob))
        offset = len(container._encode_metadata(3).getvalue()) + 4
        offset += sum(len(s.data) for s in container.global_streams) + 4
        blob[offset] ^= 1
        with pytest.raises(ValueError):
            module.decompress(bytes(blob))
        out = module.decompress(bytes(blob), salvage=True)
        # chunk 0 (records 0..59) lost; header plus chunks 1..3 survive
        assert out == raw[:4] + raw[4 + 60 * 12 :]
        assert module._last_lost == [(0, "chunk payload damaged")]
        assert "chunk 0" in module.salvage_report()

    def test_salvage_report_clean_when_intact(self):
        spec = tcgen_a()
        raw = make_vpc_trace(n=60)
        module = module_for(spec, codec="identity")
        blob = module.compress(raw, chunk_records=30)
        assert module.decompress(blob, salvage=True) == raw
        assert module.salvage_report() == "salvage: no damage detected"
