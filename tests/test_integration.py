"""End-to-end integration: workloads -> traces -> all three compressor forms."""

import pytest

from repro import generate_compressor, tcgen_a
from repro.baselines import all_compressors
from repro.codegen.compile import find_c_compiler, generate_and_compile_c
from repro.metrics import ResultTable, measure
from repro.model import build_model
from repro.runtime import TraceEngine
from repro.traces import TRACE_KINDS, build_trace


@pytest.fixture(scope="module")
def traces():
    return {
        kind: build_trace("gzip", kind, scale=0.15) for kind in TRACE_KINDS
    }


class TestThreeImplementationsAgree:
    """Engine, generated Python, and generated C: one semantics."""

    def test_engine_and_python_identical_on_real_traces(self, traces):
        engine = TraceEngine(tcgen_a())
        module = generate_compressor(tcgen_a())
        for kind, raw in traces.items():
            assert engine.compress(raw) == module.compress(raw), kind

    @pytest.mark.skipif(find_c_compiler() is None, reason="no C compiler")
    def test_c_binary_interoperates(self, traces, tmp_path_factory):
        compiled = generate_and_compile_c(
            build_model(tcgen_a()),
            workdir=str(tmp_path_factory.mktemp("c_integ")),
        )
        module = generate_compressor(tcgen_a())
        for kind, raw in traces.items():
            blob_c = compiled.compress(raw)
            assert module.decompress(blob_c) == raw, kind
            assert compiled.decompress(module.compress(raw)) == raw, kind


class TestFullComparison:
    def test_all_seven_algorithms_lossless_on_all_kinds(self, traces):
        for kind, raw in traces.items():
            for compressor in all_compressors():
                result = measure(compressor, raw, workload="gzip", kind=kind)
                assert result.compression_rate > 0.5, (kind, compressor.name)

    def test_paper_shape_tcgen_beats_vpc3_rate(self, traces):
        """Section 7.1: TCgen outperforms VPC3 on compression rate.

        At this fixture's small scale the smart-update advantage is only a
        handful of bytes, so compare suite totals with a whisker of slack
        (the benchmark suite asserts the margin on full-size traces).
        """
        from repro.baselines import TCgenCompressor, Vpc3Compressor

        tcgen = TCgenCompressor()
        vpc3 = Vpc3Compressor()
        tcgen_total = sum(len(tcgen.compress(raw)) for raw in traces.values())
        vpc3_total = sum(len(vpc3.compress(raw)) for raw in traces.values())
        assert tcgen_total <= vpc3_total * 1.005

    def test_paper_shape_tcgen_beats_bzip2_on_addresses(self, traces):
        """Section 7.1: TCgen exceeds BZIP2 on every store-address trace."""
        from repro.baselines import Bzip2Compressor, TCgenCompressor

        raw = traces["store_addresses"]
        assert len(TCgenCompressor().compress(raw)) < len(
            Bzip2Compressor().compress(raw)
        )


class TestArbitraryFileMode:
    """Paper Section 4: a single 8-bit field with L1 = 1 makes the
    generated code a general-purpose file compressor — workable but
    "typically underperforming BZIP2", which is exactly what we see."""

    SPEC = (
        "TCgen Trace Specification;\n"
        "8-Bit Field 1 = {L1 = 1, L2 = 65536: FCM3[2], FCM1[2], LV[2]};\n"
        "PC = Field 1;\n"
    )

    def test_compresses_arbitrary_bytes(self):
        from repro import generate_compressor, parse_spec

        module = generate_compressor(parse_spec(self.SPEC))
        data = (b"the quick brown fox jumps over the lazy dog. " * 200)[:8192]
        blob = module.compress(data)
        assert module.decompress(blob) == data
        assert len(blob) < len(data)

    def test_underperforms_bzip2_as_the_paper_notes(self):
        import bz2

        from repro import generate_compressor, parse_spec

        module = generate_compressor(parse_spec(self.SPEC))
        data = (b"abcabcabd" * 1200)[:9999]
        assert len(module.compress(data)) >= len(bz2.compress(data, 9)) * 0.8

    def test_handles_binary_garbage(self):
        import numpy as np

        from repro import generate_compressor, parse_spec

        module = generate_compressor(parse_spec(self.SPEC))
        data = np.random.default_rng(1).integers(
            0, 256, 4096, dtype=np.uint8
        ).tobytes()
        assert module.decompress(module.compress(data)) == data


class TestResultPipeline:
    def test_result_table_end_to_end(self, traces):
        from repro.baselines import Bzip2Compressor, TCgenCompressor

        table = ResultTable()
        for kind, raw in traces.items():
            for compressor in (Bzip2Compressor(), TCgenCompressor()):
                table.add(measure(compressor, raw, workload="gzip", kind=kind))
        summary = table.summary("compression_rate")
        assert len(summary) == 6
        rendered = table.render("compression_rate", relative_to="TCgen")
        assert "BZIP2" in rendered
