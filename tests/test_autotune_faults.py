"""Fault injection against adaptive archives over the v3 container.

Adaptive archives wrap an ordinary container behind a spec preamble, so
they inherit the container robustness contract: corruption must surface
as a typed :class:`~repro.errors.ReproError` in strict mode, and salvage
mode must recover the intact chunks of a v3 payload with an honest
:class:`~repro.tio.container.DecodeReport`.
"""

import pytest

from repro.autotune import (
    compress_adaptive,
    decompress_adaptive,
    read_archive_spec,
    salvage_adaptive,
)
from repro.errors import CompressedFormatError, ReproError
from repro.runtime.engine import TraceEngine
from repro.spec import tcgen_a
from repro.testing.faults import FAULT_KINDS, inject
from repro.tio.container import DecodeReport

from conftest import make_vpc_trace


@pytest.fixture(scope="module")
def trace():
    return make_vpc_trace(n=4000, seed=21)


@pytest.fixture(scope="module")
def chunked_archive(trace):
    return compress_adaptive(
        trace, candidates=[tcgen_a()], refine=False, chunk_records=256
    ).archive


def _payload_offset(archive: bytes) -> int:
    _, payload = read_archive_spec(archive)
    return len(archive) - len(payload)


def _damage_payload(archive: bytes, kind: str, seed: int) -> bytes:
    """Inject a fault into the container payload, preamble left intact."""
    offset = _payload_offset(archive)
    damaged, _fault = inject(archive[offset:], kind, seed=seed)
    return archive[:offset] + damaged


class TestParallelArchives:
    def test_workers_do_not_change_archive_bytes(self, trace):
        serial = compress_adaptive(
            trace, candidates=[tcgen_a()], refine=False, chunk_records=256
        )
        threaded = compress_adaptive(
            trace,
            candidates=[tcgen_a()],
            refine=False,
            chunk_records=256,
            workers=4,
        )
        assert serial.archive == threaded.archive

    def test_chunked_archive_payload_is_v3(self, chunked_archive):
        _, payload = read_archive_spec(chunked_archive)
        assert payload[4] == 3  # container version byte

    def test_chunked_roundtrip(self, chunked_archive, trace):
        assert decompress_adaptive(chunked_archive) == trace
        assert decompress_adaptive(chunked_archive, workers=4) == trace

    def test_candidate_selection_uses_requested_container(self, trace):
        """Sizes are measured on the same settings the archive is written
        with, so the recorded winner size matches the embedded payload."""
        result = compress_adaptive(
            trace, candidates=[tcgen_a()], refine=False, chunk_records=256
        )
        _, payload = read_archive_spec(result.archive)
        assert result.candidate_sizes[result.spec_text] == len(payload)


class TestStrictMode:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_payload_faults_raise_typed_errors(
        self, chunked_archive, trace, kind, seed
    ):
        damaged = _damage_payload(chunked_archive, kind, seed)
        with pytest.raises(ReproError):
            decompress_adaptive(damaged)

    def test_preamble_damage_raises(self, chunked_archive):
        damaged = bytearray(chunked_archive)
        damaged[0] ^= 0xFF  # break the archive magic
        with pytest.raises(CompressedFormatError, match="adaptive archive"):
            decompress_adaptive(bytes(damaged))


class TestSalvageMode:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_salvage_returns_report(self, chunked_archive, trace, kind, seed):
        damaged = _damage_payload(chunked_archive, kind, seed)
        recovered, report = salvage_adaptive(damaged)
        assert isinstance(report, DecodeReport)
        assert report.mode == "salvage"
        # Recovery is a subsequence of intact chunks, never fabricated
        # bytes: whatever came back must appear at a chunk-aligned slice
        # of the original.  A prefix check covers the common case (the
        # fault lands in one chunk or the trailer).
        if recovered and not report.header_damaged:
            record_bytes = 12  # VPC evaluation format
            header_bytes = 4
            body = recovered[header_bytes:]
            assert (len(body) % record_bytes) == 0
        assert report.recovered_records + report.lost_records <= 4000

    def test_salvage_of_intact_archive_is_lossless(self, chunked_archive, trace):
        recovered, report = salvage_adaptive(chunked_archive)
        assert recovered == trace
        assert report.intact
        assert report.lost_chunks == []

    def test_salvage_skips_only_damaged_chunks(self, chunked_archive, trace):
        """A single mid-payload bitflip loses at most a couple of chunks."""
        offset = _payload_offset(chunked_archive)
        damaged = bytearray(chunked_archive)
        damaged[offset + (len(damaged) - offset) // 2] ^= 0x10
        recovered, report = salvage_adaptive(bytes(damaged))
        if report.lost_chunks:  # the flip may land in dead space
            assert len(report.lost_chunks) <= 2
            assert report.recovered_records >= 4000 - 2 * 256
            assert report.lost_records <= 2 * 256

    def test_salvage_matches_engine_salvage(self, chunked_archive, trace):
        """salvage_adaptive is exactly the embedded engine in salvage mode."""
        damaged = _damage_payload(chunked_archive, "bitflip", seed=7)
        adaptive_bytes, adaptive_report = salvage_adaptive(damaged)
        spec, payload = read_archive_spec(damaged)
        engine = TraceEngine(spec)
        engine_bytes = engine.decompress(payload, mode="salvage")
        assert adaptive_bytes == engine_bytes
        assert adaptive_report.lost_chunks == engine.last_report.lost_chunks
