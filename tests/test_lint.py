"""Tests for the ``repro.lint`` diagnostics framework and analysis passes.

One fixture specification per diagnostic code, plus the framework
contracts: inline suppression, deterministic JSON, and the code registry
staying in sync with ``docs/LINT.md``.
"""

import json

import pytest

from repro.lint import (
    CODES,
    Diagnostic,
    Severity,
    apply_suppressions,
    check_source,
    has_errors,
    lint_spec,
    lint_spec_text,
    render_json,
    render_text,
)

PREAMBLE = "TCgen Trace Specification;\n"


def codes_of(diagnostics):
    return [d.code for d in diagnostics]


def lint(text):
    return lint_spec_text(PREAMBLE + text, path="spec.tc")


# ---------------------------------------------------------------------------
# One fixture per spec-lint code
# ---------------------------------------------------------------------------


class TestSpecLintCodes:
    def test_tc001_duplicate_field(self):
        diags = lint(
            "32-Bit Field 1 = {L2 = 1024: FCM1[1]};\n"
            "32-Bit Field 1 = {L2 = 1024: LV[1]};\n"
            "PC = Field 1;\n"
        )
        assert "TC001" in codes_of(diags)
        assert "TC002" not in codes_of(diags)  # numbering check defers

    def test_tc002_non_consecutive_fields(self):
        diags = lint(
            "32-Bit Field 1 = {L2 = 1024: FCM1[1]};\n"
            "32-Bit Field 3 = {L2 = 1024: LV[1]};\n"
            "PC = Field 1;\n"
        )
        assert "TC002" in codes_of(diags)

    def test_tc003_bad_width(self):
        diags = lint("12-Bit Field 1 = {L2 = 1024: LV[1]};\nPC = Field 1;\n")
        assert "TC003" in codes_of(diags)

    def test_tc004_header_not_byte_multiple(self):
        diags = lint(
            "12-Bit Header;\n"
            "32-Bit Field 1 = {L2 = 1024: LV[1]};\nPC = Field 1;\n"
        )
        assert "TC004" in codes_of(diags)

    def test_tc005_non_power_of_two(self):
        diags = lint("32-Bit Field 1 = {L1 = 3, L2 = 100: LV[1]};\nPC = Field 1;\n")
        by_code = [d for d in diags if d.code == "TC005"]
        assert len(by_code) == 2  # both L1 and L2 reported at once

    def test_tc006_table_ceiling(self):
        diags = lint(
            "32-Bit Field 1 = {L2 = 536870912: LV[1]};\nPC = Field 1;\n"
        )
        assert "TC006" in codes_of(diags)

    def test_tc006_ceiling_via_order_shift(self):
        # L2 fits, but the order-8 shift blows past the line ceiling.
        diags = lint(
            "32-Bit Field 1 = {L2 = 16777216: FCM8[1]};\nPC = Field 1;\n"
        )
        assert "TC006" in codes_of(diags)

    def test_tc007_no_predictors_via_ast(self):
        # The grammar cannot express an empty predictor list, so this is
        # only reachable through the AST entry point.
        from repro.spec.ast import FieldSpec, TraceSpec

        spec = TraceSpec(
            header_bits=0,
            fields=(FieldSpec(bits=32, index=1, predictors=()),),
            pc_field=1,
        )
        assert "TC007" in codes_of(lint_spec(spec))

    def test_tc008_order_zero(self):
        diags = lint("32-Bit Field 1 = {L2 = 1024: FCM0[1]};\nPC = Field 1;\n")
        (diag,) = [d for d in diags if d.code == "TC008"]
        assert "no history" in diag.message

    def test_tc009_depth_out_of_range(self):
        diags = lint("32-Bit Field 1 = {L2 = 1024: LV[17]};\nPC = Field 1;\n")
        assert "TC009" in codes_of(diags)

    def test_tc010_pc_names_missing_field(self):
        diags = lint("32-Bit Field 1 = {L2 = 1024: LV[1]};\nPC = Field 9;\n")
        assert "TC010" in codes_of(diags)

    def test_tc011_pc_field_l1_not_one(self):
        diags = lint(
            "32-Bit Field 1 = {L1 = 4, L2 = 1024: FCM1[1]};\nPC = Field 1;\n"
        )
        assert "TC011" in codes_of(diags)

    def test_tc012_lex_failure(self):
        diags = lint_spec_text("not a spec", path="spec.tc")
        assert codes_of(diags) == ["TC012"]

    def test_tc013_parse_failure(self):
        diags = lint(
            "32-Bit Field 1 = {L1 = 2};\nPC = Field 1;\n"
        )
        assert codes_of(diags) == ["TC013"]
        assert diags[0].line == 2  # real source position, not 1:1

    def test_tc020_aliased_shared_table(self):
        diags = lint(
            "32-Bit Field 1 = {L2 = 1024: FCM3[2], FCM3[1]};\nPC = Field 1;\n"
        )
        (diag,) = [d for d in diags if d.code == "TC020"]
        assert diag.severity is Severity.WARNING

    def test_tc021_dominated_lv(self):
        diags = lint(
            "32-Bit Field 1 = {L2 = 1024: LV[2], LV[1]};\nPC = Field 1;\n"
        )
        assert "TC021" in codes_of(diags)

    def test_tc022_degenerate_l2(self):
        diags = lint(
            "8-Bit Field 1 = {L2 = 1024: FCM1[1]};\nPC = Field 1;\n"
        )
        (diag,) = [d for d in diags if d.code == "TC022"]
        assert "256" in diag.message  # only 2**8 contexts exist

    def test_tc023_zero_width_header(self):
        diags = lint(
            "0-Bit Header;\n"
            "32-Bit Field 1 = {L2 = 1024: LV[1]};\nPC = Field 1;\n"
        )
        (diag,) = [d for d in diags if d.code == "TC023"]
        assert diag.severity is Severity.INFO

    def test_tc024_pc_indexes_nothing(self):
        diags = lint(
            "32-Bit Field 1 = {L2 = 1024: FCM1[1]};\n"
            "64-Bit Field 2 = {L2 = 1024: LV[1]};\n"
            "PC = Field 1;\n"
        )
        assert "TC024" in codes_of(diags)

    def test_tc025_explicit_default(self):
        diags = lint(
            "32-Bit Field 1 = {L2 = 1024: FCM1[1]};\n"
            "64-Bit Field 2 = {L1 = 1, L2 = 65536: LV[1]};\n"
            "PC = Field 1;\n"
        )
        tc025 = [d for d in diags if d.code == "TC025"]
        assert len(tc025) == 2  # explicit L1 = 1 and explicit L2 = 65536

    def test_pc_fields_own_explicit_l1_1_is_exempt(self):
        # Preset A writes "L1 = 1" on the PC field deliberately; that must
        # not be flagged as repeating the default.
        diags = lint(
            "32-Bit Field 1 = {L1 = 1, L2 = 1024: FCM1[1]};\nPC = Field 1;\n"
        )
        assert "TC025" not in codes_of(diags)

    def test_tc026_small_flush_window(self):
        from repro.lint.speclint import lint_flush_policy
        from repro.spec import tcgen_a

        spec = tcgen_a()  # 12-byte records
        small = lint_flush_policy(spec, {"max_latency_ms": 5, "rate": 1000})
        (diag,) = small
        assert diag.code == "TC026" and diag.severity is Severity.WARNING
        assert "5 records" in diag.message
        # The tightest knob wins: max_bytes caps below max_records here.
        by_bytes = lint_flush_policy(
            spec, {"max_records": 4096, "max_bytes": 120}
        )
        assert "max_bytes" in by_bytes[0].message
        assert lint_flush_policy(spec, {"max_records": 64}) == []
        assert lint_flush_policy(spec, {"max_latency_ms": 5}) == []  # no rate
        assert lint_flush_policy(spec, {}) == []


class TestPresetsAreClean:
    def test_shipped_presets_have_no_warnings_or_errors(self):
        # Both presets are deliberately FCM/DFCM-heavy, so the only
        # diagnostic is the informational all-scalar-bound note (TC028).
        from repro.spec.presets import TCGEN_A_SPEC, TCGEN_B_SPEC

        for text in (TCGEN_A_SPEC, TCGEN_B_SPEC):
            diags = lint_spec_text(text)
            assert codes_of(diags) == ["TC028"]
            assert all(d.severity is Severity.INFO for d in diags)

    def test_tc028_all_scalar_bound(self):
        diags = lint(
            "32-Bit Field 1 = {L1 = 1, L2 = 1024: FCM1[1]};\nPC = Field 1;\n"
        )
        (diag,) = [d for d in diags if d.code == "TC028"]
        assert diag.severity is Severity.INFO
        assert "no field vectorizes" in diag.message

    def test_tc028_silent_when_any_field_vectorizes(self):
        diags = lint(
            "32-Bit Field 1 = {L2 = 1024: FCM1[1]};\n"
            "64-Bit Field 2 = {L2 = 1024: LV[1]};\n"
            "PC = Field 1;\n"
        )
        assert "TC028" not in codes_of(diags)


# ---------------------------------------------------------------------------
# Framework: suppression, rendering, registry
# ---------------------------------------------------------------------------


class TestSuppression:
    def test_inline_disable_mutes_matching_code(self):
        text = (
            PREAMBLE
            + "32-Bit Field 1 = {L2 = 1024: FCM3[2], FCM3[1]};"
            + "  # tcgen: disable=TC020\n"
            + "PC = Field 1;\n"
        )
        assert "TC020" not in codes_of(lint_spec_text(text))

    def test_disable_all(self):
        text = (
            PREAMBLE
            + "32-Bit Field 1 = {L2 = 1024: LV[2], LV[1]};  # tcgen: disable=all\n"
            + "PC = Field 1;\n"
        )
        assert lint_spec_text(text) == []

    def test_disable_on_other_line_does_not_mute(self):
        text = (
            PREAMBLE
            + "32-Bit Field 1 = {L2 = 1024: FCM3[2], FCM3[1]};\n"
            + "PC = Field 1;  # tcgen: disable=TC020\n"
        )
        assert "TC020" in codes_of(lint_spec_text(text))

    def test_disable_wrong_code_does_not_mute(self):
        diags = [Diagnostic("f", 1, 1, "TC020", Severity.WARNING, "m")]
        kept = apply_suppressions(diags, "line one  # tcgen: disable=TC021\n")
        assert kept == diags


class TestRendering:
    def test_text_rendering_is_ruff_style_and_sorted(self):
        diags = [
            Diagnostic("b.tc", 2, 1, "TC005", Severity.ERROR, "late"),
            Diagnostic("a.tc", 1, 3, "TC020", Severity.WARNING, "early"),
        ]
        text = render_text(diags)
        assert text.splitlines() == [
            "a.tc:1:3: TC020 early",
            "b.tc:2:1: TC005 late",
        ]

    def test_json_schema_and_determinism(self):
        diags = [
            Diagnostic("b.tc", 2, 1, "TC005", Severity.ERROR, "late"),
            Diagnostic("a.tc", 1, 3, "TC020", Severity.WARNING, "early"),
        ]
        payload = json.loads(render_json(diags))
        assert set(payload) == {"diagnostics", "errors", "warnings"}
        assert payload["errors"] == 1
        assert payload["warnings"] == 1
        assert [d["path"] for d in payload["diagnostics"]] == ["a.tc", "b.tc"]
        assert all(
            set(d) == {"path", "line", "col", "code", "severity", "message"}
            for d in payload["diagnostics"]
        )
        assert render_json(diags) == render_json(list(reversed(diags)))

    def test_unregistered_code_is_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("f", 1, 1, "TC999", Severity.ERROR, "m")

    def test_has_errors(self):
        warning = Diagnostic("f", 1, 1, "TC020", Severity.WARNING, "m")
        error = Diagnostic("f", 1, 1, "TC005", Severity.ERROR, "m")
        assert not has_errors([warning])
        assert has_errors([warning, error])


class TestRegistry:
    def test_docs_catalogue_every_code(self):
        import os

        docs = os.path.join(os.path.dirname(__file__), "..", "docs", "LINT.md")
        text = open(docs, encoding="utf-8").read()
        for code in CODES:
            assert f"### {code}" in text, f"{code} missing from docs/LINT.md"


# ---------------------------------------------------------------------------
# Concurrency lint (TC2xx)
# ---------------------------------------------------------------------------


class TestAsyncCheck:
    def test_tc201_blocking_call_in_async(self):
        diags = check_source(
            "import time\n"
            "async def handler():\n"
            "    time.sleep(1)\n"
        )
        assert codes_of(diags) == ["TC201"]

    def test_blocking_call_in_sync_helper_is_fine(self):
        diags = check_source(
            "import time\n"
            "async def handler():\n"
            "    def helper():\n"
            "        time.sleep(1)\n"
            "    helper()\n"
        )
        assert diags == []

    def test_tc202_await_under_sync_lock(self):
        diags = check_source(
            "async def handler(self):\n"
            "    with self._lock:\n"
            "        await self.flush()\n"
        )
        assert codes_of(diags) == ["TC202"]

    def test_await_under_async_lock_is_fine(self):
        diags = check_source(
            "async def handler(self):\n"
            "    async with self._async_lock:\n"
            "        await self.flush()\n"
        )
        assert diags == []

    def test_tc203_unguarded_mutation(self):
        diags = check_source(
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._lock = None\n"
            "        self._entries = {}\n"
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._entries[k] = v\n"
            "    def evict(self, k):\n"
            "        self._entries.pop(k)\n"
        )
        assert codes_of(diags) == ["TC203"]
        assert "evict" in diags[0].message

    def test_guarded_mutation_everywhere_is_fine(self):
        diags = check_source(
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._lock = None\n"
            "        self._entries = {}\n"
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._entries[k] = v\n"
            "    def evict(self, k):\n"
            "        with self._lock:\n"
            "            self._entries.pop(k)\n"
        )
        assert diags == []

    def test_repository_sources_are_clean(self):
        import os

        from repro.lint import check_paths

        src = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
        assert check_paths([src]) == []

    def test_tc204_discarded_ensure_future(self):
        diags = check_source(
            "import asyncio\n"
            "def on_exit(self):\n"
            "    asyncio.ensure_future(self.shutdown())\n"
        )
        assert codes_of(diags) == ["TC204"]

    def test_tc204_discarded_create_task_in_lambda(self):
        diags = check_source(
            "import asyncio\n"
            "def install(loop, self):\n"
            "    loop.add_signal_handler(2, lambda: asyncio.create_task(self.stop()))\n"
        )
        assert codes_of(diags) == ["TC204"]

    def test_kept_task_handle_is_fine(self):
        diags = check_source(
            "import asyncio\n"
            "def spawn(self, coro):\n"
            "    task = asyncio.ensure_future(coro)\n"
            "    self._tasks.add(task)\n"
            "    task.add_done_callback(self._tasks.discard)\n"
        )
        assert diags == []

    def test_tc201_fcntl_lock_in_async(self):
        diags = check_source(
            "import fcntl\n"
            "async def grab(handle):\n"
            "    fcntl.lockf(handle, 2)\n"
        )
        assert codes_of(diags) == ["TC201"]


# ---------------------------------------------------------------------------
# Suppression meta-diagnostic (TC027)
# ---------------------------------------------------------------------------


class TestSuppressionMetaDiagnostic:
    CLEAN = (
        "32-Bit Field 1 = {{L1 = 64, L2 = 1024: FCM3[2], FCM1[2]}};{marker}\n"
        "64-Bit Field 2 = {{L2 = 1024: LV[1]}};\n"
        "PC = Field 2;\n"
    )

    def _lint_with_marker(self, marker):
        return lint_spec_text(PREAMBLE + self.CLEAN.format(marker=marker))

    def test_unknown_code_is_tc027(self):
        diags = self._lint_with_marker("  # tcgen: disable=TC999")
        assert codes_of(diags) == ["TC027"]
        assert "TC999" in diags[0].message
        assert "suppresses nothing" in diags[0].message

    def test_retired_code_names_replacement(self):
        diags = self._lint_with_marker("  # tcgen: disable=TC101")
        assert codes_of(diags) == ["TC027"]
        assert "TC301" in diags[0].message

    def test_valid_code_and_disable_all_are_silent(self):
        assert self._lint_with_marker("  # tcgen: disable=TC020") == []
        assert self._lint_with_marker("  # tcgen: disable=all") == []

    def test_tc027_reported_even_when_spec_fails_to_parse(self):
        diags = lint_spec_text(
            "# tcgen: disable=TC998\nnot a spec\n", path="bad.tc"
        )
        assert "TC027" in codes_of(diags)

    def test_tc027_is_warning(self):
        diags = self._lint_with_marker("  # tcgen: disable=TC999")
        assert all(d.severity is Severity.WARNING for d in diags)


# ---------------------------------------------------------------------------
# SARIF rendering
# ---------------------------------------------------------------------------


class TestSarif:
    def _diags(self):
        return [
            Diagnostic("a.tc", 3, 7, "TC005", Severity.ERROR, "bad size"),
            Diagnostic("a.tc", 1, 1, "TC025", Severity.WARNING, "default"),
        ]

    def test_document_shape(self):
        from repro.lint.sarif import render_sarif

        doc = json.loads(render_sarif(self._diags()))
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "tcgen-lint"
        assert len(run["results"]) == 2

    def test_rules_and_levels(self):
        from repro.lint.sarif import render_sarif

        doc = json.loads(render_sarif(self._diags()))
        (run,) = doc["runs"]
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rules == {"TC005", "TC025"}
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels == {"TC005": "error", "TC025": "warning"}

    def test_locations_are_one_based(self):
        from repro.lint.sarif import render_sarif

        diag = Diagnostic("x.tc", 0, 0, "TC012", Severity.ERROR, "m")
        doc = json.loads(render_sarif([diag]))
        region = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        assert region == {"startLine": 1, "startColumn": 1}

    def test_deterministic(self):
        from repro.lint.sarif import render_sarif

        diags = self._diags()
        assert render_sarif(diags) == render_sarif(list(reversed(diags)))

    def test_empty_is_valid(self):
        from repro.lint.sarif import render_sarif

        doc = json.loads(render_sarif([]))
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"] == []
