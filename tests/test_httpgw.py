"""Tests for the HTTP/1.1 gateway (``repro.server.httpgw``).

A real two-worker pool runs as a subprocess; requests go through
``http.client`` so the gateway's hand-rolled HTTP parsing faces a real
peer.  Byte-identity is checked against a local in-process engine.
"""

from __future__ import annotations

import http.client
import json
import socket
import urllib.parse

import pytest

from repro.runtime.engine import TraceEngine
from repro.spec import parse_spec
from repro.spec.presets import TCGEN_A_SPEC

from conftest import make_vpc_trace
from test_supervisor import Pool


@pytest.fixture(scope="module")
def gateway():
    pool = Pool(["--workers", "2", "--http-port", "0"])
    line = pool.wait_for_line(lambda l: "http gateway on" in l)
    pool.http_port = int(line.rsplit(":", 1)[1])
    pool.worker_pids(2)
    yield pool
    assert pool.terminate() == 0


@pytest.fixture(scope="module")
def trace():
    return make_vpc_trace(n=1500, seed=31)


@pytest.fixture(scope="module")
def local_blob(trace):
    return TraceEngine(parse_spec(TCGEN_A_SPEC)).compress(
        trace, chunk_records="auto"
    )


def request(
    gateway,
    method: str,
    path: str,
    body: bytes | None = None,
    headers: dict | None = None,
) -> tuple[int, dict, bytes]:
    conn = http.client.HTTPConnection("127.0.0.1", gateway.http_port, timeout=120)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestRoundtrip:
    def test_compress_matches_local_engine(self, gateway, trace, local_blob):
        status, headers, blob = request(
            gateway,
            "POST",
            "/v1/compress?preset=tcgen_a&chunk_records=auto",
            trace,
        )
        assert status == 200
        assert blob == local_blob
        assert headers["Content-Type"] == "application/octet-stream"
        assert headers["X-TCGen-Worker"] in ("0", "1")
        assert int(headers["X-TCGen-Raw-Size"]) == len(trace)
        assert int(headers["X-TCGen-Blob-Size"]) == len(blob)

    def test_decompress_roundtrip(self, gateway, trace, local_blob):
        status, _, raw = request(
            gateway,
            "POST",
            "/v1/decompress?preset=tcgen_a&chunk_records=auto",
            local_blob,
        )
        assert status == 200
        assert raw == trace

    def test_explicit_spec_same_bytes_as_preset(self, gateway, trace, local_blob):
        query = urllib.parse.urlencode(
            {"spec": TCGEN_A_SPEC, "chunk_records": "auto"}
        )
        status, _, blob = request(
            gateway, "POST", f"/v1/compress?{query}", trace
        )
        assert status == 200
        assert blob == local_blob

    def test_ring_routes_a_spec_to_one_worker(self, gateway, trace):
        owners = set()
        for _ in range(3):
            _, headers, _ = request(
                gateway, "POST", "/v1/compress?preset=tcgen_a", trace
            )
            owners.add(headers["X-TCGen-Worker"])
        assert len(owners) == 1, f"spec bounced between workers: {owners}"

    def test_expect_100_continue(self, gateway, trace, local_blob):
        """The curl default for large bodies: Expect: 100-continue."""
        with socket.create_connection(
            ("127.0.0.1", gateway.http_port), timeout=120
        ) as sock:
            head = (
                "POST /v1/compress?preset=tcgen_a&chunk_records=auto HTTP/1.1\r\n"
                "Host: localhost\r\n"
                f"Content-Length: {len(trace)}\r\n"
                "Expect: 100-continue\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            sock.sendall(head.encode())
            interim = b""
            while b"\r\n\r\n" not in interim:
                interim += sock.recv(256)
            assert interim.startswith(b"HTTP/1.1 100")
            sock.sendall(trace)
            response = b""
            while chunk := sock.recv(65536):
                response += chunk
        status_line, _, rest = response.partition(b"\r\n")
        assert b"200" in status_line
        _, _, body = response.partition(b"\r\n\r\n")
        assert body == local_blob


class TestQueryAndAnalyze:
    @pytest.fixture(scope="class")
    def indexed_blob(self, trace):
        return TraceEngine(parse_spec(TCGEN_A_SPEC)).compress(
            trace, chunk_records=128, container_version=3, skip_index=True
        )

    def test_query_count_answers_json(self, gateway, trace, indexed_blob):
        query = urllib.parse.urlencode(
            {"preset": "tcgen_a", "op": "count", "where": "pc == 0x1000"}
        )
        status, headers, body = request(
            gateway, "POST", f"/v1/query?{query}", indexed_blob
        )
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        doc = json.loads(body)
        engine = TraceEngine(parse_spec(TCGEN_A_SPEC))
        expected = engine.query(indexed_blob, "pc == 0x1000", op="count").count
        assert doc["count"] == expected
        assert int(headers["X-TCGen-Count"]) == expected
        assert doc["total_chunks"] == int(headers["X-TCGen-Chunks-Total"])
        assert doc["index_present"] is True

    def test_query_select_answers_packed_records(self, gateway, indexed_blob):
        query = urllib.parse.urlencode(
            {"preset": "tcgen_a", "where": "record < 5", "op": "select"}
        )
        status, headers, body = request(
            gateway, "POST", f"/v1/query?{query}", indexed_blob
        )
        assert status == 200
        assert headers["Content-Type"] == "application/octet-stream"
        engine = TraceEngine(parse_spec(TCGEN_A_SPEC))
        assert len(body) == 5 * engine.format.record_bytes
        assert int(headers["X-TCGen-Count"]) == 5

    def test_query_stats_op(self, gateway, indexed_blob):
        query = urllib.parse.urlencode({"preset": "tcgen_a", "op": "stats"})
        status, headers, body = request(
            gateway, "POST", f"/v1/query?{query}", indexed_blob
        )
        assert status == 200
        doc = json.loads(body)
        assert doc["field_stats"][0]["min"] == 0x1000

    def test_query_bad_predicate_400(self, gateway, indexed_blob):
        query = urllib.parse.urlencode({"preset": "tcgen_a", "where": "f1 =="})
        status, _, body = request(
            gateway, "POST", f"/v1/query?{query}", indexed_blob
        )
        assert status == 400
        assert json.loads(body)["code"] == "bad_request"

    def test_query_corrupt_blob_422(self, gateway, indexed_blob):
        damaged = bytearray(indexed_blob)
        damaged[len(damaged) // 3] ^= 0xFF
        query = urllib.parse.urlencode({"preset": "tcgen_a", "op": "count"})
        status, _, body = request(
            gateway, "POST", f"/v1/query?{query}", bytes(damaged)
        )
        assert status == 422
        assert json.loads(body)["code"] in ("corrupt", "checksum", "truncated")

    def test_analyze_returns_spec_and_report(self, gateway, trace):
        status, headers, body = request(gateway, "POST", "/v1/analyze", trace)
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        doc = json.loads(body)
        assert doc["recommended_spec"].startswith("TCgen Trace Specification")
        assert doc["report"]

    def test_analyze_bad_budget_400(self, gateway, trace):
        status, _, body = request(
            gateway, "POST", "/v1/analyze?budget_bytes=-5", trace
        )
        assert status == 400
        assert json.loads(body)["code"] == "bad_request"
        status, _, _ = request(
            gateway, "POST", "/v1/analyze?budget_bytes=nope", trace
        )
        assert status == 400


class TestErrorMapping:
    def test_unknown_preset_400(self, gateway, trace):
        status, _, body = request(
            gateway, "POST", "/v1/compress?preset=nope", trace
        )
        assert status == 400
        assert json.loads(body)["code"] == "bad_request"

    def test_missing_spec_400(self, gateway, trace):
        status, _, body = request(gateway, "POST", "/v1/compress", trace)
        assert status == 400
        assert "spec" in json.loads(body)["message"]

    def test_bad_spec_text_400(self, gateway, trace):
        query = urllib.parse.urlencode({"spec": "not a spec at all"})
        status, _, body = request(
            gateway, "POST", f"/v1/compress?{query}", trace
        )
        assert status == 400
        assert json.loads(body)["code"] == "spec_error"

    def test_unknown_path_404(self, gateway):
        status, _, body = request(gateway, "GET", "/v2/everything")
        assert status == 404
        assert json.loads(body)["code"] == "bad_request"

    def test_wrong_method_405(self, gateway):
        status, _, _ = request(gateway, "GET", "/v1/compress?preset=tcgen_a")
        assert status == 405

    def test_corrupt_blob_422(self, gateway, local_blob):
        damaged = bytearray(local_blob)
        damaged[len(damaged) // 2] ^= 0xFF
        status, _, body = request(
            gateway, "POST", "/v1/decompress?preset=tcgen_a", bytes(damaged)
        )
        assert status == 422
        assert json.loads(body)["code"] in ("corrupt", "checksum", "truncated")

    def test_oversized_content_length_413(self, gateway):
        conn = http.client.HTTPConnection(
            "127.0.0.1", gateway.http_port, timeout=60
        )
        try:
            conn.putrequest("POST", "/v1/compress?preset=tcgen_a")
            conn.putheader("Content-Length", str(1 << 40))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 413
            assert json.loads(response.read())["code"] == "payload_too_large"
        finally:
            conn.close()

    def test_chunked_body_411(self, gateway):
        with socket.create_connection(
            ("127.0.0.1", gateway.http_port), timeout=60
        ) as sock:
            sock.sendall(
                b"POST /v1/compress?preset=tcgen_a HTTP/1.1\r\n"
                b"Host: localhost\r\n"
                b"Transfer-Encoding: chunked\r\n"
                b"Connection: close\r\n"
                b"\r\n"
            )
            response = b""
            while chunk := sock.recv(65536):
                response += chunk
        assert b" 411 " in response.split(b"\r\n", 1)[0]


class TestHealthAndMetrics:
    def test_healthz_reports_all_workers(self, gateway):
        status, headers, body = request(gateway, "GET", "/healthz")
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["workers_up"] == 2
        assert doc["worker_count"] == 2
        assert set(doc["workers"]) == {"0", "1"}

    def test_metrics_per_worker_and_pool_aggregates(self, gateway, trace):
        # Make sure at least one request has been counted.
        request(gateway, "POST", "/v1/compress?preset=tcgen_a", trace)
        status, headers, body = request(gateway, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert 'worker="0"' in text
        assert 'worker="1"' in text
        assert "tcgen_pool_workers 2" in text
        assert "tcgen_pool_workers_up 2" in text
        assert "tcgen_pool_requests_ok" in text
        # HELP/TYPE lines must not repeat per worker after the merge.
        help_lines = [
            line
            for line in text.splitlines()
            if line.startswith("# HELP tcgen_requests_total")
        ]
        assert len(help_lines) == 1

    def test_keep_alive_connection_reuse(self, gateway, trace):
        conn = http.client.HTTPConnection(
            "127.0.0.1", gateway.http_port, timeout=120
        )
        try:
            for _ in range(3):
                conn.request(
                    "POST", "/v1/compress?preset=tcgen_a", body=trace
                )
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()
