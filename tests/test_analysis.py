"""Tests for trace analysis and automatic predictor recommendation."""

import numpy as np

from repro.analysis import analyze_trace, recommend_spec, score_candidates
from repro.runtime import TraceEngine
from repro.spec.ast import PredictorKind
from repro.tio import VPC_FORMAT, pack_records
from repro.traces import build_trace


def strided_trace(n=2000, stride=8):
    pcs = np.full(n, 0x1000, dtype=np.uint64)
    data = (0x5000 + np.arange(n, dtype=np.uint64) * stride).astype(np.uint64)
    return pack_records(VPC_FORMAT, b"TST0", [pcs, data])


def repeated_trace(n=2000, period=4):
    pcs = np.full(n, 0x1000, dtype=np.uint64)
    data = np.tile(np.array([11, 22, 33, 44][:period], np.uint64), n // period + 1)[:n]
    return pack_records(VPC_FORMAT, b"TST0", [pcs, data])


class TestAnalyzeTrace:
    def test_constant_stride_detected(self):
        stats = analyze_trace(VPC_FORMAT, strided_trace(stride=16))
        data_field = stats.fields[1]
        assert data_field.constant_stride_fraction > 0.99
        assert data_field.top_strides[0][0] == 16

    def test_repeats_detected(self):
        raw = repeated_trace(period=1)  # all the same value
        stats = analyze_trace(VPC_FORMAT, raw)
        assert stats.fields[1].zero_stride_fraction > 0.99
        assert stats.fields[1].unique_values == 1

    def test_entropy_of_constant_field_is_zero(self):
        stats = analyze_trace(VPC_FORMAT, repeated_trace(period=1))
        assert stats.fields[0].value_entropy_bits == 0.0

    def test_entropy_of_random_field_is_high(self):
        rng = np.random.default_rng(0)
        pcs = np.full(1000, 4, np.uint64)
        data = rng.integers(0, 1 << 62, 1000, dtype=np.int64).view(np.uint64)
        stats = analyze_trace(VPC_FORMAT, pack_records(VPC_FORMAT, b"TST0", [pcs, data]))
        assert stats.fields[1].value_entropy_bits > 9.0  # ~log2(1000)

    def test_negative_strides_render_signed(self):
        pcs = np.full(100, 4, np.uint64)
        data = (0x9000 - np.arange(100, dtype=np.uint64) * np.uint64(8)).astype(np.uint64)
        stats = analyze_trace(VPC_FORMAT, pack_records(VPC_FORMAT, b"TST0", [pcs, data]))
        assert stats.fields[1].top_strides[0][0] == -8

    def test_render_mentions_every_field(self):
        text = analyze_trace(VPC_FORMAT, strided_trace()).render()
        assert "field 1" in text and "field 2" in text

    def test_empty_trace(self):
        raw = pack_records(VPC_FORMAT, b"TST0", [np.zeros(0, np.uint64)] * 2)
        stats = analyze_trace(VPC_FORMAT, raw)
        assert stats.record_count == 0


class TestScoreCandidates:
    def test_dfcm_wins_on_strided_data(self):
        scores = score_candidates(VPC_FORMAT, strided_trace())
        data_scores = {
            (s.predictor.kind, s.predictor.order): s.hit_ratio
            for s in scores
            if s.field_index == 2
        }
        assert data_scores[(PredictorKind.DFCM, 1)] > 0.95
        assert data_scores[(PredictorKind.DFCM, 1)] > data_scores[(PredictorKind.LV, 0)]

    def test_lv_wins_on_repeating_values(self):
        scores = score_candidates(VPC_FORMAT, repeated_trace(period=4))
        data_scores = {
            (s.predictor.kind, s.predictor.depth): s.hit_ratio
            for s in scores
            if s.field_index == 2
        }
        assert data_scores[(PredictorKind.LV, 4)] > 0.95

    def test_every_candidate_scored_for_every_field(self):
        from repro.analysis.predictability import DEFAULT_CANDIDATES

        scores = score_candidates(VPC_FORMAT, strided_trace(n=500))
        assert len(scores) == 2 * len(DEFAULT_CANDIDATES)

    def test_sampling_cap_respected(self):
        scores = score_candidates(VPC_FORMAT, strided_trace(n=5000), sample_records=100)
        assert all(s.records == 100 for s in scores)


class TestRecommendSpec:
    def test_recommended_spec_is_valid_and_works(self):
        raw = build_trace("gzip", "store_addresses", scale=0.3)
        spec = recommend_spec(VPC_FORMAT, raw)
        engine = TraceEngine(spec)  # validates internally
        blob = engine.compress(raw)
        assert engine.decompress(blob) == raw

    def test_strided_trace_gets_a_dfcm(self):
        spec = recommend_spec(VPC_FORMAT, strided_trace())
        kinds = {p.kind for p in spec.fields[1].predictors}
        assert PredictorKind.DFCM in kinds

    def test_pc_field_keeps_l1_of_one(self):
        spec = recommend_spec(VPC_FORMAT, strided_trace())
        assert spec.fields[0].l1_size == 1

    def test_budget_shrinks_tables(self):
        raw = strided_trace()
        big = recommend_spec(VPC_FORMAT, raw, budget_bytes=1 << 30)
        small = recommend_spec(VPC_FORMAT, raw, budget_bytes=1 << 20)
        from repro.model import build_model

        assert build_model(small).table_bytes() <= 1 << 20
        assert build_model(small).table_bytes() <= build_model(big).table_bytes()

    def test_recommendation_beats_naive_single_lv(self):
        """On a strided trace the recommender must find the stride."""
        from repro import generate_compressor, parse_spec

        raw = strided_trace(n=4000)
        recommended = generate_compressor(recommend_spec(VPC_FORMAT, raw))
        naive = generate_compressor(
            parse_spec(
                "TCgen Trace Specification;\n"
                "32-Bit Header;\n"
                "32-Bit Field 1 = {: LV[1]};\n"
                "64-Bit Field 2 = {: LV[1]};\n"
                "PC = Field 1;\n"
            )
        )
        assert len(recommended.compress(raw)) < len(naive.compress(raw))

    def test_recommendation_is_lint_clean(self):
        """Machine-recommended specs must produce zero lint diagnostics."""
        from repro.lint import Severity, lint_spec, lint_spec_text
        from repro.spec import format_spec

        for raw in (
            strided_trace(),
            repeated_trace(),
            build_trace("gzip", "store_addresses", scale=0.1),
        ):
            spec = recommend_spec(VPC_FORMAT, raw)
            diags = lint_spec(spec)
            assert not [d for d in diags if d.severity is Severity.ERROR]
            assert not [d for d in diags if d.severity is Severity.WARNING]
            # The formatted text round-trips through the text linter too.
            assert not [
                d
                for d in lint_spec_text(format_spec(spec))
                if d.severity is not Severity.INFO
            ]

    def test_l2_capped_to_context_space(self):
        """An 8-bit field must not get an L2 table only 64-bit contexts fill."""
        from repro.lint import Severity, lint_spec
        from repro.tio.traceformat import TraceFormat

        fmt = TraceFormat(header_bits=0, field_bits=(32, 8), pc_field=1)
        n = 2000
        pcs = np.arange(n, dtype=np.uint64) % 64
        vals = np.arange(n, dtype=np.uint64) % 7
        raw = pack_records(fmt, b"", [pcs, vals])
        spec = recommend_spec(fmt, raw)
        small = spec.field(2)
        assert small.l2_size <= 256 or all(
            p.kind is PredictorKind.LV for p in small.predictors
        )
        assert not [
            d for d in lint_spec(spec) if d.severity is Severity.WARNING
        ]
