"""Tests for the generated C compressors (skipped without a C compiler)."""

import pytest

from repro.codegen import generate_c
from repro.codegen.compile import compile_c, find_c_compiler, generate_and_compile_c
from repro.errors import CodegenError
from repro.model import OptimizationOptions, build_model
from repro.runtime import TraceEngine
from repro.spec import tcgen_a

from conftest import SPEC_VARIANTS, spec_trace_for

needs_cc = pytest.mark.skipif(
    find_c_compiler() is None, reason="no C compiler available"
)


@pytest.fixture(scope="module")
def compiled_a(tmp_path_factory):
    if find_c_compiler() is None:
        pytest.skip("no C compiler available")
    model = build_model(tcgen_a())
    return generate_and_compile_c(
        model, workdir=str(tmp_path_factory.mktemp("tcgen_c"))
    )


class TestSourceQuality:
    def test_contains_canonical_spec(self):
        source = generate_c(build_model(tcgen_a()))
        assert "TCgen Trace Specification;" in source
        assert "PC = Field 1;" in source

    def test_all_functions_static_except_main(self):
        """Paper Section 5.1: everything except main is static."""
        source = generate_c(build_model(tcgen_a()))
        for line in source.split("\n"):
            stripped = line.strip()
            if stripped.startswith("int main("):
                continue
            if "(" in stripped and stripped.endswith("{") and not stripped.startswith(
                ("if", "} else", "for", "while", "typedef", "/*", "*", "switch")
            ):
                assert stripped.startswith("static"), f"non-static: {stripped}"

    def test_no_macros_defined(self):
        source = generate_c(build_model(tcgen_a()))
        assert "#define" not in source

    def test_register_locals(self):
        source = generate_c(build_model(tcgen_a()))
        assert "register u64" in source

    def test_type_minimized_tables(self):
        source = generate_c(build_model(tcgen_a()))
        assert "static u32 *field1_fcm3_2_l2;" in source
        assert "static u64 *field2_lastvalue;" in source

    def test_unminimized_tables_are_u64(self):
        source = generate_c(
            build_model(tcgen_a(), OptimizationOptions().without("type_minimization"))
        )
        assert "static u64 *field1_fcm3_2_l2;" in source

    def test_dead_code_no_stride_without_dfcm(self):
        from repro.spec import parse_spec

        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {L2 = 512: FCM1[2]};\nPC = Field 1;\n"
        )
        assert "stride" not in generate_c(build_model(spec))

    def test_lzma_codec_rejected(self):
        with pytest.raises(CodegenError, match="codec"):
            generate_c(build_model(tcgen_a()), codec="lzma")

    def test_reasonable_length(self):
        # "typically a few hundred lines of text"
        lines = generate_c(build_model(tcgen_a())).count("\n")
        assert 300 < lines < 1500


@needs_cc
class TestCompiledBehaviour:
    def test_roundtrip(self, compiled_a, small_trace):
        blob = compiled_a.compress(small_trace)
        assert compiled_a.decompress(blob) == small_trace

    def test_container_identical_to_engine(self, compiled_a, small_trace):
        engine = TraceEngine(tcgen_a())
        engine_blob = engine.compress(small_trace)
        c_blob = compiled_a.compress(small_trace)
        # Identical when Python's bz2 wraps the same libbz2; always
        # cross-compatible at the container level.
        assert compiled_a.decompress(engine_blob) == small_trace
        assert engine.decompress(c_blob) == small_trace

    def test_empty_trace(self, compiled_a, empty_trace):
        blob = compiled_a.compress(empty_trace)
        assert compiled_a.decompress(blob) == empty_trace

    def test_rejects_garbage_on_decompress(self, compiled_a):
        with pytest.raises(CodegenError, match="failed"):
            compiled_a.decompress(b"garbage input")

    def test_usage_feedback_on_stderr(self, compiled_a, small_trace):
        import subprocess

        result = subprocess.run(
            [compiled_a.binary_path],
            input=small_trace,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        assert result.returncode == 0
        assert b"predictor usage" in result.stderr


@needs_cc
class TestAcrossConfigurations:
    @pytest.mark.parametrize(
        "name", ["single_field", "no_header", "three_fields", "pc_not_first"]
    )
    def test_specs_roundtrip_and_match_engine(self, name, tmp_path):
        spec = SPEC_VARIANTS[name]()
        raw = spec_trace_for(spec)
        model = build_model(spec)
        compiled = generate_and_compile_c(model, workdir=str(tmp_path))
        engine = TraceEngine(spec)
        blob = compiled.compress(raw)
        assert compiled.decompress(blob) == raw
        assert engine.decompress(blob) == raw
        assert compiled.decompress(engine.compress(raw)) == raw

    @pytest.mark.parametrize(
        "flag", ["smart_update", "type_minimization", "shared_tables", "fast_hash"]
    )
    def test_ablations_match_engine(self, flag, tmp_path, small_trace):
        options = OptimizationOptions().without(flag)
        model = build_model(tcgen_a(), options)
        compiled = generate_and_compile_c(model, workdir=str(tmp_path))
        engine = TraceEngine(tcgen_a(), options)
        assert engine.decompress(compiled.compress(small_trace)) == small_trace

    def test_zlib_codec(self, tmp_path, small_trace):
        model = build_model(tcgen_a())
        compiled = generate_and_compile_c(model, codec="zlib", workdir=str(tmp_path))
        engine = TraceEngine(tcgen_a(), codec="zlib")
        assert compiled.compress(small_trace) == engine.compress(small_trace)
        assert compiled.decompress(compiled.compress(small_trace)) == small_trace

    def test_identity_codec(self, tmp_path, small_trace):
        model = build_model(tcgen_a())
        compiled = generate_and_compile_c(
            model, codec="identity", workdir=str(tmp_path)
        )
        engine = TraceEngine(tcgen_a(), codec="identity")
        assert compiled.compress(small_trace) == engine.compress(small_trace)


class TestCompileErrors:
    def test_broken_source_reports_compiler_output(self, tmp_path):
        if find_c_compiler() is None:
            pytest.skip("no C compiler available")
        with pytest.raises(CodegenError, match="compilation failed"):
            compile_c("int main( { broken", workdir=str(tmp_path), libs=())
