"""Tests for the command-line entry points."""

import io
import sys

import pytest

from repro.cli import tcgen_main, trace_main

SPEC_TEXT = (
    "TCgen Trace Specification;\n"
    "32-Bit Header;\n"
    "32-Bit Field 1 = {L1 = 1, L2 = 131072: FCM3[2], FCM1[2]};\n"
    "64-Bit Field 2 = {L1 = 65536, L2 = 131072: DFCM3[2], DFCM1[2], FCM1[2], LV[4]};\n"
    "PC = Field 1;\n"
)


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.tc"
    path.write_text(SPEC_TEXT)
    return str(path)


class TestTcgen:
    def test_emits_c_by_default(self, spec_file, capsys):
        assert tcgen_main([spec_file]) == 0
        out = capsys.readouterr().out
        assert "#include <stdio.h>" in out
        assert "int main(" in out

    def test_emits_python(self, spec_file, capsys):
        assert tcgen_main([spec_file, "--lang", "python"]) == 0
        out = capsys.readouterr().out
        assert 'def compress(raw, chunk_records=None, workers=1, backend="auto"):' in out

    def test_generated_python_is_loadable(self, spec_file, capsys, small_trace):
        tcgen_main([spec_file, "--lang", "python"])
        source = capsys.readouterr().out
        from repro.codegen import load_python_module

        module = load_python_module(source)
        assert module.decompress(module.compress(small_trace)) == small_trace

    def test_reads_stdin_without_argument(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "stdin", io.StringIO(SPEC_TEXT))
        assert tcgen_main(["--lang", "python"]) == 0
        assert "def compress" in capsys.readouterr().out

    def test_parse_error_returns_spec_exit_code(self, tmp_path, capsys):
        from repro.cli import EXIT_SPEC

        bad = tmp_path / "bad.tc"
        bad.write_text("not a spec")
        assert tcgen_main([str(bad)]) == EXIT_SPEC
        assert "tcgen:" in capsys.readouterr().err

    def test_validation_error_returns_spec_exit_code(self, tmp_path, capsys):
        from repro.cli import EXIT_SPEC

        bad = tmp_path / "bad.tc"
        bad.write_text(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {L1 = 3: LV[1]};\nPC = Field 1;\n"
        )
        assert tcgen_main([str(bad)]) == EXIT_SPEC
        assert "power of two" in capsys.readouterr().err

    def test_disable_flag(self, spec_file, capsys):
        assert tcgen_main([spec_file, "--lang", "python", "--disable",
                           "smart_update"]) == 0
        source = capsys.readouterr().out
        # Always-update code has no guard on the last-value table.
        assert "if field2_lastvalue[" not in source

    def test_unknown_disable_flag_fails(self, spec_file, capsys):
        assert tcgen_main([spec_file, "--disable", "bogus"]) == 1

    def test_codec_option(self, spec_file, capsys):
        assert tcgen_main([spec_file, "--lang", "python", "--codec", "zlib"]) == 0
        assert "zlib" in capsys.readouterr().out


class TestTcgenAnalyze:
    def test_analyzes_and_recommends(self, tmp_path, capsys):
        from repro.cli import analyze_main
        from repro.traces import build_trace

        path = tmp_path / "trace.bin"
        path.write_bytes(build_trace("gzip", "store_addresses", scale=0.1))
        assert analyze_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "records" in out
        assert "recommended specification:" in out
        assert "TCgen Trace Specification;" in out

    def test_recommendation_respects_budget(self, tmp_path, capsys):
        from repro.cli import analyze_main
        from repro.spec import parse_spec
        from repro.model import build_model
        from repro.traces import build_trace

        path = tmp_path / "trace.bin"
        path.write_bytes(build_trace("gzip", "store_addresses", scale=0.1))
        assert analyze_main([str(path), "--budget-mb", "2"]) == 0
        out = capsys.readouterr().out
        spec_text = out.split("recommended specification:\n")[1]
        spec = parse_spec(spec_text)
        assert build_model(spec).table_bytes() <= 2 << 20

    def test_bad_trace_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import analyze_main

        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x00" * 17)  # does not frame into records
        assert analyze_main([str(path)]) == 2  # corrupt input, not tool failure
        assert "tcgen-analyze:" in capsys.readouterr().err


class TestTcgenBench:
    def test_prints_summary_tables(self, capsys, monkeypatch):
        from repro.cli import bench_main

        # Shrink the suite to two workloads to keep the smoke test fast
        # (bench_main imports default_suite from repro.traces at call time).
        monkeypatch.setattr(
            "repro.traces.default_suite", lambda: ["mcf", "twolf"]
        )
        assert (
            bench_main(["--scale", "0.05", "--kind", "store_addresses"]) == 0
        )
        out = capsys.readouterr().out
        assert "Compression rate (harmonic mean)" in out
        assert "relative to TCgen" in out


class TestTcgenTrace:
    def test_writes_trace_to_stdout(self, capsysbinary):
        assert trace_main(["mcf", "store_addresses", "--scale", "0.05"]) == 0
        raw = capsysbinary.readouterr().out
        assert raw[:4] == b"STA\0"
        assert (len(raw) - 4) % 12 == 0

    def test_seed_changes_output(self, capsysbinary):
        trace_main(["mcf", "load_values", "--scale", "0.05", "--seed", "1"])
        first = capsysbinary.readouterr().out
        trace_main(["mcf", "load_values", "--scale", "0.05", "--seed", "2"])
        second = capsysbinary.readouterr().out
        assert first != second

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            trace_main(["doom", "store_addresses"])


class TestExitCodes:
    """Corrupt input exits 2; spec errors exit 3; other failures exit 1."""

    def test_fail_helper_distinguishes_corruption(self, capsys):
        from repro.cli import EXIT_CORRUPT, EXIT_SPEC, _fail
        from repro.errors import (
            ChecksumError,
            CodegenError,
            CompressedFormatError,
            LexError,
            ParseError,
            SpecError,
            TraceFormatError,
            TruncatedContainerError,
            ValidationError,
        )

        assert _fail("x", CompressedFormatError("bad")) == EXIT_CORRUPT
        assert _fail("x", ChecksumError("bad", chunk_index=0)) == EXIT_CORRUPT
        assert _fail("x", TruncatedContainerError("bad")) == EXIT_CORRUPT
        assert _fail("x", TraceFormatError("bad")) == EXIT_CORRUPT
        assert _fail("x", SpecError("bad")) == EXIT_SPEC
        assert _fail("x", LexError("bad", 1, 1)) == EXIT_SPEC
        assert _fail("x", ParseError("bad", 1, 1)) == EXIT_SPEC
        assert _fail("x", ValidationError("bad")) == EXIT_SPEC
        assert _fail("x", CodegenError("bad")) == 1
        capsys.readouterr()

    def test_analyze_corrupt_trace_exits_2(self, tmp_path, capsys):
        from repro.cli import analyze_main

        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x01" * 13)
        assert analyze_main([str(path)]) == 2
        capsys.readouterr()


class TestAtomicOutput:
    def test_tcgen_writes_output_file(self, spec_file, tmp_path, capsys):
        out = tmp_path / "gen.py"
        assert tcgen_main([spec_file, "--lang", "python", "-o", str(out)]) == 0
        assert "def compress" in out.read_text()
        assert capsys.readouterr().out == ""  # nothing leaked to stdout
        assert not list(tmp_path.glob(".tmp*"))  # no temp litter

    def test_trace_writes_output_file(self, tmp_path):
        out = tmp_path / "trace.bin"
        assert trace_main(
            ["mcf", "store_addresses", "--scale", "0.05", "-o", str(out)]
        ) == 0
        raw = out.read_bytes()
        assert raw[:4] == b"STA\0"
        assert not list(tmp_path.glob(".tmp*"))


class TestVersionFlag:
    """Every console script and generated main answers ``--version``."""

    @pytest.mark.parametrize(
        "entry",
        ["tcgen_main", "trace_main", "bench_main", "analyze_main", "serve_main"],
    )
    def test_cli_version(self, entry, capsys):
        import repro
        import repro.cli as cli

        with pytest.raises(SystemExit) as info:
            getattr(cli, entry)(["--version"])
        assert info.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_generated_python_main_version(self, capsys):
        import repro
        from repro.codegen import generate_python, load_python_module
        from repro.model import build_model
        from repro.spec import tcgen_a

        module = load_python_module(generate_python(build_model(tcgen_a())))
        with pytest.raises(SystemExit) as info:
            module.main(["--version"])
        assert info.value.code == 0
        out = capsys.readouterr().out
        assert "tcgen-generated" in out
        assert repro.__version__ in out

    def test_generated_c_main_handles_version(self):
        import repro
        from repro import generate_c_source
        from repro.spec import tcgen_a

        source = generate_c_source(tcgen_a())
        assert '"--version"' in source
        assert f"tcgen-generated {repro.__version__}" in source


class TestGeneratedMainRobustness:
    """The generated module's main(): --salvage, -o, and exit code 2."""

    @pytest.fixture(scope="class")
    def module(self):
        from repro.codegen import generate_python, load_python_module
        from repro.model import OptimizationOptions, build_model
        from repro.spec import tcgen_a

        return load_python_module(
            generate_python(build_model(tcgen_a(), OptimizationOptions.full()))
        )

    def _run(self, module, argv, stdin_bytes, monkeypatch):
        stdin = io.BytesIO(stdin_bytes)
        stdout = io.BytesIO()
        monkeypatch.setattr(
            sys, "stdin", type("S", (), {"buffer": stdin})()
        )
        monkeypatch.setattr(
            sys, "stdout", type("S", (), {"buffer": stdout})()
        )
        code = module.main(argv)
        return code, stdout.getvalue()

    def test_corrupt_input_exits_2(self, module, monkeypatch, capsys):
        code, _out = self._run(module, ["-d"], b"garbage", monkeypatch)
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_salvage_recovers_and_reports(
        self, module, small_trace, monkeypatch, capsys
    ):
        blob = bytearray(module.compress(small_trace, chunk_records=16))
        blob[-20] ^= 1  # damage the last chunk's payload or CRC
        code, out = self._run(module, ["-d", "--salvage"], bytes(blob), monkeypatch)
        assert code == 0
        assert small_trace.startswith(out[:4])  # header survived
        assert out == small_trace[: len(out)]  # a clean prefix, not garbage
        assert "salvage:" in capsys.readouterr().err

    def test_output_file_is_written_atomically(
        self, module, small_trace, monkeypatch, tmp_path, capsys
    ):
        target = tmp_path / "trace.out"
        blob = module.compress(small_trace)
        code, out = self._run(
            module, ["-d", "-o", str(target)], blob, monkeypatch
        )
        assert code == 0
        assert out == b""  # went to the file, not stdout
        assert target.read_bytes() == small_trace
        assert not list(tmp_path.glob(".tcgen-*"))
        capsys.readouterr()

    def test_strict_flag_overrides_salvage(self, module, monkeypatch, capsys):
        code, _out = self._run(
            module, ["-d", "--salvage", "--strict"], b"garbage", monkeypatch
        )
        assert code == 2
        capsys.readouterr()


class TestTcgenLint:
    """The tcgen-lint front-end: spec lint, asynccheck, exit codes."""

    def test_clean_spec_exits_zero(self, spec_file, capsys):
        from repro.cli import lint_main

        assert lint_main([spec_file]) == 0
        capsys.readouterr()

    def test_error_spec_exits_3_with_ruff_style_output(self, tmp_path, capsys):
        from repro.cli import EXIT_SPEC, lint_main

        bad = tmp_path / "bad.tc"
        bad.write_text(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {L1 = 3: LV[1]};\nPC = Field 1;\n"
        )
        assert lint_main([str(bad)]) == EXIT_SPEC
        out = capsys.readouterr().out
        # ruff convention: path:line:col: CODE message
        assert f"{bad}:2:19: TC005" in out

    def test_json_output_is_deterministic(self, tmp_path, capsys):
        import json

        from repro.cli import lint_main

        bad = tmp_path / "bad.tc"
        bad.write_text(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {L1 = 4: LV[1]};\nPC = Field 1;\n"
        )
        lint_main([str(bad), "--json"])
        first = capsys.readouterr().out
        lint_main([str(bad), "--json"])
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert set(payload) == {"diagnostics", "errors", "warnings"}

    def test_reads_stdin(self, capsys, monkeypatch):
        import io
        import sys as _sys

        from repro.cli import lint_main

        monkeypatch.setattr(_sys, "stdin", io.StringIO(SPEC_TEXT))
        assert lint_main([]) == 0
        capsys.readouterr()

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        from repro.cli import EXIT_SPEC, lint_main

        spec = tmp_path / "warn.tc"
        # FCM3[1] after FCM3[2] aliases the same shared table (TC020).
        spec.write_text(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {L1 = 1, L2 = 1024: FCM3[2], FCM3[1]};\n"
            "PC = Field 1;\n"
        )
        assert lint_main([str(spec)]) == 0
        capsys.readouterr()
        assert lint_main([str(spec), "--strict"]) == EXIT_SPEC
        capsys.readouterr()

    def test_asynccheck_mode(self, tmp_path, capsys):
        from repro.cli import EXIT_SPEC, lint_main

        hazard = tmp_path / "hazard.py"
        hazard.write_text(
            "import time\n"
            "async def handler():\n"
            "    time.sleep(1)\n"
        )
        assert lint_main(["--asynccheck", str(hazard)]) == EXIT_SPEC
        assert "TC201" in capsys.readouterr().out

    def test_asynccheck_requires_paths(self, capsys):
        from repro.cli import lint_main

        assert lint_main(["--asynccheck"]) == 1
        capsys.readouterr()

    def test_missing_file_is_tool_failure(self, tmp_path, capsys):
        from repro.cli import lint_main

        assert lint_main([str(tmp_path / "nope.tc")]) == 1
        capsys.readouterr()


class TestTcgenLintCost:
    """``tcgen-lint --cost``: the IR static cost model."""

    def test_preset_names_resolve(self, capsys):
        from repro.cli import lint_main

        assert lint_main(["--cost", "tcgen-a", "tcgen-b"]) == 0
        out = capsys.readouterr().out
        assert "tcgen-a: static per-record op counts" in out
        assert "tcgen-b: static per-record op counts" in out
        assert "reads" in out and "total" in out

    def test_spec_file(self, spec_file, capsys):
        from repro.cli import lint_main

        assert lint_main(["--cost", spec_file]) == 0
        out = capsys.readouterr().out
        assert "static per-record op counts" in out
        assert "field 1" in out

    def test_state_bytes_reported(self, capsys):
        from repro.model import build_model
        from repro.spec import parse_spec, tcgen_a

        from repro.cli import lint_main

        lint_main(["--cost", "tcgen-a"])
        out = capsys.readouterr().out
        model = build_model(tcgen_a())
        assert f"state: {model.table_bytes()} bytes" in out

    def test_missing_file_is_tool_failure(self, tmp_path, capsys):
        from repro.cli import lint_main

        assert lint_main(["--cost", str(tmp_path / "nope.tc")]) == 1
        capsys.readouterr()

    def test_invalid_spec_is_spec_failure(self, tmp_path, capsys):
        from repro.cli import EXIT_SPEC, lint_main

        bad = tmp_path / "bad.tc"
        bad.write_text("not a spec\n")
        assert lint_main(["--cost", str(bad)]) == EXIT_SPEC
        capsys.readouterr()


class TestTcgenLintSarif:
    """``tcgen-lint --sarif``: code-scanning output."""

    def test_sarif_document_on_stdout(self, tmp_path, capsys):
        import json

        from repro.cli import EXIT_SPEC, lint_main

        bad = tmp_path / "bad.tc"
        bad.write_text(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {L1 = 3: LV[1]};\nPC = Field 1;\n"
        )
        assert lint_main(["--sarif", str(bad)]) == EXIT_SPEC
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert any(r["ruleId"] == "TC005" for r in results)

    def test_clean_spec_yields_only_notes(self, spec_file, capsys):
        import json

        from repro.cli import lint_main

        # The Figure-5 spec lints clean apart from the TC028 note (it is
        # scalar-bound by design: every field carries a hash-table
        # predictor, so the numpy backend has nothing to vectorize).
        assert lint_main(["--sarif", spec_file]) == 0
        doc = json.loads(capsys.readouterr().out)
        results = doc["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["TC028"]
        assert all(r["level"] == "note" for r in results)
