"""Unit and property tests for the select-fold-shift-xor hashing."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.predictors.hashing import HashParams, fold_value


class TestFold:
    def test_identity_for_narrow_values(self):
        assert fold_value(0xAB, 8, 17) == 0xAB

    def test_folds_wide_values(self):
        # 32-bit value folded to 16 bits: high half XOR low half.
        assert fold_value(0x12345678, 32, 16) == 0x5678 ^ 0x1234

    def test_fold_zero_is_zero(self):
        assert fold_value(0, 64, 17) == 0

    def test_fold_fits_mask(self):
        assert fold_value((1 << 64) - 1, 64, 13) < (1 << 13)

    @given(st.integers(0, (1 << 64) - 1), st.integers(1, 64))
    def test_fold_always_in_range(self, value, bits):
        assert 0 <= fold_value(value, 64, bits) < (1 << bits)

    @given(st.integers(0, (1 << 64) - 1), st.integers(0, (1 << 64) - 1))
    def test_fold_distributes_over_xor(self, a, b):
        # XOR-linearity, the property that makes folding incremental-friendly.
        assert fold_value(a, 64, 16) ^ fold_value(b, 64, 16) == fold_value(
            a ^ b, 64, 16
        )


class TestParams:
    def test_paper_sizing(self):
        # Order-3 with L2 = 131072: table gets L2 * 2^(x-1) = 524288 lines.
        params = HashParams.derive(32, 131072, 3)
        assert params.order_lines(3) == 524288
        assert params.order_lines(1) == 131072

    def test_wide_field_shift_is_one(self):
        params = HashParams.derive(64, 65536, 3)
        assert params.shift == 1

    def test_small_field_gets_larger_shift(self):
        params = HashParams.derive(8, 131072, 3)
        assert params.shift > 1

    def test_adaptive_shift_can_be_disabled(self):
        params = HashParams.derive(8, 131072, 3, adaptive_shift=False)
        assert params.shift == 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            HashParams.derive(32, 1000, 1)

    def test_order_mask_matches_lines(self):
        params = HashParams.derive(32, 1024, 2)
        assert params.order_mask(2) == params.order_lines(2) - 1


class TestIncrementalEqualsScratch:
    def _run(self, width, l2, max_order, values):
        params = HashParams.derive(width, l2, max_order)
        chain = params.initial_chain()
        history: list[int] = []
        mask = (1 << width) - 1
        for value in values:
            value &= mask
            params.absorb(chain, value)
            history.insert(0, value)
            del history[max_order:]
            for order in range(1, max_order + 1):
                assert chain[order - 1] == params.scratch_hash(history, order), (
                    f"order {order} diverged after value {value:#x}"
                )

    def test_basic_sequence(self):
        self._run(32, 1024, 3, [1, 2, 3, 4, 5, 1, 2, 3])

    def test_wide_values(self):
        self._run(64, 512, 3, [(1 << 60) + i * 7919 for i in range(20)])

    def test_small_field(self):
        self._run(8, 4096, 4, list(range(40)))

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 3).map(lambda i: [8, 16, 32, 64][i]),
        st.integers(4, 12).map(lambda k: 1 << k),
        st.integers(1, 4),
        st.lists(st.integers(0, (1 << 64) - 1), min_size=1, max_size=30),
    )
    def test_property(self, width, l2, max_order, values):
        self._run(width, l2, max_order, values)

    def test_indices_fit_their_tables(self):
        params = HashParams.derive(64, 256, 3)
        chain = params.initial_chain()
        for value in range(1000, 1100):
            params.absorb(chain, value * 2654435761)
            for order in range(1, 4):
                assert 0 <= chain[order - 1] < params.order_lines(order)

    def test_lower_order_index_is_free_prefix(self):
        """The intermediate chain slots ARE the lower-order indices."""
        params = HashParams.derive(32, 1024, 3)
        solo = HashParams.derive(32, 1024, 1)
        chain3 = params.initial_chain()
        chain1 = solo.initial_chain()
        # Identical shift required for the comparison to be meaningful.
        assert params.shift == solo.shift
        for value in [5, 9, 5, 7, 5, 9]:
            params.absorb(chain3, value)
            solo.absorb(chain1, value)
            assert chain3[0] == chain1[0]
