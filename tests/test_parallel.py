"""Tests for the chunked v2 container and the parallel execution layer.

The load-bearing invariants:

- a v2 (chunked) compression is lossless and **byte-identical** no matter
  how many workers produced it — parallelism must never leak into the
  output;
- v1 blobs written before the chunked format existed still decode;
- corrupted or truncated v2 framing fails loudly with
  :class:`~repro.errors.CompressedFormatError`, never garbage output;
- streaming iteration over a v2 container only post-decompresses the
  chunks it actually visits.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import CompressedFormatError
from repro.runtime import streaming
from repro.runtime.engine import TraceEngine
from repro.runtime.parallel import (
    available_parallelism,
    chunk_spans,
    map_ordered,
    resolve_workers,
)
from repro.spec import tcgen_a
from repro.tio.container import (
    ChunkedContainer,
    StreamContainer,
    as_chunked,
    container_version,
    decode_container,
    default_chunk_records,
)

from conftest import SPEC_VARIANTS, make_vpc_trace, spec_trace_for


class TestParallelPrimitives:
    def test_available_parallelism_positive(self):
        assert available_parallelism() >= 1

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7
        assert resolve_workers(0) == available_parallelism()

    def test_resolve_workers_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            resolve_workers(-2)

    def test_chunk_spans(self):
        assert chunk_spans(10, 4) == [(0, 4), (4, 4), (8, 2)]
        assert chunk_spans(8, 4) == [(0, 4), (4, 4)]
        assert chunk_spans(3, 10) == [(0, 3)]
        assert chunk_spans(0, 4) == []

    def test_chunk_spans_rejects_bad_size(self):
        with pytest.raises(ValueError, match=">= 1"):
            chunk_spans(10, 0)

    def test_map_ordered_serial(self):
        assert map_ordered(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]

    def test_map_ordered_threads_preserve_order(self):
        def slow_identity(x):
            time.sleep((7 - x) * 0.005)  # later items finish first
            return x

        items = list(range(8))
        assert map_ordered(slow_identity, items, workers=4) == items

    def test_map_ordered_processes_preserve_order(self):
        assert map_ordered(abs, [-3, 2, -1, 0], workers=2, kind="process") == [
            3,
            2,
            1,
            0,
        ]

    def test_map_ordered_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="executor kind"):
            map_ordered(abs, [1], workers=2, kind="fibers")

    def test_default_chunk_records_targets_a_megabyte(self):
        assert default_chunk_records(12) == (1 << 20) // 12
        assert default_chunk_records(1 << 21) == 1  # huge records: 1 per chunk


class TestChunkedRoundtrip:
    @pytest.mark.parametrize("name", sorted(SPEC_VARIANTS))
    def test_chunked_roundtrip_all_specs(self, name):
        spec = SPEC_VARIANTS[name]()
        raw = spec_trace_for(spec)
        engine = TraceEngine(spec)
        blob = engine.compress(raw, chunk_records=150)
        assert container_version(blob) == 3
        assert engine.decompress(blob) == raw

    @pytest.mark.parametrize("name", sorted(SPEC_VARIANTS))
    def test_v2_escape_hatch_roundtrip(self, name):
        spec = SPEC_VARIANTS[name]()
        raw = spec_trace_for(spec)
        engine = TraceEngine(spec)
        blob = engine.compress(raw, chunk_records=150, container_version=2)
        assert container_version(blob) == 2
        assert engine.decompress(blob) == raw

    def test_v2_and_v3_carry_identical_streams(self, small_trace):
        # The integrity framing wraps the same compressed payloads: both
        # versions must decode to the same container contents.
        engine = TraceEngine(tcgen_a())
        v2 = decode_container(engine.compress(small_trace, chunk_records=400, container_version=2))
        v3 = decode_container(engine.compress(small_trace, chunk_records=400))
        assert v2.version == 2 and v3.version == 3
        assert [s.data for s in v2.global_streams] == [s.data for s in v3.global_streams]
        assert [
            (c.record_count, [s.data for s in c.streams]) for c in v2.chunks
        ] == [(c.record_count, [s.data for s in c.streams]) for c in v3.chunks]

    def test_workers_do_not_change_the_bytes(self, small_trace):
        engine = TraceEngine(tcgen_a())
        serial = engine.compress(small_trace, chunk_records=400)
        threaded = engine.compress(small_trace, chunk_records=400, workers=4)
        assert serial == threaded
        assert engine.decompress(serial, workers=4) == small_trace

    def test_process_executor_matches_serial(self, small_trace):
        engine = TraceEngine(tcgen_a())
        serial = engine.compress(small_trace, chunk_records=400)
        forked = engine.compress(
            small_trace, chunk_records=400, workers=2, executor="process"
        )
        assert serial == forked
        assert (
            engine.decompress(serial, workers=2, executor="process") == small_trace
        )

    def test_exact_multiple_chunking(self):
        raw = make_vpc_trace(n=1000)
        engine = TraceEngine(tcgen_a())
        blob = engine.compress(raw, chunk_records=250)
        container = decode_container(blob)
        assert [chunk.record_count for chunk in container.chunks] == [250] * 4
        assert engine.decompress(blob) == raw

    def test_auto_chunk_sizing(self, small_trace):
        engine = TraceEngine(tcgen_a())
        blob = engine.compress(small_trace, chunk_records="auto")
        assert container_version(blob) == 3
        container = decode_container(blob)
        assert container.chunk_records == default_chunk_records(
            engine.model.spec.record_bytes
        )
        assert engine.decompress(blob) == small_trace

    def test_empty_trace_v2(self, empty_trace):
        engine = TraceEngine(tcgen_a())
        blob = engine.compress(empty_trace, chunk_records=100)
        assert container_version(blob) == 3
        assert engine.decompress(blob) == empty_trace

    def test_v1_blobs_still_decode(self, small_trace):
        engine = TraceEngine(tcgen_a())
        blob = engine.compress(small_trace)  # no chunk_records: v1
        assert container_version(blob) == 1
        assert engine.decompress(blob) == small_trace
        assert engine.decompress(blob, workers=4) == small_trace

    def test_chunking_changes_state_not_content(self, small_trace):
        # Different chunk sizes give different bytes (state resets) but the
        # same decompressed trace.
        engine = TraceEngine(tcgen_a())
        coarse = engine.compress(small_trace, chunk_records=1500)
        fine = engine.compress(small_trace, chunk_records=100)
        assert coarse != fine
        assert engine.decompress(coarse) == engine.decompress(fine) == small_trace

    def test_engine_rejects_bad_chunk_records(self, small_trace):
        engine = TraceEngine(tcgen_a())
        with pytest.raises(ValueError, match="chunk_records"):
            engine.compress(small_trace, chunk_records=-5)


class TestCorruptFraming:
    @pytest.fixture
    def v2_blob(self, small_trace):
        return TraceEngine(tcgen_a()).compress(small_trace, chunk_records=300)

    def test_truncated_in_chunk_table(self, v2_blob):
        with pytest.raises(CompressedFormatError):
            decode_container(v2_blob[:20])

    def test_truncated_in_payloads(self, v2_blob):
        with pytest.raises(CompressedFormatError):
            decode_container(v2_blob[:-3])

    def test_trailing_garbage(self, v2_blob):
        with pytest.raises(CompressedFormatError, match="trailing"):
            decode_container(v2_blob + b"\x00\x00")

    def test_chunk_count_does_not_cover_records(self, v2_blob):
        container = decode_container(v2_blob)
        container.record_count += 1
        with pytest.raises(CompressedFormatError, match="chunk table covers"):
            decode_container(container.encode())

    def test_zero_record_chunk_rejected(self, v2_blob):
        container = decode_container(v2_blob)
        container.chunks[-1].record_count = 0
        with pytest.raises(CompressedFormatError, match="holds no records"):
            decode_container(container.encode())

    def test_short_middle_chunk_rejected(self, v2_blob):
        container = decode_container(v2_blob)
        assert len(container.chunks) > 2
        container.chunks[0].record_count -= 1
        with pytest.raises(CompressedFormatError, match="every chunk but the last"):
            decode_container(container.encode())

    def test_oversized_last_chunk_rejected(self, v2_blob):
        container = decode_container(v2_blob)
        container.chunks[-1].record_count = container.chunk_records + 1
        with pytest.raises(CompressedFormatError, match="more than the declared"):
            decode_container(container.encode())

    def test_fingerprint_checked(self, v2_blob):
        with pytest.raises(CompressedFormatError, match="fingerprint"):
            decode_container(v2_blob, expected_fingerprint=0xDEAD)

    def test_engine_rejects_wrong_stream_count(self, v2_blob, small_trace):
        container = decode_container(v2_blob)
        for chunk in container.chunks:
            chunk.streams = chunk.streams[:-1]
        with pytest.raises(CompressedFormatError, match="streams"):
            TraceEngine(tcgen_a()).decompress(container.encode())

    def test_as_chunked_view_of_v1(self, small_trace):
        blob = TraceEngine(tcgen_a()).compress(small_trace)
        container = decode_container(blob)
        assert isinstance(container, StreamContainer)
        chunked = as_chunked(container, global_streams=1)
        assert isinstance(chunked, ChunkedContainer)
        assert len(chunked.global_streams) == 1
        assert len(chunked.chunks) == 1
        assert chunked.chunks[0].record_count == container.record_count


class TestStreamingChunks:
    @pytest.fixture
    def setup(self):
        spec = tcgen_a()
        raw = make_vpc_trace(n=2000)
        blob = TraceEngine(spec).compress(raw, chunk_records=500)
        return spec, raw, blob

    def _count_decodes(self, monkeypatch):
        calls = []
        real = streaming._decode

        def counting(payload):
            calls.append(payload)
            return real(payload)

        monkeypatch.setattr(streaming, "_decode", counting)
        return calls

    def test_v2_iteration_matches_v1(self, setup):
        spec, raw, blob = setup
        flat = TraceEngine(spec).compress(raw)
        assert list(streaming.iter_records(spec, blob)) == list(
            streaming.iter_records(spec, flat)
        )

    def test_seek_skips_earlier_chunks(self, setup, monkeypatch):
        spec, raw, blob = setup
        calls = self._count_decodes(monkeypatch)
        records = list(streaming.iter_records(spec, blob, start=1600))
        assert len(records) == 400
        # Only the last of four chunks was touched: 2 fields x 2 streams.
        assert len(calls) == 4

    def test_early_stop_skips_later_chunks(self, setup, monkeypatch):
        spec, raw, blob = setup
        calls = self._count_decodes(monkeypatch)
        iterator = streaming.iter_records(spec, blob)
        for _ in range(10):
            next(iterator)
        iterator.close()
        assert len(calls) == 4  # first chunk only

    def test_seek_result_matches_full_iteration(self, setup):
        spec, raw, blob = setup
        everything = list(streaming.iter_records(spec, blob))
        assert list(streaming.iter_records(spec, blob, start=777)) == everything[777:]

    def test_chunk_count(self, setup):
        spec, raw, blob = setup
        assert streaming.chunk_count(spec, blob) == 4
        flat = TraceEngine(spec).compress(raw)
        assert streaming.chunk_count(spec, flat) == 1

    def test_read_header_from_v2(self, setup):
        spec, raw, blob = setup
        assert streaming.read_header(spec, blob) == b"VPC3"


class TestWorkerFailureRecovery:
    """Crashed worker processes must never change results, only latency."""

    class _ExplodingPool:
        """Stands in for ProcessPoolExecutor; every map dies like an OOM kill."""

        def __init__(self, max_workers):
            type(self).attempts.append(max_workers)

        attempts: list[int] = []

        def __enter__(self):
            return self

        def __exit__(self, *exc_info):
            return False

        def map(self, fn, items):
            from concurrent.futures.process import BrokenProcessPool

            raise BrokenProcessPool("a child process terminated abruptly")

    def test_broken_pool_falls_back_to_serial(self, monkeypatch):
        from repro.runtime import parallel

        self._ExplodingPool.attempts = []
        monkeypatch.setattr(parallel, "ProcessPoolExecutor", self._ExplodingPool)
        sleeps: list[float] = []
        monkeypatch.setattr(parallel.time, "sleep", sleeps.append)
        assert parallel.map_ordered(abs, [-3, 2, -1], workers=2, kind="process") == [3, 2, 1]
        assert len(self._ExplodingPool.attempts) == parallel.PROCESS_POOL_RETRIES + 1
        # Bounded exponential backoff between pool rebuilds.
        assert sleeps == [
            parallel.PROCESS_POOL_BACKOFF_SECONDS * (2**n)
            for n in range(parallel.PROCESS_POOL_RETRIES)
        ]

    def test_broken_pool_retry_succeeds(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        from repro.runtime import parallel

        calls = {"n": 0}

        class FlakyPool:
            def __init__(self, max_workers):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def map(self, fn, items):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise BrokenProcessPool("first pool died")
                return map(fn, items)

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", FlakyPool)
        monkeypatch.setattr(parallel.time, "sleep", lambda seconds: None)
        assert parallel.map_ordered(abs, [-1, -2], workers=2, kind="process") == [1, 2]
        assert calls["n"] == 2

    def test_fn_exceptions_are_not_retried(self, monkeypatch):
        from repro.runtime import parallel

        def boom(x):
            raise RuntimeError("bug in fn")

        monkeypatch.setattr(parallel.time, "sleep", lambda s: pytest.fail("retried"))
        with pytest.raises(RuntimeError, match="bug in fn"):
            parallel.map_ordered(boom, [1, 2], workers=2, kind="thread")

    def test_compress_bytes_identical_under_worker_crashes(self, small_trace, monkeypatch):
        from repro.runtime import parallel

        engine = TraceEngine(tcgen_a())
        expected = engine.compress(small_trace, chunk_records=400)
        self._ExplodingPool.attempts = []
        monkeypatch.setattr(parallel, "ProcessPoolExecutor", self._ExplodingPool)
        monkeypatch.setattr(parallel.time, "sleep", lambda seconds: None)
        crashed = engine.compress(
            small_trace, chunk_records=400, workers=2, executor="process"
        )
        assert self._ExplodingPool.attempts  # the process path really ran
        assert crashed == expected
        assert engine.decompress(crashed, workers=2, executor="process") == small_trace
