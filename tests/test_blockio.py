"""Unit tests for the buffered little-endian readers and writers."""

import io

import pytest

from repro.errors import CompressedFormatError
from repro.tio.blockio import ByteReader, ByteWriter, copy_blocks


class TestByteWriter:
    def test_empty_writer_has_no_bytes(self):
        assert ByteWriter().getvalue() == b""

    def test_write_bytes_appends(self):
        w = ByteWriter()
        w.write_bytes(b"ab")
        w.write_bytes(b"cd")
        assert w.getvalue() == b"abcd"

    def test_len_tracks_size(self):
        w = ByteWriter()
        w.write_u32(1)
        assert len(w) == 4

    @pytest.mark.parametrize(
        "value,width,expected",
        [
            (0, 1, b"\x00"),
            (0xAB, 1, b"\xab"),
            (0x1234, 2, b"\x34\x12"),
            (0xDEADBEEF, 4, b"\xef\xbe\xad\xde"),
            (1, 8, b"\x01" + b"\x00" * 7),
        ],
    )
    def test_write_uint_little_endian(self, value, width, expected):
        w = ByteWriter()
        w.write_uint(value, width)
        assert w.getvalue() == expected

    def test_write_uint_masks_overflow(self):
        w = ByteWriter()
        w.write_uint(0x1FF, 1)
        assert w.getvalue() == b"\xff"

    def test_u8_u16_u32_u64_shortcuts(self):
        w = ByteWriter()
        w.write_u8(1)
        w.write_u16(2)
        w.write_u32(3)
        w.write_u64(4)
        assert len(w) == 15

    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 1 << 20, (1 << 64) - 1])
    def test_varint_roundtrip(self, value):
        w = ByteWriter()
        w.write_varint(value)
        assert ByteReader(w.getvalue()).read_varint() == value

    def test_varint_rejects_negative(self):
        with pytest.raises(ValueError):
            ByteWriter().write_varint(-1)

    def test_varint_small_values_are_one_byte(self):
        w = ByteWriter()
        w.write_varint(127)
        assert len(w) == 1

    @pytest.mark.parametrize("value", [0, 1, -1, 63, -64, 1 << 30, -(1 << 30)])
    def test_svarint_roundtrip(self, value):
        w = ByteWriter()
        w.write_svarint(value)
        assert ByteReader(w.getvalue()).read_svarint() == value


class TestByteReader:
    def test_read_exact_bytes(self):
        r = ByteReader(b"hello")
        assert r.read_bytes(2) == b"he"
        assert r.read_bytes(3) == b"llo"
        assert r.at_end()

    def test_truncated_read_raises(self):
        r = ByteReader(b"ab")
        with pytest.raises(CompressedFormatError, match="truncated"):
            r.read_bytes(3)

    def test_remaining_and_position(self):
        r = ByteReader(b"abcd")
        r.read_bytes(1)
        assert r.position == 1
        assert r.remaining() == 3

    def test_read_uint_little_endian(self):
        assert ByteReader(b"\x34\x12").read_u16() == 0x1234

    def test_read_u64(self):
        r = ByteReader((123456789).to_bytes(8, "little"))
        assert r.read_u64() == 123456789

    def test_varint_too_long_raises(self):
        r = ByteReader(b"\x80" * 11)
        with pytest.raises(CompressedFormatError, match="varint"):
            r.read_varint()

    def test_varint_truncated_raises(self):
        r = ByteReader(b"\x80")
        with pytest.raises(CompressedFormatError):
            r.read_varint()


class TestCopyBlocks:
    def test_copies_everything(self):
        src = io.BytesIO(b"x" * 100_000)
        dst = io.BytesIO()
        copied = copy_blocks(src, dst, block_size=4096)
        assert copied == 100_000
        assert dst.getvalue() == b"x" * 100_000

    def test_empty_source(self):
        dst = io.BytesIO()
        assert copy_blocks(io.BytesIO(b""), dst) == 0
        assert dst.getvalue() == b""
