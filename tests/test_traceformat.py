"""Unit tests for trace formats and record packing."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.tio.traceformat import TraceFormat, VPC_FORMAT, pack_records, unpack_records


class TestTraceFormat:
    def test_vpc_format_geometry(self):
        assert VPC_FORMAT.header_bytes == 4
        assert VPC_FORMAT.record_bytes == 12
        assert VPC_FORMAT.field_bytes == (4, 8)

    def test_rejects_unaligned_header(self):
        with pytest.raises(TraceFormatError, match="multiple of 8"):
            TraceFormat(header_bits=12, field_bits=(32,))

    def test_rejects_empty_fields(self):
        with pytest.raises(TraceFormatError, match="at least one field"):
            TraceFormat(header_bits=0, field_bits=())

    @pytest.mark.parametrize("bits", [7, 12, 24, 128])
    def test_rejects_unsupported_widths(self, bits):
        with pytest.raises(TraceFormatError, match="unsupported"):
            TraceFormat(header_bits=0, field_bits=(bits,))

    def test_rejects_bad_pc_field(self):
        with pytest.raises(TraceFormatError, match="PC field"):
            TraceFormat(header_bits=0, field_bits=(32,), pc_field=2)

    def test_record_count(self):
        fmt = TraceFormat(header_bits=32, field_bits=(32, 64))
        assert fmt.record_count(b"\x00" * (4 + 36)) == 3

    def test_record_count_rejects_bad_framing(self):
        fmt = TraceFormat(header_bits=32, field_bits=(32, 64))
        with pytest.raises(TraceFormatError, match="frame"):
            fmt.record_count(b"\x00" * 17)

    def test_field_dtypes_are_little_endian(self):
        import sys

        fmt = TraceFormat(header_bits=0, field_bits=(8, 16, 32, 64))
        allowed = {"<", "|"}  # '|' for single-byte dtypes
        if sys.byteorder == "little":
            allowed.add("=")  # numpy normalizes '<' to native on LE hosts
        for dtype in fmt.field_dtypes():
            assert dtype.byteorder in allowed


class TestPackUnpack:
    def test_roundtrip(self):
        pcs = np.array([1, 2, 3], dtype=np.uint64)
        data = np.array([10, 20, 30], dtype=np.uint64)
        raw = pack_records(VPC_FORMAT, b"HEAD", [pcs, data])
        header, cols = unpack_records(VPC_FORMAT, raw)
        assert header == b"HEAD"
        assert cols[0].tolist() == [1, 2, 3]
        assert cols[1].tolist() == [10, 20, 30]

    def test_byte_layout_is_little_endian(self):
        raw = pack_records(
            VPC_FORMAT,
            b"\x00" * 4,
            [np.array([0x01020304], np.uint64), np.array([0xAA], np.uint64)],
        )
        assert raw[4:8] == b"\x04\x03\x02\x01"
        assert raw[8] == 0xAA

    def test_empty_trace(self):
        raw = pack_records(
            VPC_FORMAT, b"HEAD", [np.zeros(0, np.uint64), np.zeros(0, np.uint64)]
        )
        assert raw == b"HEAD"
        header, cols = unpack_records(VPC_FORMAT, raw)
        assert len(cols[0]) == 0

    def test_wrong_header_size_rejected(self):
        with pytest.raises(TraceFormatError, match="header"):
            pack_records(VPC_FORMAT, b"TOOLONGHEADER", [np.zeros(1, np.uint64)] * 2)

    def test_wrong_column_count_rejected(self):
        with pytest.raises(TraceFormatError, match="columns"):
            pack_records(VPC_FORMAT, b"HEAD", [np.zeros(1, np.uint64)])

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(TraceFormatError, match="lengths"):
            pack_records(
                VPC_FORMAT, b"HEAD", [np.zeros(1, np.uint64), np.zeros(2, np.uint64)]
            )

    def test_values_masked_to_field_width(self):
        raw = pack_records(
            VPC_FORMAT,
            b"HEAD",
            [np.array([1 << 33], np.uint64), np.array([5], np.uint64)],
        )
        _, cols = unpack_records(VPC_FORMAT, raw)
        assert cols[0][0] == (1 << 33) % (1 << 32)

    def test_max_values_survive(self):
        pcs = np.array([(1 << 32) - 1], np.uint64)
        data = np.array([(1 << 64) - 1], np.uint64)
        raw = pack_records(VPC_FORMAT, b"HEAD", [pcs, data])
        _, cols = unpack_records(VPC_FORMAT, raw)
        assert cols[0][0] == (1 << 32) - 1
        assert cols[1][0] == (1 << 64) - 1
