"""Differential proof that IR-founded elision is output-preserving.

The backends consume liveness/range facts (``ir_facts=True``, the
default) to drop masks and guards the analysis proved redundant.
``ir_facts=False`` reproduces the pre-IR generators byte-for-byte, so
these tests pin the whole claim: the two variants differ in source
exactly where the proofs say they may, and the *compressed bytes* they
produce are identical on every preset — for the generated Python
module, the standalone C filter, and the shared-library kernel.
"""

import subprocess

import pytest

from repro.codegen import (
    generate_c,
    generate_c_library,
    generate_python,
    load_python_module,
)
from repro.codegen.compile import compile_c, find_c_compiler
from repro.model import OptimizationOptions, build_model
from repro.spec import parse_spec
from repro.spec.presets import TCGEN_A_SPEC, TCGEN_B_SPEC

from conftest import make_random_trace, spec_trace_for

PRESETS = {"A": TCGEN_A_SPEC, "B": TCGEN_B_SPEC}

needs_cc = pytest.mark.skipif(
    find_c_compiler() is None, reason="no C compiler available"
)


def model_for(preset):
    return build_model(parse_spec(PRESETS[preset]), OptimizationOptions.full())


class TestSourceDelta:
    """The elided source differs only in proven-redundant operations."""

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_python_delta_is_masks_only(self, preset):
        model = model_for(preset)
        base = generate_python(model, ir_facts=False).splitlines()
        lean = generate_python(model, ir_facts=True).splitlines()
        removed = [l for l in base if l not in lean]
        changed = [l for l in lean if l not in base]
        # Every changed line is a store that lost its `& 0x...` mask.
        assert changed, "elision produced no source change"
        for line in changed:
            assert "= fold_" in line
        for line in removed:
            assert "& 0x" in line or "&amp;" in line

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_c_delta_is_masks_only(self, preset):
        model = model_for(preset)
        base = generate_c(model, ir_facts=False).splitlines()
        lean = generate_c(model, ir_facts=True).splitlines()
        changed = [l for l in lean if l not in base]
        assert changed, "elision produced no source change"
        for line in changed:
            assert "fold_" in line

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_facts_off_is_deterministic(self, preset):
        model = model_for(preset)
        assert generate_python(model, ir_facts=False) == generate_python(
            model, ir_facts=False
        )
        assert generate_c(model, ir_facts=False) == generate_c(
            model, ir_facts=False
        )
        assert generate_c_library(model, ir_facts=False) == generate_c_library(
            model, ir_facts=False
        )


class TestPythonRuntimeDifferential:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_byte_identical_compressed_output(self, preset):
        model = model_for(preset)
        base = load_python_module(generate_python(model, ir_facts=False))
        lean = load_python_module(generate_python(model, ir_facts=True))
        for seed in (3, 11):
            raw = make_random_trace(n=800, seed=seed)
            blob_base = base.compress(raw)
            blob_lean = lean.compress(raw)
            assert blob_base == blob_lean
            assert lean.decompress(blob_lean) == raw

    def test_structured_trace_byte_identical(self, small_trace):
        model = model_for("A")
        base = load_python_module(generate_python(model, ir_facts=False))
        lean = load_python_module(generate_python(model, ir_facts=True))
        assert base.compress(small_trace) == lean.compress(small_trace)


@needs_cc
class TestCRuntimeDifferential:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_byte_identical_compressed_output(self, preset, tmp_path):
        model = model_for(preset)
        (tmp_path / "base").mkdir()
        (tmp_path / "lean").mkdir()
        base = compile_c(
            generate_c(model, ir_facts=False),
            workdir=str(tmp_path / "base"),
        )
        lean = compile_c(
            generate_c(model, ir_facts=True),
            workdir=str(tmp_path / "lean"),
        )
        raw = make_random_trace(n=800, seed=7)
        blob_base = base.compress(raw)
        blob_lean = lean.compress(raw)
        assert blob_base == blob_lean
        assert lean.decompress(blob_lean) == raw


@needs_cc
class TestLibraryRuntimeDifferential:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_byte_identical_chunk_bundles(self, preset, tmp_path):
        from repro.codegen.native import _load_library

        model = model_for(preset)
        compiler = find_c_compiler()
        kernels = {}
        for tag, facts in (("base", False), ("lean", True)):
            source_path = tmp_path / f"{tag}.c"
            so_path = tmp_path / f"{tag}.so"
            source_path.write_text(generate_c_library(model, ir_facts=facts))
            subprocess.run(
                [
                    compiler, "-O2", "-shared", "-fPIC",
                    str(source_path), "-o", str(so_path), "-lbz2",
                ],
                check=True,
                capture_output=True,
            )
            kernels[tag] = _load_library(str(so_path), model)
        raw = spec_trace_for(parse_spec(PRESETS[preset]))
        base_streams, base_codes = kernels["base"].compress_trace(raw)
        lean_streams, lean_codes = kernels["lean"].compress_trace(raw)
        assert base_streams == lean_streams
        assert base_codes == lean_codes
