"""The native artifact cache: integrity, concurrency, eviction, memos.

The cache is shared mutable state on disk under concurrent writers, so
these tests attack exactly the failure modes that matter: a corrupt
cached ``.so`` (truncated, or failing its sideband sha256) must trigger
a rebuild rather than a crash; two processes racing to build the same
key must both end up with one usable artifact; the LRU prune must
respect the configured byte cap; and the process-wide memos (compiler
probe, loaded kernels) must be resettable for tests like these.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.codegen import native
from repro.codegen.compile import clear_compiler_cache, find_c_compiler
from repro.model import OptimizationOptions, build_model
from repro.spec import tcgen_a, tcgen_b

needs_cc = pytest.mark.skipif(
    find_c_compiler() is None, reason="no C compiler on PATH"
)


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    """A fresh cache dir with the native backend enabled."""
    cache = tmp_path / "cache"
    monkeypatch.setenv("TCGEN_NATIVE", "1")
    monkeypatch.setenv("TCGEN_CACHE_DIR", str(cache))
    native.clear_native_cache()
    yield str(cache)
    native.clear_native_cache()


def _model(spec=None):
    return build_model(spec or tcgen_a(), OptimizationOptions.full())


def _artifact_paths(cache: str, model) -> tuple[str, str, str]:
    key = native.artifact_key(model, find_c_compiler())
    return native._artifact_paths(cache, key)


@needs_cc
def test_artifact_key_is_stable_and_discriminating(cache_env):
    compiler = find_c_compiler()
    a = native.artifact_key(_model(), compiler)
    assert a == native.artifact_key(_model(), compiler)
    b = native.artifact_key(_model(tcgen_b()), compiler)
    assert a != b
    ablated = build_model(tcgen_a(), OptimizationOptions.none())
    assert native.artifact_key(ablated, compiler) != a


@needs_cc
def test_truncated_so_triggers_rebuild(cache_env):
    # Build on disk without loading: truncating a dlopen-mapped inode
    # would SIGBUS the process, which is not the scenario — the scenario
    # is a cache corrupted between runs.
    native.build_artifact(_model(), find_c_compiler())
    so_path, _, _ = _artifact_paths(cache_env, _model())
    with open(so_path, "r+b") as handle:
        handle.truncate(128)  # corrupt: way too short to be the library
    rebuilt = native.load_native_kernel(_model())
    raw = bytes(range(256)) * 16  # 4096 bytes = 256 16-byte records
    records = raw[: (len(raw) // rebuilt.record_bytes) * rebuilt.record_bytes]
    streams, usage = rebuilt.compress_chunk(records)
    count = len(records) // rebuilt.record_bytes
    assert rebuilt.decompress_chunk(count, streams[0::2], streams[1::2]) == records
    assert os.path.getsize(so_path) > 128


@needs_cc
def test_wrong_sideband_hash_triggers_rebuild(cache_env):
    native.build_artifact(_model(), find_c_compiler())
    so_path, _, meta_path = _artifact_paths(cache_env, _model())
    meta = json.load(open(meta_path))
    meta["sha256"] = "0" * 64
    json.dump(meta, open(meta_path, "w"))
    kernel = native.load_native_kernel(_model())
    assert kernel.fingerprint == _model().fingerprint()
    # the rebuild republished a matching sideband
    fresh = json.load(open(meta_path))
    assert fresh["sha256"] == native._sha256_file(so_path)


@needs_cc
def test_concurrent_double_build_yields_one_artifact(cache_env):
    """Two builder processes race on one key: both succeed, one .so wins."""
    script = (
        "from repro.codegen import native\n"
        "from repro.model import OptimizationOptions, build_model\n"
        "from repro.spec import tcgen_a\n"
        "model = build_model(tcgen_a(), OptimizationOptions.full())\n"
        "kernel = native.load_native_kernel(model)\n"
        "assert kernel.fingerprint == model.fingerprint()\n"
        "print('BUILD-OK')\n"
    )
    env = dict(os.environ)
    env["TCGEN_NATIVE"] = "1"
    env["TCGEN_CACHE_DIR"] = cache_env
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")) if p
    )
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        for _ in range(2)
    ]
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err.decode(errors="replace")
        assert b"BUILD-OK" in out
    artifacts = [f for f in os.listdir(cache_env) if f.endswith(".so")]
    assert len(artifacts) == 1
    # and the surviving artifact still loads here
    assert native.load_native_kernel(_model()).fingerprint == (
        _model().fingerprint()
    )


@needs_cc
def test_lru_eviction_respects_size_cap(cache_env, monkeypatch):
    """With a 1-byte cap only the most recent artifact survives a build."""
    monkeypatch.setenv("TCGEN_CACHE_MAX_BYTES", "1")
    native.load_native_kernel(_model(tcgen_a()))
    native.load_native_kernel(_model(tcgen_b()))
    artifacts = [f for f in os.listdir(cache_env) if f.endswith(".so")]
    assert len(artifacts) == 1  # tcgen_a's artifact was evicted
    key_b = native.artifact_key(_model(tcgen_b()), find_c_compiler())
    assert artifacts == [f"{key_b}.so"]


@needs_cc
def test_prune_cache_is_lru_by_mtime(cache_env, tmp_path):
    directory = str(tmp_path / "prune")
    os.makedirs(directory)
    for index, age in (("aa", 300), ("bb", 200), ("cc", 100)):
        for suffix in native._ARTIFACT_SUFFIXES:
            path = os.path.join(directory, f"key{index}{suffix}")
            with open(path, "wb") as handle:
                handle.write(b"x" * 1000)
            stamp = 1_700_000_000 - age
            os.utime(path, (stamp, stamp))
    evicted = native.prune_cache(directory, max_bytes=6000)  # each key: 3000
    assert evicted == ["keyaa"]  # oldest .so goes first
    survivors = sorted(f for f in os.listdir(directory) if f.endswith(".so"))
    assert survivors == ["keybb.so", "keycc.so"]
    # keep= protects an entry regardless of age
    evicted = native.prune_cache(directory, max_bytes=1, keep="keybb")
    assert "keybb" not in evicted
    assert os.path.exists(os.path.join(directory, "keybb.so"))


def test_compiler_probe_is_memoized(monkeypatch):
    import shutil as _shutil

    calls = []
    real_which = _shutil.which

    def counting_which(name):
        calls.append(name)
        return real_which(name)

    clear_compiler_cache()
    try:
        monkeypatch.setattr(_shutil, "which", counting_which)
        first = find_c_compiler()
        probes = len(calls)
        assert find_c_compiler() == first
        assert len(calls) == probes  # memo hit: no new PATH probes
        clear_compiler_cache()
        find_c_compiler()
        assert len(calls) > probes  # cleared: probes again
    finally:
        clear_compiler_cache()


def test_compiler_env_override(monkeypatch):
    import shutil as _shutil

    gcc = _shutil.which("gcc")
    if gcc is None:
        pytest.skip("no gcc on PATH")
    monkeypatch.setenv("TCGEN_CC", "gcc")
    clear_compiler_cache()
    try:
        assert find_c_compiler() == gcc
        monkeypatch.setenv("TCGEN_CC", "no-such-compiler-xyz")
        clear_compiler_cache()
        assert find_c_compiler() is None
    finally:
        clear_compiler_cache()


def test_compiler_probe_honors_empty_path(monkeypatch):
    monkeypatch.setenv("PATH", "")
    clear_compiler_cache()
    try:
        assert find_c_compiler() is None
    finally:
        clear_compiler_cache()
