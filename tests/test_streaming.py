"""Tests for streaming record access to compressed traces."""

import itertools

import pytest

from repro.errors import CompressedFormatError
from repro.runtime import TraceEngine
from repro.runtime.streaming import iter_records, read_header, record_count
from repro.spec import tcgen_a, tcgen_b
from repro.tio import VPC_FORMAT, unpack_records

from conftest import SPEC_VARIANTS, make_vpc_trace, spec_trace_for


@pytest.fixture(scope="module")
def compressed():
    raw = make_vpc_trace(n=1200)
    blob = TraceEngine(tcgen_a()).compress(raw)
    return raw, blob


class TestIterRecords:
    def test_yields_every_record_in_order(self, compressed):
        raw, blob = compressed
        _, columns = unpack_records(VPC_FORMAT, raw)
        expected = list(zip(columns[0].tolist(), columns[1].tolist()))
        assert list(iter_records(tcgen_a(), blob)) == expected

    def test_early_stop_is_cheap_and_correct(self, compressed):
        raw, blob = compressed
        _, columns = unpack_records(VPC_FORMAT, raw)
        first_ten = list(itertools.islice(iter_records(tcgen_a(), blob), 10))
        assert first_ten == list(
            zip(columns[0][:10].tolist(), columns[1][:10].tolist())
        )

    @pytest.mark.parametrize("name", ["three_fields", "no_header", "pc_not_first"])
    def test_arbitrary_specs(self, name):
        spec = SPEC_VARIANTS[name]()
        raw = spec_trace_for(spec)
        blob = TraceEngine(spec).compress(raw)
        records = list(iter_records(spec, blob))
        assert len(records) == record_count(spec, blob)
        # Spot-check against the engine's full decompression.
        assert TraceEngine(spec).decompress(blob) == raw

    def test_wrong_spec_rejected(self, compressed):
        _, blob = compressed
        with pytest.raises(CompressedFormatError, match="fingerprint"):
            next(iter_records(tcgen_b(), blob))

    def test_drives_a_cache_simulator(self, compressed):
        """The paper's use case: feed a simulator from compressed data."""
        from repro.cachesim import CacheConfig, SetAssociativeCache

        _, blob = compressed
        cache = SetAssociativeCache(CacheConfig(8 * 1024, 64, 2))
        for _pc, address in iter_records(tcgen_a(), blob):
            cache.access(address)
        assert cache.hits + cache.misses == record_count(tcgen_a(), blob)


class TestMetadata:
    def test_read_header(self, compressed):
        raw, blob = compressed
        assert read_header(tcgen_a(), blob) == raw[:4]

    def test_headerless_spec_returns_empty(self):
        spec = SPEC_VARIANTS["no_header"]()
        raw = spec_trace_for(spec)
        blob = TraceEngine(spec).compress(raw)
        assert read_header(spec, blob) == b""

    def test_record_count(self, compressed):
        raw, blob = compressed
        assert record_count(tcgen_a(), blob) == (len(raw) - 4) // 12


class TestSalvageIteration:
    """iter_records(mode='salvage') resynchronizes at chunk boundaries."""

    def _chunked_blob(self, n=120, chunk=30):
        raw = make_vpc_trace(n=n)
        engine = TraceEngine(tcgen_a(), codec="identity")
        blob = engine.compress(raw, chunk_records=chunk)
        records = list(iter_records(tcgen_a(), blob))
        return raw, blob, records

    def _damage_chunk(self, blob, index):
        """Flip a byte inside chunk ``index``'s payload section of a v3 blob."""
        from repro.tio.container import ChunkedContainer

        # Locate the chunk's payload by summing the section sizes before it.
        container = ChunkedContainer.decode(blob)
        meta_len = len(container._encode_metadata(3).getvalue()) + 4
        offset = meta_len
        if container.global_streams:
            offset += sum(len(s.data) for s in container.global_streams) + 4
        for i in range(index):
            offset += sum(len(s.data) for s in container.chunks[i].streams) + 4
        damaged = bytearray(blob)
        damaged[offset] ^= 1  # first byte of the chunk's payload
        return bytes(damaged)

    def test_salvage_skips_damaged_chunk_and_resyncs(self):
        from repro.tio import DecodeReport

        raw, blob, records = self._chunked_blob()
        damaged = self._damage_chunk(blob, 1)
        report = DecodeReport()
        got = list(iter_records(tcgen_a(), damaged, mode="salvage", report=report))
        expected = records[:30] + records[60:]  # chunk 1 (records 30..59) lost
        assert got == expected
        assert report.lost_chunks == [1]
        assert report.recovered_chunks == [0, 2, 3]

    def test_strict_mode_still_raises(self):
        raw, blob, records = self._chunked_blob()
        damaged = self._damage_chunk(blob, 1)
        with pytest.raises(CompressedFormatError):
            list(iter_records(tcgen_a(), damaged))

    def test_salvage_on_intact_blob_is_identity(self):
        raw, blob, records = self._chunked_blob()
        assert list(iter_records(tcgen_a(), blob, mode="salvage")) == records

    def test_salvage_start_indexes_surviving_sequence(self):
        raw, blob, records = self._chunked_blob()
        damaged = self._damage_chunk(blob, 0)
        survivors = records[30:]
        got = list(iter_records(tcgen_a(), damaged, mode="salvage", start=10))
        assert got == survivors[10:]

    def test_salvage_never_yields_partial_chunks(self):
        """Damage past the CRC (impossible in v3) — simulate via v2, where a
        mid-chunk codec failure must drop the whole chunk, not half of it."""
        raw = make_vpc_trace(n=120)
        engine = TraceEngine(tcgen_a(), codec="bzip2", container_version=2)
        intact = engine.compress(raw, chunk_records=30)
        blob = bytearray(intact)
        records = list(iter_records(tcgen_a(), intact))
        # Wreck the bzip2 magic of chunk 0's first stream so the codec
        # fails mid-stream (v2 has no CRC to catch it earlier).
        from repro.tio.container import ChunkedContainer

        container = ChunkedContainer.decode(intact)
        position = len(container._encode_metadata(2).getvalue()) + sum(
            len(s.data) for s in container.global_streams
        )
        assert blob[position : position + 3] == b"BZh"
        blob[position : position + 3] = b"XXX"
        from repro.tio import DecodeReport

        report = DecodeReport()
        got = list(
            iter_records(tcgen_a(), bytes(blob), mode="salvage", report=report)
        )
        assert report.lost_chunks  # something was dropped...
        assert len(got) == 30 * len(report.recovered_chunks)  # ...whole chunks only
        for index in report.recovered_chunks:
            assert got.count(records[index * 30]) == 1
