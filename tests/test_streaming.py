"""Tests for streaming record access to compressed traces."""

import itertools

import pytest

from repro.errors import CompressedFormatError
from repro.runtime import TraceEngine
from repro.runtime.streaming import iter_records, read_header, record_count
from repro.spec import tcgen_a, tcgen_b
from repro.tio import VPC_FORMAT, unpack_records

from conftest import SPEC_VARIANTS, make_vpc_trace, spec_trace_for


@pytest.fixture(scope="module")
def compressed():
    raw = make_vpc_trace(n=1200)
    blob = TraceEngine(tcgen_a()).compress(raw)
    return raw, blob


class TestIterRecords:
    def test_yields_every_record_in_order(self, compressed):
        raw, blob = compressed
        _, columns = unpack_records(VPC_FORMAT, raw)
        expected = list(zip(columns[0].tolist(), columns[1].tolist()))
        assert list(iter_records(tcgen_a(), blob)) == expected

    def test_early_stop_is_cheap_and_correct(self, compressed):
        raw, blob = compressed
        _, columns = unpack_records(VPC_FORMAT, raw)
        first_ten = list(itertools.islice(iter_records(tcgen_a(), blob), 10))
        assert first_ten == list(
            zip(columns[0][:10].tolist(), columns[1][:10].tolist())
        )

    @pytest.mark.parametrize("name", ["three_fields", "no_header", "pc_not_first"])
    def test_arbitrary_specs(self, name):
        spec = SPEC_VARIANTS[name]()
        raw = spec_trace_for(spec)
        blob = TraceEngine(spec).compress(raw)
        records = list(iter_records(spec, blob))
        assert len(records) == record_count(spec, blob)
        # Spot-check against the engine's full decompression.
        assert TraceEngine(spec).decompress(blob) == raw

    def test_wrong_spec_rejected(self, compressed):
        _, blob = compressed
        with pytest.raises(CompressedFormatError, match="fingerprint"):
            next(iter_records(tcgen_b(), blob))

    def test_drives_a_cache_simulator(self, compressed):
        """The paper's use case: feed a simulator from compressed data."""
        from repro.cachesim import CacheConfig, SetAssociativeCache

        _, blob = compressed
        cache = SetAssociativeCache(CacheConfig(8 * 1024, 64, 2))
        for _pc, address in iter_records(tcgen_a(), blob):
            cache.access(address)
        assert cache.hits + cache.misses == record_count(tcgen_a(), blob)


class TestMetadata:
    def test_read_header(self, compressed):
        raw, blob = compressed
        assert read_header(tcgen_a(), blob) == raw[:4]

    def test_headerless_spec_returns_empty(self):
        spec = SPEC_VARIANTS["no_header"]()
        raw = spec_trace_for(spec)
        blob = TraceEngine(spec).compress(raw)
        assert read_header(spec, blob) == b""

    def test_record_count(self, compressed):
        raw, blob = compressed
        assert record_count(tcgen_a(), blob) == (len(raw) - 4) // 12
