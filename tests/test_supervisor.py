"""Tests for the pre-fork worker pool (``repro.server.supervisor``).

These run the real ``python -m repro.server`` process model: a
supervisor that binds SO_REUSEPORT listeners, forks N workers, restarts
crashed ones with backoff, and drains the pool on SIGTERM.  The
disk-backed engine-cache handoff between workers is asserted in-process
at the bottom of the file where the metrics are directly observable.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.client import TraceClient
from repro.runtime.engine import TraceEngine
from repro.server.daemon import TraceServer
from repro.server.limits import ServerConfig
from repro.spec import parse_spec
from repro.spec.presets import TCGEN_A_SPEC, TCGEN_B_SPEC

from conftest import make_vpc_trace

_WORKER_LINE = re.compile(r"worker (\d+) (?:started|restarted) \(pid (\d+)\)")


class Pool:
    """A live ``tcgen-serve`` worker pool as a subprocess."""

    def __init__(self, args: list[str], env: dict | None = None) -> None:
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.server",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                *args,
            ],
            stderr=subprocess.PIPE,
            text=True,
            env={**os.environ, **(env or {})},
        )
        self._lines: list[str] = []
        self._lock = threading.Lock()
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()
        self.port = int(
            self.wait_for_line(lambda l: "listening on" in l).rsplit(":", 1)[1]
        )

    def _pump(self) -> None:
        assert self.process.stderr is not None
        for line in self.process.stderr:
            with self._lock:
                self._lines.append(line)

    def stderr_text(self) -> str:
        with self._lock:
            return "".join(self._lines)

    def wait_for_line(self, predicate, timeout: float = 30.0) -> str:
        deadline = time.monotonic() + timeout
        seen = 0
        while time.monotonic() < deadline:
            with self._lock:
                for line in self._lines[seen:]:
                    if predicate(line):
                        return line
                seen = len(self._lines)
            if self.process.poll() is not None:
                raise AssertionError(
                    f"pool exited rc={self.process.returncode} while waiting; "
                    f"stderr:\n{self.stderr_text()}"
                )
            time.sleep(0.02)
        raise AssertionError(
            f"no matching stderr line within {timeout}s; "
            f"stderr:\n{self.stderr_text()}"
        )

    def worker_pids(self, count: int) -> dict[int, int]:
        """Map worker index -> current pid, once ``count`` have reported."""
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            pids: dict[int, int] = {}
            for match in _WORKER_LINE.finditer(self.stderr_text()):
                pids[int(match.group(1))] = int(match.group(2))
            if len(pids) >= count:
                return pids
            time.sleep(0.02)
        raise AssertionError(f"never saw {count} workers:\n{self.stderr_text()}")

    def terminate(self, timeout: float = 30.0) -> int:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
        try:
            returncode = self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            returncode = self.process.wait(timeout=10)
        self._reader.join(timeout=10)
        return returncode

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10)
        self._reader.join(timeout=10)


@pytest.fixture
def pool4():
    handle = Pool(["--workers", "4", "--no-http"])
    yield handle
    handle.kill()


@pytest.fixture
def pool2():
    handle = Pool(["--workers", "2", "--no-http"])
    yield handle
    handle.kill()


class TestPoolByteIdentity:
    def test_sixteen_concurrent_clients_across_four_workers(self, pool4):
        trace = make_vpc_trace(n=2000, seed=11)
        expected = {
            text: TraceEngine(parse_spec(text)).compress(
                trace, chunk_records="auto"
            )
            for text in (TCGEN_A_SPEC, TCGEN_B_SPEC)
        }
        pool4.worker_pids(4)

        def roundtrip(index: int) -> list[str]:
            problems = []
            text = TCGEN_A_SPEC if index % 2 else TCGEN_B_SPEC
            with TraceClient(
                "127.0.0.1", pool4.port, retries=8, backoff=0.05
            ) as client:
                blob = client.compress(text, trace, chunk_records="auto")
                if blob != expected[text]:
                    problems.append(f"client {index}: bytes differ")
                if client.decompress(text, blob) != trace:
                    problems.append(f"client {index}: roundtrip lossy")
            return problems

        with ThreadPoolExecutor(max_workers=16) as executor:
            failures = [
                problem
                for result in executor.map(roundtrip, range(16))
                for problem in result
            ]
        assert failures == []
        assert pool4.terminate() == 0


class TestCrashRestart:
    def test_worker_killed_mid_request_client_retry_succeeds(self, pool2):
        pids = pool2.worker_pids(2)
        small = make_vpc_trace(n=800, seed=3)
        big = make_vpc_trace(n=120_000, seed=5)
        expected = TraceEngine(parse_spec(TCGEN_A_SPEC)).compress(
            big, chunk_records=4096
        )
        with TraceClient(
            "127.0.0.1", pool2.port, retries=10, backoff=0.05
        ) as client:
            # Learn which worker this connection landed on.
            client.compress(TCGEN_A_SPEC, small)
            victim = client.last_worker_id
            assert victim in pids

            result: dict = {}

            def long_request() -> None:
                try:
                    result["blob"] = client.compress(
                        TCGEN_A_SPEC, big, chunk_records=4096
                    )
                except Exception as exc:  # noqa: BLE001
                    result["error"] = exc

            thread = threading.Thread(target=long_request)
            thread.start()
            time.sleep(0.25)  # let the request get in flight
            os.kill(pids[victim], signal.SIGKILL)
            thread.join(timeout=120)
            assert not thread.is_alive(), "retry never completed"

        assert result.get("error") is None, f"retry failed: {result.get('error')}"
        assert result["blob"] == expected
        pool2.wait_for_line(lambda l: f"worker {victim} died" in l)
        pool2.wait_for_line(lambda l: f"worker {victim} restarted" in l)
        # The restarted worker serves traffic again.
        pool2.worker_pids(2)
        with TraceClient("127.0.0.1", pool2.port, retries=8) as client:
            assert client.health().get("status") == "ok"
        assert pool2.terminate() == 0


class TestPoolDrain:
    def test_sigterm_mid_request_response_not_truncated(self, pool2):
        big = make_vpc_trace(n=120_000, seed=9)
        expected = TraceEngine(parse_spec(TCGEN_A_SPEC)).compress(
            big, chunk_records=4096
        )
        result: dict = {}

        def long_request() -> None:
            with TraceClient(
                "127.0.0.1", pool2.port, retries=2, backoff=0.05
            ) as client:
                try:
                    result["blob"] = client.compress(
                        TCGEN_A_SPEC, big, chunk_records=4096
                    )
                except Exception as exc:  # noqa: BLE001
                    result["error"] = exc

        thread = threading.Thread(target=long_request)
        thread.start()
        time.sleep(0.25)  # in flight before the drain starts
        pool2.process.send_signal(signal.SIGTERM)
        thread.join(timeout=120)
        assert not thread.is_alive()
        returncode = pool2.terminate()

        assert result.get("error") is None, f"drain broke request: {result}"
        assert result["blob"] == expected
        assert returncode == 0
        assert "drained, exiting" in pool2.stderr_text()


class _InProcessServer:
    """A TraceServer on a daemon thread (mirror of test_server harness)."""

    def __init__(self, config: ServerConfig) -> None:
        self.server = TraceServer(config)
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("in-process server failed to start")

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            # TraceServer.run() preloads before listening; mirror that here
            # since this harness drives start()/drain directly.
            if self.server.config.preload_engines > 0:
                self.server.handlers.cache.preload_from_disk(
                    self.server.config.preload_engines
                )
            await self.server.start()
            self._started.set()
            await self.server._drain_requested.wait()
            await self.server._drain()

        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout=15)


class TestSharedEngineCache:
    """The disk level hands built engines from one worker to the next."""

    def test_second_worker_first_request_hits_disk_cache(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("TCGEN_CACHE_DIR", str(tmp_path))
        trace = make_vpc_trace(n=1200, seed=21)

        first = _InProcessServer(ServerConfig(port=0))
        try:
            with TraceClient("127.0.0.1", first.port, retries=4) as client:
                blob_first = client.compress(TCGEN_A_SPEC, trace)
                health = client.health()
            assert health["engine_disk_misses"] >= 1
            assert health["engine_disk_hits"] == 0
        finally:
            first.stop()

        # A brand-new server process-equivalent: empty in-memory cache,
        # same TCGEN_CACHE_DIR.  Its *first* request must be a disk hit.
        second = _InProcessServer(ServerConfig(port=0))
        try:
            with TraceClient("127.0.0.1", second.port, retries=4) as client:
                blob_second = client.compress(TCGEN_A_SPEC, trace)
                health = client.health()
            assert health["engine_disk_hits"] >= 1
            assert blob_second == blob_first
        finally:
            second.stop()

    def test_preload_warms_cache_from_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TCGEN_CACHE_DIR", str(tmp_path))
        trace = make_vpc_trace(n=1200, seed=22)

        first = _InProcessServer(ServerConfig(port=0))
        try:
            with TraceClient("127.0.0.1", first.port, retries=4) as client:
                client.compress(TCGEN_B_SPEC, trace)
        finally:
            first.stop()

        second = _InProcessServer(ServerConfig(port=0, preload_engines=8))
        try:
            with TraceClient("127.0.0.1", second.port, retries=4) as client:
                client.compress(TCGEN_B_SPEC, trace)
                health = client.health()
            assert health["engines_preloaded"] >= 1
            # The preloaded engine made the first request an in-memory hit.
            assert health["cache_hits"] >= 1
        finally:
            second.stop()

    def test_disk_cache_can_be_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TCGEN_CACHE_DIR", str(tmp_path))
        trace = make_vpc_trace(n=800, seed=23)
        server = _InProcessServer(ServerConfig(port=0, engine_disk_cache=False))
        try:
            with TraceClient("127.0.0.1", server.port, retries=4) as client:
                client.compress(TCGEN_A_SPEC, trace)
                health = client.health()
            assert health["engine_disk_hits"] == 0
            assert health["engine_disk_misses"] == 0
        finally:
            server.stop()
        # Nothing was published to the shared disk level.
        engines_dir = tmp_path / "engines"
        assert not engines_dir.exists() or not any(engines_dir.iterdir())
