"""Fuzz tests: hostile inputs must fail with library errors, not crashes.

Every parser/decoder in the package promises to raise
:class:`~repro.errors.ReproError` subclasses on malformed input.  These
tests throw random and mutated data at each entry point and assert that
promise — no ``IndexError``, ``KeyError``, ``struct.error``, or silent
garbage.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.runtime import TraceEngine
from repro.spec import parse_spec, tcgen_a
from repro.spec.lexer import tokenize
from repro.tio.container import StreamContainer

from conftest import make_vpc_trace


class TestSpecFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=200))
    def test_parser_never_crashes_on_arbitrary_text(self, text):
        try:
            parse_spec(text)
        except ReproError:
            pass  # the only acceptable failure mode

    @settings(max_examples=200, deadline=None)
    @given(
        st.text(
            alphabet="TCgenraceSpifto;-BHdF123468 =L{}:DMV[],\n#",
            max_size=300,
        )
    )
    def test_parser_never_crashes_on_speclike_text(self, text):
        try:
            parse_spec(text)
        except ReproError:
            pass

    @settings(max_examples=150, deadline=None)
    @given(st.text(max_size=100))
    def test_lexer_never_crashes(self, text):
        try:
            tokenize(text)
        except ReproError:
            pass

    def test_valid_spec_with_mutations(self):
        """Single-character deletions of a valid spec parse or fail cleanly."""
        from repro.spec.presets import TCGEN_A_SPEC

        for position in range(len(TCGEN_A_SPEC)):
            mutated = TCGEN_A_SPEC[:position] + TCGEN_A_SPEC[position + 1 :]
            try:
                parse_spec(mutated)
            except ReproError:
                pass


class TestContainerFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=200))
    def test_container_decode_never_crashes(self, blob):
        try:
            StreamContainer.decode(blob)
        except ReproError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=300))
    def test_engine_decompress_never_crashes(self, blob):
        engine = TraceEngine(tcgen_a())
        try:
            engine.decompress(blob)
        except ReproError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_bitflips_in_valid_blob_fail_cleanly_or_roundtrip(self, data):
        """A corrupted blob either raises a ReproError or — when the flip
        lands in a value stream — still decodes to *something* framed.
        It must never crash with a non-library exception."""
        raw = make_vpc_trace(n=120)
        engine = TraceEngine(tcgen_a(), codec="identity")
        blob = bytearray(engine.compress(raw))
        position = data.draw(st.integers(0, len(blob) - 1))
        bit = data.draw(st.integers(0, 7))
        blob[position] ^= 1 << bit
        try:
            out = engine.decompress(bytes(blob))
        except ReproError:
            return
        assert (len(out) - 4) % 12 == 0  # still frames into records

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=200))
    def test_generated_module_decompress_never_crashes(self, blob):
        module = _generated()
        try:
            module.decompress(blob)
        except ValueError:
            # Generated modules are self-contained (no repro imports), so
            # they signal all corruption with ValueError.
            pass


_module_cache = []


def _generated():
    if not _module_cache:
        from repro import generate_compressor

        _module_cache.append(generate_compressor(tcgen_a(), codec="identity"))
    return _module_cache[0]


class TestBaselineFuzz:
    @settings(max_examples=80, deadline=None)
    @given(st.binary(max_size=150))
    def test_baseline_decompressors_never_crash(self, blob):
        from repro.baselines import all_baselines

        for compressor in all_baselines():
            try:
                compressor.decompress(blob)
            except Exception as exc:
                # bz2 raises OSError/EOFError on garbage before our code
                # even sees it; our own framing raises ReproError, and the
                # generated VPC3 module signals corruption with ValueError.
                assert isinstance(
                    exc, (ReproError, OSError, EOFError, ValueError)
                ), f"{compressor.name} leaked {type(exc).__name__}"
