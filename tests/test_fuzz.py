"""Fuzz tests: hostile inputs must fail with library errors, not crashes.

Every parser/decoder in the package promises to raise
:class:`~repro.errors.ReproError` subclasses on malformed input.  These
tests throw random and mutated data at each entry point and assert that
promise — no ``IndexError``, ``KeyError``, ``struct.error``, or silent
garbage.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import ReproError
from repro.runtime import TraceEngine
from repro.spec import parse_spec, tcgen_a
from repro.spec.lexer import tokenize
from repro.tio.container import StreamContainer

from conftest import make_vpc_trace


class TestSpecFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=200))
    def test_parser_never_crashes_on_arbitrary_text(self, text):
        try:
            parse_spec(text)
        except ReproError:
            pass  # the only acceptable failure mode

    @settings(max_examples=200, deadline=None)
    @given(
        st.text(
            alphabet="TCgenraceSpifto;-BHdF123468 =L{}:DMV[],\n#",
            max_size=300,
        )
    )
    def test_parser_never_crashes_on_speclike_text(self, text):
        try:
            parse_spec(text)
        except ReproError:
            pass

    @settings(max_examples=150, deadline=None)
    @given(st.text(max_size=100))
    def test_lexer_never_crashes(self, text):
        try:
            tokenize(text)
        except ReproError:
            pass

    def test_valid_spec_with_mutations(self):
        """Single-character deletions of a valid spec parse or fail cleanly."""
        from repro.spec.presets import TCGEN_A_SPEC

        for position in range(len(TCGEN_A_SPEC)):
            mutated = TCGEN_A_SPEC[:position] + TCGEN_A_SPEC[position + 1 :]
            try:
                parse_spec(mutated)
            except ReproError:
                pass


class TestContainerFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=200))
    def test_container_decode_never_crashes(self, blob):
        try:
            StreamContainer.decode(blob)
        except ReproError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=300))
    def test_engine_decompress_never_crashes(self, blob):
        engine = TraceEngine(tcgen_a())
        try:
            engine.decompress(blob)
        except ReproError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_bitflips_in_valid_blob_fail_cleanly_or_roundtrip(self, data):
        """A corrupted blob either raises a ReproError or — when the flip
        lands in a value stream — still decodes to *something* framed.
        It must never crash with a non-library exception."""
        raw = make_vpc_trace(n=120)
        engine = TraceEngine(tcgen_a(), codec="identity")
        blob = bytearray(engine.compress(raw))
        position = data.draw(st.integers(0, len(blob) - 1))
        bit = data.draw(st.integers(0, 7))
        blob[position] ^= 1 << bit
        try:
            out = engine.decompress(bytes(blob))
        except ReproError:
            return
        assert (len(out) - 4) % 12 == 0  # still frames into records

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=200))
    def test_generated_module_decompress_never_crashes(self, blob):
        module = _generated()
        try:
            module.decompress(blob)
        except ValueError:
            # Generated modules are self-contained (no repro imports), so
            # they signal all corruption with ValueError.
            pass


_module_cache = []


def _generated():
    if not _module_cache:
        from repro import generate_compressor

        _module_cache.append(generate_compressor(tcgen_a(), codec="identity"))
    return _module_cache[0]


class TestBaselineFuzz:
    @settings(max_examples=80, deadline=None)
    @given(st.binary(max_size=150))
    def test_baseline_decompressors_never_crash(self, blob):
        from repro.baselines import all_baselines

        for compressor in all_baselines():
            try:
                compressor.decompress(blob)
            except Exception as exc:
                # bz2 raises OSError/EOFError on garbage before our code
                # even sees it; our own framing raises ReproError, and the
                # generated VPC3 module signals corruption with ValueError.
                assert isinstance(
                    exc, (ReproError, OSError, EOFError, ValueError)
                ), f"{compressor.name} leaked {type(exc).__name__}"


# ---------------------------------------------------------------------------
# Deterministic corruption matrix: every fault kind x container version
# ---------------------------------------------------------------------------

from repro.testing.faults import FAULT_KINDS, inject

_MATRIX_CHUNK = 40  # records per chunk for the matrix blobs
_MATRIX_RECORDS = 200
_matrix_cache = {}


def _matrix_blob(label):
    """(engine, raw, blob) for one container layout, built once per run."""
    if label not in _matrix_cache:
        raw = make_vpc_trace(n=_MATRIX_RECORDS)
        engine = TraceEngine(tcgen_a(), codec="identity")
        if label == "v1-flat":
            blob = engine.compress(raw)
        elif label == "v2-chunked":
            blob = TraceEngine(
                tcgen_a(), codec="identity", container_version=2
            ).compress(raw, chunk_records=_MATRIX_CHUNK)
        else:
            blob = engine.compress(raw, chunk_records=_MATRIX_CHUNK)
        _matrix_cache[label] = (engine, raw, blob)
    return _matrix_cache[label]


class TestCorruptionMatrix:
    """Injected faults must never escape the typed-error contract."""

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("label", ["v1-flat", "v2-chunked", "v3-chunked"])
    @pytest.mark.parametrize("fault_kind", FAULT_KINDS)
    def test_strict_raises_typed_errors_only(self, fault_kind, label, seed):
        engine, raw, blob = _matrix_blob(label)
        damaged, fault = inject(blob, fault_kind, seed)
        try:
            out = engine.decompress(damaged)
        except ReproError:
            return
        # v1/v2 have no checksums: damage in a value stream can decode to
        # garbage that still frames.  v3 must detect every change.
        assert label != "v3-chunked", f"undetected corruption: {fault}"
        assert (len(out) - 4) % 12 == 0

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("label", ["v1-flat", "v2-chunked", "v3-chunked"])
    @pytest.mark.parametrize("fault_kind", FAULT_KINDS)
    def test_salvage_never_raises_and_recovers_untouched_chunks(
        self, fault_kind, label, seed
    ):
        engine, raw, blob = _matrix_blob(label)
        damaged, fault = inject(blob, fault_kind, seed)
        out = engine.decompress(damaged, mode="salvage")  # must not raise
        report = engine.last_report
        if label != "v3-chunked":
            assert (len(out) - 4) % 12 == 0
            return
        # v3: what salvage returns must be byte-exact — the header (or its
        # zero-fill) followed by precisely the chunks the report claims.
        head = raw[:4]
        if report.header_stream_lost or report.header_damaged:
            head = b"\x00" * 4
        expected = head + b"".join(
            raw[
                4 + i * _MATRIX_CHUNK * 12 : 4
                + min((i + 1) * _MATRIX_CHUNK, _MATRIX_RECORDS) * 12
            ]
            for i in report.recovered_chunks
        )
        assert out == expected, f"salvage output drifted: {fault}"
        assert sorted(report.recovered_chunks + report.lost_chunks) == list(
            range(report.total_chunks or 0)
        )

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("label", ["v1-flat", "v2-chunked", "v3-chunked"])
    @pytest.mark.parametrize("fault_kind", FAULT_KINDS)
    def test_generated_module_honours_the_same_contract(
        self, fault_kind, label, seed
    ):
        _engine, _raw, blob = _matrix_blob(label)
        damaged, fault = inject(blob, fault_kind, seed)
        module = _generated()
        try:
            module.decompress(damaged)
        except ValueError:
            pass
        module.decompress(damaged, salvage=True)  # must never raise


class TestVersionRegression:
    """v1/v2 blobs must stay byte-identical and readable under v3 readers."""

    # SHA-256 of the v1/v2 encodings of the fixed matrix trace.  If these
    # move, old archives written by earlier releases would stop matching.
    V1_SHA = "9b2c97ea425cfbe881c8533f729b874da866709c5a4fae5253ca1d0917454cf1"
    V2_SHA = "3a1d4e09b521bb9a188f0a499b4947a38f5416657fbc2eeaa69f1a1dbce4ad88"

    def test_v1_bytes_are_stable(self):
        import hashlib

        _engine, _raw, blob = _matrix_blob("v1-flat")
        assert hashlib.sha256(blob).hexdigest() == self.V1_SHA

    def test_v2_bytes_are_stable(self):
        import hashlib

        _engine, _raw, blob = _matrix_blob("v2-chunked")
        assert hashlib.sha256(blob).hexdigest() == self.V2_SHA

    @pytest.mark.parametrize("label", ["v1-flat", "v2-chunked"])
    def test_old_versions_decode_under_v3_aware_readers(self, label):
        engine, raw, blob = _matrix_blob(label)
        assert engine.decompress(blob) == raw
        assert engine.decompress(blob, mode="salvage") == raw
        assert engine.last_report.intact
        assert _generated().decompress(blob) == raw


class TestAllocationBombs:
    """Hostile metadata must fail before any large allocation happens."""

    def _frame(self, version, body):
        return b"TCGN" + bytes([version]) + bytes(8) + body

    def _varint(self, value):
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                return bytes(out)

    def test_huge_stream_count_rejected(self):
        blob = self._frame(1, self._varint(10) + self._varint(1 << 60))
        with pytest.raises(ReproError, match="stream count"):
            StreamContainer.decode(blob)

    def test_huge_global_count_rejected(self):
        from repro.tio.container import ChunkedContainer

        blob = self._frame(
            2, self._varint(10) + self._varint(10) + self._varint(1 << 60)
        )
        with pytest.raises(ReproError, match="global stream count"):
            ChunkedContainer.decode(blob)

    def test_huge_chunk_count_rejected(self):
        from repro.tio.container import ChunkedContainer

        blob = self._frame(
            2,
            self._varint(10)
            + self._varint(10)
            + self._varint(0)  # no global streams
            + self._varint(2)  # chunk streams
            + self._varint(1 << 60),
        )
        with pytest.raises(ReproError, match="chunk count"):
            ChunkedContainer.decode(blob)

    def test_huge_declared_raw_length_rejected(self):
        blob = self._frame(
            1,
            self._varint(10)
            + self._varint(1)
            + bytes([1])  # codec id
            + self._varint(1 << 40)  # raw length: over max_chunk_bytes
            + self._varint(1),
        )
        with pytest.raises(ReproError, match="max_chunk_bytes"):
            StreamContainer.decode(blob)

    def test_decompression_bomb_is_bounded(self):
        import zlib

        from repro.postcompress import codec_by_name, decompress_bounded

        bomb = zlib.compress(b"\x00" * 10_000_000, 9)  # ~10 KB stored
        with pytest.raises(ReproError, match="declared"):
            decompress_bounded(codec_by_name("zlib"), bomb, 100)

    def test_generated_module_rejects_oversized_declared_length(self):
        module = _generated()
        blob = bytearray(module.compress(make_vpc_trace(n=8)))
        # grow the first stream's declared stored length far past the blob
        with pytest.raises(ValueError):
            module._read_stream_meta(
                b"\x00" + self._varint(10) + self._varint(1 << 40), 0
            )
