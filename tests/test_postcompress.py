"""Tests for the post-compression codec registry."""

import pytest

from repro.errors import CompressedFormatError
from repro.postcompress import available_codecs, codec_by_id, codec_by_name


class TestRegistry:
    def test_paper_default_is_bzip2(self):
        assert "bzip2" in available_codecs()
        assert codec_by_name("bzip2").codec_id == 1

    def test_identity_is_id_zero(self):
        assert codec_by_name("identity").codec_id == 0

    def test_ids_and_names_are_consistent(self):
        for name in available_codecs():
            codec = codec_by_name(name)
            assert codec_by_id(codec.codec_id) is codec

    def test_unknown_name_rejected(self):
        with pytest.raises(CompressedFormatError, match="unknown codec"):
            codec_by_name("zstd")

    def test_unknown_id_rejected(self):
        with pytest.raises(CompressedFormatError, match="unknown codec id"):
            codec_by_id(200)


class TestCodecs:
    @pytest.mark.parametrize("name", ["identity", "bzip2", "zlib", "lzma"])
    def test_roundtrip(self, name):
        codec = codec_by_name(name)
        data = b"hello, trace compression! " * 100
        assert codec.decompress(codec.compress(data)) == data

    @pytest.mark.parametrize("name", ["identity", "bzip2", "zlib", "lzma"])
    def test_empty_input(self, name):
        codec = codec_by_name(name)
        assert codec.decompress(codec.compress(b"")) == b""

    def test_identity_is_verbatim(self):
        codec = codec_by_name("identity")
        assert codec.compress(b"abc") == b"abc"

    def test_bzip2_uses_best_level(self):
        """Matches the paper's BZIP2 --best: identical to bz2 level 9."""
        import bz2

        data = bytes(range(256)) * 50
        assert codec_by_name("bzip2").compress(data) == bz2.compress(data, 9)

    @pytest.mark.parametrize("name", ["bzip2", "zlib", "lzma"])
    def test_real_codecs_shrink_redundant_data(self, name):
        codec = codec_by_name(name)
        data = b"\x00" * 10_000
        assert len(codec.compress(data)) < 200
