"""The in-process native fast path: dispatch, differential byte-identity.

The whole point of the native backend is that it is *unobservable* except
for speed: every container produced or consumed through it must be
byte-identical to the pure-Python path.  These tests prove that over the
preset spec matrix for v1, v2, and v3 containers, across the engine, the
generated Python modules, streaming, and autotune — plus the dispatch
rules (auto fallback, escape hatch, update-policy forcing, compiler
crash mid-build).
"""

from __future__ import annotations

import os
import stat

import pytest

from repro.codegen.compile import find_c_compiler
from repro.errors import NativeBackendError
from repro.model import OptimizationOptions, build_model
from repro.runtime import TraceEngine
from repro.runtime.dispatch import resolve_backend, validate_backend
from repro.runtime.streaming import iter_records
from repro.spec import tcgen_a

from conftest import SPEC_VARIANTS, make_vpc_trace, spec_trace_for

needs_cc = pytest.mark.skipif(
    find_c_compiler() is None, reason="no C compiler on PATH"
)


@pytest.fixture(scope="module")
def native_env(tmp_path_factory):
    """Enable the native backend with a private artifact cache."""
    cache = tmp_path_factory.mktemp("native_cache")
    saved = {k: os.environ.get(k) for k in ("TCGEN_NATIVE", "TCGEN_CACHE_DIR")}
    os.environ["TCGEN_NATIVE"] = "1"
    os.environ["TCGEN_CACHE_DIR"] = str(cache)
    yield str(cache)
    for key, value in saved.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


def test_validate_backend_rejects_unknown():
    with pytest.raises(ValueError, match="backend"):
        validate_backend("cuda")
    with pytest.raises(ValueError, match="backend"):
        TraceEngine(tcgen_a(), backend="cuda")


# -- differential byte-identity ----------------------------------------------


@needs_cc
@pytest.mark.parametrize("name", sorted(SPEC_VARIANTS))
def test_engine_differential_all_containers(name, native_env):
    """python and native engines produce identical v1/v2/v3 containers."""
    spec = SPEC_VARIANTS[name]()
    raw = spec_trace_for(spec)
    py = TraceEngine(spec, backend="python")
    nat = TraceEngine(spec, backend="native")
    assert nat.backend == "native"
    assert py.backend == "python"
    cases = [
        dict(),  # flat v1
        dict(chunk_records=64),  # chunked v3 (default version)
        dict(chunk_records=64, container_version=2),  # legacy v2
        dict(chunk_records="auto"),
    ]
    for kwargs in cases:
        blob_py = py.compress(raw, **kwargs)
        blob_nat = nat.compress(raw, **kwargs)
        assert blob_py == blob_nat, f"{name}: compress differs for {kwargs}"
        assert py.decompress(blob_py) == raw
        assert nat.decompress(blob_py) == raw


@needs_cc
def test_engine_differential_parallel_workers(native_env):
    """Thread-parallel native chunk stage keeps outputs byte-identical."""
    spec = tcgen_a()
    raw = make_vpc_trace(4000)
    py = TraceEngine(spec, backend="python")
    nat = TraceEngine(spec, backend="native")
    blob_py = py.compress(raw, chunk_records=257, workers=4)
    blob_nat = nat.compress(raw, chunk_records=257, workers=4)
    assert blob_py == blob_nat
    assert nat.decompress(blob_nat, workers=4) == raw


@needs_cc
def test_generated_module_differential(native_env):
    """Generated Python modules honor backend= with identical bytes."""
    from repro.codegen import generate_python, load_python_module

    for name in ("tcgen_a", "no_header"):
        spec = SPEC_VARIANTS[name]()
        model = build_model(spec, OptimizationOptions.full())
        module = load_python_module(generate_python(model), name=f"nat_{name}")
        raw = spec_trace_for(spec)
        for kwargs in ({}, {"chunk_records": 50}):
            blob_py = module.compress(raw, backend="python", **kwargs)
            blob_nat = module.compress(raw, backend="native", **kwargs)
            assert blob_py == blob_nat
            assert module.decompress(blob_nat, backend="python") == raw
            assert module.decompress(blob_nat, backend="native") == raw


@needs_cc
def test_generated_module_native_unavailable_raises(native_env, monkeypatch):
    from repro.codegen import generate_python, load_python_module

    model = build_model(tcgen_a(), OptimizationOptions.full())
    module = load_python_module(generate_python(model), name="nat_disabled")
    monkeypatch.setenv("TCGEN_NATIVE", "0")
    raw = make_vpc_trace(100)
    assert module.decompress(module.compress(raw)) == raw  # auto falls back
    with pytest.raises(RuntimeError, match="native backend unavailable"):
        module.compress(raw, backend="native")


@needs_cc
def test_streaming_differential(native_env):
    spec = tcgen_a()
    raw = make_vpc_trace(1200)
    blob = TraceEngine(spec).compress(raw, chunk_records=101)
    records_py = list(iter_records(spec, blob, backend="python"))
    records_nat = list(iter_records(spec, blob, backend="native"))
    assert records_py == records_nat
    assert len(records_nat) == 1200
    # mid-trace entry goes through the native chunk decode too
    assert list(iter_records(spec, blob, start=777, backend="native")) == (
        records_py[777:]
    )


@needs_cc
def test_autotune_differential(native_env):
    from repro.autotune import compress_adaptive, decompress_adaptive

    raw = make_vpc_trace(900)
    res_py = compress_adaptive(raw, backend="python", chunk_records=128)
    res_nat = compress_adaptive(raw, backend="native", chunk_records=128)
    assert res_py.archive == res_nat.archive
    assert decompress_adaptive(res_nat.archive, backend="native") == raw


# -- dispatch rules -----------------------------------------------------------


@needs_cc
def test_backend_reason_reports_resolution(native_env):
    auto = TraceEngine(tcgen_a(), backend="auto")
    assert auto.backend == "native"
    assert auto.backend_reason == "compiler available, build ok"
    forced = TraceEngine(tcgen_a(), backend="native")
    assert forced.backend_reason == "requested"
    python = TraceEngine(tcgen_a(), backend="python")
    assert python.backend_reason == "requested"


def test_escape_hatch_disables_native(native_env, monkeypatch):
    monkeypatch.setenv("TCGEN_NATIVE", "0")
    engine = TraceEngine(tcgen_a(), backend="auto")
    assert engine.backend == "python"
    assert "TCGEN_NATIVE" in engine.backend_reason
    raw = make_vpc_trace(150)
    assert engine.decompress(engine.compress(raw)) == raw
    with pytest.raises(NativeBackendError, match="TCGEN_NATIVE"):
        TraceEngine(tcgen_a(), backend="native").compress(raw)


def test_update_policy_forces_python(native_env):
    from repro.predictors.tables import UpdatePolicy

    policy = UpdatePolicy.ALWAYS
    engine = TraceEngine(tcgen_a(), update_policy=policy, backend="auto")
    assert engine.backend == "python"
    assert "update_policy" in engine.backend_reason
    with pytest.raises(NativeBackendError, match="update_policy"):
        TraceEngine(tcgen_a(), update_policy=policy, backend="native").backend


@needs_cc
def test_compiler_crash_falls_back(native_env, tmp_path, monkeypatch):
    """A compiler that dies mid-build: auto falls back, native raises."""
    crash = tmp_path / "crashing-cc"
    crash.write_text("#!/bin/sh\nexit 139\n")
    crash.chmod(crash.stat().st_mode | stat.S_IXUSR)
    monkeypatch.setenv("TCGEN_CACHE_DIR", str(tmp_path / "cache"))
    model = build_model(tcgen_a(), OptimizationOptions.full())
    decision = resolve_backend("auto", model, compiler=str(crash))
    assert decision.backend == "python"
    assert "native build failed" in decision.reason
    with pytest.raises(NativeBackendError, match="native build failed"):
        resolve_backend("native", model, compiler=str(crash))


@needs_cc
def test_salvage_stays_python_and_recovers(native_env):
    """Salvage decode works on a native engine: damage diagnosis is Python."""
    spec = tcgen_a()
    raw = make_vpc_trace(1000)
    engine = TraceEngine(spec, backend="native")
    blob = bytearray(engine.compress(raw, chunk_records=100))
    blob[len(blob) // 2] ^= 0xFF  # damage one chunk payload
    recovered = engine.decompress(bytes(blob), mode="salvage")
    assert engine.last_report is not None
    assert engine.last_report.lost_chunks
    # surviving records are a subsequence of the original trace
    assert len(recovered) < len(raw)


@needs_cc
def test_server_metrics_carry_backend_label(native_env):
    from repro.server.handlers import Handlers
    from repro.server.limits import ServerConfig
    from repro.server.metrics import ServerMetrics
    from repro.spec import format_spec

    metrics = ServerMetrics()
    handlers = Handlers(ServerConfig(backend="native").validated(), metrics)
    raw = make_vpc_trace(300)
    params = {"spec": format_spec(tcgen_a())}
    _, blob = handlers.op_compress(params, raw, None)
    _, back = handlers.op_decompress(params, blob, None)
    assert back == raw
    rendered = metrics.render()
    assert 'tcgen_backend_requests_total{backend="native"} 2' in rendered
