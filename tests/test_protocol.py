"""Tests for the service wire protocol and the metrics core.

Pure-function coverage: framing, header validation, error-code mapping,
salvage-report serialization, and the Prometheus-style metrics registry.
The live server contract is covered in ``test_server.py``.
"""

import pytest

from repro.errors import (
    BackpressureError,
    ChecksumError,
    CompressedFormatError,
    DeadlineExceededError,
    ProtocolError,
    RemoteError,
    ServiceUnavailableError,
    SpecError,
    TraceFormatError,
    TruncatedContainerError,
)
from repro.server import protocol
from repro.server.metrics import (
    Histogram,
    MetricsRegistry,
    ServerMetrics,
)
from repro.server.protocol import (
    RequestHeader,
    code_for_exception,
    decode_header,
    decode_json_payload,
    encode_frame,
    encode_json_frame,
    exception_for,
    iter_data_frames,
    report_from_dict,
    report_to_dict,
)
from repro.tio.container import DecodeReport


class TestFraming:
    def test_roundtrip(self):
        frame = encode_frame(protocol.DATA, b"hello")
        frame_type, length = decode_header(frame[: protocol.HEADER_SIZE])
        assert frame_type == protocol.DATA
        assert length == 5
        assert frame[protocol.HEADER_SIZE :] == b"hello"

    def test_empty_payload(self):
        frame = encode_frame(protocol.END)
        _, length = decode_header(frame[: protocol.HEADER_SIZE])
        assert length == 0

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(protocol.DATA, b"x"))
        frame[0] = ord("X")
        with pytest.raises(ProtocolError, match="magic"):
            decode_header(bytes(frame[: protocol.HEADER_SIZE]))

    def test_unknown_frame_type_rejected(self):
        frame = bytearray(encode_frame(protocol.DATA, b"x"))
        frame[2] = 99
        with pytest.raises(ProtocolError, match="frame type"):
            decode_header(bytes(frame[: protocol.HEADER_SIZE]))

    def test_reserved_flags_rejected(self):
        frame = bytearray(encode_frame(protocol.DATA, b"x"))
        frame[3] = 1
        with pytest.raises(ProtocolError, match="flags"):
            decode_header(bytes(frame[: protocol.HEADER_SIZE]))

    def test_oversized_declared_length_rejected(self):
        header = protocol.HEADER.pack(
            protocol.MAGIC, protocol.DATA, 0, protocol.MAX_FRAME_BYTES + 1
        )
        with pytest.raises(ProtocolError, match="cap"):
            decode_header(header)

    def test_oversized_payload_refused_on_encode(self):
        with pytest.raises(ProtocolError, match="cap"):
            encode_frame(protocol.DATA, b"\0" * (protocol.MAX_FRAME_BYTES + 1))

    def test_json_frame_roundtrip(self):
        frame = encode_json_frame(protocol.RESPONSE, {"id": 7, "ok": True})
        payload = frame[protocol.HEADER_SIZE :]
        assert decode_json_payload(payload) == {"id": 7, "ok": True}

    def test_non_json_control_payload_rejected(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            decode_json_payload(b"\xff\xfe")
        with pytest.raises(ProtocolError, match="object"):
            decode_json_payload(b"[1, 2]")

    def test_iter_data_frames_chunks_and_terminates(self):
        payload = b"z" * (protocol.DATA_CHUNK + 10)
        frames = list(iter_data_frames(payload))
        assert len(frames) == 3  # two DATA + one END
        types = [decode_header(f[: protocol.HEADER_SIZE])[0] for f in frames]
        assert types == [protocol.DATA, protocol.DATA, protocol.END]
        body = b"".join(f[protocol.HEADER_SIZE :] for f in frames)
        assert body == payload


class TestRequestHeader:
    def _decode(self, frame: bytes) -> RequestHeader:
        return RequestHeader.decode(frame[protocol.HEADER_SIZE :])

    def test_roundtrip(self):
        header = RequestHeader(
            op="compress",
            request_id=3,
            payload_size=1024,
            deadline_ms=5000,
            params={"spec": "x"},
        )
        assert self._decode(header.encode()) == header

    def test_streaming_payload_size_none(self):
        header = RequestHeader("decompress", 1, None, None, {})
        assert self._decode(header.encode()).payload_size is None

    def test_unknown_op_rejected(self):
        frame = encode_json_frame(
            protocol.REQUEST,
            {"v": protocol.PROTOCOL_VERSION, "op": "explode", "id": 1},
        )
        with pytest.raises(ProtocolError, match="unknown op"):
            self._decode(frame)

    def test_wrong_protocol_version_rejected(self):
        frame = encode_json_frame(
            protocol.REQUEST, {"v": 99, "op": "health", "id": 1}
        )
        with pytest.raises(ProtocolError, match="version"):
            self._decode(frame)

    @pytest.mark.parametrize(
        "field,value",
        [("id", -1), ("id", "x"), ("payload_size", -5), ("deadline_ms", 0)],
    )
    def test_bad_fields_rejected(self, field, value):
        header = {"v": protocol.PROTOCOL_VERSION, "op": "health", "id": 1}
        header[field] = value
        frame = encode_json_frame(protocol.REQUEST, header)
        with pytest.raises(ProtocolError):
            self._decode(frame)


class TestErrorCodes:
    @pytest.mark.parametrize(
        "exc,code",
        [
            (ChecksumError("x", chunk_index=0), "checksum"),
            (TruncatedContainerError("x"), "truncated"),
            (CompressedFormatError("x"), "corrupt"),
            (TraceFormatError("x"), "trace_format"),
            (SpecError("x"), "spec_error"),
            (DeadlineExceededError("x"), "deadline_exceeded"),
            (BackpressureError("x"), "backpressure"),
            (ServiceUnavailableError("x"), "shutting_down"),
            (ValueError("x"), "bad_request"),
            (RuntimeError("x"), "internal"),
        ],
    )
    def test_exception_to_code(self, exc, code):
        assert code_for_exception(exc) == code
        assert code in protocol.ERROR_CODES

    @pytest.mark.parametrize(
        "code,exc_type",
        [
            ("checksum", ChecksumError),
            ("truncated", TruncatedContainerError),
            ("corrupt", CompressedFormatError),
            ("trace_format", TraceFormatError),
            ("spec_error", SpecError),
            ("deadline_exceeded", DeadlineExceededError),
            ("backpressure", BackpressureError),
            ("shutting_down", ServiceUnavailableError),
            ("bad_request", ProtocolError),
            ("payload_too_large", ProtocolError),
            ("internal", RemoteError),
        ],
    )
    def test_code_to_exception(self, code, exc_type):
        assert isinstance(exception_for(code, "boom"), exc_type)

    def test_library_codes_roundtrip(self):
        """Corruption errors survive the wire without losing their type."""
        for exc in (
            ChecksumError("bad crc", chunk_index=2),
            TruncatedContainerError("short"),
            CompressedFormatError("garbage"),
        ):
            code = code_for_exception(exc)
            back = exception_for(code, str(exc))
            assert type(back).__name__ == type(exc).__name__

    def test_backpressure_carries_retry_after(self):
        exc = exception_for("backpressure", "full", retry_after_ms=250)
        assert isinstance(exc, BackpressureError)
        assert exc.retry_after == pytest.approx(0.25)


class TestReportSerialization:
    def test_roundtrip(self):
        report = DecodeReport()
        report.version = 3
        report.mode = "salvage"
        report.total_chunks = 10
        report.total_records = 1000
        report.recovered_chunks = [0, 1, 3]
        report.lost_chunks = [2]
        report.reasons = {2: "checksum mismatch"}
        report.recovered_records = 900
        report.lost_records = 100
        report.truncated = True
        report.notes = ["trailer rebuilt"]
        back = report_from_dict(report_to_dict(report))
        assert report_to_dict(back) == report_to_dict(report)
        assert back.lost_chunks == [2]
        assert back.reasons == {2: "checksum mismatch"}
        assert not back.intact

    def test_tolerates_missing_keys(self):
        report = report_from_dict({})
        assert report.mode == "salvage"
        assert report.lost_chunks == []


class TestMetricsRegistry:
    def test_counter_rendering(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs.").child().inc(3)
        text = registry.render()
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 3" in text

    def test_labeled_counters_sorted(self):
        registry = MetricsRegistry()
        family = registry.counter("req_total", "Reqs.", ("op",))
        family.labels(op="b").inc()
        family.labels(op="a").inc(2)
        text = registry.render()
        assert text.index('req_total{op="a"} 2') < text.index('req_total{op="b"} 1')

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c", "x").child().inc(-1)

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        registry = MetricsRegistry()
        family = registry._register(
            "lat", "Latency.", "histogram", (), lambda: histogram
        )
        assert family.child() is histogram
        text = registry.render()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 3' in text
        assert 'lat_bucket{le="10"} 4' in text
        assert 'lat_bucket{le="+Inf"} 5' in text
        assert "lat_count 5" in text

    def test_inconsistent_reregistration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "X.")
        with pytest.raises(ValueError, match="re-registered"):
            registry.gauge("x_total", "X.")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("y_total", "Y.", ("op",))
        with pytest.raises(ValueError):
            family.labels(other="z")
        with pytest.raises(ValueError):
            family.child()


class TestServerMetrics:
    def test_observe_request_feeds_counters_and_latency(self):
        metrics = ServerMetrics()
        metrics.observe_request("compress", "ok", 0.02)
        metrics.observe_request("compress", "corrupt", 0.01)
        snap = metrics.snapshot()
        assert snap["requests_ok"] == 1
        assert snap["requests_error"] == 1
        text = metrics.render()
        assert 'tcgen_requests_total{op="compress",status="ok"} 1' in text
        assert 'tcgen_request_seconds_count{op="compress"} 2' in text

    def test_cache_hit_rate(self):
        metrics = ServerMetrics()
        assert metrics.cache_hit_rate() == 0.0
        metrics.cache_misses.child().inc()
        metrics.cache_hits.child().inc(3)
        assert metrics.cache_hit_rate() == pytest.approx(0.75)
