"""Smoke tests: every example script runs end to end.

Examples are the public face of the library; each must execute without
errors on a small input.  ``sys.argv`` is patched to pass small scales
where the script accepts arguments.
"""

from pathlib import Path
import runpy
import sys

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str], monkeypatch, capsys) -> str:
    monkeypatch.setattr(sys, "argv", [name] + argv)
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example("quickstart.py", [], monkeypatch, capsys)
    assert "lossless" in out
    assert "predictor usage" in out


def test_custom_format(monkeypatch, capsys):
    out = run_example("custom_format.py", [], monkeypatch, capsys)
    assert "TCgen-generated compressor" in out
    assert "BZIP2" in out


def test_compare_compressors(monkeypatch, capsys):
    out = run_example(
        "compare_compressors.py", ["mcf", "0.2"], monkeypatch, capsys
    )
    assert "relative to TCgen" in out
    for name in ("BZIP2", "MACHE", "PDATS II", "SEQUITUR", "SBC", "VPC3"):
        assert name in out


def test_predictor_tuning(monkeypatch, capsys):
    out = run_example("predictor_tuning.py", ["twolf"], monkeypatch, capsys)
    assert "pruned configuration" in out
    assert "TCgen Trace Specification;" in out


def test_auto_recommend(monkeypatch, capsys):
    out = run_example(
        "auto_recommend.py", ["twolf", "store_addresses"], monkeypatch, capsys
    )
    assert "recommended specification" in out
    assert "rate" in out


def test_streaming_simulation(monkeypatch, capsys):
    out = run_example("streaming_simulation.py", [], monkeypatch, capsys)
    assert "miss ratio" in out


def test_real_program_traces(monkeypatch, capsys):
    out = run_example("real_program_traces.py", ["fib"], monkeypatch, capsys)
    assert "executed fib" in out
    assert "store_addresses" in out


def test_generated_c_roundtrip(monkeypatch, capsys):
    from repro.codegen.compile import find_c_compiler

    if find_c_compiler() is None:
        pytest.skip("no C compiler available")
    out = run_example("generated_c_roundtrip.py", [], monkeypatch, capsys)
    assert "C roundtrip OK" in out
    assert "cross-decompression" in out
