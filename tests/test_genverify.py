"""Tests for the codegen invariant verifier (``repro.lint.genverify``).

Every shipped preset must verify cleanly on both backends under every
optimization ablation, and deliberately broken output must be caught with
the right ``TC1xx`` code.
"""

import re

import pytest

from repro.codegen import generate_c, generate_python
from repro.errors import CodegenError
from repro.lint import assert_verified, verify_generated
from repro.model import OptimizationOptions, build_model
from repro.spec import parse_spec
from repro.spec.presets import TCGEN_A_SPEC, TCGEN_B_SPEC

PRESETS = {"A": TCGEN_A_SPEC, "B": TCGEN_B_SPEC}

ABLATIONS = {
    "full": OptimizationOptions.full(),
    "none": OptimizationOptions.none(),
    "no-shared": OptimizationOptions.full().without("shared_tables"),
    "no-fast-hash": OptimizationOptions.full().without("fast_hash"),
    "no-type-min": OptimizationOptions.full().without("type_minimization"),
}


def model_for(preset, options=None):
    return build_model(parse_spec(PRESETS[preset]), options or OptimizationOptions.full())


class TestCleanGeneration:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    @pytest.mark.parametrize("ablation", sorted(ABLATIONS))
    def test_python_backend_verifies(self, preset, ablation):
        model = model_for(preset, ABLATIONS[ablation])
        source = generate_python(model)
        assert verify_generated(model, source, backend="python") == []

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    @pytest.mark.parametrize("ablation", sorted(ABLATIONS))
    def test_c_backend_verifies(self, preset, ablation):
        model = model_for(preset, ABLATIONS[ablation])
        source = generate_c(model)
        assert verify_generated(model, source, backend="c") == []

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_verify_flag_on_generators(self, preset):
        model = model_for(preset)
        assert "def compress" in generate_python(model, verify=True)
        assert "int main(" in generate_c(model, verify=True)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            verify_generated(model_for("A"), "", backend="rust")


class TestCatchesBrokenPython:
    def test_wrong_table_size_is_tc102_or_tc108(self):
        model = model_for("A")
        source = generate_python(model)
        # Halve the first L2 allocation: bytes(elem * count) -> bytes(elem * count // 2)
        match = re.search(r"_l2 = array\(\"\w\", bytes\((\d+) \* (\d+)\)\)", source)
        assert match is not None
        broken = (
            source[: match.start(2)]
            + str(int(match.group(2)) // 2)
            + source[match.end(2):]
        )
        codes = {d.code for d in verify_generated(model, broken, backend="python")}
        assert codes & {"TC102", "TC108"}

    def test_spurious_lastvalue_is_tc104(self):
        # Preset A's field 1 is FCM-only: injecting a last-value table for
        # it violates dead-code elimination.
        model = model_for("A")
        source = generate_python(model)
        broken = source.replace(
            "def _fresh_tables():\n",
            "def _fresh_tables():\n"
            '    field1_lastvalue = array("I", bytes(4 * 8))\n',
            1,
        )
        codes = [d.code for d in verify_generated(model, broken, backend="python")]
        assert "TC104" in codes

    def test_missing_table_is_reported(self):
        model = model_for("A")
        source = generate_python(model)
        # Delete one allocation line wholesale.
        lines = source.splitlines(keepends=True)
        victim = next(
            i for i, line in enumerate(lines) if "_l2 = array(" in line
        )
        broken = "".join(lines[:victim] + lines[victim + 1:])
        codes = {d.code for d in verify_generated(model, broken, backend="python")}
        assert codes & {"TC102", "TC108"}

    def test_stride_without_dfcm_is_tc105(self):
        # A spec with FCM only must not contain stride computations.
        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {L1 = 1, L2 = 1024: FCM2[1]};\n"
            "PC = Field 1;\n"
        )
        model = build_model(spec)
        source = generate_python(model)
        broken = source.replace(
            "def compress(", "stride7 = 0\n\n\ndef compress(", 1
        )
        codes = [d.code for d in verify_generated(model, broken, backend="python")]
        assert "TC105" in codes

    def test_wrong_header_bytes_is_tc106(self):
        model = model_for("A")
        source = generate_python(model)
        assert "HEADER_BYTES = " in source
        broken = re.sub(r"HEADER_BYTES = \d+", "HEADER_BYTES = 9", source, count=1)
        codes = [d.code for d in verify_generated(model, broken, backend="python")]
        assert "TC106" in codes

    def test_unparseable_source_is_reported(self):
        model = model_for("A")
        diags = verify_generated(model, "def broken(:", backend="python")
        assert [d.code for d in diags] == ["TC102"]

    def test_assert_verified_raises(self):
        model = model_for("A")
        source = generate_python(model)
        broken = re.sub(r"HEADER_BYTES = \d+", "HEADER_BYTES = 9", source, count=1)
        with pytest.raises(CodegenError, match="TC106"):
            assert_verified(model, broken, backend="python")
        assert_verified(model, source, backend="python")  # clean source passes


class TestCatchesBrokenC:
    def test_wrong_calloc_count_is_caught(self):
        model = model_for("A")
        source = generate_c(model)
        match = re.search(r"calloc\((\d+), ", source)
        assert match is not None
        broken = (
            source[: match.start(1)]
            + str(int(match.group(1)) * 2)
            + source[match.end(1):]
        )
        codes = {d.code for d in verify_generated(model, broken, backend="c")}
        assert codes & {"TC102", "TC107", "TC108"}

    def test_spurious_c_lastvalue_is_tc104(self):
        model = model_for("A")
        source = generate_c(model)
        broken = source.replace(
            "static void allocate_tables(void) {",
            "static u32 *field1_lastvalue;\n"
            "static void allocate_tables(void) {\n"
            "    field1_lastvalue = (u32 *)calloc(8, sizeof(u32));",
            1,
        )
        codes = [d.code for d in verify_generated(model, broken, backend="c")]
        assert "TC104" in codes

    def test_wrong_c_header_bytes_is_tc106(self):
        model = model_for("B")
        source = generate_c(model)
        broken = re.sub(
            r"static const u64 header_bytes = \d+;",
            "static const u64 header_bytes = 9;",
            source,
            count=1,
        )
        codes = [d.code for d in verify_generated(model, broken, backend="c")]
        assert "TC106" in codes


class TestIRFoundedVerification:
    """TC3xx: the verifier re-checks emitted source against IR facts."""

    def test_halved_python_table_is_tc301(self):
        model = model_for("A")
        source = generate_python(model)
        match = re.search(r"_l2 = array\(\"\w\", bytes\((\d+) \* (\d+)\)\)", source)
        assert match is not None
        broken = (
            source[: match.start(2)]
            + str(int(match.group(2)) // 2)
            + source[match.end(2):]
        )
        codes = {d.code for d in verify_generated(model, broken, backend="python")}
        assert "TC301" in codes

    def test_injected_dead_python_update_is_tc303(self):
        # Duplicate a chain store inside the compress kernel: the store
        # count then contradicts the IR's liveness-derived write count.
        model = model_for("A")
        source = generate_python(model)
        line = next(
            l for l in source.splitlines()
            if re.match(r"\s*field1_fcm_chain\[0\] = ", l)
        )
        broken = source.replace(line, line + "\n" + line, 1)
        diags = verify_generated(model, broken, backend="python")
        tc303 = [d for d in diags if d.code == "TC303"]
        assert tc303
        assert "dead update injected" in tc303[0].message

    def test_removed_python_update_is_tc303(self):
        model = model_for("A")
        source = generate_python(model)
        line = next(
            l for l in source.splitlines()
            if re.match(r"\s*field2_lastvalue\[", l) and " = " in l
        )
        broken = source.replace(line + "\n", "", 1)
        diags = verify_generated(model, broken, backend="python")
        assert any(d.code == "TC303" for d in diags)

    def test_widened_python_element_is_tc302(self):
        model = model_for("A")
        source = generate_python(model)
        broken = source.replace('_l2 = array("I", bytes(4 * ', '_l2 = array("Q", bytes(8 * ', 1)
        codes = {d.code for d in verify_generated(model, broken, backend="python")}
        assert "TC302" in codes

    def test_halved_c_table_is_tc301(self):
        model = model_for("A")
        source = generate_c(model)
        match = re.search(r"_l2 = \(u\d+ \*\)calloc\((\d+), ", source)
        assert match is not None
        broken = (
            source[: match.start(1)]
            + str(int(match.group(1)) // 2)
            + source[match.end(1):]
        )
        codes = {d.code for d in verify_generated(model, broken, backend="c")}
        assert "TC301" in codes

    def test_injected_dead_c_update_is_tc303(self):
        model = model_for("A")
        source = generate_c(model)
        line = next(
            l for l in source.splitlines()
            if re.match(r"\s*field1_fcm_chain\[0\] = ", l)
        )
        broken = source.replace(line, line + "\n" + line, 1)
        diags = verify_generated(model, broken, backend="c")
        assert any(d.code == "TC303" for d in diags)

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_unelided_masks_are_tc305_warnings(self, preset):
        # The pre-IR baseline retains masks the analysis proves
        # redundant: reported as warnings, never as errors.
        from repro.lint.diagnostics import Severity

        model = model_for(preset)
        source = generate_python(model, ir_facts=False)
        diags = verify_generated(model, source, backend="python")
        assert diags
        assert all(d.code == "TC305" for d in diags)
        assert all(d.severity is Severity.WARNING for d in diags)
        # Warnings do not fail assert_verified.
        assert_verified(model, source, backend="python")

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_elided_output_verifies_clean(self, preset):
        model = model_for(preset)
        for backend, source in (
            ("python", generate_python(model)),
            ("c", generate_c(model)),
        ):
            assert verify_generated(model, source, backend=backend) == []
