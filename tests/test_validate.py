"""Unit tests for semantic validation of specifications."""

import pytest

from repro.errors import ValidationError
from repro.spec import parse_spec


def parse_only(text):
    return parse_spec(text, validate=False)


def check(text):
    from repro.spec.validate import validate_spec

    return validate_spec(parse_only(text))


class TestFieldRules:
    def test_valid_spec_passes(self):
        check(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {L2 = 512: FCM1[1]};\nPC = Field 1;\n"
        )

    @pytest.mark.parametrize("bits", [8, 16, 32, 64])
    def test_allowed_widths(self, bits):
        check(
            "TCgen Trace Specification;\n"
            f"32-Bit Field 1 = {{: LV[1]}};\n"
            f"{bits}-Bit Field 2 = {{: LV[1]}};\n"
            "PC = Field 1;\n"
        )

    @pytest.mark.parametrize("bits", [0, 7, 24, 48, 128])
    def test_rejected_widths(self, bits):
        with pytest.raises(ValidationError, match="width"):
            check(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {: LV[1]};\n"
                f"{bits}-Bit Field 2 = {{: LV[1]}};\n"
                "PC = Field 1;\n"
            )

    @pytest.mark.parametrize("size", [3, 5, 100, 65535])
    def test_l1_must_be_power_of_two(self, size):
        with pytest.raises(ValidationError, match="power of two"):
            check(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {: LV[1]};\n"
                f"64-Bit Field 2 = {{L1 = {size}: LV[1]}};\n"
                "PC = Field 1;\n"
            )

    def test_l2_must_be_power_of_two(self):
        with pytest.raises(ValidationError, match="power of two"):
            check(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {L2 = 1000: FCM1[1]};\nPC = Field 1;\n"
            )

    def test_giant_l2_rejected(self):
        with pytest.raises(ValidationError, match="limit"):
            check(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {L2 = 268435456: FCM8[1]};\nPC = Field 1;\n"
            )


class TestPcRules:
    def test_pc_field_must_exist(self):
        with pytest.raises(ValidationError, match="does not exist"):
            check(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {: LV[1]};\nPC = Field 3;\n"
            )

    def test_pc_field_l1_must_be_one(self):
        with pytest.raises(ValidationError, match="L1 size must be 1"):
            check(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {L1 = 64: LV[1]};\nPC = Field 1;\n"
            )

    def test_non_pc_field_may_have_large_l1(self):
        check(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {: LV[1]};\n"
            "64-Bit Field 2 = {L1 = 65536: LV[1]};\n"
            "PC = Field 1;\n"
        )


class TestNumberingRules:
    def test_field_numbers_must_start_at_one(self):
        with pytest.raises(ValidationError, match="consecutive"):
            check(
                "TCgen Trace Specification;\n"
                "32-Bit Field 2 = {: LV[1]};\nPC = Field 2;\n"
            )

    def test_field_numbers_must_be_consecutive(self):
        with pytest.raises(ValidationError, match="consecutive"):
            check(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {: LV[1]};\n"
                "64-Bit Field 3 = {: LV[1]};\n"
                "PC = Field 1;\n"
            )

    def test_duplicate_field_numbers_rejected(self):
        with pytest.raises(ValidationError, match="consecutive"):
            check(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {: LV[1]};\n"
                "64-Bit Field 1 = {: LV[1]};\n"
                "PC = Field 1;\n"
            )


class TestPredictorRules:
    def test_order_zero_fcm_rejected(self):
        with pytest.raises(ValidationError, match="order"):
            check(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {: FCM0[1]};\nPC = Field 1;\n"
            )

    def test_huge_order_rejected(self):
        with pytest.raises(ValidationError, match="order"):
            check(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {: FCM9[1]};\nPC = Field 1;\n"
            )

    def test_zero_depth_rejected(self):
        with pytest.raises(ValidationError, match="depth"):
            check(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {: LV[0]};\nPC = Field 1;\n"
            )

    def test_huge_depth_rejected(self):
        with pytest.raises(ValidationError, match="depth"):
            check(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {: LV[17]};\nPC = Field 1;\n"
            )

    def test_order_times_l2_over_limit_rejected(self):
        # L2 = 2^25 with order 8 needs 2^32 lines.
        with pytest.raises(ValidationError, match="limit"):
            check(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {L2 = 33554432: FCM8[1]};\nPC = Field 1;\n"
            )

    def test_unaligned_header_rejected(self):
        with pytest.raises(ValidationError, match="header"):
            check(
                "TCgen Trace Specification;\n"
                "12-Bit Header;\n"
                "32-Bit Field 1 = {: LV[1]};\nPC = Field 1;\n"
            )
