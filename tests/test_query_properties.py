"""Property tests: ``engine.query`` must equal filtering a full decompress.

The executor's whole contract is that the skip index is invisible in the
results — across container generations, backends, salvage mode, and
absent/stale/partial indexes, a query answers exactly what a full
decompress followed by a record-by-record filter would.  Hypothesis
drives randomized traces, chunkings, predicates, and index tampering at
that contract.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import parse_predicate
from repro.query.predicate import RECORD_FIELD, And, Comparison, Or
from repro.runtime.engine import TraceEngine
from repro.runtime.streaming import iter_records
from repro.spec import tcgen_a
from repro.tio import VPC_FORMAT, decode_container, pack_records
from repro.tio.skipindex import ChunkSummary, SkipIndex
from repro.tio.traceformat import unpack_records

#: Values predicates compare against — chosen to straddle the trace pool.
LITERALS = (0, 1, 0x1000, 0x1010, 0x2000, 0x123456, 1 << 33, (1 << 40) - 1)

#: Values traces are built from (heavy reuse, like real traces).
POOL = np.array(
    [0x1000, 0x1004, 0x1008, 0x100C, 0x1010, 0x2000, 0x123456, 1 << 33],
    dtype=np.uint64,
)


@pytest.fixture(scope="module")
def engine():
    return TraceEngine(tcgen_a())


def make_trace(picks: list[int], offsets: list[int]) -> bytes:
    pcs = POOL[np.array(picks) % len(POOL)]
    data = pcs + np.array(offsets, dtype=np.uint64)
    return pack_records(VPC_FORMAT, b"VPC3", [pcs, data])


comparison = st.builds(
    Comparison,
    field=st.sampled_from([1, 2, RECORD_FIELD]),
    op=st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
    value=st.sampled_from(LITERALS),
)
predicate = st.recursive(
    comparison,
    lambda inner: st.one_of(
        st.builds(lambda a, b: And((a, b)), inner, inner),
        st.builds(lambda a, b: Or((a, b)), inner, inner),
    ),
    max_leaves=4,
)


def expected_records(engine, blob: bytes, pred, mode: str) -> list[tuple]:
    """Ground truth: decode everything, then filter — no index involved."""
    if mode == "salvage":
        records = list(iter_records(engine.model.spec, blob, mode="salvage"))
    else:
        raw = engine.decompress(blob)
        _, columns = unpack_records(engine.format, raw)
        records = list(zip(*(col.tolist() for col in columns)))
    if pred is None:
        return records
    return [r for i, r in enumerate(records) if pred.matches(r, i)]


def check(engine, blob: bytes, pred, mode: str = "strict") -> None:
    result = engine.query(blob, pred, op="select", mode=mode)
    assert result.records == expected_records(engine, blob, pred, mode)
    count = engine.query(blob, pred, op="count", mode=mode)
    assert count.count == result.count == len(result.records)


@settings(max_examples=40, deadline=None)
@given(
    picks=st.lists(st.integers(0, 255), min_size=1, max_size=300),
    offsets=st.lists(st.integers(0, 7), min_size=1, max_size=300),
    chunk_records=st.sampled_from([1, 7, 64, 1000]),
    version=st.sampled_from([1, 2, 3, 4]),
    skip_index=st.booleans(),
    pred=st.one_of(st.none(), predicate),
)
def test_query_equals_filtered_decompress(
    engine, picks, offsets, chunk_records, version, skip_index, pred
):
    offsets = (offsets * (len(picks) // len(offsets) + 1))[: len(picks)]
    trace = make_trace(picks, offsets)
    if version == 1:
        blob = engine.compress(trace)
    else:
        blob = engine.compress(
            trace,
            chunk_records=chunk_records,
            container_version=version,
            skip_index=skip_index,
        )
    check(engine, blob, pred)


@settings(max_examples=25, deadline=None)
@given(
    picks=st.lists(st.integers(0, 255), min_size=40, max_size=300),
    tamper=st.sampled_from(["absent", "stale_chunks", "stale_fields", "partial"]),
    pred=predicate,
)
def test_tampered_index_never_changes_results(engine, picks, tamper, pred):
    trace = make_trace(picks, [i % 5 for i in range(len(picks))])
    blob = engine.compress(
        trace, chunk_records=16, container_version=3, skip_index=True
    )
    container = decode_container(blob)
    good = container.skip_index
    if tamper == "absent":
        container.skip_index = None
    elif tamper == "stale_chunks":
        container.skip_index = SkipIndex(
            field_count=good.field_count,
            bloom_bits=good.bloom_bits,
            chunks=list(good.chunks) + [ChunkSummary(0, None)],
        )
    elif tamper == "stale_fields":
        container.skip_index = SkipIndex(
            field_count=good.field_count + 1,
            chunks=[ChunkSummary(0, None) for _ in good.chunks],
        )
    else:  # partial: half the summaries blanked
        chunks = [
            c if i % 2 else ChunkSummary(0, None)
            for i, c in enumerate(good.chunks)
        ]
        container.skip_index = SkipIndex(
            field_count=good.field_count,
            bloom_bits=good.bloom_bits,
            chunks=chunks,
        )
    check(engine, container.encode(), pred)


@settings(max_examples=25, deadline=None)
@given(
    picks=st.lists(st.integers(0, 255), min_size=60, max_size=300),
    damage=st.integers(0, 1_000_000),
    pred=predicate,
)
def test_salvage_query_matches_salvaged_iteration(engine, picks, damage, pred):
    trace = make_trace(picks, [i % 3 for i in range(len(picks))])
    blob = engine.compress(
        trace, chunk_records=16, container_version=3, skip_index=True
    )
    damaged = bytearray(blob)
    damaged[damage % len(blob)] ^= 0xFF
    check(engine, bytes(damaged), pred, mode="salvage")


@settings(max_examples=20, deadline=None)
@given(
    picks=st.lists(st.integers(0, 255), min_size=1, max_size=200),
    where=st.sampled_from(
        [
            "pc == 0x1000",
            "f2 >= 0x2000 and record < 50",
            "pc < 0x1008 or f2 == 0x123456",
            "record >= 10 and record < 90",
        ]
    ),
)
def test_text_predicates_roundtrip_through_parser(engine, picks, where):
    trace = make_trace(picks, [0] * len(picks))
    blob = engine.compress(trace, chunk_records=32, container_version=4)
    pred = parse_predicate(where, pc_field=engine.format.pc_field or None)
    result = engine.query(blob, where, op="select")
    assert result.records == expected_records(engine, blob, pred, "strict")
