"""The field kernel must agree with compositions of standalone predictors."""

import numpy as np
import pytest

from repro.model import OptimizationOptions, build_model
from repro.predictors import DFCMPredictor, FCMPredictor, LastValuePredictor
from repro.runtime.kernel import FieldKernel
from repro.spec import parse_spec


def kernel_for(field_text, options=None, pc_line="32-Bit Field 1 = {: LV[1]};"):
    spec = parse_spec(
        "TCgen Trace Specification;\n"
        f"{pc_line}\n"
        f"{field_text}\n"
        "PC = Field 2;\n".replace("PC = Field 2;", "PC = Field 1;")
    )
    options = options or OptimizationOptions.full()
    model = build_model(spec, options)
    return FieldKernel(model.fields[1], options)


class TestAgainstStandalonePredictors:
    def _drive(self, kernel, predictors, values, pcs):
        """Kernel predictions must equal the standalone predictors'."""
        for pc, value in zip(pcs, values):
            kernel_preds = kernel.begin(pc)
            standalone = []
            for predictor in predictors:
                standalone += predictor.predict(pc)
            assert kernel_preds == standalone
            kernel.commit(value)
            for predictor in predictors:
                predictor.update(value, pc)

    def test_lv_field(self):
        kernel = kernel_for("64-Bit Field 2 = {L1 = 16, L2 = 512: LV[3]};")
        reference = [LastValuePredictor(3, lines=16)]
        rng = np.random.default_rng(0)
        values = rng.integers(0, 50, 300).tolist()
        pcs = rng.integers(0, 64, 300).tolist()
        self._drive(kernel, reference, values, pcs)

    def test_fcm_field(self):
        kernel = kernel_for("64-Bit Field 2 = {L1 = 8, L2 = 256: FCM2[2]};")
        reference = [FCMPredictor(2, 2, 256, lines=8)]
        rng = np.random.default_rng(1)
        values = rng.integers(0, 30, 300).tolist()
        pcs = rng.integers(0, 32, 300).tolist()
        self._drive(kernel, reference, values, pcs)

    def test_dfcm_field(self):
        kernel = kernel_for("64-Bit Field 2 = {L1 = 8, L2 = 256: DFCM2[2]};")
        reference = [DFCMPredictor(2, 2, 256, lines=8)]
        rng = np.random.default_rng(2)
        values = np.cumsum(rng.integers(0, 16, 300)).tolist()
        pcs = rng.integers(0, 32, 300).tolist()
        self._drive(kernel, reference, values, pcs)

    def test_mixed_field_without_sharing(self):
        """With sharing off, the kernel is literally a predictor bank."""
        options = OptimizationOptions().without("shared_tables")
        kernel = kernel_for(
            "64-Bit Field 2 = {L1 = 8, L2 = 256: DFCM2[2], FCM1[2], LV[2]};",
            options,
        )
        reference = [
            DFCMPredictor(2, 2, 256, lines=8),
            FCMPredictor(1, 2, 256, lines=8),
            LastValuePredictor(2, lines=8),
        ]
        rng = np.random.default_rng(3)
        values = np.cumsum(rng.integers(0, 8, 400)).tolist()
        pcs = rng.integers(0, 32, 400).tolist()
        self._drive(kernel, reference, values, pcs)


class TestMemoryAccounting:
    """The model's table-byte accounting must match the state the kernel
    (and therefore the generated code) actually allocates."""

    @pytest.mark.parametrize("shared", [True, False])
    def test_kernel_slots_match_model_bytes(self, shared):
        from repro.codegen.plan import plan_field
        from repro.spec import tcgen_a

        options = (
            OptimizationOptions.full()
            if shared
            else OptimizationOptions().without("shared_tables")
        )
        model = build_model(tcgen_a(), options)
        for layout in model.fields:
            plan = plan_field(layout, options)
            plan_bytes = plan.table_bytes()
            assert plan_bytes == layout.table_bytes(shared=shared)

    def test_paper_memory_claim_via_plan(self):
        """Summing the plan structures reproduces the paper's 20MB."""
        from repro.codegen.plan import plan_field
        from repro.spec import tcgen_a

        options = OptimizationOptions.full()
        model = build_model(tcgen_a(), options)
        total = sum(
            plan_field(layout, options).table_bytes() for layout in model.fields
        )
        assert abs(total - 20 * 2**20) < 100 * 1024


class TestSharingEquivalence:
    @pytest.mark.parametrize(
        "field",
        [
            "64-Bit Field 2 = {L1 = 16, L2 = 256: DFCM3[2], DFCM1[2], FCM1[2], LV[4]};",
            "64-Bit Field 2 = {L1 = 4, L2 = 128: DFCM2[1], LV[2]};",
            "32-Bit Field 2 = {L2 = 512: FCM3[2], FCM2[2], FCM1[2]};",
        ],
    )
    def test_shared_and_unshared_predict_identically(self, field):
        shared = kernel_for(field, OptimizationOptions.full())
        unshared = kernel_for(
            field, OptimizationOptions().without("shared_tables")
        )
        rng = np.random.default_rng(4)
        values = np.cumsum(rng.integers(0, 12, 500)).tolist()
        pcs = rng.integers(0, 64, 500).tolist()
        for pc, value in zip(pcs, values):
            assert shared.begin(pc) == unshared.begin(pc)
            shared.commit(value)
            unshared.commit(value)

    def test_fast_and_slow_hash_predict_identically(self):
        field = "64-Bit Field 2 = {L1 = 8, L2 = 128: DFCM3[2], FCM2[2], LV[1]};"
        fast = kernel_for(field, OptimizationOptions.full())
        slow = kernel_for(field, OptimizationOptions().without("fast_hash"))
        rng = np.random.default_rng(5)
        values = np.cumsum(rng.integers(0, 9, 400)).tolist()
        pcs = rng.integers(0, 16, 400).tolist()
        for pc, value in zip(pcs, values):
            assert fast.begin(pc) == slow.begin(pc)
            fast.commit(value)
            slow.commit(value)
