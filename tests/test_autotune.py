"""Tests for adaptive (self-describing) archives — the paper's Section 7.5
closing proposal, implemented as an extension."""

import pytest

from repro.autotune import (
    compress_adaptive,
    decompress_adaptive,
    default_candidates,
    prune_by_usage,
    read_archive_spec,
)
from repro.errors import CompressedFormatError
from repro.runtime import TraceEngine
from repro.spec import tcgen_a, tcgen_b
from repro.traces import build_trace

from conftest import make_vpc_trace


@pytest.fixture(scope="module")
def store_trace():
    return build_trace("swim", "store_addresses", scale=0.5)


class TestRoundtrip:
    def test_adaptive_roundtrip(self, store_trace):
        result = compress_adaptive(store_trace)
        assert decompress_adaptive(result.archive) == store_trace

    def test_archive_carries_winning_spec(self, store_trace):
        result = compress_adaptive(store_trace)
        spec, payload = read_archive_spec(result.archive)
        assert spec == result.spec
        assert payload  # the actual compressed blob follows

    def test_decompressor_is_regenerated_from_archive_alone(self, store_trace):
        """The reader needs no out-of-band configuration at all."""
        archive = compress_adaptive(store_trace).archive
        assert decompress_adaptive(archive) == store_trace

    def test_small_trace(self):
        raw = make_vpc_trace(n=300)
        result = compress_adaptive(raw)
        assert decompress_adaptive(result.archive) == raw

    def test_non_archive_rejected(self):
        with pytest.raises(CompressedFormatError, match="adaptive archive"):
            decompress_adaptive(b"TCGN not an adaptive archive")


class TestSelection:
    def test_every_candidate_is_tried(self, store_trace):
        result = compress_adaptive(store_trace, refine=False)
        assert len(result.candidate_sizes) == len(default_candidates())

    def test_winner_is_smallest_candidate(self, store_trace):
        result = compress_adaptive(store_trace, refine=False)
        assert result.candidate_sizes[result.spec_text] == min(
            result.candidate_sizes.values()
        )

    def test_explicit_candidates(self, store_trace):
        result = compress_adaptive(
            store_trace, candidates=[tcgen_a()], refine=False
        )
        assert result.spec == tcgen_a()

    def test_overhead_is_tens_of_bytes(self, store_trace):
        """The paper: "an overhead of a few tens of bytes"."""
        result = compress_adaptive(store_trace, candidates=[tcgen_a()], refine=False)
        plain = TraceEngine(tcgen_a()).compress(store_trace)
        overhead = len(result.archive) - len(plain)
        assert 0 < overhead < 300

    def test_adaptive_never_larger_than_fixed_tcgen_a(self, store_trace):
        adaptive = compress_adaptive(store_trace)
        fixed = TraceEngine(tcgen_a()).compress(store_trace)
        # minus the embedded spec text, the payload is at most the fixed size
        _, payload = read_archive_spec(adaptive.archive)
        assert len(payload) <= len(fixed)


class TestPruning:
    def test_prune_drops_unused_predictors(self, store_trace):
        engine = TraceEngine(tcgen_b())
        engine.compress(store_trace)
        pruned = prune_by_usage(tcgen_b(), engine.last_usage)
        before = sum(len(f.predictors) for f in tcgen_b().fields)
        after = sum(len(f.predictors) for f in pruned.fields)
        assert after <= before

    def test_prune_keeps_at_least_one_predictor_per_field(self, store_trace):
        engine = TraceEngine(tcgen_b())
        engine.compress(store_trace)
        pruned = prune_by_usage(tcgen_b(), engine.last_usage, threshold=1.1)
        for field in pruned.fields:
            assert len(field.predictors) == 1

    def test_pruned_spec_is_valid_and_usable(self, store_trace):
        engine = TraceEngine(tcgen_b())
        engine.compress(store_trace)
        pruned = prune_by_usage(tcgen_b(), engine.last_usage)
        pruned_engine = TraceEngine(pruned)  # validates internally
        blob = pruned_engine.compress(store_trace)
        assert pruned_engine.decompress(blob) == store_trace

    def test_pruned_rate_stays_close(self, store_trace):
        """Section 7.5: pruning useless predictors barely hurts the rate."""
        wide = TraceEngine(tcgen_b())
        wide_blob = wide.compress(store_trace)
        pruned_spec = prune_by_usage(tcgen_b(), wide.last_usage)
        pruned_blob = TraceEngine(pruned_spec).compress(store_trace)
        assert len(pruned_blob) <= len(wide_blob) * 1.15
