"""Consistent-hash ring: determinism, balance, and minimal movement."""

from __future__ import annotations

import hashlib

import pytest

from repro.server.ring import HashRing


def keys(n: int, salt: str = "") -> list[str]:
    return [
        hashlib.sha256(f"{salt}spec-{i}".encode()).hexdigest() for i in range(n)
    ]


class TestLookup:
    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().lookup("abc")

    def test_deterministic_across_instances(self):
        a = HashRing([0, 1, 2, 3])
        b = HashRing([3, 1, 0, 2])  # insertion order must not matter
        for key in keys(200):
            assert a.lookup(key) == b.lookup(key)

    def test_single_worker_gets_everything(self):
        ring = HashRing([7])
        assert all(ring.lookup(k) == 7 for k in keys(50))

    def test_members_sorted(self):
        ring = HashRing([2, 0, 1])
        assert ring.members == (0, 1, 2)


class TestBalance:
    def test_reasonable_spread_at_four_workers(self):
        ring = HashRing([0, 1, 2, 3])
        counts = {w: 0 for w in ring.members}
        sample = keys(4000)
        for key in sample:
            counts[ring.lookup(key)] += 1
        # With 128 virtual nodes per worker the spread is tight; allow a
        # generous band so the test does not depend on hash minutiae.
        for worker, count in counts.items():
            share = count / len(sample)
            assert 0.10 < share < 0.45, f"worker {worker} owns {share:.1%}"


class TestMinimalMovement:
    def test_removing_one_worker_moves_only_its_keys(self):
        before = HashRing([0, 1, 2, 3])
        after = HashRing([0, 1, 2])
        moved = 0
        sample = keys(2000)
        for key in sample:
            owner = before.lookup(key)
            if owner == 3:
                continue  # its keys must move somewhere
            if after.lookup(key) != owner:
                moved += 1
        assert moved == 0, f"{moved} keys moved off surviving workers"

    def test_adding_a_worker_moves_a_fraction(self):
        before = HashRing([0, 1, 2])
        after = HashRing([0, 1, 2, 3])
        sample = keys(2000)
        moved = sum(1 for k in sample if before.lookup(k) != after.lookup(k))
        # Ideal movement is 1/4 of keys; consistent hashing should stay
        # in the same ballpark, far below the ~3/4 naive-mod reshuffle.
        assert moved / len(sample) < 0.40

    def test_add_remove_mutators_match_fresh_ring(self):
        ring = HashRing([0, 1])
        ring.add(2)
        fresh = HashRing([0, 1, 2])
        for key in keys(200):
            assert ring.lookup(key) == fresh.lookup(key)
        ring.remove(1)
        fresh = HashRing([0, 2])
        for key in keys(200):
            assert ring.lookup(key) == fresh.lookup(key)


class TestPreference:
    def test_preference_starts_with_owner_and_covers_all(self):
        ring = HashRing([0, 1, 2, 3])
        for key in keys(100):
            order = ring.preference(key)
            assert order[0] == ring.lookup(key)
            assert sorted(order) == [0, 1, 2, 3]

    def test_preference_deterministic(self):
        ring = HashRing([0, 1, 2, 3])
        for key in keys(50):
            assert ring.preference(key) == ring.preference(key)
