"""Tests for the code-generation structure planner."""


from repro.codegen.plan import plan_field
from repro.model import OptimizationOptions, build_model
from repro.spec import parse_spec, tcgen_a
from repro.spec.ast import PredictorKind


def plans_for(spec, options=None):
    options = options or OptimizationOptions.full()
    model = build_model(spec, options)
    return [plan_field(layout, options) for layout in model.fields], model


class TestSharedPlans:
    def test_tcgen_a_field2_structures(self):
        plans, _ = plans_for(tcgen_a())
        field2 = plans[1]
        assert len(field2.lasts) == 1  # one shared last-value table
        assert len(field2.chains) == 2  # one FCM chain, one DFCM chain
        assert len(field2.l2s) == 3  # DFCM3, DFCM1, FCM1

    def test_chain_spans_cover_highest_order(self):
        plans, _ = plans_for(tcgen_a())
        dfcm_chain = next(
            c for c in plans[1].chains if c.kind is PredictorKind.DFCM
        )
        assert dfcm_chain.span == 3
        assert dfcm_chain.orders_served == (1, 3)

    def test_all_dfcm_and_lv_share_the_last_table(self):
        plans, _ = plans_for(tcgen_a())
        field2 = plans[1]
        shared = field2.lasts[0]
        for pred in field2.predictors:
            if pred.kind in (PredictorKind.LV, PredictorKind.DFCM):
                assert pred.last is shared

    def test_structure_names_are_unique(self):
        plans, _ = plans_for(tcgen_a())
        names = []
        for plan in plans:
            names += [s.name for s in plan.lasts]
            names += [s.name for s in plan.chains]
            names += [s.name for s in plan.l2s]
        assert len(names) == len(set(names))

    def test_duplicate_predictor_selections_get_distinct_tables(self):
        """Regression: DFCM1[2] listed twice must not share one L2 table
        in generated code (the engine keeps two; a name collision here
        silently merged them and produced double updates)."""
        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {L2 = 256: DFCM1[2], DFCM1[2]};\nPC = Field 1;\n"
        )
        plans, _ = plans_for(spec)
        l2_names = [l2.name for l2 in plans[0].l2s]
        assert len(l2_names) == 2
        assert len(set(l2_names)) == 2

    def test_plan_bytes_match_layout_accounting(self):
        plans, model = plans_for(tcgen_a())
        for plan, layout in zip(plans, model.fields):
            assert plan.table_bytes() == layout.table_bytes(shared=True)


class TestUnsharedPlans:
    def test_every_predictor_owns_structures(self):
        options = OptimizationOptions().without("shared_tables")
        plans, _ = plans_for(tcgen_a(), options)
        field2 = plans[1]
        # DFCM3, DFCM1 each: chain + l2 + last; FCM1: chain + l2; LV: last.
        assert len(field2.lasts) == 3
        assert len(field2.chains) == 3
        assert len(field2.l2s) == 3

    def test_private_chains_use_field_level_hash_params(self):
        """Hash values (and so the compression rate) must not change when
        sharing is disabled — only duplication is added."""
        shared_plans, _ = plans_for(tcgen_a())
        options = OptimizationOptions().without("shared_tables")
        unshared_plans, _ = plans_for(tcgen_a(), options)
        shared_chain = next(
            c for c in shared_plans[1].chains if c.kind is PredictorKind.DFCM
        )
        for chain in unshared_plans[1].chains:
            if chain.kind is PredictorKind.DFCM:
                assert chain.params.shift == shared_chain.params.shift
                assert chain.params.fold_bits == shared_chain.params.fold_bits

    def test_unshared_names_are_unique(self):
        options = OptimizationOptions().without("shared_tables")
        plans, _ = plans_for(tcgen_a(), options)
        names = []
        for plan in plans:
            names += [s.name for s in plan.lasts + plan.chains + plan.l2s]
        assert len(names) == len(set(names))

    def test_plan_bytes_match_layout_accounting(self):
        options = OptimizationOptions().without("shared_tables")
        plans, model = plans_for(tcgen_a(), options)
        for plan, layout in zip(plans, model.fields):
            assert plan.table_bytes() == layout.table_bytes(shared=False)


class TestSlowHashPlans:
    def test_slow_chains_store_field_width_values(self):
        options = OptimizationOptions().without("fast_hash")
        plans, model = plans_for(tcgen_a(), options)
        chain = plans[1].chains[0]
        assert not chain.fast
        assert chain.elem_bytes == model.fields[1].elem_bytes


class TestDeadCode:
    def test_fcm_only_field_has_no_lasts(self):
        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {L2 = 512: FCM2[1]};\nPC = Field 1;\n"
        )
        plans, _ = plans_for(spec)
        assert plans[0].lasts == []

    def test_lv_only_field_has_no_chains_or_l2(self):
        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {: LV[2]};\nPC = Field 1;\n"
        )
        plans, _ = plans_for(spec)
        assert plans[0].chains == []
        assert plans[0].l2s == []
