"""Tests for the query subsystem (``repro.query`` + ``repro.tio.skipindex``).

Three layers under test: the skip-index codec and its emission paths
(engine compress, streaming close, offline rebuild), the predicate
language and pushdown executor (results must be identical to filtering a
full decompress, with measurably fewer chunks decoded when the index can
prove skips), and the grammar-side analytics computed on SEQUITUR rules
without expanding them.
"""

from __future__ import annotations

import io
import struct

import numpy as np
import pytest

from repro.baselines.sequitur import SequiturCompressor
from repro.errors import (
    ChecksumError,
    CompressedFormatError,
    PredicateError,
    ProtocolError,
    TruncatedContainerError,
)
from repro.query import (
    analyze,
    count_value,
    load_grammar,
    parse_predicate,
    rebuild_index,
    records_to_bytes,
    rule_metrics,
    top_patterns,
    validate_predicate,
)
from repro.query.grammar import _topo_order
from repro.query.predicate import And, Comparison, Or
from repro.runtime.engine import TraceEngine
from repro.server.handlers import Handlers
from repro.server.limits import ServerConfig
from repro.server.metrics import ServerMetrics
from repro.server.protocol import code_for_exception
from repro.spec import parse_spec, tcgen_a
from repro.spec.presets import TCGEN_A_SPEC
from repro.tio import VPC_FORMAT, decode_container, pack_records
from repro.tio.container import DecodeReport
from repro.tio.skipindex import (
    ChunkSummary,
    FieldSummary,
    SkipIndex,
    bloom_maybe,
    build_index,
    encode_index_frame,
    parse_index_frame,
    summarize_columns,
)
from repro.tio.streamv4 import scan_stream
from repro.tio.traceformat import unpack_records

from conftest import make_vpc_trace

CHUNK = 512


def make_sorted_trace(n: int = 8192) -> bytes:
    """A trace whose PC column is globally sorted, so fixed-size chunks
    cover disjoint PC ranges — the shape skip indexes exist for."""
    rng = np.random.default_rng(23)
    pcs = np.sort(rng.integers(0x1000, 0x100000, size=n, dtype=np.uint64))
    data = rng.integers(0, 1 << 40, size=n, dtype=np.uint64)
    return pack_records(VPC_FORMAT, b"VPC3", [pcs, data])


def ground_truth(engine: TraceEngine, blob: bytes, where: str | None) -> list[tuple]:
    """The spec: filter a *full* decompress record by record."""
    raw = engine.decompress(blob)
    _, columns = unpack_records(engine.format, raw)
    records = list(zip(*(col.tolist() for col in columns)))
    if where is None:
        return records
    predicate = parse_predicate(where, pc_field=engine.format.pc_field or None)
    return [
        record
        for index, record in enumerate(records)
        if predicate.matches(record, index)
    ]


@pytest.fixture(scope="module")
def engine():
    return TraceEngine(tcgen_a())


@pytest.fixture(scope="module")
def sorted_trace():
    return make_sorted_trace()


@pytest.fixture(scope="module")
def indexed_v3(engine, sorted_trace):
    return engine.compress(
        sorted_trace, chunk_records=CHUNK, container_version=3, skip_index=True
    )


@pytest.fixture(scope="module")
def indexed_v4(engine, sorted_trace):
    return engine.compress(
        sorted_trace, chunk_records=CHUNK, container_version=4, skip_index=True
    )


# -- predicate language -------------------------------------------------------


class TestPredicates:
    def test_comparison_ops(self):
        record = (0x4000, 77)
        for text, expected in [
            ("f1 == 0x4000", True),
            ("f1 != 0x4000", False),
            ("f2 < 78", True),
            ("f2 <= 76", False),
            ("f2 > 76", True),
            ("f2 >= 78", False),
        ]:
            assert parse_predicate(text).matches(record, 0) is expected, text

    def test_and_or_precedence(self):
        # and binds tighter than or: this is (a and b) or c.
        pred = parse_predicate("f1 == 1 and f2 == 2 or f1 == 9")
        assert isinstance(pred, Or)
        assert pred.matches((9, 0), 0)
        assert pred.matches((1, 2), 0)
        assert not pred.matches((1, 3), 0)
        grouped = parse_predicate("f1 == 1 and (f2 == 2 or f1 == 9)")
        assert isinstance(grouped, And)
        assert not grouped.matches((9, 0), 0)

    def test_pc_and_record_pseudofields(self):
        pred = parse_predicate("pc == 0x10 and record < 5", pc_field=1)
        assert pred.matches((0x10, 0), 4)
        assert not pred.matches((0x10, 0), 5)
        with pytest.raises(PredicateError, match="no PC field"):
            parse_predicate("pc == 1", pc_field=None)

    def test_literal_bases_and_field_numbering(self):
        pred = parse_predicate("field2 == 0xF")
        assert pred.matches((0, 15), 0)
        with pytest.raises(PredicateError, match="field"):
            validate_predicate(parse_predicate("f3 == 1"), field_count=2)

    @pytest.mark.parametrize(
        "text",
        ["", "f1 ==", "f1 = 3", "nope !!", "f1 == 1 and", "(f1 == 1", "f0 == 1"],
    )
    def test_malformed_predicates_raise(self, text):
        with pytest.raises(PredicateError):
            parse_predicate(text)

    def test_maybe_is_one_sided(self):
        """``maybe`` may say yes falsely but never no falsely."""
        values = np.array([10, 20, 30, 40], dtype=np.uint64)
        summary = summarize_columns([values, values + 1])
        for text in ["f1 == 20", "f1 >= 40", "f1 < 11", "f2 != 0"]:
            pred = parse_predicate(text)
            hit = any(
                pred.matches((int(v), int(v) + 1), i)
                for i, v in enumerate(values)
            )
            if hit:
                assert pred.maybe(0, 4, summary)

    def test_maybe_prunes_out_of_range(self):
        summary = summarize_columns([np.array([10, 20], dtype=np.uint64)])
        assert not parse_predicate("f1 == 5").maybe(0, 2, summary)
        assert not parse_predicate("f1 > 20").maybe(0, 2, summary)
        # != prunes only an all-equal chunk.
        constant = summarize_columns([np.array([7, 7], dtype=np.uint64)])
        assert not parse_predicate("f1 != 7").maybe(0, 2, constant)
        assert parse_predicate("f1 != 10").maybe(0, 2, summary)

    def test_record_range_needs_no_summary(self):
        pred = parse_predicate("record >= 100 and record < 200")
        assert not pred.maybe(0, 100, None)
        assert pred.maybe(150, 100, None)
        assert not pred.maybe(200, 100, None)


# -- skip index codec ---------------------------------------------------------


class TestSkipIndexCodec:
    def roundtrip(self, index: SkipIndex) -> SkipIndex:
        decoded = SkipIndex.decode(index.encode())
        assert decoded == index
        return decoded

    def test_encode_decode_roundtrip(self):
        values = np.array([3, 9, 4096, 3], dtype=np.uint64)
        self.roundtrip(
            SkipIndex(
                field_count=2,
                chunks=[
                    summarize_columns([values, values * 2]),
                    ChunkSummary(0, None),  # unsummarized placeholder
                ],
            )
        )

    def test_roundtrip_without_blooms(self):
        index = SkipIndex(
            field_count=1,
            bloom_bits=0,
            chunks=[ChunkSummary(2, (FieldSummary(5, 9, None),))],
        )
        assert self.roundtrip(index).chunks[0].fields[0].bloom is None

    def test_frame_roundtrip_and_corruption(self):
        index = SkipIndex(field_count=1, bloom_bits=0, chunks=[])
        frame = encode_index_frame(index)
        parsed, end = parse_index_frame(frame, 0)
        assert parsed == index and end == len(frame)
        damaged = bytearray(frame)
        damaged[-1] ^= 0xFF
        with pytest.raises(ChecksumError):
            parse_index_frame(bytes(damaged), 0)
        with pytest.raises(TruncatedContainerError):
            parse_index_frame(frame[:-3], 0)

    def test_decode_rejects_garbage(self):
        with pytest.raises(CompressedFormatError, match="version"):
            SkipIndex.decode(bytes([99]))
        good = SkipIndex(field_count=1, bloom_bits=0, chunks=[]).encode()
        with pytest.raises(CompressedFormatError, match="trailing"):
            SkipIndex.decode(good + b"\x00")

    def test_bloom_membership(self):
        values = np.array([0x1000, 0x2000, 0xDEADBEEF], dtype=np.uint64)
        summary = summarize_columns([values], bloom_bits=1024)
        bloom = summary.fields[0].bloom
        for value in values.tolist():
            assert bloom_maybe(bloom, 1024, value)
        absent = sum(
            bloom_maybe(bloom, 1024, v) for v in range(0x5000, 0x5100)
        )
        assert absent < 20  # 3 values in 1024 bits: false positives are rare


# -- emission paths -----------------------------------------------------------


class TestEmission:
    def test_default_output_is_unchanged(self, engine, sorted_trace):
        """Emission is opt-in: without the flag, bytes match the seed."""
        plain = engine.compress(sorted_trace, chunk_records=CHUNK, container_version=3)
        explicit = engine.compress(
            sorted_trace, chunk_records=CHUNK, container_version=3, skip_index=False
        )
        assert plain == explicit
        assert decode_container(plain).skip_index is None

    def test_v3_index_is_a_pure_suffix(self, engine, sorted_trace, indexed_v3):
        plain = engine.compress(sorted_trace, chunk_records=CHUNK, container_version=3)
        assert indexed_v3[: len(plain)] == plain
        container = decode_container(indexed_v3)
        assert container.skip_index is not None
        summarized, total = container.skip_index.coverage
        assert summarized == total == len(container.chunks)

    def test_v4_emission_and_scan(self, engine, sorted_trace, indexed_v4):
        container = decode_container(indexed_v4)
        assert container.skip_index is not None
        scan = scan_stream(indexed_v4)
        assert scan.index is not None
        assert scan.index.coverage == (scan.chunk_count, scan.chunk_count)

    def test_decompress_ignores_index(self, engine, sorted_trace, indexed_v3, indexed_v4):
        assert engine.decompress(indexed_v3) == sorted_trace
        assert engine.decompress(indexed_v4) == sorted_trace

    def test_generated_module_decodes_indexed_v3(
        self, engine, sorted_trace, indexed_v3
    ):
        """Pre-index readers must keep working: the generated Python
        module's strict v3 decoder accepts (and CRC-verifies) the TCIX
        suffix, rejects non-TCIX trailing garbage, and salvages past a
        damaged frame."""
        from repro.codegen import generate_python, load_python_module
        from repro.model import build_model

        module = load_python_module(generate_python(build_model(tcgen_a())))
        assert module.decompress(indexed_v3) == sorted_trace
        plain = engine.compress(sorted_trace, chunk_records=CHUNK, container_version=3)
        with pytest.raises(ValueError, match="trailing bytes"):
            module.decompress(plain + b"JUNK")
        with pytest.raises(ValueError, match="skip index frame"):
            module.decompress(indexed_v3 + b"JUNK")
        damaged = bytearray(indexed_v3)
        damaged[-2] ^= 0xFF
        with pytest.raises(ValueError, match="skip index frame"):
            module.decompress(bytes(damaged))
        assert module.decompress(bytes(damaged), salvage=True) == sorted_trace

    def test_v2_ignores_flag(self, engine, sorted_trace):
        blob = engine.compress(
            sorted_trace, chunk_records=CHUNK, container_version=2, skip_index=True
        )
        assert decode_container(blob).skip_index is None

    def test_streaming_close_writes_index(self, engine, sorted_trace):
        sink = io.BytesIO()
        stream = engine.open_stream(sink, chunk_records=CHUNK, skip_index=True)
        stream.append(sorted_trace)
        stream.close()
        blob = sink.getvalue()
        scan = scan_stream(blob)
        assert scan.index is not None and scan.closed
        assert decode_container(blob).skip_index is not None
        assert engine.decompress(blob) == sorted_trace

    def test_resumed_stream_has_partial_coverage(self, engine, sorted_trace, tmp_path):
        path = tmp_path / "stream.tcz"
        first = engine.open_stream(str(path), chunk_records=CHUNK, skip_index=True)
        record_bytes = engine.format.record_bytes
        half = engine.format.header_bytes + (4096 // 2) * record_bytes
        first.append(sorted_trace[:half])
        first.flush()  # durable but never closed: no index yet
        del first
        assert scan_stream(path.read_bytes()).index is None
        second = engine.open_stream(
            str(path), chunk_records=CHUNK, resume=True, skip_index=True
        )
        second.append(sorted_trace[half:])
        second.close()
        blob = path.read_bytes()
        scan = scan_stream(blob)
        assert scan.index is not None
        summarized, total = scan.index.coverage
        assert total == scan.chunk_count
        assert 0 < summarized < total  # pre-resume chunks are placeholders
        assert engine.decompress(blob) == sorted_trace
        # Unsummarized chunks are decoded, never skipped: results still exact.
        where = "pc >= 0x8000 and pc < 0x10000"
        result = engine.query(blob, where, op="select")
        assert result.records == ground_truth(engine, blob, where)

    def test_corrupt_index_frame_is_fatal_strict_ignored_salvage(
        self, engine, sorted_trace, indexed_v3
    ):
        container = decode_container(indexed_v3)
        damaged = bytearray(indexed_v3)
        damaged[-5] ^= 0xFF  # inside the TCIX frame, after the v3 trailer
        with pytest.raises((ChecksumError, CompressedFormatError)):
            decode_container(bytes(damaged), mode="strict")
        report = DecodeReport()
        salvaged = decode_container(bytes(damaged), mode="salvage", report=report)
        assert salvaged.skip_index is None
        assert len(salvaged.chunks) == len(container.chunks)
        assert any("skip index" in note for note in report.notes)


# -- pushdown execution -------------------------------------------------------


class TestPushdown:
    SELECTIVE = "pc >= 0x20000 and pc < 0x28000"

    @pytest.mark.parametrize("fixture", ["indexed_v3", "indexed_v4"])
    def test_selective_query_skips_most_chunks(self, request, engine, fixture):
        blob = request.getfixturevalue(fixture)
        result = engine.query(blob, self.SELECTIVE, op="select")
        assert result.records == ground_truth(engine, blob, self.SELECTIVE)
        stats = result.stats
        assert stats.index_present
        assert stats.decoded_chunks < stats.total_chunks * 0.2
        assert stats.decoded_chunks + stats.skipped_chunks == stats.total_chunks

    def test_point_lookup_uses_blooms(self, engine, sorted_trace, indexed_v3):
        _, columns = unpack_records(engine.format, sorted_trace)
        target = int(columns[1][1234])
        result = engine.query(indexed_v3, f"f2 == {target}", op="count")
        assert result.count == int((columns[1] == target).sum())
        # The data column is random, so min/max covers every chunk; only
        # the blooms can prove absence.
        assert result.stats.skipped_chunks > result.stats.total_chunks // 2

    def test_no_index_same_answer_full_scan(self, engine, sorted_trace):
        plain = engine.compress(sorted_trace, chunk_records=CHUNK, container_version=3)
        result = engine.query(plain, self.SELECTIVE, op="select")
        assert result.records == ground_truth(engine, plain, self.SELECTIVE)
        assert not result.stats.index_present
        assert result.stats.skipped_chunks == 0
        assert result.stats.decoded_chunks == result.stats.total_chunks

    def test_record_range_pushdown_without_index(self, engine, sorted_trace):
        plain = engine.compress(sorted_trace, chunk_records=CHUNK, container_version=3)
        result = engine.query(plain, "record >= 1000 and record < 1100")
        assert result.count == 100
        assert result.records == ground_truth(
            engine, plain, "record >= 1000 and record < 1100"
        )
        # Span bounds alone prove the skips — no index involved.
        assert result.stats.decoded_chunks <= 2

    def test_stale_index_is_ignored(self, engine, sorted_trace, indexed_v3):
        container = decode_container(indexed_v3)
        good = container.skip_index
        # Wrong chunk count: a foreign index.
        container.skip_index = SkipIndex(
            field_count=good.field_count,
            bloom_bits=good.bloom_bits,
            chunks=good.chunks[:-1],
        )
        stale = container.encode()
        result = engine.query(stale, self.SELECTIVE)
        assert result.records == ground_truth(engine, indexed_v3, self.SELECTIVE)
        assert result.stats.index_present
        assert result.stats.indexed_chunks == 0
        assert result.stats.skipped_chunks == 0
        # Wrong field count: same degradation (unsummarized chunks keep
        # the stale index encodable).
        container.skip_index = SkipIndex(
            field_count=5, chunks=[ChunkSummary(0, None) for _ in good.chunks]
        )
        assert engine.query(container.encode(), self.SELECTIVE).stats.indexed_chunks == 0

    def test_wrong_record_count_summary_is_ignored_per_chunk(
        self, engine, sorted_trace, indexed_v3
    ):
        container = decode_container(indexed_v3)
        good = container.skip_index
        chunks = list(good.chunks)
        chunks[0] = ChunkSummary(chunks[0].record_count + 1, chunks[0].fields)
        container.skip_index = SkipIndex(
            field_count=good.field_count, bloom_bits=good.bloom_bits, chunks=chunks
        )
        blob = container.encode()
        result = engine.query(blob, self.SELECTIVE)
        assert result.records == ground_truth(engine, blob, self.SELECTIVE)
        assert result.stats.indexed_chunks == result.stats.total_chunks - 1

    def test_limit_stops_decoding_early(self, engine, indexed_v3):
        result = engine.query(indexed_v3, None, op="select", limit=10)
        assert len(result.records) == result.count == 10
        assert result.stats.decoded_chunks == 1

    def test_count_and_stats_ops(self, engine, indexed_v3):
        expected = ground_truth(engine, indexed_v3, self.SELECTIVE)
        count = engine.query(indexed_v3, self.SELECTIVE, op="count")
        assert count.count == len(expected) and count.records == []
        stats = engine.query(indexed_v3, self.SELECTIVE, op="stats")
        assert stats.field_stats[0]["min"] == min(r[0] for r in expected)
        assert stats.field_stats[0]["max"] == max(r[0] for r in expected)
        assert stats.field_stats[1]["count"] == len(expected)
        empty = engine.query(indexed_v3, "pc == 1", op="stats")
        assert empty.count == 0 and empty.render()

    def test_salvage_query_skips_damaged_chunks(self, engine, indexed_v3):
        container = decode_container(indexed_v3)
        damaged = bytearray(indexed_v3)
        damaged[2000] ^= 0xFF  # somewhere inside an early chunk
        with pytest.raises((ChecksumError, CompressedFormatError)):
            engine.query(bytes(damaged), None, op="count")
        result = engine.query(bytes(damaged), None, op="count", mode="salvage")
        assert result.report.lost_chunks
        lost = sum(
            container.chunks[i].record_count for i in result.report.lost_chunks
        )
        assert result.count == sum(c.record_count for c in container.chunks) - lost

    def test_query_matches_iter_records_numbering_under_salvage(
        self, engine, indexed_v3
    ):
        from repro.runtime.streaming import iter_records

        damaged = bytearray(indexed_v3)
        damaged[2000] ^= 0xFF
        survivors = list(
            iter_records(engine.model.spec, bytes(damaged), mode="salvage")
        )
        result = engine.query(
            bytes(damaged), "record < 100", op="select", mode="salvage"
        )
        assert result.records == survivors[:100]

    def test_records_to_bytes_roundtrip(self, engine, indexed_v3):
        result = engine.query(indexed_v3, "record < 7", op="select")
        packed = records_to_bytes(engine.format, result.records)
        assert len(packed) == 7 * engine.format.record_bytes
        first = struct.unpack_from("<IQ", packed, 0)
        assert tuple(first) == tuple(result.records[0])

    def test_validation_errors(self, engine, indexed_v3):
        with pytest.raises(ValueError, match="op"):
            engine.query(indexed_v3, None, op="explain")
        with pytest.raises(ValueError, match="limit"):
            engine.query(indexed_v3, None, limit=0)
        with pytest.raises(ValueError, match="mode"):
            engine.query(indexed_v3, None, mode="loose")
        with pytest.raises(PredicateError):
            engine.query(indexed_v3, "f9 == 1")


# -- offline index rebuild ----------------------------------------------------


class TestRebuildIndex:
    def test_rebuild_appends_index_without_touching_data(self, engine, sorted_trace):
        plain = engine.compress(sorted_trace, chunk_records=CHUNK, container_version=3)
        indexed = rebuild_index(engine, plain)
        assert indexed[: len(plain)] == plain
        assert decode_container(indexed).skip_index is not None
        assert engine.decompress(indexed) == sorted_trace

    def test_rebuild_is_idempotent(self, engine, indexed_v3):
        assert rebuild_index(engine, indexed_v3) == indexed_v3

    def test_rebuild_closed_v4_stream(self, engine, sorted_trace):
        plain = engine.compress(sorted_trace, chunk_records=CHUNK, container_version=4)
        indexed = rebuild_index(engine, plain)
        assert decode_container(indexed).skip_index is not None
        assert engine.decompress(indexed) == sorted_trace

    def test_rebuild_refuses_v1_v2_and_open_streams(self, engine, sorted_trace):
        v1 = engine.compress(sorted_trace)
        with pytest.raises(CompressedFormatError, match="recompress"):
            rebuild_index(engine, v1)
        v2 = engine.compress(sorted_trace, chunk_records=CHUNK, container_version=2)
        with pytest.raises(CompressedFormatError, match="recompress"):
            rebuild_index(engine, v2)
        sink = io.BytesIO()
        stream = engine.open_stream(sink, chunk_records=CHUNK)
        stream.append(sorted_trace)
        stream.flush()  # durable but open
        with pytest.raises(CompressedFormatError, match="close or resume"):
            rebuild_index(engine, sink.getvalue())

    def test_rebuild_bloom_bits_zero(self, engine, sorted_trace):
        plain = engine.compress(sorted_trace, chunk_records=CHUNK, container_version=3)
        indexed = rebuild_index(engine, plain, bloom_bits=0)
        index = decode_container(indexed).skip_index
        assert index.bloom_bits == 0
        result = engine.query(indexed, TestPushdown.SELECTIVE)
        assert result.records == ground_truth(engine, indexed, TestPushdown.SELECTIVE)
        assert result.stats.skipped_chunks > 0  # min/max pruning still works


# -- the tcgen-query CLI ------------------------------------------------------


class TestQueryCli:
    @pytest.fixture()
    def spec_file(self, tmp_path):
        path = tmp_path / "spec.tcgen"
        path.write_text(TCGEN_A_SPEC)
        return str(path)

    @pytest.fixture()
    def archive(self, tmp_path, engine, sorted_trace):
        path = tmp_path / "trace.tcz"
        path.write_bytes(
            engine.compress(sorted_trace, chunk_records=CHUNK, container_version=3)
        )
        return path

    def run(self, *argv) -> int:
        from repro.cli import query_main

        return query_main([str(arg) for arg in argv])

    def test_index_in_place_is_atomic_suffix(self, archive, spec_file, capsys):
        before = archive.read_bytes()
        assert self.run("index", archive, "--spec", spec_file) == 0
        after = archive.read_bytes()
        assert after[: len(before)] == before
        assert "indexed" in capsys.readouterr().err
        # Idempotent: a second run rewrites the same bytes.
        assert self.run("index", archive, "--spec", spec_file) == 0
        assert archive.read_bytes() == after

    def test_index_refuses_v1(self, tmp_path, engine, sorted_trace, spec_file, capsys):
        path = tmp_path / "v1.tcz"
        path.write_bytes(engine.compress(sorted_trace))
        assert self.run("index", path, "--spec", spec_file) == 2
        assert "recompress" in capsys.readouterr().err

    def test_count_and_select(self, archive, spec_file, engine, capsys):
        assert self.run("index", archive, "--spec", spec_file) == 0
        capsys.readouterr()
        where = TestPushdown.SELECTIVE
        assert self.run("count", archive, "--spec", spec_file, "--where", where) == 0
        out = capsys.readouterr()
        expected = ground_truth(engine, archive.read_bytes(), where)
        assert out.out.strip() == str(len(expected))
        assert "skipped" in out.err
        assert (
            self.run(
                "select", archive, "--spec", spec_file, "--where", where, "--limit", 3
            )
            == 0
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert tuple(int(v) for v in lines[0].split("\t")) == expected[0]

    def test_select_raw_output(self, archive, spec_file, engine, tmp_path, capsys):
        out_file = tmp_path / "matches.bin"
        assert (
            self.run(
                "select", archive, "--spec", spec_file,
                "--where", "record < 4", "--raw", "-o", out_file,
            )
            == 0
        )
        assert len(out_file.read_bytes()) == 4 * engine.format.record_bytes

    def test_stats_renders_to_stdout(self, archive, spec_file, capsys):
        assert self.run("stats", archive, "--spec", spec_file) == 0
        out = capsys.readouterr().out
        assert "matched" in out and "f1:" in out

    def test_salvage_damage_exit_code(self, archive, spec_file, capsys):
        damaged = bytearray(archive.read_bytes())
        damaged[2000] ^= 0xFF
        archive.write_bytes(bytes(damaged))
        assert self.run("count", archive, "--spec", spec_file) == 2  # strict fails
        assert (
            self.run("count", archive, "--spec", spec_file, "--salvage") == 2
        )  # answered, but damage is reported via the exit code

    def test_patterns_command(self, tmp_path, capsys):
        blob = SequiturCompressor().compress(make_vpc_trace(n=3000))
        path = tmp_path / "trace.sqt"
        path.write_bytes(blob)
        assert self.run("patterns", path, "--value", "0x1000") == 0
        out = capsys.readouterr().out
        assert "SEQUITUR grammar report" in out
        assert "value 0x1000:" in out


# -- grammar analytics --------------------------------------------------------


class TestGrammarAnalytics:
    @pytest.fixture(scope="class")
    def trace(self):
        return make_vpc_trace(n=4000, seed=5)

    @pytest.fixture(scope="class")
    def blob(self, trace):
        return SequiturCompressor().compress(trace)

    def expanded(self, trace):
        _, columns = unpack_records(VPC_FORMAT, trace)
        return columns[0].tolist(), columns[1].tolist()

    def test_load_does_not_expand(self, blob, trace):
        info = load_grammar(blob)
        assert info.record_count == (len(trace) - 4) // VPC_FORMAT.record_bytes
        # The whole point: grammar symbols are far fewer than trace entries.
        assert info.pc.symbol_count < info.record_count / 4

    def test_count_value_matches_expansion(self, blob, trace):
        pcs, data = self.expanded(trace)
        info = load_grammar(blob)
        for value in (0x1000, 0x1000 + 4 * 52, 0xDEAD0000):
            assert count_value(info.pc, value) == pcs.count(value)
        assert count_value(info.data, data[17]) == data.count(data[17])

    def test_rule_metrics_cover_the_trace(self, blob):
        info = load_grammar(blob)
        for bodies in info.pc.segments:
            lengths, occurrences = rule_metrics(bodies)
            # Rule 0 is the whole segment, used exactly once.
            assert occurrences[0] == 1
            total = sum(
                length * occ
                for rule, (length, occ) in enumerate(zip(lengths, occurrences))
                if rule == 0
            )
            assert total == lengths[0]

    def test_top_patterns_find_the_pc_loop(self, blob, trace):
        pcs, _ = self.expanded(trace)
        info = load_grammar(blob)
        patterns = top_patterns(info.pc, k=5)
        assert patterns, "loop-heavy trace must expose repeated patterns"
        best = patterns[0]
        assert best.occurrences >= 2 and best.length >= 2
        assert best.coverage <= len(pcs)
        # The preview holds actual trace values.
        assert set(best.preview) <= set(pcs)

    def test_analyze_renders(self, blob):
        text = analyze(blob, sequence="pc", top=3)
        assert "SEQUITUR grammar report" in text
        assert "rules:" in text

    def test_cyclic_grammar_rejected(self):
        # Rule 0 references rule 1 which references rule 0.
        with pytest.raises(CompressedFormatError, match="cyclic"):
            _topo_order([[3], [1]])

    def test_out_of_range_rule_rejected(self):
        with pytest.raises(CompressedFormatError, match="out of range"):
            _topo_order([[99]])


# -- the query server op ------------------------------------------------------


class TestServerOp:
    @pytest.fixture(scope="class")
    def handlers(self):
        return Handlers(ServerConfig(), ServerMetrics())

    def test_select_count_stats(self, handlers, engine, indexed_v3):
        where = TestPushdown.SELECTIVE
        expected = ground_truth(engine, indexed_v3, where)
        meta, payload = handlers.run(
            "query", {"spec": TCGEN_A_SPEC, "where": where, "op": "count"},
            indexed_v3, None, None,
        )
        assert meta["count"] == len(expected) and payload == b""
        assert meta["skipped_chunks"] > 0 and meta["index_present"]
        meta, payload = handlers.run(
            "query",
            {"spec": TCGEN_A_SPEC, "where": where, "op": "select", "limit": 2},
            indexed_v3, None, None,
        )
        assert meta["count"] == 2
        assert payload == records_to_bytes(engine.format, expected[:2])
        meta, payload = handlers.run(
            "query", {"spec": TCGEN_A_SPEC, "where": where, "op": "stats"},
            indexed_v3, None, None,
        )
        assert meta["field_stats"][0]["min"] == min(r[0] for r in expected)

    def test_salvage_mode_reports(self, handlers, indexed_v3):
        damaged = bytearray(indexed_v3)
        damaged[2000] ^= 0xFF
        meta, _ = handlers.run(
            "query", {"spec": TCGEN_A_SPEC, "op": "count", "mode": "salvage"},
            bytes(damaged), None, None,
        )
        assert meta["report"]["lost_chunks"]

    def test_param_validation(self, handlers, indexed_v3):
        base = {"spec": TCGEN_A_SPEC}
        for params in (
            {**base, "op": "explain"},
            {**base, "mode": "loose"},
            {**base, "where": 7},
            {**base, "limit": 0},
        ):
            with pytest.raises(ProtocolError):
                handlers.run("query", params, indexed_v3, None, None)

    def test_predicate_error_maps_to_bad_request(self, handlers, indexed_v3):
        with pytest.raises(PredicateError) as info:
            handlers.run(
                "query", {"spec": TCGEN_A_SPEC, "where": "f1 =="},
                indexed_v3, None, None,
            )
        assert code_for_exception(info.value) == "bad_request"


# -- native backend differential ---------------------------------------------


from repro.codegen.compile import find_c_compiler  # noqa: E402

needs_cc = pytest.mark.skipif(
    find_c_compiler() is None, reason="no C compiler on PATH"
)


@needs_cc
def test_native_backend_query_differential(tmp_path, monkeypatch, sorted_trace):
    monkeypatch.setenv("TCGEN_NATIVE", "1")
    monkeypatch.setenv("TCGEN_CACHE_DIR", str(tmp_path))
    native = TraceEngine(tcgen_a(), backend="native")
    python = TraceEngine(tcgen_a(), backend="python")
    blob = native.compress(
        sorted_trace, chunk_records=CHUNK, container_version=3, skip_index=True
    )
    where = TestPushdown.SELECTIVE
    native_result = native.query(blob, where)
    python_result = python.query(blob, where)
    assert native_result.records == python_result.records
    assert native_result.stats.as_dict() == python_result.stats.as_dict()
