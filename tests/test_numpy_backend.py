"""The NumPy columnar backend: dispatch, differential byte-identity.

Like the native backend, the numpy backend must be *unobservable* except
for speed: every container produced or consumed through it is
byte-identical to the pure-Python path.  These tests prove that over the
preset spec matrix for v1-v4 containers and several worker counts,
three-way against the native kernels where a compiler exists, and as a
hypothesis property through the whole lint -> plan -> lower -> numpy
pipeline.  The vectorized query filter is held to the same standard:
mask evaluation must agree with the scalar ``matches`` on every record.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codegen.compile import find_c_compiler
from repro.codegen.numpy_backend import NumpyKernel, load_numpy_kernel, numpy_enabled
from repro.errors import NumpyBackendError
from repro.ir import AUTO_NUMPY_THRESHOLD, analyze_model, analyze_vectors
from repro.lint import has_errors, lint_spec_text
from repro.model import OptimizationOptions, build_model
from repro.runtime import TraceEngine
from repro.runtime.dispatch import resolve_backend
from repro.spec import format_spec, parse_spec, tcgen_a

from conftest import SPEC_VARIANTS, spec_trace_for
from test_properties import option_variants, specs_with_traces

needs_cc = pytest.mark.skipif(
    find_c_compiler() is None, reason="no C compiler on PATH"
)

#: A spec the IR proves fully vectorizable (pure LV, constant L1 line).
LV_SPEC = (
    "TCgen Trace Specification;\n"
    "32-Bit Header;\n"
    "32-Bit Field 1 = {L1 = 1: LV[4]};\n"
    "64-Bit Field 2 = {L1 = 1: LV[2], LV[1]};\n"
    "PC = Field 1;\n"
)


@pytest.fixture(scope="module")
def lv_spec():
    return parse_spec(LV_SPEC)


def _containers(engine, raw):
    """One blob per container generation (v1 flat, v2, v3, v4)."""
    return {
        "v1": engine.compress(raw, chunk_records=None),
        "v2": engine.compress(raw, chunk_records=150, container_version=2),
        "v3": engine.compress(raw, chunk_records=150, container_version=3),
        "v4": engine.compress(raw, chunk_records=150, container_version=4),
    }


# -- differential byte-identity ----------------------------------------------


@pytest.mark.parametrize("name", sorted(SPEC_VARIANTS))
def test_numpy_matches_python_across_containers_and_workers(name):
    spec = SPEC_VARIANTS[name]()
    raw = spec_trace_for(spec)
    python = TraceEngine(spec, backend="python")
    numpy_eng = TraceEngine(spec, backend="numpy")
    assert numpy_eng.backend == "numpy"
    reference = _containers(python, raw)
    for workers in (1, 3):
        numpy_eng.workers = workers
        got = _containers(numpy_eng, raw)
        assert got == reference, name
        for version, blob in reference.items():
            assert numpy_eng.decompress(blob) == raw, (name, version)
            assert python.decompress(got[version]) == raw, (name, version)


@needs_cc
@pytest.mark.parametrize("name", ["tcgen_a", "no_header", "three_fields"])
def test_three_way_byte_identity(name, tmp_path, monkeypatch):
    monkeypatch.setenv("TCGEN_NATIVE", "1")
    monkeypatch.setenv("TCGEN_CACHE_DIR", str(tmp_path))
    spec = SPEC_VARIANTS[name]()
    raw = spec_trace_for(spec)
    blobs = {
        backend: _containers(TraceEngine(spec, backend=backend), raw)
        for backend in ("python", "numpy", "native")
    }
    assert blobs["numpy"] == blobs["python"]
    assert blobs["native"] == blobs["python"]


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(specs_with_traces(), option_variants)
def test_pipeline_lint_plan_lower_numpy_roundtrip(spec_and_trace, options):
    """lint -> plan -> lower -> numpy codegen, as one hypothesis property."""
    spec, raw = spec_and_trace
    assert not has_errors(lint_spec_text(format_spec(spec)))
    model = build_model(spec, options)
    kernel = NumpyKernel(model)
    engine = TraceEngine(spec, options, codec="zlib", backend="python")
    numpy_eng = TraceEngine(spec, options, codec="zlib", backend="numpy")
    assert numpy_eng._backend().kernel.fingerprint == kernel.fingerprint
    blob = engine.compress(raw, chunk_records=64)
    assert numpy_eng.compress(raw, chunk_records=64) == blob
    assert numpy_eng.decompress(blob) == raw


def test_usage_counters_match_python(lv_spec):
    raw = spec_trace_for(lv_spec)
    python = TraceEngine(lv_spec, backend="python")
    numpy_eng = TraceEngine(lv_spec, backend="numpy")
    python.compress(raw, chunk_records=100)
    numpy_eng.compress(raw, chunk_records=100)
    assert numpy_eng.last_usage == python.last_usage


# -- dispatch ------------------------------------------------------------------


def test_auto_prefers_numpy_for_vectorizable_spec(lv_spec, monkeypatch):
    monkeypatch.setenv("TCGEN_NATIVE", "0")
    engine = TraceEngine(lv_spec)
    assert engine.backend == "numpy"
    assert "vectorizable fraction" in engine.backend_reason
    assert "TCGEN_NATIVE" in engine.backend_reason


def test_auto_skips_numpy_for_scalar_bound_spec(monkeypatch):
    monkeypatch.setenv("TCGEN_NATIVE", "0")
    engine = TraceEngine(tcgen_a())
    assert engine.backend == "python"
    assert "vectorizable fraction 0.00" in engine.backend_reason


def test_tcgen_numpy_escape_hatch(lv_spec, monkeypatch):
    monkeypatch.setenv("TCGEN_NUMPY", "0")
    assert not numpy_enabled()
    with pytest.raises(NumpyBackendError, match="TCGEN_NUMPY"):
        load_numpy_kernel(build_model(lv_spec, OptimizationOptions()))
    monkeypatch.setenv("TCGEN_NATIVE", "0")
    engine = TraceEngine(lv_spec)
    assert engine.backend == "python"


def test_update_policy_forces_python(lv_spec):
    from repro.runtime.kernel import UpdatePolicy

    model = build_model(lv_spec, OptimizationOptions())
    with pytest.raises(NumpyBackendError, match="update_policy"):
        resolve_backend("numpy", model, update_policy=UpdatePolicy.ALWAYS)
    decision = resolve_backend("auto", model, update_policy=UpdatePolicy.ALWAYS)
    assert decision.backend == "python"


def test_kernel_cache_is_memoized(lv_spec):
    model = build_model(lv_spec, OptimizationOptions())
    assert load_numpy_kernel(model) is load_numpy_kernel(model)


# -- vectorizability analysis --------------------------------------------------


def test_vector_report_labels(lv_spec):
    facts = analyze_model(build_model(lv_spec, OptimizationOptions()))
    report = analyze_vectors(facts)
    # Field 1: LV[4] under SMART -> compress-only; field 2 likewise.
    assert report.field(1).vector_compress
    assert report.fraction == 1.0
    assert not report.all_scalar

    scalar = analyze_vectors(analyze_model(build_model(tcgen_a())))
    assert scalar.all_scalar
    assert scalar.fraction == 0.0
    assert all(fv.label == "scalar" for fv in scalar.fields)
    assert 0.0 < AUTO_NUMPY_THRESHOLD <= 1.0


def test_always_update_policy_vectorizes_decompress(lv_spec):
    options = OptimizationOptions().without("smart_update")
    report = analyze_vectors(analyze_model(build_model(lv_spec, options)))
    assert all(fv.label == "vec" for fv in report.fields)


# -- vectorized query filter ---------------------------------------------------


def test_query_differential_python_vs_numpy(lv_spec):
    raw = spec_trace_for(lv_spec)
    python = TraceEngine(lv_spec, backend="python")
    numpy_eng = TraceEngine(lv_spec, backend="numpy")
    blob = python.compress(raw, chunk_records=97, skip_index=True)
    for where in (None, "f1 == 0x400", "f2 > 0x2000 and record < 300", "pc >= 0x430 or f2 <= 5"):
        for op in ("select", "count", "stats"):
            for limit in (None, 5) if op == "select" else (None,):
                ref = python.query(blob, where, op=op, limit=limit)
                got = numpy_eng.query(blob, where, op=op, limit=limit)
                assert got.count == ref.count
                assert got.records == ref.records
                assert got.field_stats == ref.field_stats
                assert got.stats.as_dict() == ref.stats.as_dict()


@settings(max_examples=60, deadline=None)
@given(
    st.integers(0, 2**32 - 1),
    st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
    st.sampled_from([0, 1, 2]),
    st.integers(0, 2**66),
    st.integers(0, 10_000),
)
def test_mask_equals_scalar_matches(seed, op, field_pos, literal, start):
    """The exact-equivalence property: mask == per-record matches."""
    from repro.query.predicate import RECORD_FIELD, And, Comparison, Or

    rng = np.random.default_rng(seed)
    n = 64
    columns = [
        rng.integers(0, 256, size=n).astype(np.uint8),
        rng.integers(0, 1 << 32, size=n, dtype=np.uint64).astype("<u4"),
        rng.integers(0, 1 << 63, size=n, dtype=np.uint64),
    ]
    field = RECORD_FIELD if field_pos == 0 else field_pos
    leaf = Comparison(field, op, literal)
    other = Comparison(2, "<", 1 << 20)
    for pred in (leaf, And((leaf, other)), Or((leaf, other))):
        mask = pred.mask(columns, start, n)
        records = list(zip(*(col.tolist() for col in columns)))
        expected = [
            pred.matches(record, start + i) for i, record in enumerate(records)
        ]
        assert mask.tolist() == expected


# -- batched native calls ------------------------------------------------------


@needs_cc
def test_native_batch_matches_per_chunk_calls(tmp_path, monkeypatch):
    monkeypatch.setenv("TCGEN_NATIVE", "1")
    monkeypatch.setenv("TCGEN_CACHE_DIR", str(tmp_path))
    spec = SPEC_VARIANTS["tcgen_a"]()
    raw = spec_trace_for(spec)
    engine = TraceEngine(spec, backend="native")
    kernel = engine._backend().kernel
    record_bytes = engine.format.record_bytes
    base = engine.format.header_bytes
    slices = [
        raw[base + start * record_bytes : base + (start + 120) * record_bytes]
        for start in range(0, 480, 120)
    ]
    batched = kernel.compress_batch(slices)
    singles = [kernel.compress_chunk(piece) for piece in slices]
    assert batched == singles
    items = [
        (120, [c for c in streams[0::2]], [v for v in streams[1::2]])
        for streams, _ in singles
    ]
    assert kernel.decompress_batch(items) == [
        kernel.decompress_chunk(*item) for item in items
    ]


@needs_cc
def test_engine_batched_native_is_byte_identical(tmp_path, monkeypatch):
    monkeypatch.setenv("TCGEN_NATIVE", "1")
    monkeypatch.setenv("TCGEN_CACHE_DIR", str(tmp_path))
    spec = SPEC_VARIANTS["no_header"]()
    raw = spec_trace_for(spec)
    python = TraceEngine(spec, backend="python")
    native = TraceEngine(spec, backend="native")
    for workers in (1, 4):
        native.workers = workers
        blob = native.compress(raw, chunk_records=40)  # 15 chunks -> batches
        assert blob == python.compress(raw, chunk_records=40)
        assert native.decompress(blob) == raw
