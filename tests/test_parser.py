"""Unit tests for the specification parser."""

import pytest

from repro.errors import ParseError
from repro.spec import parse_spec
from repro.spec.ast import PredictorKind
from repro.spec.presets import TCGEN_A_SPEC, TCGEN_B_SPEC


class TestFigureSpecs:
    def test_tcgen_a_structure(self):
        spec = parse_spec(TCGEN_A_SPEC)
        assert spec.header_bits == 32
        assert len(spec.fields) == 2
        assert spec.pc_field == 1
        f1, f2 = spec.fields
        assert (f1.bits, f1.l1, f1.l2) == (32, 1, 131072)
        assert [str(p) for p in f1.predictors] == ["FCM3[2]", "FCM1[2]"]
        assert [str(p) for p in f2.predictors] == [
            "DFCM3[2]",
            "DFCM1[2]",
            "FCM1[2]",
            "LV[4]",
        ]

    def test_tcgen_b_is_superset_shape(self):
        spec = parse_spec(TCGEN_B_SPEC)
        assert [str(p) for p in spec.fields[0].predictors] == ["FCM3[4]", "FCM1[4]"]
        assert spec.fields[1].prediction_count == 14

    def test_prediction_counts_match_paper(self):
        spec = parse_spec(TCGEN_A_SPEC)
        assert spec.fields[0].prediction_count == 4  # "four predictions"
        assert spec.fields[1].prediction_count == 10  # "ten predictions"


class TestGrammarFeatures:
    def test_header_is_optional(self):
        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {: LV[1]};\n"
            "PC = Field 1;\n"
        )
        assert spec.header_bits == 0

    def test_l1_l2_defaults(self):
        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {: LV[1]};\n"
            "PC = Field 1;\n"
        )
        field = spec.fields[0]
        assert field.l1 is None and field.l1_size == 1
        assert field.l2 is None and field.l2_size == 65536

    def test_l2_before_l1(self):
        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {L2 = 512: FCM1[1]};\n"
            "64-Bit Field 2 = {L2 = 512, L1 = 16: LV[1]};\n"
            "PC = Field 1;\n"
        )
        assert spec.fields[1].l1 == 16
        assert spec.fields[1].l2 == 512

    def test_comments_anywhere(self):
        spec = parse_spec(
            "# leading comment\n"
            "TCgen Trace Specification; # trailing\n"
            "32-Bit Field 1 = {: LV[1]}; # another\n"
            "PC = Field 1;\n"
        )
        assert len(spec.fields) == 1

    def test_lv_order_is_zero(self):
        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {: LV[3]};\n"
            "PC = Field 1;\n"
        )
        pred = spec.fields[0].predictors[0]
        assert pred.kind is PredictorKind.LV
        assert pred.order == 0
        assert pred.depth == 3

    def test_validation_can_be_skipped(self):
        # L1 = 3 is not a power of two; parse-only accepts it.
        spec = parse_spec(
            "TCgen Trace Specification;\n"
            "32-Bit Field 1 = {: LV[1]};\n"
            "64-Bit Field 2 = {L1 = 3: LV[1]};\n"
            "PC = Field 1;\n",
            validate=False,
        )
        assert spec.fields[1].l1 == 3


class TestParseErrors:
    def test_missing_preamble(self):
        with pytest.raises(ParseError, match="TCgen"):
            parse_spec("32-Bit Header;")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError, match="';'"):
            parse_spec("TCgen Trace Specification\n32-Bit Header;")

    def test_no_fields(self):
        with pytest.raises(ParseError, match="no fields"):
            parse_spec("TCgen Trace Specification;\n32-Bit Header;\nPC = Field 1;\n")

    def test_missing_pc_definition(self):
        with pytest.raises(ParseError, match="PC"):
            parse_spec(
                "TCgen Trace Specification;\n32-Bit Field 1 = {: LV[1]};\n"
            )

    def test_missing_predictor(self):
        with pytest.raises(ParseError, match="predictor"):
            parse_spec(
                "TCgen Trace Specification;\n32-Bit Field 1 = {: };\nPC = Field 1;\n"
            )

    def test_bad_predictor_name(self):
        with pytest.raises(ParseError):
            parse_spec(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {: Header[2]};\nPC = Field 1;\n"
            )

    def test_duplicate_l1(self):
        with pytest.raises(ParseError, match="duplicate L1"):
            parse_spec(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {L1 = 1, L1 = 2: LV[1]};\nPC = Field 1;\n"
            )

    def test_duplicate_header(self):
        with pytest.raises(ParseError, match="duplicate Header|precede"):
            parse_spec(
                "TCgen Trace Specification;\n"
                "32-Bit Header;\n16-Bit Header;\n"
                "32-Bit Field 1 = {: LV[1]};\nPC = Field 1;\n"
            )

    def test_header_after_field(self):
        with pytest.raises(ParseError, match="precede"):
            parse_spec(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {: LV[1]};\n32-Bit Header;\nPC = Field 1;\n"
            )

    def test_trailing_input(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_spec(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {: LV[1]};\nPC = Field 1;\nPC = Field 1;\n"
            )

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_spec("TCgen Trace Specification;\n32-Bit PC")
        assert excinfo.value.line == 2

    def test_fcm_missing_order(self):
        with pytest.raises(ParseError, match="order"):
            parse_spec(
                "TCgen Trace Specification;\n"
                "32-Bit Field 1 = {: FCM[2]};\nPC = Field 1;\n"
            )
