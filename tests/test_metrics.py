"""Tests for the measurement harness and result tables."""

import pytest

from repro.baselines import Bzip2Compressor
from repro.errors import ReproError
from repro.metrics import Measurement, ResultTable, harmonic_mean, measure


class TestHarmonicMean:
    def test_single_value(self):
        assert harmonic_mean([4.0]) == 4.0

    def test_classic_example(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4 / 3)

    def test_dominated_by_small_values(self):
        assert harmonic_mean([1.0, 100.0]) < 2.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            harmonic_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ReproError):
            harmonic_mean([1.0, 0.0])


class TestMeasurement:
    def test_metrics_definitions(self):
        m = Measurement(
            algorithm="X", workload="w", kind="k",
            uncompressed_bytes=1000, compressed_bytes=10,
            compress_seconds=2.0, decompress_seconds=0.5,
        )
        assert m.compression_rate == 100.0
        assert m.compression_speed == 500.0
        assert m.decompression_speed == 2000.0

    def test_measure_runs_and_verifies(self, small_trace):
        result = measure(Bzip2Compressor(), small_trace, workload="t", kind="k")
        assert result.compression_rate > 1.0
        assert result.compress_seconds > 0

    def test_measure_catches_lossy_compressor(self, small_trace):
        class Broken(Bzip2Compressor):
            name = "BROKEN"

            def decompress(self, blob):
                return b"wrong"

        with pytest.raises(ReproError, match="mismatch"):
            measure(Broken(), small_trace)


class TestResultTable:
    def _table(self):
        table = ResultTable()
        for algorithm, rate in (("A", 10.0), ("B", 20.0)):
            for kind in ("k1", "k2"):
                table.add(
                    Measurement(
                        algorithm=algorithm, workload="w", kind=kind,
                        uncompressed_bytes=int(rate * 100), compressed_bytes=100,
                        compress_seconds=1.0, decompress_seconds=1.0,
                    )
                )
        return table

    def test_summary_harmonic_means(self):
        summary = self._table().summary("compression_rate")
        assert summary[("A", "k1")] == 10.0
        assert summary[("B", "k2")] == 20.0

    def test_render_absolute(self):
        text = self._table().render("compression_rate")
        assert "A" in text and "k1" in text and "10.000" in text

    def test_render_relative(self):
        text = self._table().render("compression_rate", relative_to="B")
        assert "0.500x" in text and "1.000x" in text

    def test_algorithms_preserve_insertion_order(self):
        assert self._table().algorithms() == ["A", "B"]
