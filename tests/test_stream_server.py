"""Tests for the ``stream-compress`` server op and the resumable client.

The in-process tests drive a real framed TCP session (REQUEST /
CONTINUE / DATA / FLUSH / ACK / END / RESPONSE) against a
:class:`~repro.server.daemon.TraceServer` on a background thread.  The
chaos half — dropped connections mid-stream, SIGKILL'd workers, drain
on shutdown — asserts the recovery invariant end to end: nothing acked
is ever lost, nothing unacked ever phantoms, and a resumed run that
flushes at the same record counts produces a byte-identical archive.
"""

import io
import os
import signal
import threading
import time

import pytest

from repro.client import TraceClient
from repro.errors import (
    BackpressureError,
    ServiceUnavailableError,
    StreamClosedError,
)
from repro.runtime.engine import TraceEngine
from repro.server.limits import ServerConfig
from repro.spec import parse_spec
from repro.spec.presets import TCGEN_A_SPEC
from repro.tio.streamv4 import scan_stream

from conftest import make_vpc_trace
from test_server import ServerThread
from test_supervisor import Pool

SPEC = parse_spec(TCGEN_A_SPEC)
HEADER = SPEC.header_bits // 8
RECORD = sum(f.bits for f in SPEC.fields) // 8


def pieces(raw: bytes, records_each: int):
    """Split ``raw`` into header-aligned append pieces."""
    step = records_each * RECORD
    cuts = [0, *range(HEADER + step, len(raw), step), len(raw)]
    return [raw[a:b] for a, b in zip(cuts, cuts[1:])]


def local_archive(raw: bytes, records_each: int, chunk_records: int) -> bytes:
    """The byte-exact archive an uninterrupted run must produce."""
    sink = io.BytesIO()
    stream = TraceEngine(SPEC).open_stream(sink, chunk_records=chunk_records)
    for piece in pieces(raw, records_each):
        stream.append(piece)
        stream.flush()
    stream.close()
    return sink.getvalue()


@pytest.fixture
def server(tmp_path):
    handle = ServerThread(
        ServerConfig(
            port=0,
            queue_limit=16,
            stream_dir=str(tmp_path),
            stream_fsync=False,
        )
    )
    handle.stream_dir = tmp_path
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with TraceClient("127.0.0.1", server.port, retries=8, backoff=0.02) as c:
        yield c


@pytest.fixture(scope="module")
def trace():
    return make_vpc_trace(n=3000, seed=21)


class TestStreamSession:
    def test_roundtrip_and_byte_identity(self, server, client, trace):
        marks = []
        with client.open_stream(TCGEN_A_SPEC, "cap-1", chunk_records=512) as stream:
            assert not stream.resumed and stream.skip_bytes == 0
            for piece in pieces(trace, 300):
                stream.append(piece)
                marks.append(stream.flush())
        assert stream.closed and stream.reconnects == 0
        records = [m.records for m in marks]
        assert records == sorted(records)
        assert records[-1] == (len(trace) - HEADER) // RECORD
        blob = (server.stream_dir / "cap-1.tc4").read_bytes()
        assert blob == local_archive(trace, 300, 512)
        assert TraceEngine(SPEC).decompress(blob) == trace

    def test_detach_then_resume(self, server, client, trace):
        split = HEADER + 1500 * RECORD
        with TraceClient("127.0.0.1", server.port, retries=4) as first:
            stream = first.open_stream(TCGEN_A_SPEC, "cap-2", chunk_records=512)
            stream.append(trace[:split])
            mark = stream.detach()
        assert mark.records == 1500
        resumed = client.open_stream(TCGEN_A_SPEC, "cap-2", chunk_records=512)
        assert resumed.resumed
        assert resumed.skip_bytes == split
        resumed.append(trace[split:])
        final = resumed.close()
        assert final.records == (len(trace) - HEADER) // RECORD
        blob = (server.stream_dir / "cap-2.tc4").read_bytes()
        assert TraceEngine(SPEC).decompress(blob) == trace

    def test_dropped_connection_resumes_byte_identical(
        self, server, client, trace
    ):
        """Satellite: kill the TCP connection mid-stream, replay from the
        acked watermark, and demand the exact uninterrupted bytes."""
        parts = pieces(trace, 300)
        stream = client.open_stream(TCGEN_A_SPEC, "cap-3", chunk_records=512)
        for piece in parts[:3]:
            stream.append(piece)
            stream.flush()
        acked_before = stream.acked.records
        # Sever the transport under the session; the server sees EOF and
        # releases the stream with only flushed chunks durable.
        stream._client._sock.close()
        for piece in parts[3:]:
            stream.append(piece)
            stream.flush()
        stream.close()
        assert stream.reconnects >= 1
        assert stream.acked.records > acked_before
        blob = (server.stream_dir / "cap-3.tc4").read_bytes()
        assert blob == local_archive(trace, 300, 512)

    def test_unflushed_appends_replay_after_drop(self, server, client, trace):
        parts = pieces(trace, 300)
        stream = client.open_stream(TCGEN_A_SPEC, "cap-4", chunk_records=512)
        stream.append(parts[0])
        stream.flush()
        stream.append(parts[1])  # appended, never flushed
        stream._client._sock.close()
        # The next flush must reconnect, replay the unacked suffix, and
        # ack everything appended so far.
        mark = stream.flush()
        assert stream.reconnects >= 1
        assert mark.records == 600
        for piece in parts[2:]:
            stream.append(piece)
        stream.close()
        blob = (server.stream_dir / "cap-4.tc4").read_bytes()
        assert TraceEngine(SPEC).decompress(blob) == trace

    def test_second_writer_gets_backpressure(self, server, client, trace):
        stream = client.open_stream(TCGEN_A_SPEC, "cap-5", chunk_records=512)
        stream.append(pieces(trace, 300)[0])
        with TraceClient("127.0.0.1", server.port, retries=0) as other:
            with pytest.raises(BackpressureError):
                other.open_stream(TCGEN_A_SPEC, "cap-5")
        stream.close()

    def test_reopening_closed_stream_raises(self, server, client, trace):
        with client.open_stream(TCGEN_A_SPEC, "cap-6", chunk_records=512) as s:
            s.append(trace)
        with pytest.raises(StreamClosedError):
            client.open_stream(TCGEN_A_SPEC, "cap-6")

    def test_crash_exit_leaves_stream_resumable(self, server, client, trace):
        split = HEADER + 900 * RECORD
        try:
            with client.open_stream(TCGEN_A_SPEC, "cap-7", chunk_records=512) as s:
                s.append(trace[:split])
                s.flush()
                raise RuntimeError("producer crash")
        except RuntimeError:
            pass
        # The crashed session dropped its connection without closing: the
        # durable prefix survives and a new writer resumes it.
        resumed = client.open_stream(TCGEN_A_SPEC, "cap-7", chunk_records=512)
        assert resumed.resumed and resumed.skip_bytes == split
        resumed.append(trace[split:])
        resumed.close()
        blob = (server.stream_dir / "cap-7.tc4").read_bytes()
        assert TraceEngine(SPEC).decompress(blob) == trace

    def test_stream_metrics_exposed(self, server, client, trace):
        with client.open_stream(TCGEN_A_SPEC, "cap-8", chunk_records=512) as s:
            s.append(pieces(trace, 300)[0])
            s.flush()
        text = client.metrics_text()
        assert 'tcgen_streams_opened_total{kind="fresh"}' in text
        assert "tcgen_stream_flushes_total" in text
        assert "tcgen_stream_records_total" in text
        health = client.health()
        assert health["streams_active"] == 0
        assert health["stream_flushes"] >= 1
        assert health["stream_records"] >= 300

    def test_bad_stream_id_rejected(self, client):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            client.open_stream(TCGEN_A_SPEC, "../escape")


class TestDrain:
    def test_drain_flushes_open_streams(self, tmp_path, trace):
        handle = ServerThread(
            ServerConfig(
                port=0,
                queue_limit=16,
                stream_dir=str(tmp_path),
                stream_fsync=False,
            )
        )
        try:
            with TraceClient("127.0.0.1", handle.port, retries=0) as c:
                stream = c.open_stream(TCGEN_A_SPEC, "drainee", chunk_records=512)
                stream.append(trace[: HEADER + 700 * RECORD])  # never flushed
                time.sleep(0.1)  # let the DATA frames reach the server
                handle.stop()  # SIGTERM-equivalent: request shutdown + drain
        finally:
            handle.stop()
        blob = (tmp_path / "drainee.tc4").read_bytes()
        scan = scan_stream(blob)
        assert scan.records == 700  # the drain made the appends durable
        assert not scan.closed  # drained, not sealed: a resume can continue


class TestWorkerPool:
    def test_two_producers_across_two_workers(self, tmp_path):
        pool = Pool(["--workers", "2", "--no-http", "--stream-dir", str(tmp_path)])
        try:
            pool.worker_pids(2)
            traces = {
                f"producer-{i}": make_vpc_trace(n=2500, seed=30 + i)
                for i in range(2)
            }
            failures = []

            def produce(name: str) -> None:
                raw = traces[name]
                with TraceClient(
                    "127.0.0.1", pool.port, retries=8, backoff=0.05
                ) as c:
                    with c.open_stream(TCGEN_A_SPEC, name, chunk_records=512) as s:
                        for piece in pieces(raw, 250):
                            s.append(piece)
                            s.flush()
                blob = (tmp_path / f"{name}.tc4").read_bytes()
                if TraceEngine(SPEC).decompress(blob) != raw:
                    failures.append(f"{name}: archive does not roundtrip")

            threads = [
                threading.Thread(target=produce, args=(name,)) for name in traces
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert failures == []
            assert pool.terminate() == 0
        finally:
            pool.kill()

    def test_sigkilled_worker_mid_stream_client_resumes(self, tmp_path):
        """Tentpole chaos check: SIGKILL the worker holding the stream;
        the client must fail over, replay unacked data, and finish a
        byte-identical archive."""
        pool = Pool(["--workers", "2", "--no-http", "--stream-dir", str(tmp_path)])
        try:
            pids = pool.worker_pids(2)
            raw = make_vpc_trace(n=4000, seed=41)
            parts = pieces(raw, 400)
            with TraceClient(
                "127.0.0.1", pool.port, retries=10, backoff=0.05
            ) as c:
                stream = c.open_stream(TCGEN_A_SPEC, "chaos", chunk_records=512)
                for piece in parts[:3]:
                    stream.append(piece)
                    stream.flush()
                victim = c.last_worker_id
                assert victim in pids
                os.kill(pids[victim], signal.SIGKILL)
                for piece in parts[3:]:
                    stream.append(piece)
                    stream.flush()
                stream.close()
                assert stream.reconnects >= 1
            blob = (tmp_path / "chaos.tc4").read_bytes()
            assert blob == local_archive(raw, 400, 512)
            # The supervisor replaced the killed worker meanwhile.
            pool.wait_for_line(lambda l: "restarted" in l)
            assert pool.terminate() == 0
        finally:
            pool.kill()
