"""Tests for the cache simulator substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.cachesim import (
    CacheConfig,
    DirectMappedCache,
    PAPER_CACHE,
    SetAssociativeCache,
)
from repro.errors import ReproError


class TestConfig:
    def test_paper_cache_geometry(self):
        assert PAPER_CACHE.size_bytes == 16 * 1024
        assert PAPER_CACHE.line_bytes == 64
        assert PAPER_CACHE.ways == 1
        assert PAPER_CACHE.sets == 256

    @pytest.mark.parametrize("field", ["size_bytes", "line_bytes", "ways"])
    def test_non_power_of_two_rejected(self, field):
        kwargs = {"size_bytes": 1024, "line_bytes": 64, "ways": 1, field: 3}
        with pytest.raises(ReproError, match="power of two"):
            CacheConfig(**kwargs)

    def test_cache_smaller_than_set_rejected(self):
        with pytest.raises(ReproError, match="smaller"):
            CacheConfig(size_bytes=64, line_bytes=64, ways=2)


class TestDirectMapped:
    def test_first_access_misses(self):
        cache = DirectMappedCache()
        assert cache.access(0x1000)

    def test_second_access_hits(self):
        cache = DirectMappedCache()
        cache.access(0x1000)
        assert not cache.access(0x1000)

    def test_same_line_hits(self):
        cache = DirectMappedCache()
        cache.access(0x1000)
        assert not cache.access(0x103F)  # same 64-byte line

    def test_next_line_misses(self):
        cache = DirectMappedCache()
        cache.access(0x1000)
        assert cache.access(0x1040)

    def test_conflict_eviction(self):
        cache = DirectMappedCache()
        cache.access(0x0000)
        cache.access(0x4000)  # 16kB away: same set, different tag
        assert cache.access(0x0000)  # evicted: miss again

    def test_mask_matches_sequential_access(self):
        cache_bulk = DirectMappedCache()
        cache_seq = DirectMappedCache()
        rng = np.random.default_rng(5)
        addrs = rng.integers(0, 1 << 20, size=500, dtype=np.uint64)
        bulk = cache_bulk.miss_mask(addrs)
        seq = [cache_seq.access(int(a)) for a in addrs]
        assert bulk.tolist() == seq

    def test_state_persists_across_mask_calls(self):
        cache = DirectMappedCache()
        cache.miss_mask(np.array([0x1000], dtype=np.uint64))
        assert not cache.access(0x1000)

    def test_reset_clears_state(self):
        cache = DirectMappedCache()
        cache.access(0x1000)
        cache.reset()
        assert cache.access(0x1000)

    def test_empty_mask(self):
        assert DirectMappedCache().miss_mask(np.zeros(0, np.uint64)).tolist() == []

    def test_rejects_associative_config(self):
        with pytest.raises(ReproError):
            DirectMappedCache(CacheConfig(1024, 64, ways=2))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, (1 << 24) - 1), min_size=0, max_size=300))
    def test_vectorized_equals_one_way_associative(self, addresses):
        """The vectorized DM model must equal a 1-way LRU cache."""
        addrs = np.array(addresses, dtype=np.uint64)
        dm = DirectMappedCache(CacheConfig(1024, 64, 1))
        sa = SetAssociativeCache(CacheConfig(1024, 64, 1))
        assert dm.miss_mask(addrs).tolist() == sa.miss_mask(addrs).tolist()


class TestSetAssociative:
    def test_two_way_avoids_direct_conflict(self):
        cache = SetAssociativeCache(CacheConfig(2048, 64, ways=2))
        cache.access(0x0000)
        cache.access(0x0400)  # same set in a 16-set 2-way cache
        assert not cache.access(0x0000)
        assert not cache.access(0x0400)

    def test_lru_evicts_least_recent(self):
        cache = SetAssociativeCache(CacheConfig(2048, 64, ways=2))
        a, b, c = 0x0000, 0x0400, 0x0800  # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is now most recent
        cache.access(c)  # evicts b
        assert not cache.access(a)
        assert cache.access(b)

    def test_fifo_ignores_recency(self):
        cache = SetAssociativeCache(CacheConfig(2048, 64, ways=2), policy="fifo")
        a, b, c = 0x0000, 0x0400, 0x0800
        cache.access(a)
        cache.access(b)
        cache.access(a)  # does not refresh under FIFO
        cache.access(c)  # evicts a (oldest inserted)
        assert cache.access(a)

    def test_statistics(self):
        cache = SetAssociativeCache(CacheConfig(1024, 64, 1))
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x40)
        assert cache.hits == 1
        assert cache.misses == 2
        assert cache.miss_ratio == pytest.approx(2 / 3)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ReproError, match="policy"):
            SetAssociativeCache(CacheConfig(1024, 64, 1), policy="random")

    def test_lru_thrashes_on_cyclic_scan_but_direct_mapped_does_not(self):
        # The textbook pathology: cyclically scanning slightly more data
        # than fits makes LRU miss on every access, while a direct-mapped
        # cache keeps the lines whose sets are not over-subscribed.
        addrs = np.tile(np.arange(0, 20 * 1024, 64, dtype=np.uint64), 3)
        dm = SetAssociativeCache(CacheConfig(16 * 1024, 64, 1))
        assoc = SetAssociativeCache(CacheConfig(16 * 1024, 64, 4))
        dm_misses = int(dm.miss_mask(addrs).sum())
        assoc_misses = int(assoc.miss_mask(addrs).sum())
        assert assoc_misses == len(addrs)  # full LRU thrash
        assert dm_misses < len(addrs)

    def test_higher_associativity_wins_on_conflicting_working_set(self):
        # Two small arrays that collide in a direct-mapped cache but fit
        # comfortably in a 4-way cache of the same size.
        a = np.arange(0, 2048, 64, dtype=np.uint64)
        b = a + np.uint64(16 * 1024)  # same sets, different tags
        addrs = np.tile(np.stack([a, b], axis=1).reshape(-1), 10)
        dm = SetAssociativeCache(CacheConfig(16 * 1024, 64, 1))
        assoc = SetAssociativeCache(CacheConfig(16 * 1024, 64, 4))
        assert int(assoc.miss_mask(addrs).sum()) < int(dm.miss_mask(addrs).sum())
