"""Automatic predictor selection from a trace sample.

Instead of hand-tuning a specification, analyze the trace and let the
recommender build one: per-field statistics explain the trace's structure,
candidate predictors are scored on a sample, and a complete specification
is assembled under a memory budget.  The recommended compressor is then
compared against the paper's hand-tuned TCgen(A).

Run:  python examples/auto_recommend.py [workload] [kind]
"""

import sys

from repro import build_model, format_spec, generate_compressor, tcgen_a
from repro.analysis import analyze_trace, recommend_spec, score_candidates
from repro.tio import VPC_FORMAT
from repro.traces import TRACE_KINDS, build_trace, workload_names


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "equake"
    kind = sys.argv[2] if len(sys.argv) > 2 else "cache_miss_addresses"
    if workload not in workload_names() or kind not in TRACE_KINDS:
        raise SystemExit(f"usage: auto_recommend.py [{'/'.join(workload_names()[:4])}...] "
                         f"[{'/'.join(TRACE_KINDS)}]")

    raw = build_trace(workload, kind, scale=1.0)

    print("trace statistics:")
    print(analyze_trace(VPC_FORMAT, raw).render())
    print()

    print("candidate predictor hit ratios (20k-record sample):")
    for score in score_candidates(VPC_FORMAT, raw):
        print(f"  field {score.field_index}  {score.predictor!s:9s}  "
              f"{score.hit_ratio:6.1%}")
    print()

    spec = recommend_spec(VPC_FORMAT, raw, budget_bytes=32 << 20)
    print("recommended specification:")
    print(format_spec(spec))
    model = build_model(spec)
    print(f"({model.total_predictions()} predictions, "
          f"{model.table_bytes() / 2**20:.1f}MB of tables)")
    print()

    recommended = generate_compressor(spec)
    reference = generate_compressor(tcgen_a())
    blob_r = recommended.compress(raw)
    blob_a = reference.compress(raw)
    assert recommended.decompress(blob_r) == raw
    print(f"recommended spec : rate {len(raw) / len(blob_r):7.1f}x")
    print(f"hand-tuned TCgen(A): rate {len(raw) / len(blob_a):7.1f}x")


if __name__ == "__main__":
    main()
