"""Custom trace formats: the point of a compressor *generator*.

The paper's motivation: every time the trace format changes, hand-written
compressors must be re-implemented.  With TCgen you only change the
specification.  This example defines a brand-new three-field format — a
memory-access trace with an 8-bit access-type tag, a 32-bit PC, and a
64-bit effective address — generates a compressor for it, and compares
the result against plain BZIP2 on the same bytes.

Run:  python examples/custom_format.py
"""

import bz2

import numpy as np

from repro import generate_compressor, parse_spec
from repro.tio import TraceFormat, pack_records

SPEC_TEXT = """
# A custom format: tag byte + PC + effective address, no header.
TCgen Trace Specification;
8-Bit Field 1 = {L1 = 256, L2 = 1024: FCM2[2], LV[2]};
32-Bit Field 2 = {L1 = 1, L2 = 65536: FCM3[2], FCM1[2]};
64-Bit Field 3 = {L1 = 16384, L2 = 65536: DFCM2[2], DFCM1[2], LV[2]};
PC = Field 2;
"""


def synthesize_trace(records: int = 30_000, seed: int = 42) -> bytes:
    """A loop nest issuing tagged loads/stores over three arrays."""
    rng = np.random.default_rng(seed)
    loop = np.arange(records) % 24
    pcs = (0x8000 + loop * 4).astype(np.uint64)
    tags = (loop % 3).astype(np.uint64)  # 0 = load, 1 = store, 2 = prefetch
    bases = np.array([0x10_0000, 0x20_0000, 0x30_0000], dtype=np.uint64)
    strides = np.array([8, 16, 64], dtype=np.uint64)
    position = (np.arange(records) // 24).astype(np.uint64)
    addrs = bases[loop % 3] + position * strides[loop % 3]
    jitter = rng.integers(0, 50, records) == 0  # rare irregular accesses
    addrs[jitter] = rng.integers(0, 1 << 40, int(jitter.sum()), dtype=np.int64)
    fmt = TraceFormat(header_bits=0, field_bits=(8, 32, 64), pc_field=2)
    return pack_records(fmt, b"", [tags, pcs, addrs.astype(np.uint64)])


def main() -> None:
    spec = parse_spec(SPEC_TEXT)
    compressor = generate_compressor(spec)
    raw = synthesize_trace()
    print(f"custom-format trace: {len(raw):,} bytes")

    blob = compressor.compress(raw)
    assert compressor.decompress(blob) == raw
    bzip2_blob = bz2.compress(raw, 9)

    print(f"TCgen-generated compressor: {len(blob):,} bytes "
          f"(rate {len(raw) / len(blob):.1f}x)")
    print(f"plain BZIP2:                {len(bzip2_blob):,} bytes "
          f"(rate {len(raw) / len(bzip2_blob):.1f}x)")
    print()
    print("Changing the format again?  Edit the specification — nothing else.")


if __name__ == "__main__":
    main()
