"""Driving a simulator straight from a compressed trace.

Section 7.2 of the paper notes that TCgen regenerates traces faster than
a 100Mb/s network or many disks can deliver them, "suggesting that it may
be faster to drive simulators and other trace-consumption tools by TCgen
rather than from an uncompressed file".  This example compresses a
synthetic address trace once, then sweeps cache associativity by replaying
records directly out of the compressed blob — the uncompressed trace never
exists in memory.

Run:  python examples/streaming_simulation.py
"""

from repro import tcgen_a
from repro.cachesim import CacheConfig, SetAssociativeCache
from repro.runtime import TraceEngine, iter_records, record_count
from repro.traces import build_trace


def main() -> None:
    raw = build_trace("mcf", "store_addresses", scale=2.0)
    blob = TraceEngine(tcgen_a()).compress(raw)
    print(f"trace: {len(raw):,} bytes -> compressed blob: {len(blob):,} bytes "
          f"({record_count(tcgen_a(), blob):,} records)")
    del raw  # from here on, only the compressed blob exists

    print()
    print(f"{'cache':24s}{'misses':>10s}{'miss ratio':>12s}")
    for ways in (1, 2, 4, 8):
        cache = SetAssociativeCache(CacheConfig(16 * 1024, 64, ways))
        for _pc, address in iter_records(tcgen_a(), blob):
            cache.access(address)
        label = f"16kB {ways}-way 64B lines"
        print(f"{label:24s}{cache.misses:>10,d}{cache.miss_ratio:>11.1%}")


if __name__ == "__main__":
    main()
