"""The paper's actual artifact: generated C, compiled and run as a filter.

TCgen emits portable C.  This example generates the C source for the
Figure 5 specification, compiles it with the system C compiler (``cc -O3
... -lbz2``), pipes a trace through the binary exactly like the paper's
workflow (stdin -> stdout, ``-d`` to decompress), and verifies the result
byte-for-byte — including cross-decompression against the Python backend.

Run:  python examples/generated_c_roundtrip.py
"""

import tempfile

from repro import generate_c_source, generate_compressor, tcgen_a
from repro.codegen.compile import compile_c, find_c_compiler
from repro.traces import build_trace


def main() -> None:
    compiler = find_c_compiler()
    if compiler is None:
        raise SystemExit("no C compiler found (tried cc, gcc, clang) — skipping")

    spec = tcgen_a()
    source = generate_c_source(spec)
    print(f"generated {source.count(chr(10))} lines of C "
          "(static functions, register locals, no macros)")

    workdir = tempfile.mkdtemp(prefix="tcgen_example_")
    compiled = compile_c(source, workdir=workdir)
    print(f"compiled with {compiler} -O3 -> {compiled.binary_path}")

    raw = build_trace("swim", "store_addresses", scale=1.0)
    blob = compiled.compress(raw)
    restored = compiled.decompress(blob)
    assert restored == raw, "C roundtrip failed"
    print(f"C roundtrip OK: {len(raw):,} -> {len(blob):,} bytes "
          f"(rate {len(raw) / len(blob):.1f}x)")

    # The two backends implement one on-disk format: blobs interoperate.
    python_module = generate_compressor(spec)
    assert python_module.decompress(blob) == raw
    assert compiled.decompress(python_module.compress(raw)) == raw
    print("cross-decompression between the C and Python backends OK")
    print(f"generated source kept at: {compiled.source_path}")


if __name__ == "__main__":
    main()
