"""Predictor tuning with usage feedback (the paper's Section 7.5 workflow).

The paper recommends: "start with a trace specification that covers a wide
range of predictors and then eliminate the useless predictors as
determined by the predictor usage information output after each
compression."  This example automates exactly that loop:

1. compress a trace with the wide TCgen(B) configuration;
2. read the per-code usage counts;
3. drop every predictor whose codes together serve under 2% of records;
4. regenerate and compare rate and memory.

Run:  python examples/predictor_tuning.py [workload]
"""

import sys

from repro import build_model, format_spec, generate_compressor, tcgen_b
from repro.runtime import TraceEngine
from repro.spec.ast import FieldSpec, TraceSpec
from repro.traces import build_trace

PRUNE_THRESHOLD = 0.02


def prune_spec(spec: TraceSpec, usage) -> TraceSpec:
    """Drop predictors whose prediction codes are nearly unused."""
    new_fields = []
    for field, field_usage in zip(spec.fields, usage.fields):
        total = max(field_usage.records, 1)
        kept = []
        code = 0
        for predictor in field.predictors:
            hits = sum(
                field_usage.counts[code + slot] for slot in range(predictor.depth)
            )
            code += predictor.depth
            if hits / total >= PRUNE_THRESHOLD:
                kept.append(predictor)
        if not kept:  # every field needs at least one predictor
            kept = [max(
                field.predictors,
                key=lambda p: sum(
                    field_usage.counts[c]
                    for c in range(
                        sum(q.depth for q in field.predictors[: field.predictors.index(p)]),
                        sum(q.depth for q in field.predictors[: field.predictors.index(p)])
                        + p.depth,
                    )
                ),
            )]
        new_fields.append(
            FieldSpec(
                bits=field.bits,
                index=field.index,
                predictors=tuple(kept),
                l1=field.l1,
                l2=field.l2,
            )
        )
    return TraceSpec(
        header_bits=spec.header_bits,
        fields=tuple(new_fields),
        pc_field=spec.pc_field,
    )


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "equake"
    raw = build_trace(workload, "load_values", scale=1.0)

    wide_spec = tcgen_b()
    # The interpreted engine exposes structured usage statistics.
    engine = TraceEngine(wide_spec)
    wide_blob = engine.compress(raw)
    usage = engine.last_usage

    pruned_spec = prune_spec(wide_spec, usage)
    pruned = generate_compressor(pruned_spec)
    pruned_blob = pruned.compress(raw)
    assert pruned.decompress(pruned_blob) == raw

    wide_model = build_model(wide_spec)
    pruned_model = build_model(pruned_spec)

    print("wide configuration (TCgen(B), paper Figure 9):")
    print(f"  rate {len(raw) / len(wide_blob):8.2f}x   "
          f"{wide_model.total_predictions()} predictions, "
          f"{wide_model.table_bytes() / 2**20:.0f}MB tables")
    print()
    print(f"pruned configuration (predictors under {PRUNE_THRESHOLD:.0%} usage dropped):")
    print(format_spec(pruned_spec))
    print(f"  rate {len(raw) / len(pruned_blob):8.2f}x   "
          f"{pruned_model.total_predictions()} predictions, "
          f"{pruned_model.table_bytes() / 2**20:.0f}MB tables")


if __name__ == "__main__":
    main()
