"""Head-to-head: TCgen against the paper's six comparison algorithms.

Runs BZIP2, MACHE, PDATS II, SEQUITUR, SBC, VPC3, and the TCgen-generated
compressor on one synthetic workload's three trace types and prints a
Section 7-style table (compression rate, decompression speed, compression
speed per algorithm).

Run:  python examples/compare_compressors.py [workload] [scale]
"""

import sys

from repro.baselines import all_compressors
from repro.metrics import ResultTable, measure
from repro.traces import TRACE_KINDS, build_trace, workload_names


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    if workload not in workload_names():
        raise SystemExit(
            f"unknown workload {workload!r}; pick one of: "
            + ", ".join(workload_names())
        )

    table = ResultTable()
    for kind in TRACE_KINDS:
        raw = build_trace(workload, kind, scale=scale)
        print(f"{kind}: {len(raw):,} bytes")
        for compressor in all_compressors():
            result = measure(compressor, raw, workload=workload, kind=kind)
            table.add(result)
            print(
                f"  {result.algorithm:10s} rate {result.compression_rate:8.1f}x"
                f"  decompress {result.decompression_speed / 1e6:6.2f} MB/s"
                f"  compress {result.compression_speed / 1e6:6.2f} MB/s"
            )
        print()

    print("harmonic-mean compression rates, relative to TCgen:")
    print(table.render("compression_rate", relative_to="TCgen"))


if __name__ == "__main__":
    main()
