"""Traces from *executed programs* on the bundled virtual machine.

The synthetic workload suite models memory behaviour statistically; the
`repro.vm` substrate goes further and actually runs programs — every PC
in these traces belongs to a real static instruction of an assembled
kernel, every address was computed by executed code, every loaded value
is real memory content.  This example runs a kernel, shows the execution
summary, and compares all seven compressors on its traces.

Run:  python examples/real_program_traces.py [kernel]
"""

import sys

from repro.baselines import all_compressors
from repro.traces import TRACE_KINDS
from repro.vm import program_names, run_program, vm_trace


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "quicksort"
    if kernel not in program_names():
        raise SystemExit(
            f"unknown kernel {kernel!r}; available: {', '.join(program_names())}"
        )

    machine = run_program(kernel)
    events = machine.events()
    print(f"executed {kernel}: {machine.steps:,} instructions, "
          f"{len(events):,} memory events "
          f"({int(events.is_store.sum()):,} stores), "
          f"{machine.memory.resident_bytes // 1024}kB resident")
    print()

    for kind in TRACE_KINDS:
        raw = vm_trace(kernel, kind)
        print(f"{kind} ({(len(raw) - 4) // 12:,} records):")
        for compressor in all_compressors():
            blob = compressor.compress(raw)
            assert compressor.decompress(blob) == raw
            print(f"  {compressor.name:10s} rate {len(raw) / len(blob):8.1f}x")
        print()


if __name__ == "__main__":
    main()
