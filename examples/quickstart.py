"""Quickstart: from a trace specification to a working compressor.

Parses the paper's Figure 5 specification (the VPC3 trace format: 32-bit
header, 32-bit PC + 64-bit data records), generates a specialized Python
compressor, and runs it on a synthetic store-address trace — printing the
compression rate and the predictor-usage feedback TCgen reports after
every compression.

Run:  python examples/quickstart.py
"""

from repro import generate_compressor, parse_spec
from repro.traces import build_trace

SPEC_TEXT = """
# The paper's Figure 5: the trace format and predictors of VPC3.
TCgen Trace Specification;
32-Bit Header;
32-Bit Field 1 = {L1 = 1, L2 = 131072: FCM3[2], FCM1[2]};
64-Bit Field 2 = {L1 = 65536, L2 = 131072: DFCM3[2], DFCM1[2], FCM1[2], LV[4]};
PC = Field 1;
"""


def main() -> None:
    spec = parse_spec(SPEC_TEXT)
    print(f"parsed: {len(spec.fields)} fields, PC is field {spec.pc_field}")

    # This is the whole TCgen pipeline: validate, resolve the model
    # (renaming, table sharing, type minimization), generate source,
    # compile, load.  It takes a few milliseconds.
    compressor = generate_compressor(spec)

    # A synthetic SPEC-like trace (gzip's store addresses).
    raw = build_trace("gzip", "store_addresses", scale=1.0)
    print(f"trace: {len(raw):,} bytes ({(len(raw) - 4) // 12:,} records)")

    blob = compressor.compress(raw)
    assert compressor.decompress(blob) == raw, "lossless roundtrip failed"

    print(f"compressed: {len(blob):,} bytes "
          f"(rate {len(raw) / len(blob):.1f}x, lossless)")
    print()
    print(compressor.usage_report())


if __name__ == "__main__":
    main()
