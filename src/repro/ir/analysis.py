"""Dataflow analyses over the kernel IR (codes ``TC3xx``).

Four passes, one result object:

**Def-use / liveness** — which table slots are ever read (directly by a
prediction or stride load, or transitively by a chain recombination /
rotation toward a read slot).  A rotating update only needs to touch the
live prefix of its line (``live_depth``), and a smart-update guard whose
update rotates nothing (``live_depth == 1``) is provably useless: the
guarded and plain stores leave identical table state, so the backends
elide the guard.  A structure with no live reads at all is dead state —
the paper's dead-code elimination, derived instead of hand-coded.

**Value ranges / bit widths** — a forward abstract interpretation over
per-record temps plus a fixpoint over per-slot table content (tables
start zeroed; ranges only grow and are capped by the element type, so
the iteration terminates).  It proves every table index stays inside
``[0, lines)`` (``TC304`` when it cannot), every element fits its
minimized type (``TC302`` overflow when it cannot), and marks masks the
proof makes redundant — the level-1 chain store mask and narrow-field
line masks — which the backends then drop.

**Sharing verification** — the structural half of the paper's table
sharing: every (D)FCM predictor's index must be served by a chain slot
of its own order, and its second-level table must obey the
``L2 * 2**(x-1)`` sizing rule (``TC306``).

**Cost accounting** — per-record op counts per field and table-byte
totals live in :mod:`repro.ir.cost`, computed from the same IR.

``analyze_model`` is cached per (fingerprint, options) because codegen,
genverify, and the CLI all want the same facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.ir.lower import lower_model
from repro.ir.ops import (
    AddMod,
    ChainAbsorb,
    FieldIR,
    HashFold,
    HistoryShift,
    KernelIR,
    LineIndex,
    LoadField,
    ScratchHash,
    SubMod,
    TableDecl,
    TableRead,
    TableUpdate,
    ValueRange,
)
from repro.lint.diagnostics import Diagnostic, Severity
from repro.model.layout import CompressorModel, storage_bytes

#: Fixpoint safety valve; content ranges converge in 2-3 iterations.
_MAX_ITERATIONS = 8


@dataclass
class TableFacts:
    """Per-structure liveness and value-range facts."""

    decl: TableDecl
    read_slots: set[int] = dc_field(default_factory=set)
    content: dict[int, ValueRange] = dc_field(default_factory=dict)

    @property
    def dead(self) -> bool:
        """No read reaches this structure: every update to it is dead."""
        return not self.read_slots

    @property
    def live_depth(self) -> int:
        """Slots a rotating update must touch: the live prefix length.

        A value stored at slot ``s`` migrates upward through rotation, so
        it is observable iff some read slot is ``>= s``; writes beyond
        the deepest read slot are dead.
        """
        if not self.read_slots:
            return 0
        return min(self.decl.span, max(self.read_slots) + 1)

    @property
    def value_range(self) -> ValueRange:
        """Join of every slot's proven content range."""
        out = ValueRange.const(0)
        for rng in self.content.values():
            out = out.join(rng)
        return out

    @property
    def min_elem_bytes(self) -> int:
        """Smallest storage width the proven content range fits."""
        return storage_bytes(self.value_range.bits)


@dataclass
class FieldFacts:
    """Per-field elision facts the backends consume."""

    index: int
    #: The ``pc & (l1 - 1)`` mask is provably the identity (narrow PC).
    elide_line_mask: bool = False
    #: Chains whose level-1 store mask the fold range makes redundant.
    redundant_chain_store_mask: set[str] = dc_field(default_factory=set)
    #: Chains whose scratch-hash step-1 mask is redundant (slow mode).
    redundant_scratch_mask: set[str] = dc_field(default_factory=set)
    #: Tables whose smart-update guard is provably useless (nothing to
    #: rotate): emit a plain store instead.
    plain_store: set[str] = dc_field(default_factory=set)
    #: Rotating updates clipped to their live prefix (table -> depth).
    live_depth: dict[str, int] = dc_field(default_factory=dict)


@dataclass
class ModelFacts:
    """Everything the analyses proved about one lowered model."""

    ir: KernelIR
    tables: dict[str, TableFacts]
    fields: dict[int, FieldFacts]
    diagnostics: list[Diagnostic]

    def field(self, index: int) -> FieldFacts:
        return self.fields[index]

    def update_writes(self) -> dict[str, int]:
        """Per-record store statements each table's updates emit.

        Rotations count their live prefix (``live_depth`` stores), chain
        absorbs and history shifts one store per slot.  ``genverify``
        holds generated kernels to exactly these counts — an extra store
        is an injected dead update, a missing one a broken kernel.
        """
        writes: dict[str, int] = {name: 0 for name in self.ir.tables}
        for fir in self.ir.fields:
            for op in fir.commit:
                if isinstance(op, TableUpdate):
                    writes[op.table] += self.tables[op.table].live_depth or 1
                elif isinstance(op, (ChainAbsorb, HistoryShift)):
                    writes[op.table] += op.span
        return writes


def _fold_range(src: ValueRange, width_bits: int, fold_bits: int) -> ValueRange:
    """Range of ``fold(src)``: identity for narrow fields, else masked."""
    if width_bits <= fold_bits:
        return src
    return ValueRange(0, (1 << fold_bits) - 1)


class _RangeWalker:
    """One forward pass over a field's ops under a table-content state."""

    def __init__(
        self,
        ir: KernelIR,
        tables: dict[str, TableFacts],
        temps: dict[str, ValueRange],
        diagnostics: list[Diagnostic],
        collect: bool,
    ) -> None:
        self.ir = ir
        self.tables = tables
        self.temps = temps
        self.diagnostics = diagnostics
        self.collect = collect  # final pass: record facts + diagnostics
        self.changed = False

    def _temp(self, name: str | None) -> ValueRange:
        if name is None:
            return ValueRange.const(0)
        rng = self.temps.get(name)
        if rng is None:
            raise AssertionError(f"temp {name} read before definition")
        return rng

    def _content(self, table: str, slot: int) -> ValueRange:
        facts = self.tables[table]
        return facts.content.get(slot, ValueRange.const(0))

    def _store(self, table: str, slot: int, rng: ValueRange) -> None:
        # Ranges are NOT clipped to the element width: the content range
        # records what the kernel tries to store, so an element too
        # narrow for it surfaces as a TC302 overflow instead of being
        # silently modelled as truncation.
        facts = self.tables[table]
        old = facts.content.get(slot)
        new = rng if old is None else old.join(rng)
        if old != new:
            facts.content[slot] = new
            self.changed = True

    def _check_line(self, op, table: str, line: str | None) -> None:
        if not self.collect:
            return
        decl = self.tables[table].decl
        rng = self._temp(line)
        if not rng.within(decl.lines - 1):
            self.diagnostics.append(
                Diagnostic(
                    "<ir>", 1, 1, "TC304", Severity.ERROR,
                    f"index {line or 0} into table {table} has proven range "
                    f"[{rng.lo}, {rng.hi}] but the table holds {decl.lines} "
                    f"line(s): bounds cannot be proved",
                )
            )

    def field_pass(self, fir: FieldIR, facts: FieldFacts) -> None:
        for op in fir.begin:
            self._begin_op(fir, facts, op)
        for op in fir.commit:
            self._commit_op(fir, facts, op)

    def _begin_op(self, fir: FieldIR, facts: FieldFacts, op) -> None:
        if isinstance(op, LoadField):
            self.temps[op.dest] = ValueRange.of_width(op.width_bits)
        elif isinstance(op, LineIndex):
            src = self._temp(op.src)
            if self.collect and src.within(op.lines - 1):
                facts.elide_line_mask = True
            self.temps[op.dest] = src.masked(op.lines - 1)
        elif isinstance(op, TableRead):
            self._check_line(op, op.table, op.line)
            if self.collect:
                self.tables[op.table].read_slots.add(op.slot)
                decl = self.tables[op.table].decl
                if op.slot >= decl.span:
                    self.diagnostics.append(
                        Diagnostic(
                            "<ir>", 1, 1, "TC304", Severity.ERROR,
                            f"read of {op.table} slot {op.slot} exceeds the "
                            f"declared span {decl.span}",
                        )
                    )
            self.temps[op.dest] = self._content(op.table, op.slot)
        elif isinstance(op, ScratchHash):
            if self.collect:
                self.tables[op.table].read_slots.update(range(op.order))
                fold = _fold_range(
                    self.tables[op.table].value_range, op.width_bits, op.fold_bits
                )
                if fold.within(op.masks[0]):
                    facts.redundant_scratch_mask.add(op.table)
            self.temps[op.dest] = ValueRange(0, op.masks[-1])
        elif isinstance(op, AddMod):
            self.temps[op.dest] = ValueRange(
                self._temp(op.a).lo + self._temp(op.b).lo,
                self._temp(op.a).hi + self._temp(op.b).hi,
            ).masked(op.mask)
        else:
            raise AssertionError(f"unexpected begin op {op!r}")

    def _commit_op(self, fir: FieldIR, facts: FieldFacts, op) -> None:
        if isinstance(op, SubMod):
            # Wrap-around subtraction covers the whole masked range.
            self.temps[op.dest] = ValueRange(0, op.mask)
        elif isinstance(op, HashFold):
            self.temps[op.dest] = _fold_range(
                self._temp(op.src), op.width_bits, op.fold_bits
            )
        elif isinstance(op, TableUpdate):
            self._check_line(op, op.table, op.line)
            src = self._temp(op.src)
            for slot in range(op.depth - 1, 0, -1):
                self._store(op.table, slot, self._content(op.table, slot - 1))
            self._store(op.table, 0, src)
        elif isinstance(op, ChainAbsorb):
            self._check_line(op, op.table, op.line)
            fold = self._temp(op.fold)
            if self.collect and fold.within(op.masks[0]):
                facts.redundant_chain_store_mask.add(op.table)
            for level in range(op.span, 1, -1):
                self._store(op.table, level - 1, ValueRange(0, op.masks[level - 1]))
            self._store(op.table, 0, fold.masked(op.masks[0]))
        elif isinstance(op, HistoryShift):
            self._check_line(op, op.table, op.line)
            src = self._temp(op.src)
            for slot in range(op.span - 1, 0, -1):
                self._store(op.table, slot, self._content(op.table, slot - 1))
            self._store(op.table, 0, src)
        else:
            raise AssertionError(f"unexpected commit op {op!r}")


def _chain_read_slots(ir: KernelIR, tables: dict[str, TableFacts]) -> None:
    """Chain recombination reads: level ``k`` consumes slot ``k-2``."""
    for fir in ir.fields:
        for op in fir.commit:
            if isinstance(op, ChainAbsorb):
                tables[op.table].read_slots.update(range(op.span - 1))
            elif isinstance(op, HistoryShift):
                # The shift itself keeps slots alive only if something
                # reads them later; handled by rotation liveness.
                pass


def _verify_sharing(
    ir: KernelIR, tables: dict[str, TableFacts], out: list[Diagnostic]
) -> None:
    """The ``L2 * 2**(x-1)`` rule and chain-serves-every-order, structurally."""
    for fir in ir.fields:
        for pred in fir.predictors:
            if pred.chain is None:
                continue
            chain = tables.get(pred.chain)
            if chain is None:
                out.append(
                    Diagnostic(
                        "<ir>", 1, 1, "TC306", Severity.ERROR,
                        f"field {fir.index} predictor slot {pred.slot} claims "
                        f"chain {pred.chain}, which is not declared",
                    )
                )
                continue
            if chain.decl.span < pred.order:
                out.append(
                    Diagnostic(
                        "<ir>", 1, 1, "TC306", Severity.ERROR,
                        f"chain {pred.chain} spans {chain.decl.span} slot(s) "
                        f"but must serve order {pred.order} for field "
                        f"{fir.index} predictor slot {pred.slot}",
                    )
                )
            params = chain.decl.hash_params
            if pred.l2 is not None and params is not None:
                l2 = tables.get(pred.l2)
                want = 1 << (params.k1 + pred.order - 1)
                if l2 is not None and l2.decl.lines != want:
                    out.append(
                        Diagnostic(
                            "<ir>", 1, 1, "TC306", Severity.ERROR,
                            f"table {pred.l2} holds {l2.decl.lines} lines; the "
                            f"L2 * 2**(x-1) rule requires {want} for an "
                            f"order-{pred.order} predictor",
                        )
                    )


def _verify_widths(
    ir: KernelIR,
    tables: dict[str, TableFacts],
    minimize: bool,
    out: list[Diagnostic],
) -> None:
    """Every element must fit its type; minimized types must be smallest."""
    for name, facts in tables.items():
        rng = facts.value_range
        elem_bits = 8 * facts.decl.elem_bytes
        if rng.bits > elem_bits:
            out.append(
                Diagnostic(
                    "<ir>", 1, 1, "TC302", Severity.ERROR,
                    f"table {name} stores values up to {rng.hi:#x} "
                    f"({rng.bits} bits) in {elem_bits}-bit elements: overflow",
                )
            )
        elif minimize and facts.decl.elem_bytes > facts.min_elem_bytes:
            # Over-width wastes memory but can never corrupt output, so
            # it is advisory — the planner deliberately rounds chain
            # elements up to the order-mask width even when a narrow
            # field's fold provably needs less.
            out.append(
                Diagnostic(
                    "<ir>", 1, 1, "TC302", Severity.WARNING,
                    f"table {name} uses {facts.decl.elem_bytes}-byte elements "
                    f"but the proven value range fits "
                    f"{facts.min_elem_bytes} byte(s)",
                )
            )


def analyze_ir(ir: KernelIR, type_minimization: bool = True) -> ModelFacts:
    """Run liveness, range, and sharing analysis over a lowered kernel."""
    tables = {name: TableFacts(decl=decl) for name, decl in ir.tables.items()}
    fields = {fir.index: FieldFacts(index=fir.index) for fir in ir.fields}
    diagnostics: list[Diagnostic] = []

    # Content-range fixpoint: iterate non-collecting passes until stable.
    for _ in range(_MAX_ITERATIONS):
        walker = _RangeWalker(ir, tables, {}, diagnostics, collect=False)
        for fir in ir.fields:
            walker.field_pass(fir, fields[fir.index])
        if not walker.changed:
            break

    # Final collecting pass: record read slots, elisions, and bound proofs.
    walker = _RangeWalker(ir, tables, {}, diagnostics, collect=True)
    for fir in ir.fields:
        walker.field_pass(fir, fields[fir.index])
    _chain_read_slots(ir, tables)

    # Liveness-derived facts per field.
    for fir in ir.fields:
        facts = fields[fir.index]
        for op in fir.commit:
            if not isinstance(op, TableUpdate):
                continue
            live = tables[op.table].live_depth
            facts.live_depth[op.table] = live or 1
            if op.guarded and live <= 1:
                # Nothing rotates: the guard saves no work and the
                # guarded/plain stores leave identical state.
                facts.plain_store.add(op.table)

    _verify_sharing(ir, tables, diagnostics)
    _verify_widths(ir, tables, type_minimization, diagnostics)
    return ModelFacts(
        ir=ir, tables=tables, fields=fields, diagnostics=sorted(diagnostics)
    )


_FACTS_CACHE: dict[tuple, ModelFacts] = {}


def analyze_model(model: CompressorModel) -> ModelFacts:
    """Lower ``model`` and analyze it (cached per fingerprint + options)."""
    key = (model.fingerprint(), tuple(sorted(vars(model.options).items())))
    cached = _FACTS_CACHE.get(key)
    if cached is not None:
        return cached
    facts = analyze_ir(lower_model(model), model.options.type_minimization)
    if len(_FACTS_CACHE) > 64:
        _FACTS_CACHE.clear()
    _FACTS_CACHE[key] = facts
    return facts
