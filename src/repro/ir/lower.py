"""Lowering: ``CompressorModel`` (via its structure plan) → kernel IR.

This is the single place the generated kernels' *shape* is decided.  The
lowering consumes :func:`repro.codegen.plan.plan_field` — the same
structure plan both backends consume — and produces one
:class:`~repro.ir.ops.FieldIR` per field, mirroring the emitters'
begin/select/commit phases op for op.  The analysis passes
(:mod:`repro.ir.analysis`) then derive liveness, value-range, sharing,
and cost facts from the IR, and the backends and ``genverify`` consume
those facts instead of re-implementing the paper's §4 rules per backend.
"""

from __future__ import annotations

from repro.codegen.plan import FieldPlan, plan_field
from repro.ir.ops import (
    AddMod,
    ChainAbsorb,
    EmitCode,
    EmitValue,
    FieldIR,
    HashFold,
    HistoryShift,
    KernelIR,
    LineIndex,
    LoadField,
    PredictorIR,
    ScratchHash,
    Select,
    SubMod,
    TableDecl,
    TableRead,
    TableRole,
    TableUpdate,
)
from repro.model.layout import CompressorModel
from repro.spec.ast import PredictorKind


def _declare_tables(plan: FieldPlan) -> dict[str, TableDecl]:
    decls: dict[str, TableDecl] = {}
    for last in plan.lasts:
        decls[last.name] = TableDecl(
            name=last.name,
            role=TableRole.LAST_VALUE,
            lines=last.lines,
            span=last.depth,
            elem_bytes=last.elem_bytes,
        )
    for chain in plan.chains:
        decls[chain.name] = TableDecl(
            name=chain.name,
            role=TableRole.CHAIN,
            lines=chain.lines,
            span=chain.span,
            elem_bytes=chain.elem_bytes,
            kind=chain.kind,
            hash_params=chain.params,
            fast=chain.fast,
        )
    for l2 in plan.l2s:
        decls[l2.name] = TableDecl(
            name=l2.name,
            role=TableRole.L2,
            lines=l2.lines,
            span=l2.depth,
            elem_bytes=l2.elem_bytes,
        )
    return decls


def _lower_field(plan: FieldPlan, model: CompressorModel, pc_temp: str | None) -> FieldIR:
    """Lower one field's begin/select/commit, mirroring the emitters."""
    layout = plan.layout
    f = layout.index
    smart = model.options.smart_update
    fir = FieldIR(
        index=f,
        width_bits=layout.width_bits,
        is_pc=layout.is_pc,
        l1_lines=layout.l1_lines,
        predictors=[],
    )
    value = f"value{f}"
    fir.begin.append(LoadField(dest=value, field=f, width_bits=layout.width_bits))

    line: str | None = None
    if layout.l1_lines > 1:
        if pc_temp is None:
            raise AssertionError("non-PC field lowered before the PC field")
        line = f"line{f}"
        fir.begin.append(LineIndex(dest=line, src=pc_temp, lines=layout.l1_lines))

    lasts = plan.lasts
    last_first: str | None = None
    if lasts and layout.needs_stride:
        last_first = f"last{f}"
        fir.begin.append(
            TableRead(dest=last_first, table=lasts[0].name, line=line, slot=0)
        )

    # Per-predictor L2 index temps (fast: chain read; slow: scratch hash).
    index_temps: dict[int, str] = {}
    for pred in plan.predictors:
        if pred.chain is None:
            continue
        index_var = f"index{f}_{pred.slot}"
        index_temps[pred.slot] = index_var
        chain = pred.chain
        if chain.fast:
            fir.begin.append(
                TableRead(
                    dest=index_var, table=chain.name, line=line,
                    slot=pred.order - 1,
                )
            )
        else:
            fir.begin.append(
                ScratchHash(
                    dest=index_var,
                    table=chain.name,
                    line=line,
                    order=pred.order,
                    shift=chain.params.shift,
                    masks=tuple(
                        chain.params.order_mask(step)
                        for step in range(1, pred.order + 1)
                    ),
                    width_bits=layout.width_bits,
                    fold_bits=chain.params.fold_bits,
                )
            )

    # Prediction loads, one temp per identification code.
    candidates: list[str] = []
    code = 0
    for pred in plan.predictors:
        pir = PredictorIR(
            slot=pred.slot,
            kind=pred.kind,
            order=pred.order,
            depth=pred.depth,
            first_code=code,
            chain=pred.chain.name if pred.chain is not None else None,
            l2=pred.l2.name if pred.l2 is not None else None,
            last=pred.last.name if pred.last is not None else None,
            index=index_temps.get(pred.slot),
        )
        fir.predictors.append(pir)
        if pred.kind is PredictorKind.LV:
            for slot in range(pred.depth):
                pvar = f"pred{f}_{code}"
                fir.begin.append(
                    TableRead(dest=pvar, table=pred.last.name, line=line, slot=slot)
                )
                candidates.append(pvar)
                code += 1
            continue
        index_var = index_temps[pred.slot]
        if pred.kind is PredictorKind.FCM:
            for slot in range(pred.depth):
                pvar = f"pred{f}_{code}"
                fir.begin.append(
                    TableRead(dest=pvar, table=pred.l2.name, line=index_var, slot=slot)
                )
                candidates.append(pvar)
                code += 1
        else:  # DFCM: last + stride, masked to the field width
            base_last = last_first
            if pred.last is not lasts[0]:
                base_last = f"last{f}_{pred.slot}"
                fir.begin.append(
                    TableRead(dest=base_last, table=pred.last.name, line=line, slot=0)
                )
            for slot in range(pred.depth):
                l2_read = f"l2{f}_{code}"
                fir.begin.append(
                    TableRead(dest=l2_read, table=pred.l2.name, line=index_var, slot=slot)
                )
                pvar = f"pred{f}_{code}"
                fir.begin.append(
                    AddMod(dest=pvar, a=base_last, b=l2_read, mask=layout.mask)
                )
                candidates.append(pvar)
                code += 1

    fir.select = Select(
        field=f, value=value, candidates=tuple(candidates),
        miss_code=layout.miss_code,
    )
    fir.emits.append(EmitCode(field=f, code_bytes=layout.code_bytes))
    fir.emits.append(EmitValue(field=f, src=value, value_bytes=layout.value_bytes))

    # -- commit phase -------------------------------------------------------
    stride: str | None = None
    if layout.needs_stride:
        stride = f"stride{f}"
        fir.commit.append(
            SubMod(dest=stride, a=value, b=last_first, mask=layout.mask)
        )

    # Second-level tables, in predictor order (mirrors the kernel).
    for pred in plan.predictors:
        if pred.l2 is None:
            continue
        src = value if pred.kind is PredictorKind.FCM else stride
        fir.commit.append(
            TableUpdate(
                table=pred.l2.name,
                line=index_temps[pred.slot],
                depth=pred.depth,
                src=src,
                guarded=smart,
            )
        )

    # First-level chains.
    for chain in plan.chains:
        feed = value if chain.kind is PredictorKind.FCM else stride
        if chain.fast:
            fold = f"fold_{chain.name}"
            fir.commit.append(
                HashFold(
                    dest=fold, src=feed, width_bits=layout.width_bits,
                    fold_bits=chain.params.fold_bits,
                )
            )
            fir.commit.append(
                ChainAbsorb(
                    table=chain.name,
                    line=line,
                    span=chain.span,
                    fold=fold,
                    shift=chain.params.shift,
                    masks=tuple(
                        chain.params.order_mask(level)
                        for level in range(1, chain.span + 1)
                    ),
                )
            )
        else:
            fir.commit.append(
                HistoryShift(table=chain.name, line=line, span=chain.span, src=feed)
            )

    # Last-value tables.
    for last in plan.lasts:
        fir.commit.append(
            TableUpdate(
                table=last.name, line=line, depth=last.depth, src=value,
                guarded=smart,
            )
        )
    return fir


def lower_model(model: CompressorModel) -> KernelIR:
    """Lower a resolved model into the kernel IR (fields in process order)."""
    plans = {
        layout.index: plan_field(layout, model.options) for layout in model.fields
    }
    tables: dict[str, TableDecl] = {}
    for plan in plans.values():
        tables.update(_declare_tables(plan))

    ir = KernelIR(
        fingerprint=model.fingerprint(),
        tables=tables,
        fields=[],
        record_bytes=model.spec.record_bytes,
        header_bytes=model.spec.header_bytes,
        smart_update=model.options.smart_update,
    )
    pc_temp: str | None = None
    for layout in model.process_order:
        fir = _lower_field(plans[layout.index], model, pc_temp)
        ir.fields.append(fir)
        if layout.is_pc:
            pc_temp = f"value{layout.index}"
    return ir
