"""Static per-record cost model over the analyzed kernel IR.

Counts the work one record costs per field — table reads, table stores,
hash steps, arithmetic, compares, stream emits — directly from IR ops
plus the liveness facts (guard elisions and live-depth clipping change
the store and compare counts).  Exposed as ``tcgen-lint --cost``.

The byte totals come from the IR's table declarations, so the property
tests can hold them equal to :meth:`FieldPlan.table_bytes`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.analysis import FieldFacts, ModelFacts
from repro.ir.ops import (
    AddMod,
    ChainAbsorb,
    EmitCode,
    EmitValue,
    FieldIR,
    HashFold,
    HistoryShift,
    LineIndex,
    LoadField,
    ScratchHash,
    SubMod,
    TableRead,
    TableUpdate,
)


@dataclass(frozen=True)
class OpCounts:
    """Per-record operation counts (one field, or totals)."""

    reads: int = 0
    stores: int = 0
    hash_steps: int = 0
    arith: int = 0
    compares: int = 0
    emits: int = 0

    @property
    def total(self) -> int:
        return (
            self.reads + self.stores + self.hash_steps
            + self.arith + self.compares + self.emits
        )

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            self.reads + other.reads,
            self.stores + other.stores,
            self.hash_steps + other.hash_steps,
            self.arith + other.arith,
            self.compares + other.compares,
            self.emits + other.emits,
        )


@dataclass(frozen=True)
class PredictorCost:
    """Begin-phase cost attributed to one predictor's prediction loads."""

    slot: int
    kind: str
    order: int
    depth: int
    counts: OpCounts


@dataclass(frozen=True)
class FieldCost:
    index: int
    counts: OpCounts
    predictors: tuple[PredictorCost, ...]


@dataclass(frozen=True)
class CostReport:
    """Whole-model static cost: per-field counts plus state footprint."""

    fields: tuple[FieldCost, ...]
    table_bytes: int

    @property
    def totals(self) -> OpCounts:
        out = OpCounts()
        for fc in self.fields:
            out = out + fc.counts
        return out


def _op_counts(op, facts: FieldFacts) -> OpCounts:
    """Cost of one IR op as the backends emit it, post-elision."""
    if isinstance(op, LoadField):
        return OpCounts(reads=1)
    if isinstance(op, LineIndex):
        return OpCounts(arith=0 if facts.elide_line_mask else 1)
    if isinstance(op, TableRead):
        return OpCounts(reads=1)
    if isinstance(op, ScratchHash):
        # Recomputes the order-k hash from raw history: k reads, k-1
        # shift-xor recombinations, one fold, and the masking steps the
        # range analysis could not elide.
        masks = len(op.masks)
        if op.table in facts.redundant_scratch_mask:
            masks -= 1
        fold = 1 if op.width_bits > op.fold_bits else 0
        return OpCounts(
            reads=op.order, hash_steps=op.order - 1 + fold, arith=masks
        )
    if isinstance(op, HashFold):
        return OpCounts(hash_steps=1 if op.width_bits > op.fold_bits else 0)
    if isinstance(op, (AddMod, SubMod)):
        return OpCounts(arith=1)
    if isinstance(op, TableUpdate):
        depth = facts.live_depth.get(op.table, op.depth)
        guard = 1 if op.guarded and op.table not in facts.plain_store else 0
        # A rotation reads depth-1 slots to move them up one position.
        return OpCounts(reads=depth - 1, stores=depth, compares=guard)
    if isinstance(op, ChainAbsorb):
        # Level k >= 2 reads slot k-2 and recombines; level 1 stores the
        # fold (masked only if the range proof failed).
        mask1 = 0 if op.table in facts.redundant_chain_store_mask else 1
        return OpCounts(
            reads=op.span - 1, stores=op.span,
            hash_steps=op.span - 1, arith=mask1,
        )
    if isinstance(op, HistoryShift):
        return OpCounts(reads=op.span - 1, stores=op.span)
    if isinstance(op, (EmitCode, EmitValue)):
        return OpCounts(emits=1)
    raise AssertionError(f"uncosted op {op!r}")


def _predictor_costs(
    fir: FieldIR, facts: FieldFacts
) -> tuple[PredictorCost, ...]:
    """Attribute begin-phase ops to predictors by their temp names.

    Lowering names every per-predictor temp ``index{f}_{slot}``,
    ``last{f}_{slot}``, ``pred{f}_{code}``, or ``l2{f}_{code}``; shared
    work (field load, line index, shared last read) stays field-level.
    """
    by_slot: dict[int, OpCounts] = {p.slot: OpCounts() for p in fir.predictors}
    code_owner: dict[int, int] = {}
    for pred in fir.predictors:
        for code in range(pred.first_code, pred.first_code + pred.depth):
            code_owner[code] = pred.slot

    prefix_index = f"index{fir.index}_"
    prefix_last = f"last{fir.index}_"
    prefix_pred = f"pred{fir.index}_"
    prefix_l2 = f"l2{fir.index}_"
    for op in fir.begin:
        dest = getattr(op, "dest", None)
        if dest is None:
            continue
        slot: int | None = None
        if dest.startswith(prefix_index) or dest.startswith(prefix_last):
            slot = int(dest.rsplit("_", 1)[1])
        elif dest.startswith(prefix_pred) or dest.startswith(prefix_l2):
            slot = code_owner.get(int(dest.rsplit("_", 1)[1]))
        if slot is not None and slot in by_slot:
            by_slot[slot] = by_slot[slot] + _op_counts(op, facts)
    return tuple(
        PredictorCost(
            slot=p.slot, kind=p.kind.value, order=p.order, depth=p.depth,
            counts=by_slot[p.slot],
        )
        for p in fir.predictors
    )


def cost_model(facts: ModelFacts) -> CostReport:
    """Per-record static op counts for every field, post-elision."""
    fields = []
    for fir in facts.ir.fields:
        ffacts = facts.fields[fir.index]
        counts = OpCounts()
        for op in fir.begin:
            counts = counts + _op_counts(op, ffacts)
        if fir.select is not None:
            counts = counts + OpCounts(compares=len(fir.select.candidates))
        for op in fir.emits:
            counts = counts + _op_counts(op, ffacts)
        for op in fir.commit:
            counts = counts + _op_counts(op, ffacts)
        fields.append(
            FieldCost(
                index=fir.index,
                counts=counts,
                predictors=_predictor_costs(fir, ffacts),
            )
        )
    return CostReport(
        fields=tuple(sorted(fields, key=lambda fc: fc.index)),
        table_bytes=facts.ir.table_bytes(),
    )


_COLUMNS = ("reads", "stores", "hash", "arith", "cmp", "emit", "total")


def _row(label: str, c: OpCounts, tail: str = "") -> str:
    cells = (c.reads, c.stores, c.hash_steps, c.arith, c.compares, c.emits,
             c.total)
    return f"  {label:<22}" + "".join(f"{cell:>7}" for cell in cells) + tail


def render_cost(report: CostReport, title: str, vectors=None) -> str:
    """Fixed-width cost table for ``tcgen-lint --cost``.

    ``vectors`` is an optional :class:`repro.ir.vector.VectorReport`;
    when given, field rows grow a ``vec`` column (``vec`` / ``vec-c`` /
    ``scalar``) and the footer states the op-weighted fraction of kernel
    work the NumPy columnar backend can lift for this spec.
    """
    lines = [f"{title}: static per-record op counts "
             f"(state: {report.table_bytes} bytes)"]
    header = "  " + " " * 22 + "".join(f"{col:>7}" for col in _COLUMNS)
    if vectors is not None:
        header += f"{'vec':>8}"
    lines.append(header)
    for fc in report.fields:
        tail = ""
        if vectors is not None:
            tail = f"{vectors.field(fc.index).label:>8}"
        lines.append(_row(f"field {fc.index}", fc.counts, tail))
        for pc in fc.predictors:
            label = f"  {pc.kind}{pc.order}[{pc.depth}] slot {pc.slot}"
            lines.append(_row(label, pc.counts))
    lines.append(_row("total", report.totals))
    if vectors is not None:
        lines.append(
            f"  vectorizable fraction (op-weighted): {vectors.fraction:.2f}"
        )
    return "\n".join(lines) + "\n"
