"""Kernel IR, lowering, and dataflow analyses for generated compressors.

The pipeline is ``CompressorModel`` → :func:`lower_model` →
:class:`KernelIR` → :func:`analyze_ir` / :func:`analyze_model` →
:class:`ModelFacts`.  The facts feed three consumers:

- both code generators, which elide provably redundant masks and
  smart-update guards (:mod:`repro.codegen.python_backend`,
  :mod:`repro.codegen.c_backend`);
- ``genverify``, which checks emitted source against the analyzed IR
  instead of against surface conventions (``TC3xx`` diagnostics);
- the static cost model behind ``tcgen-lint --cost``
  (:mod:`repro.ir.cost`);
- the vectorizability analysis behind the NumPy columnar backend and
  the three-way ``backend="auto"`` dispatch (:mod:`repro.ir.vector`).
"""

from repro.ir.analysis import (
    FieldFacts,
    ModelFacts,
    TableFacts,
    analyze_ir,
    analyze_model,
)
from repro.ir.cost import CostReport, FieldCost, OpCounts, cost_model, render_cost
from repro.ir.lower import lower_model
from repro.ir.ops import KernelIR, TableDecl, TableRole, ValueRange, render_ir
from repro.ir.vector import (
    AUTO_NUMPY_THRESHOLD,
    FieldVector,
    VectorReport,
    analyze_vectors,
    vectorizable_fraction,
)

__all__ = [
    "AUTO_NUMPY_THRESHOLD",
    "CostReport",
    "FieldCost",
    "FieldFacts",
    "FieldVector",
    "KernelIR",
    "ModelFacts",
    "OpCounts",
    "TableDecl",
    "TableFacts",
    "TableRole",
    "ValueRange",
    "VectorReport",
    "analyze_ir",
    "analyze_model",
    "analyze_vectors",
    "cost_model",
    "lower_model",
    "render_ir",
    "vectorizable_fraction",
]
