"""Kernel IR, lowering, and dataflow analyses for generated compressors.

The pipeline is ``CompressorModel`` → :func:`lower_model` →
:class:`KernelIR` → :func:`analyze_ir` / :func:`analyze_model` →
:class:`ModelFacts`.  The facts feed three consumers:

- both code generators, which elide provably redundant masks and
  smart-update guards (:mod:`repro.codegen.python_backend`,
  :mod:`repro.codegen.c_backend`);
- ``genverify``, which checks emitted source against the analyzed IR
  instead of against surface conventions (``TC3xx`` diagnostics);
- the static cost model behind ``tcgen-lint --cost``
  (:mod:`repro.ir.cost`).
"""

from repro.ir.analysis import (
    FieldFacts,
    ModelFacts,
    TableFacts,
    analyze_ir,
    analyze_model,
)
from repro.ir.cost import CostReport, FieldCost, OpCounts, cost_model, render_cost
from repro.ir.lower import lower_model
from repro.ir.ops import KernelIR, TableDecl, TableRole, ValueRange, render_ir

__all__ = [
    "CostReport",
    "FieldCost",
    "FieldFacts",
    "KernelIR",
    "ModelFacts",
    "OpCounts",
    "TableDecl",
    "TableFacts",
    "TableRole",
    "ValueRange",
    "analyze_ir",
    "analyze_model",
    "cost_model",
    "lower_model",
    "render_ir",
]
