"""Typed kernel IR for generated trace compressors.

The IR models the per-record kernel both code generators emit: for every
field, an index/predict phase (*begin*), a compare-select against the
true value (*select/emit*), and a table-update phase (*commit*).  Ops are
deliberately coarse enough to mirror the emitters one-to-one — a
rotating table update is one op, not ``depth`` stores — so liveness and
cost facts map directly onto emitted statements, yet fine enough that a
forward value-range walk can prove every table index in bounds and every
element within its minimized type (:mod:`repro.ir.analysis`).

Temps are named strings (``value2``, ``index2_0``, ``pred2_3``) chosen to
match the locals the backends emit, which makes :func:`render_ir` output
directly comparable to generated source during debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from enum import Enum

from repro.predictors.hashing import HashParams
from repro.spec.ast import PredictorKind


@dataclass(frozen=True)
class ValueRange:
    """Inclusive integer interval ``[lo, hi]`` an expression can take."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty range [{self.lo}, {self.hi}]")

    @classmethod
    def of_width(cls, bits: int) -> "ValueRange":
        """The full range of a ``bits``-wide unsigned value."""
        return cls(0, (1 << bits) - 1)

    @classmethod
    def const(cls, value: int) -> "ValueRange":
        return cls(value, value)

    def join(self, other: "ValueRange") -> "ValueRange":
        return ValueRange(min(self.lo, other.lo), max(self.hi, other.hi))

    def masked(self, mask: int) -> "ValueRange":
        """Range after ``& mask`` (mask is ``2**k - 1``)."""
        if self.hi <= mask:
            return self
        return ValueRange(0, mask)

    def within(self, mask: int) -> bool:
        """True when ``& mask`` is provably the identity on this range."""
        return 0 <= self.lo and self.hi <= mask

    @property
    def bits(self) -> int:
        """Bits needed to store any value in the range."""
        return max(1, self.hi.bit_length())


class TableRole(str, Enum):
    """What a state structure holds."""

    LAST_VALUE = "last_value"  # lines x depth most-recent values
    CHAIN = "chain"  # lines x span partial hashes (fast) or history (slow)
    L2 = "l2"  # hash-indexed second-level prediction table


@dataclass(frozen=True)
class TableDecl:
    """One predictor state structure: a flat ``lines x span`` array."""

    name: str
    role: TableRole
    lines: int  # first-level line count (L1 lines, or L2 lines for L2 tables)
    span: int  # slots per line (depth for LV/L2, max order for chains)
    elem_bytes: int
    kind: PredictorKind | None = None  # feeding class for chains
    hash_params: HashParams | None = None  # chains only
    fast: bool = True  # chains only: incremental (True) or raw history

    @property
    def elements(self) -> int:
        return self.lines * self.span

    @property
    def total_bytes(self) -> int:
        return self.elements * self.elem_bytes


# ---------------------------------------------------------------------------
# Ops.  Every op that produces a value names its destination temp ``dest``;
# operand temps are referenced by name.  ``line`` operands are the temp
# holding the first-level line index, or None for constant line 0.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoadField:
    """``dest`` = the field's raw value from the current record."""

    dest: str
    field: int
    width_bits: int


@dataclass(frozen=True)
class LineIndex:
    """``dest = src & (lines - 1)`` — the L1 line selection mask."""

    dest: str
    src: str
    lines: int


@dataclass(frozen=True)
class TableRead:
    """``dest = table[line * span + slot]``."""

    dest: str
    table: str
    line: str | None
    slot: int


@dataclass(frozen=True)
class HashFold:
    """``dest = fold(src)``: XOR-fold into ``fold_bits`` bits."""

    dest: str
    src: str
    width_bits: int
    fold_bits: int


@dataclass(frozen=True)
class ScratchHash:
    """``dest`` = order-``order`` hash recomputed from raw history.

    Slow-hash mode only: reads ``table`` slots ``0 .. order-1`` and folds
    them through the shift-xor chain.  ``masks[k-1]`` is the mask applied
    at step ``k``; the step-1 mask is provably redundant (the fold is
    already narrower) and :mod:`repro.ir.analysis` marks it elidable.
    """

    dest: str
    table: str
    line: str | None
    order: int
    shift: int
    masks: tuple[int, ...]
    width_bits: int
    fold_bits: int


@dataclass(frozen=True)
class AddMod:
    """``dest = (a + b) & mask`` — DFCM prediction (last + stride)."""

    dest: str
    a: str
    b: str
    mask: int


@dataclass(frozen=True)
class SubMod:
    """``dest = (a - b) & mask`` — the stride computation."""

    dest: str
    a: str
    b: str
    mask: int


@dataclass(frozen=True)
class TableUpdate:
    """Rotate ``depth`` slots of one line and store ``src`` at slot 0.

    ``guarded`` mirrors the paper's smart update: the whole rotation is
    wrapped in ``if table[slot0] != src``.  Liveness may prove the guard
    useless (``live_depth == 1``: nothing to rotate) or the deep slots
    dead (``live_depth < depth``).
    """

    table: str
    line: str | None
    depth: int
    src: str
    guarded: bool


@dataclass(frozen=True)
class ChainAbsorb:
    """Fast-hash absorb: recombine level ``k-1`` into level ``k``.

    Writes all ``span`` slots; level ``k`` reads slot ``k-2`` (its own
    previous value falls out of the masked window).  ``masks[k-1]`` is
    the order-``k`` mask; the level-1 store mask is provably redundant.
    """

    table: str
    line: str | None
    span: int
    fold: str  # temp holding the folded feed value
    shift: int
    masks: tuple[int, ...]


@dataclass(frozen=True)
class HistoryShift:
    """Slow-hash commit: shift the raw-history window and store ``src``."""

    table: str
    line: str | None
    span: int
    src: str


@dataclass(frozen=True)
class Select:
    """Compare-select: match ``value`` against predictions, yield a code.

    ``candidates[i]`` is the temp predicted by identification code ``i``;
    a miss yields ``miss_code`` (and the raw value joins the value
    stream).
    """

    field: int
    value: str
    candidates: tuple[str, ...]
    miss_code: int


@dataclass(frozen=True)
class EmitCode:
    """Append the selected code to the field's code stream."""

    field: int
    code_bytes: int


@dataclass(frozen=True)
class EmitValue:
    """Append the unpredicted raw value to the field's value stream."""

    field: int
    src: str
    value_bytes: int


#: Ops allowed in the begin phase (indices + predictions).
BeginOp = (
    LoadField | LineIndex | TableRead | HashFold | ScratchHash | AddMod
)
#: Ops allowed in the commit phase (state updates).
CommitOp = SubMod | HashFold | TableUpdate | ChainAbsorb | HistoryShift


@dataclass(frozen=True)
class PredictorIR:
    """Per-predictor structural facts the sharing verifier checks."""

    slot: int
    kind: PredictorKind
    order: int
    depth: int
    first_code: int
    chain: str | None  # first-level structure serving the index
    l2: str | None  # second-level table owning the predictions
    last: str | None  # last-value table feeding LV/DFCM
    index: str | None  # temp holding the L2 index (None for LV)


@dataclass
class FieldIR:
    """One field's per-record kernel: begin, select/emit, commit."""

    index: int
    width_bits: int
    is_pc: bool
    l1_lines: int
    predictors: list[PredictorIR]
    begin: list[BeginOp] = dc_field(default_factory=list)
    select: Select | None = None
    emits: list[EmitCode | EmitValue] = dc_field(default_factory=list)
    commit: list[CommitOp] = dc_field(default_factory=list)

    @property
    def ops(self) -> list:
        out: list = list(self.begin)
        if self.select is not None:
            out.append(self.select)
        out += self.emits
        out += self.commit
        return out


@dataclass
class KernelIR:
    """The whole per-record loop: fields in processing order."""

    fingerprint: int
    tables: dict[str, TableDecl]
    fields: list[FieldIR]  # processing order (PC first)
    record_bytes: int
    header_bytes: int
    smart_update: bool

    def field(self, index: int) -> FieldIR:
        for f in self.fields:
            if f.index == index:
                return f
        raise KeyError(f"no field {index} in IR")

    def table_bytes(self) -> int:
        return sum(decl.total_bytes for decl in self.tables.values())


def render_ir(ir: KernelIR) -> str:
    """Human-readable dump of the kernel IR (docs, tests, debugging)."""
    lines = [f"kernel fingerprint={ir.fingerprint:#018x} "
             f"record_bytes={ir.record_bytes} header_bytes={ir.header_bytes}"]
    for decl in ir.tables.values():
        extra = ""
        if decl.hash_params is not None:
            extra = (f" k1={decl.hash_params.k1} shift={decl.hash_params.shift}"
                     f" fold_bits={decl.hash_params.fold_bits}"
                     f" fast={int(decl.fast)}")
        lines.append(
            f"  table {decl.name}: {decl.role.value} "
            f"{decl.lines}x{decl.span} u{8 * decl.elem_bytes}{extra}"
        )
    for field in ir.fields:
        tag = " (pc)" if field.is_pc else ""
        lines.append(f"  field {field.index}{tag}: "
                     f"{field.width_bits}-bit, L1={field.l1_lines}")
        for phase, ops in (("begin", field.begin),
                           ("select", [field.select] if field.select else []),
                           ("emit", field.emits),
                           ("commit", field.commit)):
            for op in ops:
                lines.append(f"    [{phase}] {_render_op(op)}")
    return "\n".join(lines) + "\n"


def _render_op(op) -> str:
    if isinstance(op, LoadField):
        return f"{op.dest} = load field{op.field} (u{op.width_bits})"
    if isinstance(op, LineIndex):
        return f"{op.dest} = {op.src} & {op.lines - 1:#x}"
    if isinstance(op, TableRead):
        return f"{op.dest} = {op.table}[{_slot(op.line, op.slot)}]"
    if isinstance(op, HashFold):
        return f"{op.dest} = fold{op.fold_bits}({op.src})"
    if isinstance(op, ScratchHash):
        return (f"{op.dest} = scratch-hash order {op.order} of "
                f"{op.table}[{_slot(op.line, 0)}..]")
    if isinstance(op, AddMod):
        return f"{op.dest} = ({op.a} + {op.b}) & {op.mask:#x}"
    if isinstance(op, SubMod):
        return f"{op.dest} = ({op.a} - {op.b}) & {op.mask:#x}"
    if isinstance(op, TableUpdate):
        guard = " if-changed" if op.guarded else ""
        return (f"update {op.table}[{_slot(op.line, 0)}] depth {op.depth} "
                f"<- {op.src}{guard}")
    if isinstance(op, ChainAbsorb):
        return f"absorb {op.fold} into {op.table} span {op.span}"
    if isinstance(op, HistoryShift):
        return f"shift {op.src} into {op.table} span {op.span}"
    if isinstance(op, Select):
        return (f"code = select({op.value} vs {len(op.candidates)} "
                f"predictions, miss={op.miss_code})")
    if isinstance(op, EmitCode):
        return f"emit code (u{8 * op.code_bytes})"
    if isinstance(op, EmitValue):
        return f"emit value {op.src} on miss (u{8 * op.value_bytes})"
    return repr(op)


def _slot(line: str | None, slot: int) -> str:
    if line is None:
        return str(slot)
    return f"{line}, {slot}"
