"""Vectorizability analysis over the kernel IR.

Decides, per field, whether the per-record loop can be evaluated as a
columnar (chunk-at-a-time) computation by the NumPy backend.  The
criterion is purely structural and read off the lowered IR:

- **compress**: a field vectorizes when every predictor is a pure
  last-value predictor (no hash chain, no second-level table) *and* the
  first-level line index is a constant.  The line is constant when the
  field has a single L1 line, or when the field is the PC field (the
  engine indexes the PC field with line 0 by protocol).  Under these
  conditions the table contents before record ``i`` are a pure function
  of the preceding column values: with the ALWAYS update policy slot
  ``k`` holds ``v[i-1-k]``; with SMART the table is the stack of
  *distinct consecutive* values, recoverable from a push mask and an
  exclusive cumulative sum.  (D)FCM predictors carry a loop-borne hash
  chain through a table whose index depends on prior values — those
  fields stay on the scalar path.

- **decompress**: additionally requires that hit codes can be resolved
  without replaying the push stack.  That holds for the ALWAYS policy at
  any depth (slot ``k`` at record ``i`` names record ``i-1-k``, so hits
  form a pointer forest resolvable by pointer doubling), and for SMART
  when the field's last-value depth is 1 — the case the liveness
  analysis proves guard-free (``plain_store``), making it semantically
  identical to ALWAYS.  SMART with depth > 1 would need the push history
  that is itself being decoded, so it stays scalar on the decode side.

The headline number, :func:`vectorizable_fraction`, weights each field by
its static per-record op count (:mod:`repro.ir.cost`), so it estimates
the share of kernel *work* the columnar backend can lift out of the
interpreter — the fact ``backend="auto"`` dispatch thresholds on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.analysis import ModelFacts, analyze_model
from repro.ir.cost import cost_model
from repro.ir.ops import FieldIR
from repro.model.layout import CompressorModel

#: Minimum op-weighted vectorizable fraction for ``backend="auto"`` to
#: prefer the NumPy backend over the pure-Python kernels when no native
#: build is available.
AUTO_NUMPY_THRESHOLD = 0.5


@dataclass(frozen=True)
class FieldVector:
    """Vectorizability verdict for one field."""

    index: int
    vector_compress: bool
    vector_decompress: bool
    reason: str  # why the field is (or is not) columnar

    @property
    def label(self) -> str:
        """Short cell for the cost table: vec / vec-c / scalar."""
        if self.vector_compress and self.vector_decompress:
            return "vec"
        if self.vector_compress:
            return "vec-c"
        return "scalar"


@dataclass(frozen=True)
class VectorReport:
    """Whole-model vectorizability: per-field verdicts plus the fraction."""

    fields: tuple[FieldVector, ...]
    fraction: float  # op-weighted share of vectorizable compress work

    def field(self, index: int) -> FieldVector:
        for fv in self.fields:
            if fv.index == index:
                return fv
        raise KeyError(f"no field {index} in vector report")

    @property
    def all_scalar(self) -> bool:
        return not any(fv.vector_compress for fv in self.fields)


def _classify_field(fir: FieldIR, smart_update: bool) -> FieldVector:
    impure = [
        p for p in fir.predictors if p.chain is not None or p.l2 is not None
    ]
    if impure:
        kinds = sorted({p.kind.value for p in impure})
        return FieldVector(
            index=fir.index,
            vector_compress=False,
            vector_decompress=False,
            reason=(
                f"{'/'.join(kinds)} hash chain is loop-carried "
                f"(table index depends on prior records)"
            ),
        )
    if fir.l1_lines != 1 and not fir.is_pc:
        return FieldVector(
            index=fir.index,
            vector_compress=False,
            vector_decompress=False,
            reason=f"L1 line index varies per record ({fir.l1_lines} lines)",
        )
    max_depth = max((p.depth for p in fir.predictors), default=0)
    if not smart_update:
        return FieldVector(
            index=fir.index,
            vector_compress=True,
            vector_decompress=True,
            reason="pure last-value, constant line, ALWAYS update",
        )
    if max_depth <= 1:
        return FieldVector(
            index=fir.index,
            vector_compress=True,
            vector_decompress=True,
            reason="pure last-value, depth 1 (guard-free plain store)",
        )
    return FieldVector(
        index=fir.index,
        vector_compress=True,
        vector_decompress=False,
        reason=(
            f"pure last-value depth {max_depth} under SMART: columnar "
            f"compress via push mask, decode needs the push history"
        ),
    )


def analyze_vectors(facts: ModelFacts) -> VectorReport:
    """Classify every field and compute the op-weighted fraction."""
    verdicts = tuple(
        sorted(
            (
                _classify_field(fir, facts.ir.smart_update)
                for fir in facts.ir.fields
            ),
            key=lambda fv: fv.index,
        )
    )
    report = cost_model(facts)
    total = report.totals.total
    lifted = sum(
        fc.counts.total
        for fc in report.fields
        if next(fv for fv in verdicts if fv.index == fc.index).vector_compress
    )
    fraction = (lifted / total) if total else 0.0
    return VectorReport(fields=verdicts, fraction=fraction)


def vectorizable_fraction(model: CompressorModel) -> float:
    """Convenience wrapper: fraction straight from a resolved model."""
    return analyze_vectors(analyze_model(model)).fraction
