"""Command-line tools.

``tcgen``
    The generator itself: read a trace specification, write generated
    source to stdout (``--lang python`` or ``--lang c``), exactly like the
    paper's tool ("unless TCgen terminates with a parse error, it will
    write the synthesized C code to the standard output").

``tcgen-trace``
    Generate synthetic evaluation traces (workload x trace kind).

``tcgen-bench``
    Run the full comparison (all seven algorithms over the trace suite)
    and print the paper-style harmonic-mean tables.

``tcgen-serve``
    Serve compression/decompression as a long-lived TCP daemon
    (implemented in :mod:`repro.server.daemon`; re-exported here so all
    console scripts live in one module).

``tcgen-lint``
    Static analysis: lint trace specifications (ruff-style
    ``path:line:col: CODE message`` output, ``--json`` for machines), run
    the concurrency lint over Python sources (``--asynccheck``), or run
    the full repository self-check (``--self-check``).

``tcgen-stream``
    Inspect and recover crash-safe v4 stream archives: ``info`` scans
    the durable frame inventory without needing the spec, ``recover``
    salvages the raw trace from a truncated or torn file.  A clean
    truncation (cut at a flush boundary, torn final flush, damaged
    trailer) exits 0 with a report — only real corruption exits 2.

``tcgen-query``
    Query archives without full decompression (:mod:`repro.query`):
    ``index`` adds a chunk skip index in place (atomically), ``select``/
    ``count``/``stats`` run predicate-pushdown queries that decode only
    chunks the predicate could match, and ``patterns`` runs hot-loop
    analytics directly on a SEQUITUR grammar without expanding it.

Every tool accepts ``--version``.

Exit statuses are uniform across the tools: 0 success, 1 tool failure,
2 (:data:`EXIT_CORRUPT`) malformed input data, 3 (:data:`EXIT_SPEC`)
specification errors — a spec that fails to lex, parse, or validate.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.errors import (
    CompressedFormatError,
    ReproError,
    SpecError,
    TraceFormatError,
)

#: Exit status for malformed input data (corrupt container, bad trace
#: framing) as opposed to other failures, which exit 1.  Scripts driving
#: these tools can distinguish "your data is damaged" from "the tool
#: failed" without parsing stderr.
EXIT_CORRUPT = 2

#: Exit status for specification errors (lex, parse, validation, lint).
#: Distinct from both generic failure (1) and corrupt data (2) so build
#: systems can tell "fix your spec" apart from "fix your pipeline".
EXIT_SPEC = 3


def _fail(prog: str, exc: ReproError) -> int:
    """Report ``exc`` on stderr and pick the exit status it deserves."""
    print(f"{prog}: {exc}", file=sys.stderr)
    if isinstance(exc, (CompressedFormatError, TraceFormatError)):
        return EXIT_CORRUPT
    if isinstance(exc, SpecError):
        return EXIT_SPEC
    return 1


def _write_output(path: str | None, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically, or to stdout when no path."""
    if path is None:
        sys.stdout.buffer.write(data)
    else:
        from repro.tio import atomic_write_bytes

        atomic_write_bytes(path, data)


def _add_version(parser: argparse.ArgumentParser) -> None:
    """Give a tool the standard ``--version`` flag."""
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )


def tcgen_main(argv: list[str] | None = None) -> int:
    """Entry point for the ``tcgen`` generator."""
    parser = argparse.ArgumentParser(
        prog="tcgen",
        description="Generate a trace compressor from a specification.",
    )
    _add_version(parser)
    parser.add_argument(
        "spec", nargs="?", help="specification file (default: stdin)"
    )
    parser.add_argument(
        "--lang", choices=("python", "c"), default="c",
        help="output language (default: c, like the paper)",
    )
    parser.add_argument(
        "--codec", default="bzip2", help="post-compression codec (default: bzip2)"
    )
    parser.add_argument(
        "--no-optimize", action="store_true",
        help="disable all application-specific optimizations (Table 2)",
    )
    parser.add_argument(
        "--disable", action="append", default=[],
        metavar="OPT",
        help="disable one optimization: smart_update, type_minimization, "
        "shared_tables, fast_hash, adaptive_shift (repeatable)",
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write generated source to FILE (atomically) instead of stdout",
    )
    parser.epilog = (
        "The generated Python module accepts --workers N (parallel "
        "post-compression), --chunk-records N|auto (chunked v3 container "
        "with CRC32C-framed, independently seekable chunks), --salvage "
        "(skip damaged chunks on decode), and -o FILE (atomic output) "
        "when run as a filter; output bytes are identical for any worker "
        "count."
    )
    args = parser.parse_args(argv)

    from repro.codegen import generate_c, generate_python
    from repro.model import OptimizationOptions, build_model
    from repro.spec import parse_spec

    text = open(args.spec).read() if args.spec else sys.stdin.read()
    try:
        spec = parse_spec(text)
        options = OptimizationOptions.none() if args.no_optimize else OptimizationOptions.full()
        for name in args.disable:
            options = options.without(name)
        model = build_model(spec, options)
        if args.lang == "python":
            source = generate_python(model, codec=args.codec)
        else:
            source = generate_c(model, codec=args.codec)
        _write_output(args.output, source.encode())
    except ReproError as exc:
        return _fail("tcgen", exc)
    except ValueError as exc:
        print(f"tcgen: {exc}", file=sys.stderr)
        return 1
    return 0


def trace_main(argv: list[str] | None = None) -> int:
    """Entry point for ``tcgen-trace``: emit a synthetic trace to stdout."""
    from repro.traces import TRACE_KINDS, build_trace, workload_names

    parser = argparse.ArgumentParser(
        prog="tcgen-trace", description="Generate a synthetic evaluation trace."
    )
    _add_version(parser)
    parser.add_argument("workload", choices=workload_names())
    parser.add_argument("kind", choices=TRACE_KINDS)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write the trace to FILE (atomically) instead of stdout",
    )
    args = parser.parse_args(argv)
    try:
        raw = build_trace(args.workload, args.kind, scale=args.scale, seed=args.seed)
        _write_output(args.output, raw)
    except ReproError as exc:
        return _fail("tcgen-trace", exc)
    return 0


def bench_main(argv: list[str] | None = None) -> int:
    """Entry point for ``tcgen-bench``: print paper-style result tables."""
    from repro.baselines import all_compressors
    from repro.metrics import ResultTable, measure
    from repro.traces import TRACE_KINDS, build_trace, default_suite, workload_names

    parser = argparse.ArgumentParser(
        prog="tcgen-bench",
        description="Compare all compression algorithms on the trace suite.",
    )
    _add_version(parser)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument(
        "--full", action="store_true", help="all 22 workloads (default: 8)"
    )
    parser.add_argument(
        "--kind", choices=TRACE_KINDS, action="append",
        help="limit to one or more trace kinds (repeatable)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker threads for TCgen's post-compression stage "
        "(0 = all CPUs; default 1; output bytes are unaffected)",
    )
    parser.add_argument(
        "--chunk-records", default=None, metavar="N",
        help="records per chunk for TCgen's chunked v3 container "
        "('auto' = ~1 MB raw per chunk; default: flat v1 container)",
    )
    parser.add_argument(
        "--backend", choices=("auto", "python", "numpy", "native"), default="auto",
        help="kernel-stage backend for the TCgen entry: auto tries the "
        "in-process compiled native kernels, then the numpy columnar "
        "kernels when the spec vectorizes well, then python "
        "(output bytes are identical either way)",
    )
    args = parser.parse_args(argv)

    from repro.runtime.parallel import resolve_workers

    workers = resolve_workers(args.workers)
    chunk_records = args.chunk_records
    if chunk_records is not None and chunk_records != "auto":
        chunk_records = int(chunk_records)

    suite = workload_names() if args.full else default_suite()
    kinds = args.kind or list(TRACE_KINDS)
    table = ResultTable()
    try:
        for kind in kinds:
            for workload in suite:
                raw = build_trace(workload, kind, scale=args.scale, seed=args.seed)
                for compressor in all_compressors(
                    chunk_records=chunk_records,
                    workers=workers,
                    backend=args.backend,
                ):
                    result = measure(compressor, raw, workload=workload, kind=kind)
                    table.add(result)
                    print(
                        f"{kind:22s} {workload:9s} {result.algorithm:9s} "
                        f"rate={result.compression_rate:9.2f} "
                        f"d.spd={result.decompression_speed / 1e6:7.2f}MB/s "
                        f"c.spd={result.compression_speed / 1e6:7.2f}MB/s",
                        file=sys.stderr,
                    )
    except ReproError as exc:
        return _fail("tcgen-bench", exc)
    except RuntimeError as exc:
        # The generated module reports --backend native unavailability
        # as RuntimeError (it is stdlib-only and cannot raise our types).
        print(f"tcgen-bench: {exc}", file=sys.stderr)
        return 1
    for metric, title in (
        ("compression_rate", "Compression rate (harmonic mean)"),
        ("decompression_speed", "Decompression speed (harmonic mean, B/s)"),
        ("compression_speed", "Compression speed (harmonic mean, B/s)"),
    ):
        print(f"\n== {title} ==")
        print(table.render(metric))
        print(f"\n== {title}, relative to TCgen ==")
        print(table.render(metric, relative_to="TCgen"))
    return 0


def analyze_main(argv: list[str] | None = None) -> int:
    """Entry point for ``tcgen-analyze``: statistics + recommendation."""
    from repro.analysis import analyze_trace, recommend_spec
    from repro.spec import format_spec
    from repro.tio import VPC_FORMAT

    parser = argparse.ArgumentParser(
        prog="tcgen-analyze",
        description="Analyze a VPC-format trace and recommend a specification.",
    )
    _add_version(parser)
    parser.add_argument("trace", nargs="?", help="trace file (default: stdin)")
    parser.add_argument(
        "--budget-mb", type=int, default=64,
        help="table-memory budget for the recommendation (default 64)",
    )
    args = parser.parse_args(argv)

    if args.trace:
        with open(args.trace, "rb") as handle:
            raw = handle.read()
    else:
        raw = sys.stdin.buffer.read()
    try:
        print(analyze_trace(VPC_FORMAT, raw).render())
        print()
        spec = recommend_spec(VPC_FORMAT, raw, budget_bytes=args.budget_mb << 20)
        print("recommended specification:")
        print(format_spec(spec), end="")
    except ReproError as exc:
        return _fail("tcgen-analyze", exc)
    return 0


def lint_main(argv: list[str] | None = None) -> int:
    """Entry point for ``tcgen-lint``: static analysis front-end.

    Default mode lints trace specification files (or stdin).  With
    ``--asynccheck`` the arguments are Python files/directories and the
    concurrency lint runs instead.  ``--self-check`` runs the full
    repository gate (same as ``python -m repro.lint``).
    """
    parser = argparse.ArgumentParser(
        prog="tcgen-lint",
        description="Lint trace specifications and repository sources.",
        epilog="Exit status: 0 clean (warnings allowed unless --strict), "
        "3 on errors, 1 on tool failure.  Suppress a diagnostic with an "
        "inline '# tcgen: disable=TC0xx' comment on the flagged line.",
    )
    _add_version(parser)
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="specification files (default: stdin); with --asynccheck, "
        "Python files or directories",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit diagnostics as deterministic JSON instead of text",
    )
    parser.add_argument(
        "--sarif", action="store_true", dest="as_sarif",
        help="emit diagnostics as SARIF 2.1.0 (for code-scanning uploads)",
    )
    parser.add_argument(
        "--cost", action="store_true",
        help="print the IR static cost model (per-record op counts per "
        "field/predictor) for each spec; PATH may be a spec file or a "
        "preset name (tcgen-a, tcgen-b)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings and notes as errors (exit 3)",
    )
    parser.add_argument(
        "--asynccheck", action="store_true",
        help="run the concurrency lint over Python sources instead of "
        "linting specifications",
    )
    parser.add_argument(
        "--flush-policy", action="append", default=[], metavar="KEY=VALUE",
        help="also lint a streaming flush policy against each spec "
        "(TC026: flush window too small to compress well); keys: "
        "max_records, max_bytes, max_latency_ms, rate (records/s); "
        "repeatable",
    )
    parser.add_argument(
        "--self-check", action="store_true",
        help="run the full repository self-check (presets, embedded "
        "specs, codegen verification, concurrency lint)",
    )
    parser.add_argument(
        "--root", default=".",
        help="repository root for --self-check (default: cwd)",
    )
    args = parser.parse_args(argv)

    from repro.lint import render_json, render_text
    from repro.lint.diagnostics import Severity

    if args.self_check:
        from repro.lint.selfcheck import run_selfcheck

        return run_selfcheck(root=args.root, strict=args.strict)

    if args.cost:
        from repro.ir import analyze_model, analyze_vectors, cost_model, render_cost
        from repro.model import build_model
        from repro.spec import parse_spec
        from repro.spec.presets import TCGEN_A_SPEC, TCGEN_B_SPEC

        presets = {"tcgen-a": TCGEN_A_SPEC, "tcgen-b": TCGEN_B_SPEC}
        sources: list[tuple[str, str]] = []
        try:
            for path in args.paths:
                if path in presets:
                    sources.append((path, presets[path]))
                else:
                    with open(path, encoding="utf-8") as handle:
                        sources.append((path, handle.read()))
            if not args.paths:
                sources.append(("<stdin>", sys.stdin.read()))
        except OSError as exc:
            print(f"tcgen-lint: {exc}", file=sys.stderr)
            return 1
        try:
            for title, text in sources:
                model = build_model(parse_spec(text))
                facts = analyze_model(model)
                print(
                    render_cost(
                        cost_model(facts), title, vectors=analyze_vectors(facts)
                    )
                )
        except ReproError as exc:
            return _fail("tcgen-lint", exc)
        return 0

    try:
        if args.asynccheck:
            from repro.lint.asynccheck import check_paths

            if not args.paths:
                print("tcgen-lint: --asynccheck requires PATH arguments",
                      file=sys.stderr)
                return 1
            diagnostics = check_paths(args.paths)
        else:
            from repro.lint.speclint import (
                FLUSH_POLICY_KEYS,
                lint_flush_policy,
                lint_spec_text,
            )

            policy: dict[str, int] = {}
            for item in args.flush_policy:
                key, sep, value = item.partition("=")
                if not sep or key not in FLUSH_POLICY_KEYS:
                    print(
                        f"tcgen-lint: bad --flush-policy {item!r}: want "
                        f"KEY=VALUE with KEY one of {', '.join(FLUSH_POLICY_KEYS)}",
                        file=sys.stderr,
                    )
                    return 1
                policy[key] = int(value)

            def lint_source(text: str, path: str) -> list:
                found = lint_spec_text(text, path=path)
                if policy:
                    from repro.errors import SpecError
                    from repro.spec import parse_spec

                    try:
                        spec = parse_spec(text)
                    except SpecError:
                        return found  # already reported as TC012/TC013
                    found += lint_flush_policy(spec, policy, path=path)
                return found

            diagnostics = []
            if args.paths:
                for path in args.paths:
                    with open(path, encoding="utf-8") as handle:
                        diagnostics += lint_source(handle.read(), path)
            else:
                diagnostics = lint_source(sys.stdin.read(), "<stdin>")
    except OSError as exc:
        print(f"tcgen-lint: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"tcgen-lint: {exc}", file=sys.stderr)
        return 1

    if args.as_sarif:
        from repro.lint.sarif import render_sarif

        print(render_sarif(diagnostics))
    elif args.as_json:
        print(render_json(diagnostics))
    elif diagnostics:
        print(render_text(diagnostics))

    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    if errors or (args.strict and diagnostics):
        return EXIT_SPEC
    return 0


def stream_main(argv: list[str] | None = None) -> int:
    """Entry point for ``tcgen-stream``: v4 stream inspection/recovery."""
    parser = argparse.ArgumentParser(
        prog="tcgen-stream",
        description="Inspect and recover crash-safe v4 stream archives.",
        epilog="Exit status: 0 for an intact archive or a clean truncation "
        "(open stream, torn final flush, damaged trailer), 2 when chunks "
        "were corrupted or the stream head is unreadable, 1 on tool failure.",
    )
    _add_version(parser)
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser(
        "info", help="scan the durable frame inventory (no spec needed)"
    )
    info.add_argument("file", help="v4 stream archive")

    recover = commands.add_parser(
        "recover", help="salvage the raw trace from a (possibly torn) archive"
    )
    recover.add_argument("file", help="v4 stream archive")
    recover.add_argument(
        "--spec", required=True, metavar="FILE",
        help="trace specification the stream was written with",
    )
    recover.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write recovered trace bytes to FILE (atomically) "
        "instead of stdout",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.file, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        print(f"tcgen-stream: {exc}", file=sys.stderr)
        return 1

    if args.command == "info":
        from repro.tio.streamv4 import scan_stream

        try:
            scan = scan_stream(blob)
        except ReproError as exc:
            return _fail("tcgen-stream", exc)
        state = "closed" if scan.closed else ("torn" if scan.torn else "open")
        print(f"fingerprint:   {scan.fingerprint:#018x}")
        print(f"chunk cap:     {scan.chunk_records} records")
        print(f"chunks:        {scan.chunk_count}")
        print(f"records:       {scan.records}")
        print(f"durable bytes: {scan.data_end} of {len(blob)}")
        print(f"state:         {state}")
        if scan.index is not None:
            indexed, _ = scan.index.coverage
            print(
                f"skip index:    {indexed}/{scan.chunk_count} chunks indexed "
                f"({scan.index.bloom_bits}-bit blooms)"
            )
        else:
            print("skip index:    none (tcgen-query index can add one)")
        return 0

    from repro.runtime.engine import TraceEngine
    from repro.spec import parse_spec

    try:
        with open(args.spec, encoding="utf-8") as handle:
            spec = parse_spec(handle.read())
    except OSError as exc:
        print(f"tcgen-stream: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        return _fail("tcgen-stream", exc)

    engine = TraceEngine(spec)
    try:
        raw = engine.decompress(blob, mode="salvage")
    except ReproError as exc:
        return _fail("tcgen-stream", exc)
    report = engine.last_report
    print(report.render(), file=sys.stderr)
    _write_output(args.output, raw)
    if report.intact or report.clean_truncation:
        return 0
    return EXIT_CORRUPT


def query_main(argv: list[str] | None = None) -> int:
    """Entry point for ``tcgen-query``: query archives without decompressing."""
    parser = argparse.ArgumentParser(
        prog="tcgen-query",
        description="Query compressed trace archives without full decompression.",
        epilog="Predicates: f1/f2/... name spec fields (1-based), pc is the "
        "spec's PC field, record is the 0-based record index; combine "
        "comparisons (== != < <= > >=) with and/or and parentheses. "
        "Example: --where 'pc >= 0x1000 and pc < 0x2000'.",
    )
    _add_version(parser)
    commands = parser.add_subparsers(dest="command", required=True)

    def archive_command(name: str, help_text: str):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("file", help="compressed archive (v1-v4 container)")
        sub.add_argument(
            "--spec", required=True, metavar="FILE",
            help="trace specification the archive was written with",
        )
        return sub

    index = archive_command(
        "index", "add or rebuild the chunk skip index (in place, atomically)"
    )
    index.add_argument(
        "--bloom-bits", type=int, default=None, metavar="N",
        help="bloom filter size per field per chunk (power of two; 0 "
        "disables blooms; default 4096)",
    )
    index.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write the indexed archive to FILE instead of in place",
    )

    for name, help_text in (
        ("select", "print matching records (tab-separated, one per line)"),
        ("count", "count matching records"),
        ("stats", "per-field min/max over matching records"),
    ):
        sub = archive_command(name, help_text)
        sub.add_argument(
            "--where", default=None, metavar="EXPR",
            help="predicate (default: match every record)",
        )
        sub.add_argument(
            "--salvage", action="store_true",
            help="tolerate damaged chunks (reported on stderr, not fatal)",
        )
        if name == "select":
            sub.add_argument(
                "--limit", type=int, default=None, metavar="N",
                help="stop after N matches (later chunks are never decoded)",
            )
            sub.add_argument(
                "--raw", action="store_true",
                help="emit packed little-endian record bytes instead of text",
            )
            sub.add_argument(
                "-o", "--output", default=None, metavar="FILE",
                help="write results to FILE (atomically) instead of stdout",
            )

    patterns = commands.add_parser(
        "patterns",
        help="hot-pattern analytics on a SEQUITUR (SQT1) blob, computed on "
        "the grammar without expanding it",
    )
    patterns.add_argument("file", help="SEQUITUR-compressed blob (SQT1)")
    patterns.add_argument(
        "--seq", choices=("pc", "data"), default="pc",
        help="which sequence to analyze (default: pc)",
    )
    patterns.add_argument(
        "--top", type=int, default=10, metavar="K",
        help="number of patterns to report (default: 10)",
    )
    patterns.add_argument(
        "--value", default=None, metavar="N",
        help="also print the exact occurrence count of this value",
    )

    args = parser.parse_args(argv)

    try:
        with open(args.file, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        print(f"tcgen-query: {exc}", file=sys.stderr)
        return 1

    if args.command == "patterns":
        from repro.query import analyze, count_value, load_grammar

        try:
            print(analyze(blob, sequence=args.seq, top=args.top))
            if args.value is not None:
                value = int(args.value, 0)
                seq = load_grammar(blob).sequence(args.seq)
                print(f"value {value:#x}: {count_value(seq, value)} occurrences")
        except ReproError as exc:
            return _fail("tcgen-query", exc)
        return 0

    from repro.runtime.engine import TraceEngine
    from repro.spec import parse_spec

    try:
        with open(args.spec, encoding="utf-8") as handle:
            spec = parse_spec(handle.read())
    except OSError as exc:
        print(f"tcgen-query: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        return _fail("tcgen-query", exc)
    engine = TraceEngine(spec)

    if args.command == "index":
        from repro.query import rebuild_index

        try:
            indexed = rebuild_index(engine, blob, bloom_bits=args.bloom_bits)
        except ReproError as exc:
            return _fail("tcgen-query", exc)
        _write_output(args.output or args.file, indexed)
        chunks = len(engine.last_report.recovered_chunks) if engine.last_report else 0
        print(
            f"indexed {chunks} chunks "
            f"({len(indexed) - len(blob):+d} bytes)",
            file=sys.stderr,
        )
        return 0

    mode = "salvage" if args.salvage else "strict"
    try:
        result = engine.query(
            blob,
            args.where,
            op=args.command,
            limit=getattr(args, "limit", None),
            mode=mode,
        )
    except ReproError as exc:
        return _fail("tcgen-query", exc)

    print(result.render(), file=sys.stdout if args.command == "stats" else sys.stderr)
    if args.command == "select":
        if args.raw:
            from repro.query import records_to_bytes

            _write_output(args.output, records_to_bytes(engine.format, result.records))
        else:
            text = "".join(
                "\t".join(str(value) for value in record) + "\n"
                for record in result.records
            )
            _write_output(args.output, text.encode())
    elif args.command == "count":
        print(result.count)
    report = result.report
    if mode == "salvage" and not (report.intact or report.clean_truncation):
        return EXIT_CORRUPT
    return 0


def serve_main(argv: list[str] | None = None) -> int:
    """Entry point for ``tcgen-serve``: the compression daemon."""
    from repro.server.daemon import serve_main as _serve_main

    return _serve_main(argv)


if __name__ == "__main__":
    raise SystemExit(tcgen_main())
