"""Command-line tools.

``tcgen``
    The generator itself: read a trace specification, write generated
    source to stdout (``--lang python`` or ``--lang c``), exactly like the
    paper's tool ("unless TCgen terminates with a parse error, it will
    write the synthesized C code to the standard output").

``tcgen-trace``
    Generate synthetic evaluation traces (workload x trace kind).

``tcgen-bench``
    Run the full comparison (all seven algorithms over the trace suite)
    and print the paper-style harmonic-mean tables.

``tcgen-serve``
    Serve compression/decompression as a long-lived TCP daemon
    (implemented in :mod:`repro.server.daemon`; re-exported here so all
    console scripts live in one module).

Every tool accepts ``--version``.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.errors import CompressedFormatError, ReproError, TraceFormatError

#: Exit status for malformed input data (corrupt container, bad trace
#: framing) as opposed to other failures, which exit 1.  Scripts driving
#: these tools can distinguish "your data is damaged" from "the tool
#: failed" without parsing stderr.
EXIT_CORRUPT = 2


def _fail(prog: str, exc: ReproError) -> int:
    """Report ``exc`` on stderr and pick the exit status it deserves."""
    print(f"{prog}: {exc}", file=sys.stderr)
    if isinstance(exc, (CompressedFormatError, TraceFormatError)):
        return EXIT_CORRUPT
    return 1


def _write_output(path: str | None, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically, or to stdout when no path."""
    if path is None:
        sys.stdout.buffer.write(data)
    else:
        from repro.tio import atomic_write_bytes

        atomic_write_bytes(path, data)


def _add_version(parser: argparse.ArgumentParser) -> None:
    """Give a tool the standard ``--version`` flag."""
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )


def tcgen_main(argv: list[str] | None = None) -> int:
    """Entry point for the ``tcgen`` generator."""
    parser = argparse.ArgumentParser(
        prog="tcgen",
        description="Generate a trace compressor from a specification.",
    )
    _add_version(parser)
    parser.add_argument(
        "spec", nargs="?", help="specification file (default: stdin)"
    )
    parser.add_argument(
        "--lang", choices=("python", "c"), default="c",
        help="output language (default: c, like the paper)",
    )
    parser.add_argument(
        "--codec", default="bzip2", help="post-compression codec (default: bzip2)"
    )
    parser.add_argument(
        "--no-optimize", action="store_true",
        help="disable all application-specific optimizations (Table 2)",
    )
    parser.add_argument(
        "--disable", action="append", default=[],
        metavar="OPT",
        help="disable one optimization: smart_update, type_minimization, "
        "shared_tables, fast_hash, adaptive_shift (repeatable)",
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write generated source to FILE (atomically) instead of stdout",
    )
    parser.epilog = (
        "The generated Python module accepts --workers N (parallel "
        "post-compression), --chunk-records N|auto (chunked v3 container "
        "with CRC32C-framed, independently seekable chunks), --salvage "
        "(skip damaged chunks on decode), and -o FILE (atomic output) "
        "when run as a filter; output bytes are identical for any worker "
        "count."
    )
    args = parser.parse_args(argv)

    from repro.codegen import generate_c, generate_python
    from repro.model import OptimizationOptions, build_model
    from repro.spec import parse_spec

    text = open(args.spec).read() if args.spec else sys.stdin.read()
    try:
        spec = parse_spec(text)
        options = OptimizationOptions.none() if args.no_optimize else OptimizationOptions.full()
        for name in args.disable:
            options = options.without(name)
        model = build_model(spec, options)
        if args.lang == "python":
            source = generate_python(model, codec=args.codec)
        else:
            source = generate_c(model, codec=args.codec)
        _write_output(args.output, source.encode())
    except ReproError as exc:
        return _fail("tcgen", exc)
    except ValueError as exc:
        print(f"tcgen: {exc}", file=sys.stderr)
        return 1
    return 0


def trace_main(argv: list[str] | None = None) -> int:
    """Entry point for ``tcgen-trace``: emit a synthetic trace to stdout."""
    from repro.traces import TRACE_KINDS, build_trace, workload_names

    parser = argparse.ArgumentParser(
        prog="tcgen-trace", description="Generate a synthetic evaluation trace."
    )
    _add_version(parser)
    parser.add_argument("workload", choices=workload_names())
    parser.add_argument("kind", choices=TRACE_KINDS)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write the trace to FILE (atomically) instead of stdout",
    )
    args = parser.parse_args(argv)
    try:
        raw = build_trace(args.workload, args.kind, scale=args.scale, seed=args.seed)
        _write_output(args.output, raw)
    except ReproError as exc:
        return _fail("tcgen-trace", exc)
    return 0


def bench_main(argv: list[str] | None = None) -> int:
    """Entry point for ``tcgen-bench``: print paper-style result tables."""
    from repro.baselines import all_compressors
    from repro.metrics import ResultTable, measure
    from repro.traces import TRACE_KINDS, build_trace, default_suite, workload_names

    parser = argparse.ArgumentParser(
        prog="tcgen-bench",
        description="Compare all compression algorithms on the trace suite.",
    )
    _add_version(parser)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument(
        "--full", action="store_true", help="all 22 workloads (default: 8)"
    )
    parser.add_argument(
        "--kind", choices=TRACE_KINDS, action="append",
        help="limit to one or more trace kinds (repeatable)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker threads for TCgen's post-compression stage "
        "(0 = all CPUs; default 1; output bytes are unaffected)",
    )
    parser.add_argument(
        "--chunk-records", default=None, metavar="N",
        help="records per chunk for TCgen's chunked v3 container "
        "('auto' = ~1 MB raw per chunk; default: flat v1 container)",
    )
    args = parser.parse_args(argv)

    from repro.runtime.parallel import resolve_workers

    workers = resolve_workers(args.workers)
    chunk_records = args.chunk_records
    if chunk_records is not None and chunk_records != "auto":
        chunk_records = int(chunk_records)

    suite = workload_names() if args.full else default_suite()
    kinds = args.kind or list(TRACE_KINDS)
    table = ResultTable()
    try:
        for kind in kinds:
            for workload in suite:
                raw = build_trace(workload, kind, scale=args.scale, seed=args.seed)
                for compressor in all_compressors(
                    chunk_records=chunk_records, workers=workers
                ):
                    result = measure(compressor, raw, workload=workload, kind=kind)
                    table.add(result)
                    print(
                        f"{kind:22s} {workload:9s} {result.algorithm:9s} "
                        f"rate={result.compression_rate:9.2f} "
                        f"d.spd={result.decompression_speed / 1e6:7.2f}MB/s "
                        f"c.spd={result.compression_speed / 1e6:7.2f}MB/s",
                        file=sys.stderr,
                    )
    except ReproError as exc:
        return _fail("tcgen-bench", exc)
    for metric, title in (
        ("compression_rate", "Compression rate (harmonic mean)"),
        ("decompression_speed", "Decompression speed (harmonic mean, B/s)"),
        ("compression_speed", "Compression speed (harmonic mean, B/s)"),
    ):
        print(f"\n== {title} ==")
        print(table.render(metric))
        print(f"\n== {title}, relative to TCgen ==")
        print(table.render(metric, relative_to="TCgen"))
    return 0


def analyze_main(argv: list[str] | None = None) -> int:
    """Entry point for ``tcgen-analyze``: statistics + recommendation."""
    from repro.analysis import analyze_trace, recommend_spec
    from repro.spec import format_spec
    from repro.tio import VPC_FORMAT

    parser = argparse.ArgumentParser(
        prog="tcgen-analyze",
        description="Analyze a VPC-format trace and recommend a specification.",
    )
    _add_version(parser)
    parser.add_argument("trace", nargs="?", help="trace file (default: stdin)")
    parser.add_argument(
        "--budget-mb", type=int, default=64,
        help="table-memory budget for the recommendation (default 64)",
    )
    args = parser.parse_args(argv)

    if args.trace:
        with open(args.trace, "rb") as handle:
            raw = handle.read()
    else:
        raw = sys.stdin.buffer.read()
    try:
        print(analyze_trace(VPC_FORMAT, raw).render())
        print()
        spec = recommend_spec(VPC_FORMAT, raw, budget_bytes=args.budget_mb << 20)
        print("recommended specification:")
        print(format_spec(spec), end="")
    except ReproError as exc:
        return _fail("tcgen-analyze", exc)
    return 0


def serve_main(argv: list[str] | None = None) -> int:
    """Entry point for ``tcgen-serve``: the compression daemon."""
    from repro.server.daemon import serve_main as _serve_main

    return _serve_main(argv)


if __name__ == "__main__":
    raise SystemExit(tcgen_main())
