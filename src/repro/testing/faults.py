"""Deterministic fault injection for compressed containers.

The robustness contract of the container formats is simple to state —
*no input bytes may make the decoder raise anything but*
:class:`~repro.errors.ReproError` *(or hang, or allocate unboundedly)* —
but only believable when exercised mechanically.  This module damages
container blobs in the four ways storage and transport actually fail:

``bitflip``
    one random bit inverted (media error, cosmic ray),
``truncate``
    the blob cut short (interrupted download, partial write),
``splice``
    a run of bytes overwritten with random garbage (torn write,
    misdirected I/O),
``zerofill``
    a run of bytes cleared (sparse-file hole, trimmed block).

Every fault is a pure function of ``(blob, kind, seed)`` — the RNG is
seeded from a string, which Python hashes with SHA-512 independently of
``PYTHONHASHSEED`` — so a failing campaign case can be replayed exactly
by name.

Run ``python -m repro.testing --seeds 8`` for a self-contained smoke
campaign over the engine and a generated module (used by CI).
"""

from __future__ import annotations

from dataclasses import dataclass
import random
from typing import Iterable, Iterator

FAULT_KINDS = ("bitflip", "truncate", "splice", "zerofill")

#: Widest damage a splice/zerofill fault inflicts, in bytes.
MAX_FAULT_SPAN = 64


@dataclass(frozen=True)
class Fault:
    """One injected fault: what was done, where, and how to replay it."""

    kind: str
    seed: int
    position: int
    length: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}(seed={self.seed}) at byte {self.position} x{self.length}"


def _rng(kind: str, seed: int, attempt: int) -> random.Random:
    return random.Random(f"repro-fault:{kind}:{seed}:{attempt}")


def inject(blob: bytes, kind: str, seed: int = 0) -> tuple[bytes, Fault]:
    """Return ``(damaged, fault)`` for a deterministic fault in ``blob``.

    The damaged blob is guaranteed to differ from the input (a zerofill
    that lands on zeros, say, is re-rolled with a derived seed), so a
    campaign never reports a vacuous pass.  Raises ``ValueError`` for an
    unknown ``kind`` or a blob too small to damage.
    """
    if kind not in FAULT_KINDS:
        raise ValueError(f"unknown fault kind {kind!r}, expected one of {FAULT_KINDS}")
    if len(blob) < 2:
        raise ValueError("blob too small to inject a fault into")
    for attempt in range(64):
        rng = _rng(kind, seed, attempt)
        damaged, fault = _apply(blob, kind, seed, rng)
        if damaged != blob:
            return damaged, fault
    raise ValueError(f"could not damage blob with {kind} fault")  # pragma: no cover


def _apply(
    blob: bytes, kind: str, seed: int, rng: random.Random
) -> tuple[bytes, Fault]:
    out = bytearray(blob)
    if kind == "bitflip":
        position = rng.randrange(len(blob))
        out[position] ^= 1 << rng.randrange(8)
        return bytes(out), Fault(kind, seed, position, 1)
    if kind == "truncate":
        position = rng.randrange(len(blob))  # keep blob[:position]
        return bytes(out[:position]), Fault(kind, seed, position, len(blob) - position)
    position = rng.randrange(len(blob))
    length = min(rng.randint(1, MAX_FAULT_SPAN), len(blob) - position)
    if kind == "splice":
        out[position : position + length] = rng.randbytes(length)
    else:  # zerofill
        out[position : position + length] = bytes(length)
    return bytes(out), Fault(kind, seed, position, length)


def campaign(
    blob: bytes,
    *,
    kinds: Iterable[str] = FAULT_KINDS,
    seeds: Iterable[int] = range(4),
) -> Iterator[tuple[bytes, Fault]]:
    """Yield every (damaged blob, fault) in the ``kinds`` x ``seeds`` grid."""
    for kind in kinds:
        for seed in seeds:
            yield inject(blob, kind, seed)


def _smoke(seeds: int) -> int:  # pragma: no cover - exercised by CI, not pytest
    """Fuzz-smoke: fault campaign over engine + generated-module decoders.

    Returns the number of contract violations (non-``ReproError`` escapes
    from the library, non-``ValueError`` escapes from a generated module,
    or salvage raising on pure corruption).
    """
    from repro.codegen import generate_python, load_python_module
    from repro.errors import ReproError
    from repro.model import OptimizationOptions, build_model
    from repro.runtime import TraceEngine
    from repro.spec import tcgen_a

    spec = tcgen_a()
    rng = random.Random("repro-fault-smoke")
    body = bytes(rng.getrandbits(8) for _ in range(spec.record_bytes * 400))
    raw = b"VPC3"[: spec.header_bytes].ljust(spec.header_bytes, b"\x00") + body

    engine = TraceEngine(spec, OptimizationOptions.full())
    module = load_python_module(
        generate_python(build_model(spec, OptimizationOptions.full()))
    )
    blobs = {
        "v1-flat": engine.compress(raw),
        "v2-chunked": TraceEngine(
            spec, OptimizationOptions.full(), container_version=2
        ).compress(raw, chunk_records=100),
        "v3-chunked": engine.compress(raw, chunk_records=100),
        "v4-stream": TraceEngine(
            spec, OptimizationOptions.full(), container_version=4
        ).compress(raw, chunk_records=100),
    }

    violations = 0
    cases = 0
    for label, blob in blobs.items():
        for damaged, fault in campaign(blob, seeds=range(seeds)):
            cases += 1
            try:
                engine.decompress(damaged)
            except ReproError:
                pass
            except Exception as exc:
                violations += 1
                print(f"ESCAPE {label} {fault}: engine strict raised {exc!r}")
            try:
                engine.decompress(damaged, mode="salvage")
            except ReproError as exc:
                # Only a fingerprint mismatch may surface in salvage mode.
                if "does not match" not in str(exc):
                    violations += 1
                    print(f"ESCAPE {label} {fault}: engine salvage raised {exc!r}")
            except Exception as exc:
                violations += 1
                print(f"ESCAPE {label} {fault}: engine salvage raised {exc!r}")
            try:
                module.decompress(damaged)
            except ValueError:
                pass
            except Exception as exc:
                violations += 1
                print(f"ESCAPE {label} {fault}: generated module raised {exc!r}")
    print(f"fault smoke: {cases} cases, {violations} contract violations")
    return violations
