"""CLI entry: ``python -m repro.testing`` runs the fault-smoke campaign."""

import argparse

from repro.testing.faults import _smoke

parser = argparse.ArgumentParser(
    description="Deterministic fault-injection smoke over the container decoders."
)
parser.add_argument(
    "--seeds", type=int, default=8, help="fault seeds per kind (default 8)"
)
raise SystemExit(1 if _smoke(parser.parse_args().seeds) else 0)
