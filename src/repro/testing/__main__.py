"""CLI entry: ``python -m repro.testing`` runs the fault-smoke campaign.

``--stream`` runs the stream-crash matrix instead (truncation sweep,
resume-after-crash, SIGKILL'd writer children); CI runs both.
"""

import argparse

parser = argparse.ArgumentParser(
    description="Deterministic fault-injection smoke over the container "
    "decoders, or (with --stream) the v4 stream-crash matrix."
)
parser.add_argument(
    "--seeds", type=int, default=8, help="fault seeds per kind (default 8)"
)
parser.add_argument(
    "--stream",
    action="store_true",
    help="run the stream-crash matrix (truncate/resume/SIGKILL) instead",
)
args = parser.parse_args()
if args.stream:
    from repro.testing.streamfaults import _stream_smoke

    raise SystemExit(1 if _stream_smoke() else 0)
from repro.testing.faults import _smoke

raise SystemExit(1 if _smoke(args.seeds) else 0)
