"""Crash-fault matrix for the v4 streaming container.

The streaming robustness contract is sharper than the corruption
contract of :mod:`repro.testing.faults`: a v4 archive cut at *any* byte
must decode to exactly the records of the chunk frames wholly before
the cut — no loss below the last durable flush, no phantom records
above it — and a writer resumed on the truncated file must continue to
a byte-identical archive.  This module checks that mechanically:

``truncation_matrix``
    cut a finished stream at every frame boundary and one byte to
    either side (plus every prologue/trailer edge); assert the exact
    recovered-record count, that boundary cuts report *clean
    truncation* and mid-frame cuts report a *torn tail*;

``resume_matrix``
    truncate at arbitrary mid-stream points, resume the writer on the
    damaged file, replay the remaining records, and assert the final
    archive decodes byte-identically to the original trace;

``kill_matrix``
    fork a real writer child (``fsync`` on every flush), SIGKILL it
    mid-stream, and assert the surviving file honors every watermark
    the child acked before dying.

Run ``python -m repro.testing --stream`` for the self-contained smoke
campaign over all three (used by CI's stream-crash-smoke job).
"""

from __future__ import annotations

import os
import struct
import subprocess
import sys
import tempfile
import time

from repro.errors import ReproError
from repro.tio.streamv4 import scan_stream


def _check(ok: bool, label: str, message: str) -> int:
    if ok:
        return 0
    print(f"STREAM-FAULT {label}: {message}")
    return 1


def build_stream(engine, raw: bytes, *, flush_records: int, close: bool = True):
    """Write ``raw`` through a streaming compressor, flushing every
    ``flush_records`` records; returns ``(blob, watermarks)`` where the
    watermarks are the durable points acked by each flush (and the
    close, when requested)."""
    import io

    fmt = engine.format
    sink = io.BytesIO()
    stream = engine.open_stream(sink)
    marks = []
    pos = 0
    header = fmt.header_bytes
    total = (len(raw) - header) // fmt.record_bytes
    for start in range(0, total, flush_records):
        cut = header + min(start + flush_records, total) * fmt.record_bytes
        stream.append(raw[pos:cut])
        pos = cut
        marks.append(stream.flush())
    if close:
        marks.append(stream.close())
    else:
        stream.abort()
    return sink.getvalue(), marks


def truncation_matrix(engine, raw: bytes, *, flush_records: int = 137) -> int:
    """Cut at every frame boundary +-1 byte; return violation count."""
    blob, marks = build_stream(engine, raw, flush_records=flush_records)
    scan = scan_stream(blob, expected_fingerprint=engine.model.fingerprint())
    fmt = engine.format
    header = fmt.header_bytes
    record_bytes = fmt.record_bytes

    boundaries = {scan.prologue_end}
    for (_index, _count, _start, end) in scan.frames:
        boundaries.add(end)
    boundaries.add(len(blob))  # one past the trailer: the intact archive

    cuts = set()
    for boundary in boundaries:
        for cut in (boundary - 1, boundary, boundary + 1):
            if 0 <= cut <= len(blob):
                cuts.add(cut)

    violations = 0
    for cut in sorted(cuts):
        label = f"truncate@{cut}/{len(blob)}"
        expected = sum(c for (_i, c, _s, e) in scan.frames if e <= cut)
        damaged = blob[:cut]
        if cut < scan.prologue_end:
            # The stream head itself is torn: nothing is recoverable,
            # but the decoder must fail with a typed error, not recover
            # phantom records.
            try:
                engine.decompress(damaged, mode="salvage")
            except ReproError:
                pass
            except Exception as exc:  # noqa: BLE001 - contract check
                violations += _check(False, label, f"non-typed escape {exc!r}")
            continue
        try:
            out = engine.decompress(damaged, mode="salvage")
        except ReproError as exc:
            violations += _check(False, label, f"salvage raised {exc!r}")
            continue
        except Exception as exc:  # noqa: BLE001 - contract check
            violations += _check(False, label, f"non-typed escape {exc!r}")
            continue
        report = engine.last_report
        got = max(0, (len(out) - header) // record_bytes)
        violations += _check(
            got == expected,
            label,
            f"recovered {got} records, want exactly {expected}",
        )
        at_boundary = cut in boundaries
        if cut == len(blob):
            violations += _check(
                not report.truncated and not report.torn_tail,
                label,
                "intact archive misreported as truncated",
            )
        else:
            violations += _check(
                report.clean_truncation,
                label,
                "truncation misreported as corruption: "
                f"clean_truncation=False ({report.render()})",
            )
            if not at_boundary and cut > scan.prologue_end:
                violations += _check(
                    report.torn_tail or report.trailer_damaged,
                    label,
                    "mid-frame cut did not report a torn tail",
                )
        violations += _check(
            out == raw[: header + expected * record_bytes],
            label,
            "recovered bytes are not the exact record prefix",
        )
        # The durable-watermark invariant: recovery never falls below
        # the greatest flush watermark at or under the cut.
        acked = max((m.records for m in marks if m.bytes <= cut), default=0)
        violations += _check(
            got >= acked,
            label,
            f"recovered {got} records below the acked watermark {acked}",
        )
    return violations


def resume_matrix(engine, raw: bytes, *, flush_records: int = 137, points: int = 8) -> int:
    """Truncate mid-stream, resume the writer, and demand the finished
    archive decode byte-identically to ``raw``.  Returns violations."""
    blob, _marks = build_stream(
        engine, raw, flush_records=flush_records, close=False
    )
    scan = scan_stream(blob, expected_fingerprint=engine.model.fingerprint())
    fmt = engine.format
    header = fmt.header_bytes
    record_bytes = fmt.record_bytes
    # Cuts spread over the whole file, deliberately including torn ones.
    cuts = sorted(
        {
            scan.prologue_end,
            *(len(blob) * i // (points + 1) for i in range(1, points + 1)),
            len(blob),
        }
    )
    violations = 0
    for cut in cuts:
        if cut < scan.prologue_end:
            continue
        label = f"resume@{cut}/{len(blob)}"
        with tempfile.NamedTemporaryFile(suffix=".tc4", delete=False) as handle:
            path = handle.name
            handle.write(blob[:cut])
        try:
            stream = engine.open_stream(path, resume=True)
            durable = stream.watermark.records
            stream.append(raw[header + durable * record_bytes :])
            stream.close()
            with open(path, "rb") as handle:
                final = handle.read()
            out = engine.decompress(final)
            violations += _check(
                out == raw, label, "resumed archive does not roundtrip"
            )
        except ReproError as exc:
            violations += _check(False, label, f"resume raised {exc!r}")
        finally:
            os.unlink(path)
    return violations


#: Child writer used by the kill matrix: streams records with fsync on
#: every flush and prints an ``ACK records bytes`` line per durable point.
_KILL_CHILD = r"""
import struct, sys
from repro.spec import tcgen_a
from repro.runtime.engine import TraceEngine
from repro.streaming import FlushPolicy

path, flush_records, total = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
spec = tcgen_a()
engine = TraceEngine(spec)
fmt = engine.format
raw = bytearray(b"VPC3"[: fmt.header_bytes].ljust(fmt.header_bytes, b"\x00"))
pc = 0x1000
for i in range(total):
    pc = (pc + 53) & 0xFFFFFFFF
    raw += struct.pack("<Iq", pc, (pc * 2654435761) % (1 << 63))
stream = engine.open_stream(path, policy=FlushPolicy(fsync=True))
fmtlen = fmt.header_bytes
for start in range(0, total, flush_records):
    cut = fmt.header_bytes + min(start + flush_records, total) * fmt.record_bytes
    stream.append(bytes(raw[fmtlen:cut]))
    fmtlen = cut
    mark = stream.flush()
    print(f"ACK {mark.records} {mark.bytes}", flush=True)
stream.close()
print("CLOSED", flush=True)
"""


def kill_matrix(engine, *, flush_records: int = 64, kills: int = 3) -> int:
    """SIGKILL a real writer child mid-stream; assert every acked
    watermark survives in the file it left behind.  Returns violations."""
    violations = 0
    for attempt in range(kills):
        label = f"sigkill#{attempt}"
        with tempfile.NamedTemporaryFile(suffix=".tc4", delete=False) as handle:
            path = handle.name
        child = None
        try:
            child = subprocess.Popen(
                [sys.executable, "-c", _KILL_CHILD, path, str(flush_records), "100000"],
                stdout=subprocess.PIPE,
                text=True,
                env={**os.environ, "TCGEN_NATIVE": "0"},
            )
            acked = 0
            # Let progressively more flushes land before pulling the rug.
            for _ in range(2 + attempt * 2):
                line = child.stdout.readline()
                if not line or line.startswith("CLOSED"):
                    break
                _tag, records, _bytes = line.split()
                acked = int(records)
            child.kill()
            child.wait()
            with open(path, "rb") as handle:
                blob = handle.read()
            scan = scan_stream(
                blob, expected_fingerprint=engine.model.fingerprint()
            )
            violations += _check(
                scan.records >= acked,
                label,
                f"file holds {scan.records} records, child acked {acked}",
            )
            out = engine.decompress(blob, mode="salvage")
            fmt = engine.format
            got = (len(out) - fmt.header_bytes) // fmt.record_bytes
            violations += _check(
                got == scan.records,
                label,
                f"salvage recovered {got} records, scan says {scan.records}",
            )
            violations += _check(
                engine.last_report.clean_truncation,
                label,
                "kill left a file that salvage reports as corrupt",
            )
        finally:
            if child is not None and child.poll() is None:  # pragma: no cover
                child.kill()
                child.wait()
            os.unlink(path)
    return violations


def _stream_smoke() -> int:  # pragma: no cover - exercised by CI, not pytest
    """The self-contained stream-crash campaign; returns violations."""
    from repro.spec import tcgen_a
    from repro.runtime.engine import TraceEngine

    spec = tcgen_a()
    engine = TraceEngine(spec)
    fmt = engine.format
    raw = bytearray(b"VPC3"[: fmt.header_bytes].ljust(fmt.header_bytes, b"\x00"))
    pc = 0x1000
    for i in range(3000):
        pc = (pc + 53 if i % 97 else pc * 31 + 7) & 0xFFFFFFFF
        raw += struct.pack("<Iq", pc, (pc * 2654435761) % (1 << 63))
    raw = bytes(raw)

    started = time.monotonic()
    violations = 0
    violations += truncation_matrix(engine, raw)
    violations += resume_matrix(engine, raw)
    violations += kill_matrix(engine)
    print(
        f"stream-crash smoke: {violations} contract violations "
        f"({time.monotonic() - started:.1f}s)"
    )
    return violations
