"""Test-support utilities that ship with the library.

:mod:`repro.testing.faults` provides deterministic fault injection for
compressed containers, used by the corruption-matrix tests and the CI
fuzz-smoke job.  It lives in the package (rather than under ``tests/``)
so downstream users can fuzz their own generated compressors with the
same harness.
"""

from repro.testing.faults import FAULT_KINDS, Fault, campaign, inject
from repro.testing.streamfaults import (
    build_stream,
    kill_matrix,
    resume_matrix,
    truncation_matrix,
)

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "build_stream",
    "campaign",
    "inject",
    "kill_matrix",
    "resume_matrix",
    "truncation_matrix",
]
