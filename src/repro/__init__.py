"""TCgen: automatic generation of high-performance trace compressors.

A reproduction of Burtscher & Sam, "Automatic Generation of
High-Performance Trace Compressors" (CGO 2005).  The package contains:

- the trace-specification language (:mod:`repro.spec`),
- the value predictors LV/FCM/DFCM (:mod:`repro.predictors`),
- the resolved compressor model with the paper's optimizations
  (:mod:`repro.model`),
- Python and C code generators (:mod:`repro.codegen`),
- the interpreted reference engine (:mod:`repro.runtime`),
- the six comparison compressors (:mod:`repro.baselines`),
- synthetic SPEC-like trace generation with a cache simulator
  (:mod:`repro.traces`, :mod:`repro.cachesim`),
- the measurement harness (:mod:`repro.metrics`).

Quickstart::

    from repro import parse_spec, generate_compressor

    spec = parse_spec(open("format.tc").read())
    compressor = generate_compressor(spec)       # generated Python module
    blob = compressor.compress(trace_bytes)
    assert compressor.decompress(blob) == trace_bytes
"""

from repro.errors import (
    CodegenError,
    CompressedFormatError,
    LexError,
    ParseError,
    ReproError,
    SpecError,
    TraceFormatError,
    ValidationError,
)
from repro.model import CompressorModel, OptimizationOptions, build_model
from repro.spec import (
    TraceSpec,
    format_spec,
    parse_spec,
    tcgen_a,
    tcgen_b,
)

__version__ = "1.0.0"

__all__ = [
    "CodegenError",
    "CompressedFormatError",
    "CompressorModel",
    "LexError",
    "OptimizationOptions",
    "ParseError",
    "ReproError",
    "SpecError",
    "TraceFormatError",
    "TraceSpec",
    "ValidationError",
    "build_model",
    "format_spec",
    "generate_compressor",
    "generate_c_source",
    "parse_spec",
    "tcgen_a",
    "tcgen_b",
    "__version__",
]


def generate_compressor(
    spec: TraceSpec,
    options: OptimizationOptions | None = None,
    codec: str = "bzip2",
):
    """Generate, compile, and load a Python compressor for ``spec``.

    Returns a module exposing ``compress``, ``decompress``,
    ``usage_report``, and ``main``.  This is the package's main entry
    point — the Python analog of running the ``tcgen`` tool and compiling
    its output.
    """
    from repro.codegen import generate_python, load_python_module

    model = build_model(spec, options)
    return load_python_module(generate_python(model, codec=codec))


def generate_c_source(
    spec: TraceSpec,
    options: OptimizationOptions | None = None,
    codec: str = "bzip2",
) -> str:
    """Generate the C source of a compressor for ``spec`` (paper output)."""
    from repro.codegen import generate_c

    model = build_model(spec, options)
    return generate_c(model, codec=codec)
