"""Memory-event streams produced by the synthetic program models."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

_PC_MASK = (1 << 32) - 1
_VALUE_MASK = (1 << 64) - 1


@dataclass
class EventBlock:
    """A batch of memory-access events in program order.

    Columns (equal length): ``pcs`` (32-bit instruction addresses),
    ``addrs`` (64-bit effective addresses), ``values`` (64-bit data read
    or written), ``is_store`` (True for stores, False for loads).
    """

    pcs: np.ndarray
    addrs: np.ndarray
    values: np.ndarray
    is_store: np.ndarray

    def __post_init__(self) -> None:
        lengths = {len(self.pcs), len(self.addrs), len(self.values), len(self.is_store)}
        if len(lengths) > 1:
            raise ReproError(f"event columns disagree on length: {sorted(lengths)}")
        self.pcs = np.asarray(self.pcs, dtype=np.uint64) & np.uint64(_PC_MASK)
        self.addrs = np.asarray(self.addrs, dtype=np.uint64)
        self.values = np.asarray(self.values, dtype=np.uint64)
        self.is_store = np.asarray(self.is_store, dtype=bool)

    def __len__(self) -> int:
        return len(self.pcs)

    @property
    def loads(self) -> "EventBlock":
        """Only the load events."""
        mask = ~self.is_store
        return EventBlock(
            self.pcs[mask], self.addrs[mask], self.values[mask], self.is_store[mask]
        )

    @property
    def stores(self) -> "EventBlock":
        """Only the store events."""
        mask = self.is_store
        return EventBlock(
            self.pcs[mask], self.addrs[mask], self.values[mask], self.is_store[mask]
        )


def concat_events(blocks: list[EventBlock]) -> EventBlock:
    """Concatenate event blocks in program order."""
    if not blocks:
        return EventBlock(
            np.zeros(0, np.uint64),
            np.zeros(0, np.uint64),
            np.zeros(0, np.uint64),
            np.zeros(0, bool),
        )
    return EventBlock(
        np.concatenate([b.pcs for b in blocks]),
        np.concatenate([b.addrs for b in blocks]),
        np.concatenate([b.values for b in blocks]),
        np.concatenate([b.is_store for b in blocks]),
    )


def interleave_events(blocks: list[EventBlock], pattern: np.ndarray) -> EventBlock:
    """Interleave blocks according to ``pattern`` (block indices per event).

    ``pattern[i]`` selects which block supplies event ``i``; each block's
    events are consumed in order.  Models concurrent activity (for example
    an outer loop interleaving two inner computations).
    """
    pattern = np.asarray(pattern)
    counts = [int((pattern == i).sum()) for i in range(len(blocks))]
    for i, (block, need) in enumerate(zip(blocks, counts)):
        if len(block) < need:
            raise ReproError(
                f"interleave pattern wants {need} events from block {i}, "
                f"which has only {len(block)}"
            )
    n = len(pattern)
    pcs = np.zeros(n, np.uint64)
    addrs = np.zeros(n, np.uint64)
    values = np.zeros(n, np.uint64)
    stores = np.zeros(n, bool)
    for i, block in enumerate(blocks):
        mask = pattern == i
        take = int(mask.sum())
        pcs[mask] = block.pcs[:take]
        addrs[mask] = block.addrs[:take]
        values[mask] = block.values[:take]
        stores[mask] = block.is_store[:take]
    return EventBlock(pcs, addrs, values, stores)
