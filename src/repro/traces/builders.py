"""Building the paper's three trace types from event streams.

Section 6.3 of the paper defines the trace types this module derives from
a program model's memory events:

- **store addresses** — PC and effective address of every store;
- **cache-miss addresses** — PC and address of every load or store that
  misses in the simulated 16kB direct-mapped write-allocate data cache;
- **load values** — PC and loaded value of every load.

All three use the shared evaluation format (32-bit header, 32-bit PC +
64-bit data records); the four header bytes tag the trace type.
"""

from __future__ import annotations

import numpy as np

from repro.cachesim import DirectMappedCache, CacheConfig, PAPER_CACHE
from repro.errors import ReproError
from repro.tio.traceformat import VPC_FORMAT, pack_records
from repro.traces.events import EventBlock
from repro.traces.workloads import generate_events

#: The paper's three trace types, in presentation order.
TRACE_KINDS = ("store_addresses", "cache_miss_addresses", "load_values")

_HEADERS = {
    "store_addresses": b"STA\0",
    "cache_miss_addresses": b"CMA\0",
    "load_values": b"LDV\0",
}


def _pack(kind: str, pcs: np.ndarray, data: np.ndarray) -> bytes:
    return pack_records(VPC_FORMAT, _HEADERS[kind], [pcs, data])


def store_address_trace(events: EventBlock) -> bytes:
    """PC + effective address of every executed store."""
    stores = events.stores
    return _pack("store_addresses", stores.pcs, stores.addrs)


def cache_miss_address_trace(
    events: EventBlock, config: CacheConfig = PAPER_CACHE
) -> bytes:
    """PC + address of every load/store missing in the simulated cache."""
    cache = DirectMappedCache(config)
    misses = cache.miss_mask(events.addrs)
    return _pack("cache_miss_addresses", events.pcs[misses], events.addrs[misses])


def load_value_trace(events: EventBlock) -> bytes:
    """PC + loaded value of every executed load."""
    loads = events.loads
    return _pack("load_values", loads.pcs, loads.values)


def build_trace(
    workload: str, kind: str, scale: float = 1.0, seed: int = 2005
) -> bytes:
    """Generate one workload's events and derive one trace type."""
    if kind not in TRACE_KINDS:
        raise ReproError(f"unknown trace kind {kind!r}; expected one of {TRACE_KINDS}")
    events = generate_events(workload, scale=scale, seed=seed)
    if kind == "store_addresses":
        return store_address_trace(events)
    if kind == "cache_miss_addresses":
        return cache_miss_address_trace(events)
    return load_value_trace(events)
