"""Synthetic SPECcpu2000-like trace generation.

The paper's traces come from ATOM-instrumented SPECcpu2000 binaries on an
Alpha system — hardware and data we substitute (see DESIGN.md) with
synthetic *program models*: small virtual programs whose memory behaviour
reproduces the statistical structure each benchmark is known for (strided
array sweeps, pointer chasing, hash probing, stack discipline, block
copies, interpreter dispatch, ...).  From each program's event stream the
three paper trace types are derived:

- **store addresses** — the PC and effective address of every store;
- **cache-miss addresses** — PC and address of every load/store that
  misses in the simulated 16kB direct-mapped data cache;
- **load values** — the PC and loaded value of every load.

All traces use the evaluation format: 32-bit header, records of a 32-bit
PC and a 64-bit data value, deterministic under a fixed seed.
"""

from repro.traces.events import EventBlock, concat_events
from repro.traces.builders import (
    TRACE_KINDS,
    build_trace,
    cache_miss_address_trace,
    load_value_trace,
    store_address_trace,
)
from repro.traces.workloads import (
    WORKLOADS,
    WorkloadInfo,
    default_suite,
    generate_events,
    workload_names,
)

__all__ = [
    "EventBlock",
    "concat_events",
    "TRACE_KINDS",
    "build_trace",
    "cache_miss_address_trace",
    "load_value_trace",
    "store_address_trace",
    "WORKLOADS",
    "WorkloadInfo",
    "default_suite",
    "generate_events",
    "workload_names",
]
