"""Vectorized building blocks for the synthetic program models.

Each primitive emits an :class:`~repro.traces.events.EventBlock` that
mimics one kind of memory behaviour found in the SPECcpu2000 programs:
strided array sweeps, pointer chasing, hash probing, stack discipline,
sequential scans, block copies, interpreter dispatch, and gather/scatter.
Primitives take a *code base* (the virtual address of their instruction
block) so that distinct call sites produce distinct PCs, and a numpy
``Generator`` so the whole suite is deterministic under a fixed seed.
"""

from __future__ import annotations

import numpy as np

from repro.traces.events import EventBlock

_U64 = np.uint64
_MASK64 = (1 << 64) - 1


def _u64(array):
    """View/cast integers (scalar or array) as uint64, wrapping negatives."""
    if np.isscalar(array):
        return np.uint64(int(array) & _MASK64)
    return np.asarray(array).astype(np.int64, copy=False).view(np.uint64)


def fp_values(n: int, rng: np.random.Generator, scale: float = 1.0) -> np.ndarray:
    """IEEE-754 doubles from a smooth random walk, as raw 64-bit words.

    Models floating-point load values: large dynamic range, slowly varying
    magnitude, exact bit patterns that defeat byte-level compressors.
    """
    steps = rng.normal(0.0, scale, size=n)
    series = np.cumsum(steps) + scale
    return series.astype(np.float64).view(np.uint64)


def small_int_values(n: int, rng: np.random.Generator, bound: int = 256) -> np.ndarray:
    """Counters and enum-like small integers (highly predictable)."""
    return rng.integers(0, bound, size=n, dtype=np.int64).view(np.uint64)


def bitmask_values(n: int, rng: np.random.Generator, patterns: int = 64) -> np.ndarray:
    """Sparse 64-bit bitmasks drawn from a recurring pattern pool.

    Models chess bitboards and flag words: wide values with a limited,
    heavily skewed working set (a handful of hot positions dominate), so
    value predictors can memorize the recurring patterns.
    """
    pool = rng.integers(0, 1 << 63, size=patterns, dtype=np.int64).view(np.uint64)
    ranks = rng.zipf(1.6, size=n) % patterns
    return pool[ranks]


def strided_sweep(
    code_base: int,
    iterations: int,
    accesses: list[tuple[int, int, bool]],
    values: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> EventBlock:
    """A loop of ``iterations`` executing one access per entry in
    ``accesses`` each iteration.

    Each entry is ``(array_base, stride, is_store)``: iteration ``i``
    touches ``base + i * stride``.  This is the canonical FP-benchmark
    pattern (regular multi-array stencils).  Loads read ``values`` (cycled)
    or a smooth FP series when omitted.
    """
    k = len(accesses)
    n = iterations * k
    pcs = np.tile(
        np.arange(code_base, code_base + 4 * k, 4, dtype=np.uint64), iterations
    )
    iter_index = np.repeat(np.arange(iterations, dtype=np.int64), k)
    bases = np.tile(_u64([a[0] for a in accesses]), iterations)
    strides = np.tile(np.array([a[1] for a in accesses], dtype=np.int64), iterations)
    stores = np.tile(np.array([a[2] for a in accesses], dtype=bool), iterations)
    addrs = bases + _u64(iter_index * strides)
    if values is None:
        rng = rng or np.random.default_rng(0)
        vals = fp_values(n, rng)
    else:
        vals = np.resize(np.asarray(values, dtype=np.uint64), n)
    return EventBlock(pcs, addrs, vals, stores)


def pointer_chase(
    code_base: int,
    steps: int,
    heap_base: int,
    node_count: int,
    node_bytes: int,
    rng: np.random.Generator,
    payload_loads: int = 1,
) -> EventBlock:
    """Walk a randomly linked list of ``node_count`` nodes for ``steps``.

    Visit order follows a random Hamiltonian cycle over the nodes, so
    every step is a dependent load whose *value* is the next node's
    address (a pointer), followed by ``payload_loads`` field loads.
    Models mcf/vortex-style pointer-heavy codes.
    """
    cycle = rng.permutation(node_count)
    repeats = steps // node_count + 2
    visits = np.tile(cycle, repeats)[: steps + 1]
    node_addrs = _u64(heap_base) + visits.astype(np.uint64) * _u64(node_bytes)
    next_addrs = node_addrs[1:]
    node_addrs = node_addrs[:steps]

    per_step = 1 + payload_loads
    pcs = np.tile(
        np.arange(code_base, code_base + 4 * per_step, 4, dtype=np.uint64), steps
    )
    addrs = np.zeros(steps * per_step, dtype=np.uint64)
    values = np.zeros(steps * per_step, dtype=np.uint64)
    addrs[0::per_step] = node_addrs  # the next-pointer load
    values[0::per_step] = next_addrs
    for field in range(1, per_step):
        addrs[field::per_step] = node_addrs + _u64(8 * field)
        values[field::per_step] = small_int_values(steps, rng, bound=1 << 16)
    stores = np.zeros(steps * per_step, dtype=bool)
    return EventBlock(pcs, addrs, values, stores)


def hash_probe(
    code_base: int,
    operations: int,
    table_base: int,
    buckets: int,
    rng: np.random.Generator,
    store_fraction: float = 0.2,
    zipf_a: float = 1.8,
) -> EventBlock:
    """Hash-table probing with a skewed (Zipf) bucket distribution.

    Each operation loads a bucket head (value: the stored key) and with
    probability ``store_fraction`` writes it back.  Models gap/parser
    dictionary behaviour: irregular addresses with heavy reuse of hot
    buckets.
    """
    ranks = rng.zipf(zipf_a, size=operations) % buckets
    addrs = _u64(table_base) + ranks.astype(np.uint64) * _U64(16)
    values = ranks.astype(np.uint64) * _U64(2654435761) & _U64(_MASK64)
    stores = rng.random(operations) < store_fraction
    pcs = np.where(
        stores,
        np.uint64(code_base + 4),
        np.uint64(code_base),
    )
    return EventBlock(pcs, addrs, values, stores)


def stack_activity(
    code_base: int,
    operations: int,
    stack_top: int,
    frame_bytes: int,
    rng: np.random.Generator,
    max_depth: int = 64,
) -> EventBlock:
    """Call/return stack discipline: stores on push, loads on pop.

    Depth follows a reflected random walk; push stores the return address
    (a code pointer), pop loads it back.  Models recursion-heavy codes
    (perlbmk running itself, gcc's tree walks).
    """
    steps = rng.integers(0, 2, size=operations) * 2 - 1
    depth = np.abs(np.cumsum(steps))
    depth = np.minimum(depth, max_depth)
    pushes = np.empty(operations, dtype=bool)
    pushes[0] = True
    pushes[1:] = depth[1:] > depth[:-1]
    addrs = _u64(stack_top) - depth.astype(np.uint64) * _U64(frame_bytes)
    values = _u64(code_base) + depth.astype(np.uint64) * _U64(20)
    pcs = np.where(pushes, np.uint64(code_base), np.uint64(code_base + 4))
    return EventBlock(pcs, addrs, values, pushes)


def sequential_scan(
    code_base: int,
    length: int,
    buffer_base: int,
    elem_bytes: int,
    rng: np.random.Generator,
    alphabet: int = 64,
    run_length: int = 8,
) -> EventBlock:
    """Byte/word-sequential scanning of a buffer (gzip/bzip2 style).

    Loads march through the buffer with a constant small stride; values
    are drawn from a small alphabet with runs, like text or already-
    compressed data being re-read.
    """
    addrs = _u64(buffer_base) + np.arange(length, dtype=np.uint64) * _U64(elem_bytes)
    run_ids = np.arange(length) // run_length
    symbols = rng.integers(0, alphabet, size=run_ids.max() + 1, dtype=np.int64)
    values = symbols[run_ids].view(np.uint64)
    pcs = np.full(length, code_base, dtype=np.uint64)
    stores = np.zeros(length, dtype=bool)
    return EventBlock(pcs, addrs, values, stores)


def block_copy(
    code_base: int,
    elements: int,
    source_base: int,
    dest_base: int,
    rng: np.random.Generator,
    elem_bytes: int = 8,
) -> EventBlock:
    """memcpy-like movement: load from source, store to destination."""
    index = np.arange(elements, dtype=np.uint64)
    load_addrs = _u64(source_base) + index * _U64(elem_bytes)
    store_addrs = _u64(dest_base) + index * _U64(elem_bytes)
    values = rng.integers(0, 1 << 62, size=elements, dtype=np.int64).view(np.uint64)
    pcs = np.empty(2 * elements, dtype=np.uint64)
    addrs = np.empty(2 * elements, dtype=np.uint64)
    vals = np.empty(2 * elements, dtype=np.uint64)
    stores = np.empty(2 * elements, dtype=bool)
    pcs[0::2] = code_base
    pcs[1::2] = code_base + 4
    addrs[0::2] = load_addrs
    addrs[1::2] = store_addrs
    vals[0::2] = values
    vals[1::2] = values
    stores[0::2] = False
    stores[1::2] = True
    return EventBlock(pcs, addrs, vals, stores)


def matrix_traverse(
    code_base: int,
    rows: int,
    cols: int,
    base: int,
    rng: np.random.Generator,
    column_major: bool = False,
    elem_bytes: int = 8,
    store_every: int = 0,
    content: np.ndarray | None = None,
) -> EventBlock:
    """Dense 2-D array traversal, optionally column-major (large strides).

    Models mgrid/swim/applu stencils; ``store_every`` > 0 turns every
    n-th access into a store (write-back of results).  Loads return the
    array's *contents*: pass ``content`` (one value per element) to model
    repeated sweeps over the same stable array — reloaded values repeat
    exactly, which is what makes real FP load-value traces predictable.
    """
    r = np.repeat(np.arange(rows, dtype=np.uint64), cols)
    c = np.tile(np.arange(cols, dtype=np.uint64), rows)
    if column_major:
        r, c = c.copy(), r.copy()
        flat = c * _U64(rows) + r
    else:
        flat = r * _U64(cols) + c
    offsets = flat * _U64(elem_bytes)
    n = rows * cols
    addrs = _u64(base) + offsets
    if content is None:
        content = fp_values(n, rng)
    values = np.asarray(content, dtype=np.uint64)[flat.astype(np.int64) % len(content)]
    pcs = np.full(n, code_base, dtype=np.uint64)
    stores = np.zeros(n, dtype=bool)
    if store_every > 0:
        stores[store_every - 1 :: store_every] = True
        pcs[stores] = code_base + 4
    return EventBlock(pcs, addrs, values, stores)


def interpreter_dispatch(
    code_base: int,
    operations: int,
    bytecode_base: int,
    operand_stack: int,
    rng: np.random.Generator,
    opcode_count: int = 24,
) -> EventBlock:
    """Bytecode interpreter: fetch opcode, then opcode-dependent accesses.

    The PC of the handler access depends on the fetched opcode, so the PC
    stream itself is data-dependent — the behaviour that makes interpreter
    traces (perlbmk, parts of gcc) hard for PC-pattern compressors.
    """
    # Real bytecode is dominated by loops: the opcode stream repeats a
    # program of a few hundred instructions rather than being i.i.d.
    program = rng.integers(0, opcode_count, size=max(operations // 40, 24),
                           dtype=np.int64)
    opcodes = np.resize(program, operations)
    fetch_pcs = np.full(operations, code_base, dtype=np.uint64)
    fetch_addrs = _u64(bytecode_base) + np.arange(operations, dtype=np.uint64)
    fetch_values = opcodes.view(np.uint64)

    handler_pcs = _u64(code_base + 64) + opcodes.view(np.uint64) * _U64(4)
    depth = np.abs(np.cumsum(rng.integers(0, 2, size=operations) * 2 - 1)) % 32
    handler_addrs = _u64(operand_stack) - depth.astype(np.uint64) * _U64(8)
    # Operand-stack slots hold values correlated with their depth (loop
    # counters, repeatedly pushed intermediates), not fresh randomness.
    handler_values = (depth * np.int64(2654435761)).astype(np.int64) % (1 << 20)
    handler_values = handler_values.view(np.uint64)
    handler_stores = opcodes % 3 == 0  # a third of the ops push results

    pcs = np.empty(2 * operations, dtype=np.uint64)
    addrs = np.empty(2 * operations, dtype=np.uint64)
    values = np.empty(2 * operations, dtype=np.uint64)
    stores = np.empty(2 * operations, dtype=bool)
    pcs[0::2] = fetch_pcs
    pcs[1::2] = handler_pcs
    addrs[0::2] = fetch_addrs
    addrs[1::2] = handler_addrs
    values[0::2] = fetch_values
    values[1::2] = handler_values
    stores[0::2] = False
    stores[1::2] = handler_stores
    return EventBlock(pcs, addrs, values, stores)


def gather_scatter(
    code_base: int,
    operations: int,
    index_base: int,
    data_base: int,
    data_elems: int,
    rng: np.random.Generator,
    store_fraction: float = 0.3,
    locality: int = 0,
    sweeps: int = 3,
) -> EventBlock:
    """Indirect access ``data[index[i]]`` (sparse solvers: equake, ammp).

    Each operation loads an index (value: the index itself), then touches
    the indexed element.  ``locality`` > 0 confines successive indices to
    a sliding window, modelling a physical neighbour list that the solver
    sweeps ``sweeps`` times (the repeats make the index stream
    memorizable, as in real iterative solvers).
    """
    if locality > 0:
        # One physical structure (a neighbour list) swept repeatedly: the
        # index sequence repeats every sweep, so context predictors can
        # memorize it after the first pass.
        sweep_length = max(operations // max(sweeps, 1), 1)
        centers = np.linspace(0, max(data_elems - locality, 1), sweep_length).astype(
            np.int64
        )
        one_sweep = centers + rng.integers(
            0, locality, size=sweep_length, dtype=np.int64
        )
        indices = np.resize(one_sweep, operations) % data_elems
    else:
        indices = rng.integers(0, data_elems, size=operations, dtype=np.int64)

    index_pcs = np.full(operations, code_base, dtype=np.uint64)
    index_addrs = _u64(index_base) + np.arange(operations, dtype=np.uint64) * _U64(4)
    index_values = indices.view(np.uint64)

    data_addrs = _u64(data_base) + indices.view(np.uint64) * _U64(8)
    # Stable array contents: re-gathered elements reload the same value.
    content = fp_values(min(data_elems, 1 << 20), rng)
    data_values = content[indices % len(content)]
    if store_fraction > 0:
        period = max(int(round(1.0 / store_fraction)), 1)
        data_stores = np.arange(operations) % period == period - 1
    else:
        data_stores = np.zeros(operations, dtype=bool)
    data_pcs = np.where(
        data_stores, np.uint64(code_base + 8), np.uint64(code_base + 4)
    )

    pcs = np.empty(2 * operations, dtype=np.uint64)
    addrs = np.empty(2 * operations, dtype=np.uint64)
    values = np.empty(2 * operations, dtype=np.uint64)
    stores = np.empty(2 * operations, dtype=bool)
    pcs[0::2] = index_pcs
    pcs[1::2] = data_pcs
    addrs[0::2] = index_addrs
    addrs[1::2] = data_addrs
    values[0::2] = index_values
    values[1::2] = data_values
    stores[0::2] = False
    stores[1::2] = data_stores
    return EventBlock(pcs, addrs, values, stores)


def looped_stores(
    code_base: int,
    sites: list[tuple[int, int]],
    row_length: int,
    iterations: int,
    rng: np.random.Generator,
) -> EventBlock:
    """Interleaved store sites sweeping rows with loop-restart jumps.

    Each ``(base, stride)`` site stores ``row_length`` strided elements,
    then jumps back to its base for the next iteration — the inner-loop
    store pattern of virtually every compiled program.  The sites are
    interleaved per element, so a single global base (MACHE/PDATS) sees
    large cross-site deltas on every record, while per-PC predictors see
    clean stride-plus-periodic-jump sequences they memorize exactly.
    """
    k = len(sites)
    total = iterations * row_length * k
    pcs = np.tile(
        np.arange(code_base, code_base + 4 * k, 4, dtype=np.uint64),
        iterations * row_length,
    )
    element = np.tile(
        np.repeat(np.arange(row_length, dtype=np.uint64), k), iterations
    )
    bases = np.tile(_u64([base for base, _ in sites]), iterations * row_length)
    strides = np.tile(
        np.array([stride for _, stride in sites], dtype=np.int64),
        iterations * row_length,
    )
    addrs = bases + _u64(element.astype(np.int64) * strides)
    values = fp_values(total, rng)
    stores = np.ones(total, dtype=bool)
    return EventBlock(pcs, addrs, values, stores)
