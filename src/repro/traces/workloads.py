"""SPECcpu2000-like synthetic workload personalities.

One recipe per benchmark in the paper's Table 1 (all twelve integer
programs and the ten C/Fortran-77 floating-point programs).  Each recipe
composes the primitives in :mod:`repro.traces.primitives` to mimic what
the benchmark is known for: mcf chases pointers, gzip scans buffers and
copies blocks, crafty looks up bitboards, swim/mgrid sweep dense grids,
equake gathers through sparse indices, perlbmk interprets bytecode, and
so on.  ``weight`` loosely follows the relative trace sizes of Table 1 so
the suite's size distribution is qualitatively similar.

Everything is deterministic: the per-workload RNG seed is derived from the
workload name and the caller's seed.
"""

from __future__ import annotations

from dataclasses import dataclass
import hashlib
from typing import Callable

import numpy as np

from repro.errors import ReproError
from repro.traces.events import EventBlock, concat_events, interleave_events
from repro.traces.primitives import (
    bitmask_values,
    looped_stores,
    block_copy,
    gather_scatter,
    hash_probe,
    interpreter_dispatch,
    matrix_traverse,
    pointer_chase,
    sequential_scan,
    small_int_values,
    stack_activity,
    strided_sweep,
)

# Virtual address-space layout shared by all program models.
_CODE = 0x0040_0000
_HEAP = 0x1_0000_0000
_DATA = 0x2_0000_0000
_STACK = 0x7FFF_FF00_0000

#: Base number of events at scale 1.0 and weight 1.0.
BASE_EVENTS = 24_000


@dataclass(frozen=True)
class WorkloadInfo:
    """Metadata mirroring the paper's Table 1 columns."""

    name: str
    lang: str
    kind: str  # "integer" or "floating point"
    weight: float  # relative trace size
    build: Callable[[np.random.Generator, int], EventBlock]


def _n(scale_events: int, fraction: float) -> int:
    return max(int(scale_events * fraction), 16)




def _mix(rng: np.random.Generator, blocks: list[EventBlock]) -> EventBlock:
    """Interleave phase blocks the way real programs interleave work.

    Loops from different program phases alternate at a fine grain, so many
    static instructions are simultaneously "live" — the behaviour that
    makes per-PC prediction tables (TCgen, VPC3, SBC) shine and defeats
    single-global-base schemes.  Crucially, the interleaving is *periodic*:
    a fixed schedule unit (the analog of one outer-loop iteration, with
    run lengths proportional to each phase's volume) is tiled across the
    whole mix, because real control flow repeats — an i.i.d.-random
    interleave would inject entropy no program has.
    """
    blocks = [b for b in blocks if len(b)]
    if not blocks:
        return concat_events([])
    if len(blocks) == 1:
        return blocks[0]

    lengths = np.array([len(b) for b in blocks], dtype=np.int64)
    total = int(lengths.sum())
    # One schedule unit: random run lengths (1-8 events), block choice
    # weighted by volume, fixed once and then repeated.
    unit: list[int] = []
    unit_target = min(96, total)
    weights = lengths / lengths.sum()
    while len(unit) < unit_target:
        block = int(rng.choice(len(blocks), p=weights))
        run = int(rng.integers(1, 9))
        unit.extend([block] * run)
    tiled = np.resize(np.array(unit, dtype=np.int64), total + len(unit))

    # Keep only the first len(block) occurrences of each block index, then
    # append leftovers of any block the schedule under-served.
    keep = np.ones(len(tiled), dtype=bool)
    for index, length in enumerate(lengths):
        positions = np.flatnonzero(tiled == index)
        keep[positions[length:]] = False
    pattern = tiled[keep]
    counts = np.array([(pattern == i).sum() for i in range(len(blocks))])
    tail = []
    for index, (have, want) in enumerate(zip(counts, lengths)):
        tail.extend([index] * int(want - have))
    if tail:
        pattern = np.concatenate([pattern, np.array(tail, dtype=np.int64)])
    return interleave_events(blocks, pattern)


# --- integer program models -------------------------------------------------


def _eon(rng: np.random.Generator, n: int) -> EventBlock:
    rays = strided_sweep(
        _CODE,
        _n(n, 0.2),
        [(_DATA, 24, False), (_DATA + 8, 24, False), (_DATA + 16, 24, True)],
        rng=rng,
    )
    objects = pointer_chase(_CODE + 0x100, _n(n, 0.25), _HEAP, 600, 64, rng)
    calls = stack_activity(_CODE + 0x200, _n(n, 0.15), _STACK, 48, rng)
    spills = looped_stores(
        _CODE + 0x300,
        [(_DATA + (1 << 28), 24), (_DATA + (1 << 28) + (1 << 16), 8)],
        48, max(_n(n, 0.1) // 96, 2), rng,
    )
    return _mix(rng, [rays, objects, calls, spills])


def _bzip2(rng: np.random.Generator, n: int) -> EventBlock:
    scan = sequential_scan(_CODE, _n(n, 0.4), _DATA, 1, rng, alphabet=48, run_length=6)
    copy = block_copy(_CODE + 0x40, _n(n, 0.2), _DATA, _DATA + (1 << 20), rng)
    counts = hash_probe(_CODE + 0x80, _n(n, 0.2), _HEAP, 4096, rng, store_fraction=0.5)
    return _mix(rng, [scan, copy, counts])


def _crafty(rng: np.random.Generator, n: int) -> EventBlock:
    table = hash_probe(_CODE, _n(n, 0.5), _HEAP, 1 << 15, rng, store_fraction=0.15)
    boards = table.loads
    boards.values[:] = bitmask_values(len(boards), rng, patterns=96)
    moves = stack_activity(_CODE + 0x100, _n(n, 0.3), _STACK, 32, rng)
    scans = sequential_scan(_CODE + 0x200, _n(n, 0.2), _DATA, 8, rng, alphabet=12)
    history = looped_stores(
        _CODE + 0x300,
        [(_DATA + (1 << 27), 8), (_DATA + (1 << 27) + (1 << 14), 16)],
        64, max(_n(n, 0.12) // 128, 2), rng,
    )
    return _mix(rng, [table, moves, scans, history, boards])


def _gap(rng: np.random.Generator, n: int) -> EventBlock:
    bags = hash_probe(_CODE, _n(n, 0.4), _HEAP, 1 << 13, rng, store_fraction=0.3)
    chase = pointer_chase(_CODE + 0x80, _n(n, 0.3), _HEAP + (1 << 24), 2000, 32, rng)
    arith = strided_sweep(
        _CODE + 0x180,
        _n(n, 0.15),
        [(_DATA, 8, False), (_DATA + (1 << 16), 8, True)],
        values=small_int_values(_n(n, 0.3), rng, bound=1 << 24),
    )
    return _mix(rng, [bags, chase, arith])


def _gcc(rng: np.random.Generator, n: int) -> EventBlock:
    # Many distinct code regions: gcc's PC working set is huge.
    phases = []
    for phase in range(6):
        base = _CODE + phase * 0x1000
        phases.append(
            pointer_chase(base, _n(n, 0.06), _HEAP + phase * (1 << 22), 900, 48, rng)
        )
        phases.append(
            hash_probe(base + 0x400, _n(n, 0.05), _DATA + phase * (1 << 20), 2048, rng)
        )
        phases.append(stack_activity(base + 0x800, _n(n, 0.05), _STACK, 64, rng))
        phases.append(
            looped_stores(
                base + 0xC00,
                [(_DATA + (2 + phase) * (1 << 24), 16)],
                40, max(_n(n, 0.03) // 40, 2), rng,
            )
        )
    return _mix(rng, phases)


def _gzip(rng: np.random.Generator, n: int) -> EventBlock:
    scan = sequential_scan(_CODE, _n(n, 0.45), _DATA, 1, rng, alphabet=80, run_length=4)
    window = block_copy(_CODE + 0x40, _n(n, 0.2), _DATA, _DATA + (1 << 15), rng)
    chains = hash_probe(_CODE + 0x80, _n(n, 0.15), _HEAP, 1 << 12, rng)
    return _mix(rng, [scan, window, chains])


def _mcf(rng: np.random.Generator, n: int) -> EventBlock:
    # Network-simplex pointer chasing over a large node pool dominates.
    arcs = pointer_chase(_CODE, _n(n, 0.6), _HEAP, 30_000, 64, rng, payload_loads=2)
    nodes = gather_scatter(
        _CODE + 0x100, _n(n, 0.1), _DATA, _DATA + (1 << 24), 30_000, rng
    )
    return _mix(rng, [arcs, nodes])


def _parser(rng: np.random.Generator, n: int) -> EventBlock:
    dictionary = hash_probe(_CODE, _n(n, 0.4), _HEAP, 1 << 14, rng, zipf_a=1.2)
    words = sequential_scan(_CODE + 0x80, _n(n, 0.25), _DATA, 1, rng, alphabet=26)
    links = stack_activity(_CODE + 0x100, _n(n, 0.2), _STACK, 40, rng)
    chart = looped_stores(
        _CODE + 0x180,
        [(_DATA + (1 << 26), 32), (_DATA + (1 << 26) + (1 << 18), 32)],
        56, max(_n(n, 0.1) // 112, 2), rng,
    )
    return _mix(rng, [dictionary, words, links, chart])


def _perlbmk(rng: np.random.Generator, n: int) -> EventBlock:
    interp = interpreter_dispatch(_CODE, _n(n, 0.35), _DATA, _STACK - (1 << 16), rng)
    frames = stack_activity(_CODE + 0x800, _n(n, 0.2), _STACK, 56, rng)
    strings = sequential_scan(_CODE + 0x900, _n(n, 0.1), _HEAP, 1, rng, alphabet=96)
    temps = looped_stores(
        _CODE + 0xA00,
        [(_DATA + (1 << 29), 8)],
        32, max(_n(n, 0.08) // 32, 2), rng,
    )
    return _mix(rng, [interp, frames, strings, temps])


def _twolf(rng: np.random.Generator, n: int) -> EventBlock:
    cells = gather_scatter(
        _CODE, _n(n, 0.3), _DATA, _HEAP, 4_000, rng, store_fraction=0.4
    )
    wires = hash_probe(_CODE + 0x100, _n(n, 0.25), _HEAP + (1 << 22), 2048, rng)
    anneal = strided_sweep(
        _CODE + 0x180,
        _n(n, 0.08),
        [(_DATA + (1 << 20), 16, False), (_DATA + (1 << 20) + 8, 16, True)],
        values=small_int_values(_n(n, 0.16), rng, bound=1 << 12),
    )
    return _mix(rng, [cells, wires, anneal])


def _vortex(rng: np.random.Generator, n: int) -> EventBlock:
    graph = pointer_chase(_CODE, _n(n, 0.35), _HEAP, 12_000, 128, rng, payload_loads=2)
    pages = block_copy(_CODE + 0x100, _n(n, 0.15), _DATA, _DATA + (1 << 26), rng)
    index = hash_probe(_CODE + 0x180, _n(n, 0.2), _HEAP + (1 << 28), 1 << 13, rng)
    journal = looped_stores(
        _CODE + 0x200,
        [(_DATA + (1 << 30), 64), (_DATA + (1 << 30) + (1 << 20), 8)],
        72, max(_n(n, 0.1) // 144, 2), rng,
    )
    return _mix(rng, [graph, pages, index, journal])


def _vpr(rng: np.random.Generator, n: int) -> EventBlock:
    side = max(int((n * 0.3) ** 0.5), 16)
    grid = matrix_traverse(_CODE, side, side, _DATA, rng, store_every=5)
    grid2 = matrix_traverse(_CODE + 0x40, side, side, _DATA, rng, store_every=5)
    nets = gather_scatter(_CODE + 0x80, _n(n, 0.2), _HEAP, _DATA, side * side, rng,
                          locality=256)
    return concat_events([grid, _mix(rng, [nets, grid2])])


# --- floating-point program models ------------------------------------------


def _ammp(rng: np.random.Generator, n: int) -> EventBlock:
    neighbours = gather_scatter(
        _CODE, _n(n, 0.4), _HEAP, _DATA, 50_000, rng, locality=64, store_fraction=0.25
    )
    forces = strided_sweep(
        _CODE + 0x100,
        _n(n, 0.1),
        [(_DATA, 24, False), (_DATA + 8, 24, False), (_DATA + 16, 24, True)],
        rng=rng,
    )
    return _mix(rng, [neighbours, forces])


def _art(rng: np.random.Generator, n: int) -> EventBlock:
    # Small weight matrices swept over and over: extreme reuse, tiny
    # working set — the paper's best-compressing store-address trace.
    from repro.traces.primitives import fp_values

    weights = [fp_values(60 * 6, rng) for _ in range(2)]
    passes = []
    sweeps = max(_n(n, 1.0) // (60 * 12), 2)
    for _ in range(sweeps):
        pair = [
            matrix_traverse(_CODE, 60, 6, _DATA, rng, store_every=3,
                            content=weights[0]),
            matrix_traverse(_CODE + 0x40, 60, 6, _DATA + (1 << 14), rng,
                            store_every=4, content=weights[1]),
        ]
        passes.append(_mix(rng, pair))
    return concat_events(passes)


def _equake(rng: np.random.Generator, n: int) -> EventBlock:
    sparse = gather_scatter(
        _CODE, _n(n, 0.45), _HEAP, _DATA, 40_000, rng, locality=96, store_fraction=0.2
    )
    vectors = strided_sweep(
        _CODE + 0x100,
        _n(n, 0.05),
        [(_DATA + (1 << 24), 8, False), (_DATA + (1 << 25), 8, True)],
        rng=rng,
    )
    return _mix(rng, [sparse, vectors])


def _mesa(rng: np.random.Generator, n: int) -> EventBlock:
    vertices = strided_sweep(
        _CODE,
        _n(n, 0.3),
        [(_DATA, 32, False), (_DATA + 8, 32, False), (_DATA + 16, 32, False),
         (_HEAP, 16, True)],
        rng=rng,
    )
    textures = gather_scatter(
        _CODE + 0x100, _n(n, 0.15), _HEAP + (1 << 24), _DATA + (1 << 26), 1 << 16, rng,
        locality=512, store_fraction=0.1,
    )
    return _mix(rng, [vertices, textures])


def _applu(rng: np.random.Generator, n: int) -> EventBlock:
    side = max(int((n / 3) ** 0.5), 16)
    sweeps = []
    for direction in range(3):
        sweeps.append(
            matrix_traverse(
                _CODE + direction * 0x40, side, side, _DATA + direction * (1 << 22),
                rng, column_major=direction % 2 == 1, store_every=4,
            )
        )
    return _mix(rng, sweeps)


def _apsi(rng: np.random.Generator, n: int) -> EventBlock:
    side = max(int((n / 6) ** 0.5), 16)
    layers = []
    for layer in range(4):
        layers.append(
            matrix_traverse(
                _CODE + layer * 0x40, side, side + side // 2,
                _DATA + layer * (1 << 21),
                rng, column_major=layer % 2 == 0, store_every=6,
            )
        )
    return _mix(rng, layers)


def _mgrid(rng: np.random.Generator, n: int) -> EventBlock:
    # Multigrid: the same stencil at halving resolutions, repeated.
    from repro.traces.primitives import fp_values

    levels = []
    size = max(int((n / 2.7) ** 0.5) & ~1, 16)
    grids: dict[int, object] = {}
    for _ in range(2):
        current = size
        level = 0
        while current >= 16:
            if level not in grids:
                grids[level] = fp_values(current * (current // 2), rng)
            levels.append(
                matrix_traverse(
                    _CODE + level * 0x40, current, current // 2,
                    _DATA + level * (1 << 23),
                    rng, store_every=7, content=grids[level],
                )
            )
            current //= 2
            level += 1
    return concat_events(levels)


def _sixtrack(rng: np.random.Generator, n: int) -> EventBlock:
    particles = strided_sweep(
        _CODE,
        _n(n, 0.25),
        [(_DATA, 48, False), (_DATA + 8, 48, False), (_DATA + 16, 48, False),
         (_DATA + 24, 48, True), (_DATA + 32, 48, True)],
        rng=rng,
    )
    lattice = sequential_scan(_CODE + 0x100, _n(n, 0.2), _HEAP, 8, rng, alphabet=32)
    return _mix(rng, [particles, lattice])


def _swim(rng: np.random.Generator, n: int) -> EventBlock:
    # Shallow-water: a handful of big arrays, perfectly regular.
    side = max(int((n / 6) ** 0.5), 16)
    from repro.traces.primitives import fp_values

    contents = [fp_values(side * side, rng) for _ in range(3)]
    passes = []
    for _ in range(2):
        arrays = [
            matrix_traverse(
                _CODE + array * 0x40, side, side, _DATA + array * (1 << 23),
                rng, store_every=3, content=contents[array],
            )
            for array in range(3)
        ]
        passes.append(_mix(rng, arrays))
    return concat_events(passes)


def _wupwise(rng: np.random.Generator, n: int) -> EventBlock:
    lattice = strided_sweep(
        _CODE,
        _n(n, 0.3),
        [(_DATA, 16, False), (_DATA + 8, 16, False), (_DATA + (1 << 24), 16, True)],
        rng=rng,
    )
    copies = block_copy(_CODE + 0x100, _n(n, 0.15), _DATA, _DATA + (1 << 25), rng)
    return _mix(rng, [lattice, copies])


#: The full suite, in the paper's Table 1 order.
WORKLOADS: dict[str, WorkloadInfo] = {
    info.name: info
    for info in (
        WorkloadInfo("eon", "C++", "integer", 1.0, _eon),
        WorkloadInfo("bzip2", "C", "integer", 2.0, _bzip2),
        WorkloadInfo("crafty", "C", "integer", 1.5, _crafty),
        WorkloadInfo("gap", "C", "integer", 0.9, _gap),
        WorkloadInfo("gcc", "C", "integer", 1.1, _gcc),
        WorkloadInfo("gzip", "C", "integer", 1.3, _gzip),
        WorkloadInfo("mcf", "C", "integer", 0.5, _mcf),
        WorkloadInfo("parser", "C", "integer", 1.4, _parser),
        WorkloadInfo("perlbmk", "C", "integer", 0.6, _perlbmk),
        WorkloadInfo("twolf", "C", "integer", 0.5, _twolf),
        WorkloadInfo("vortex", "C", "integer", 2.0, _vortex),
        WorkloadInfo("vpr", "C", "integer", 1.2, _vpr),
        WorkloadInfo("ammp", "C", "floating point", 1.6, _ammp),
        WorkloadInfo("art", "C", "floating point", 1.2, _art),
        WorkloadInfo("equake", "C", "floating point", 0.9, _equake),
        WorkloadInfo("mesa", "C", "floating point", 1.1, _mesa),
        WorkloadInfo("applu", "F77", "floating point", 0.6, _applu),
        WorkloadInfo("apsi", "F77", "floating point", 1.5, _apsi),
        WorkloadInfo("mgrid", "F77", "floating point", 1.8, _mgrid),
        WorkloadInfo("sixtrack", "F77", "floating point", 2.0, _sixtrack),
        WorkloadInfo("swim", "F77", "floating point", 0.6, _swim),
        WorkloadInfo("wupwise", "F77", "floating point", 1.7, _wupwise),
    )
}


def workload_names() -> list[str]:
    """All 22 workload names in Table 1 order."""
    return list(WORKLOADS)


def default_suite() -> list[str]:
    """A representative eight-workload subset used by the fast benchmarks.

    Covers both program types and every behaviour family: set
    ``REPRO_FULL_SUITE=1`` to run all 22 workloads instead.
    """
    return ["bzip2", "crafty", "gcc", "mcf", "perlbmk", "art", "equake", "swim"]


def _derive_seed(name: str, seed: int) -> int:
    digest = hashlib.sha256(f"{name}:{seed}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def generate_events(name: str, scale: float = 1.0, seed: int = 2005) -> EventBlock:
    """Run one program model and return its event stream.

    ``scale`` multiplies the event budget (1.0 gives roughly
    ``BASE_EVENTS * weight`` events); ``seed`` makes distinct but
    reproducible runs.
    """
    try:
        info = WORKLOADS[name]
    except KeyError:
        raise ReproError(
            f"unknown workload {name!r}; available: {', '.join(WORKLOADS)}"
        ) from None
    rng = np.random.default_rng(_derive_seed(name, seed))
    budget = int(BASE_EVENTS * info.weight * scale)
    return info.build(rng, budget)
