"""The paper's reference specifications.

``TCGEN_A_SPEC`` is Figure 5 — the VPC3-emulating configuration used for all
main results.  ``TCGEN_B_SPEC`` is Figure 9 — the wider TCgen(B)
configuration from the predictor-sensitivity study (Section 7.5), a strict
superset of TCgen(A).
"""

from __future__ import annotations

from repro.spec.ast import TraceSpec

#: Figure 5: the TCgen(A) specification (emulates VPC3's trace format).
TCGEN_A_SPEC = """\
TCgen Trace Specification;
32-Bit Header;
32-Bit Field 1 = {L1 = 1, L2 = 131072: FCM3[2], FCM1[2]};
64-Bit Field 2 = {L1 = 65536, L2 = 131072: DFCM3[2], DFCM1[2], FCM1[2], LV[4]};
PC = Field 1;
"""

#: Figure 9: the TCgen(B) specification (superset of TCgen(A)).
TCGEN_B_SPEC = """\
TCgen Trace Specification;
32-Bit Header;
32-Bit Field 1 = {L1 = 1, L2 = 131072: FCM3[4], FCM1[4]};
64-Bit Field 2 = {L1 = 65536, L2 = 131072: DFCM3[4], DFCM1[2], FCM1[4], LV[4]};
PC = Field 1;
"""


def tcgen_a() -> TraceSpec:
    """Parse and return the TCgen(A) specification (paper Figure 5)."""
    from repro.spec.parser import parse_spec

    return parse_spec(TCGEN_A_SPEC)


def tcgen_b() -> TraceSpec:
    """Parse and return the TCgen(B) specification (paper Figure 9)."""
    from repro.spec.parser import parse_spec

    return parse_spec(TCGEN_B_SPEC)
