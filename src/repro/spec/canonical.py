"""Canonical-form printing of trace specifications.

TCgen echoes a canonical copy of the input specification at the top of every
generated source file; that text "can directly be used as input to TCgen".
:func:`format_spec` produces that canonical form, and reparsing its output
yields a structurally identical :class:`~repro.spec.ast.TraceSpec`
(a fixpoint the test suite checks by property).
"""

from __future__ import annotations

from repro.spec.ast import FieldSpec, TraceSpec


def _format_field(field: FieldSpec) -> str:
    sizes = []
    if field.l1 is not None:
        sizes.append(f"L1 = {field.l1}")
    if field.l2 is not None:
        sizes.append(f"L2 = {field.l2}")
    preds = ", ".join(str(p) for p in field.predictors)
    inner = f"{', '.join(sizes)}: {preds}" if sizes else f": {preds}"
    return f"{field.bits}-Bit Field {field.index} = {{{inner}}};"


def format_spec(spec: TraceSpec, comments: dict[int, str] | None = None) -> str:
    """Render a specification in canonical text form.

    ``comments`` optionally maps a field number to a comment line emitted
    after that field's declaration (used by the code generators to report
    prediction counts and table sizes, as the paper describes).
    """
    lines = ["TCgen Trace Specification;"]
    if spec.header_bits:
        lines.append(f"{spec.header_bits}-Bit Header;")
    for field in spec.fields:
        lines.append(_format_field(field))
        if comments and field.index in comments:
            lines.append(f"# {comments[field.index]}")
    lines.append(f"PC = Field {spec.pc_field};")
    return "\n".join(lines) + "\n"
