"""Abstract syntax for parsed trace specifications.

These dataclasses are the contract between the parser and everything
downstream (validation, the resolved compressor model, code generation).
``L1``/``L2`` sizes keep a ``None`` marker when the user omitted them so
that the canonical printer can distinguish defaults from explicit values;
resolved sizes are exposed through :meth:`FieldSpec.l1_size` and
:meth:`FieldSpec.l2_size`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
import hashlib

#: Default first-level table size when the specification omits ``L1``.
DEFAULT_L1 = 1
#: Default second-level table size when the specification omits ``L2``
#: (the paper's 65,536-line default).
DEFAULT_L2 = 65536


class PredictorKind(str, Enum):
    """The three predictor families TCgen can emit."""

    LV = "LV"
    FCM = "FCM"
    DFCM = "DFCM"


@dataclass(frozen=True)
class PredictorSpec:
    """One predictor selection, e.g. ``DFCM3[2]`` or ``LV[4]``.

    ``order`` is the context length *x* for FCM/DFCM predictors and 0 for
    last-value predictors.  ``depth`` is the *n* in ``[n]``: how many values
    each table line retains, i.e. how many predictions the predictor makes.
    """

    kind: PredictorKind
    order: int
    depth: int

    def __str__(self) -> str:
        if self.kind is PredictorKind.LV:
            return f"LV[{self.depth}]"
        return f"{self.kind.value}{self.order}[{self.depth}]"

    @property
    def prediction_count(self) -> int:
        """How many predictions this predictor contributes per record."""
        return self.depth

    @property
    def uses_last_value(self) -> bool:
        """Whether the predictor reads the field's last-value table."""
        return self.kind in (PredictorKind.LV, PredictorKind.DFCM)

    @property
    def has_second_level(self) -> bool:
        """Whether the predictor owns a second-level (hash) table."""
        return self.kind in (PredictorKind.FCM, PredictorKind.DFCM)


@dataclass(frozen=True)
class FieldSpec:
    """One record field: width, position, table sizes, and predictors."""

    bits: int
    index: int  # 1-based field number as written in the specification
    predictors: tuple[PredictorSpec, ...]
    l1: int | None = None
    l2: int | None = None

    @property
    def l1_size(self) -> int:
        """First-level table size with the default applied."""
        return DEFAULT_L1 if self.l1 is None else self.l1

    @property
    def l2_size(self) -> int:
        """Second-level base size with the default applied."""
        return DEFAULT_L2 if self.l2 is None else self.l2

    @property
    def bytes(self) -> int:
        return self.bits // 8

    @property
    def prediction_count(self) -> int:
        """Total predictions made for this field per record."""
        return sum(p.prediction_count for p in self.predictors)


@dataclass(frozen=True)
class TraceSpec:
    """A complete parsed specification: header, fields, and the PC field."""

    header_bits: int
    fields: tuple[FieldSpec, ...]
    pc_field: int

    @property
    def header_bytes(self) -> int:
        return self.header_bits // 8

    @property
    def record_bytes(self) -> int:
        return sum(f.bytes for f in self.fields)

    def field(self, index: int) -> FieldSpec:
        """Return the field with 1-based number ``index``."""
        for f in self.fields:
            if f.index == index:
                return f
        raise KeyError(f"no field {index}")

    @property
    def pc(self) -> FieldSpec:
        """The field designated as the program counter."""
        return self.field(self.pc_field)

    def fingerprint(self) -> int:
        """Stable 64-bit fingerprint of the specification.

        Stored in every compressed blob so that decompression with a
        compressor generated from a different specification fails loudly.
        """
        from repro.spec.canonical import format_spec

        digest = hashlib.sha256(format_spec(self).encode()).digest()
        return int.from_bytes(digest[:8], "little")
