"""Recursive-descent parser for the trace-specification language.

Implements the EBNF grammar from the paper's Figure 4::

    Description = 'TCgen' 'Trace' 'Specification' ';' [Header] Field {Field} PCDef.
    Header      = Number '-' 'Bit' 'Header' ';'.
    Field       = Number '-' 'Bit' 'Field' Number '='
                  '{' [LevelSizes] ':' Predictors '}' ';'.
    LevelSizes  = LevelSize [',' LevelSize].
    LevelSize   = ('L1' '=' Number) | ('L2' '=' Number).
    Predictors  = Predictor {',' Predictor}.
    Predictor   = ('DFCM' Number '[' Number ']') | ('FCM' Number '[' Number ']')
                | ('LV' '[' Number ']').
    PCDef       = 'PC' '=' 'Field' Number ';'.

One liberalization relative to Figure 4: the ``Header`` clause may be
omitted entirely (equivalent to ``0-Bit Header;``), matching the paper's
statement that "if a trace format does not specify a header, no code to
handle a header is emitted".
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.spec.ast import FieldSpec, PredictorKind, PredictorSpec, TraceSpec
from repro.spec.lexer import tokenize
from repro.spec.tokens import Token, TokenKind
from repro.spec.validate import validate_spec


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _fail(self, message: str) -> ParseError:
        tok = self._current
        return ParseError(f"{message}, found {tok}", tok.line, tok.column)

    def _advance(self) -> Token:
        tok = self._current
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _expect_keyword(self, word: str) -> Token:
        if not self._current.is_keyword(word):
            raise self._fail(f"expected keyword {word!r}")
        return self._advance()

    def _expect_punct(self, char: str) -> Token:
        if not self._current.is_punct(char):
            raise self._fail(f"expected {char!r}")
        return self._advance()

    def _expect_number(self, what: str) -> int:
        if self._current.kind is not TokenKind.NUMBER:
            raise self._fail(f"expected {what}")
        return int(self._advance().text)

    # -- grammar productions -----------------------------------------------

    def parse_description(self) -> TraceSpec:
        self._expect_keyword("TCgen")
        self._expect_keyword("Trace")
        self._expect_keyword("Specification")
        self._expect_punct(";")

        header_bits = 0
        fields: list[FieldSpec] = []
        # A Number could open either the Header clause or a Field clause;
        # disambiguate on the keyword after 'Number - Bit'.
        while self._current.kind is TokenKind.NUMBER:
            bits = self._expect_number("a bit width")
            self._expect_punct("-")
            self._expect_keyword("Bit")
            if self._current.is_keyword("Header"):
                if fields:
                    raise self._fail("the Header clause must precede all fields")
                if header_bits:
                    raise self._fail("duplicate Header clause")
                self._advance()
                self._expect_punct(";")
                header_bits = bits
            elif self._current.is_keyword("Field"):
                self._advance()
                fields.append(self._parse_field_body(bits))
            else:
                raise self._fail("expected 'Header' or 'Field' after bit width")

        if not fields:
            raise self._fail("specification declares no fields")

        self._expect_keyword("PC")
        self._expect_punct("=")
        self._expect_keyword("Field")
        pc_field = self._expect_number("a field number")
        self._expect_punct(";")
        if self._current.kind is not TokenKind.EOF:
            raise self._fail("trailing input after PC definition")

        return TraceSpec(
            header_bits=header_bits, fields=tuple(fields), pc_field=pc_field
        )

    def _parse_field_body(self, bits: int) -> FieldSpec:
        index = self._expect_number("a field number")
        self._expect_punct("=")
        self._expect_punct("{")

        l1: int | None = None
        l2: int | None = None
        while self._current.is_keyword("L1") or self._current.is_keyword("L2"):
            which = self._advance().text
            self._expect_punct("=")
            size = self._expect_number(f"a size for {which}")
            if which == "L1":
                if l1 is not None:
                    raise self._fail("duplicate L1 size")
                l1 = size
            else:
                if l2 is not None:
                    raise self._fail("duplicate L2 size")
                l2 = size
            if self._current.is_punct(","):
                self._advance()
            else:
                break

        self._expect_punct(":")

        predictors = [self._parse_predictor()]
        while self._current.is_punct(","):
            self._advance()
            predictors.append(self._parse_predictor())

        self._expect_punct("}")
        self._expect_punct(";")
        return FieldSpec(
            bits=bits, index=index, predictors=tuple(predictors), l1=l1, l2=l2
        )

    def _parse_predictor(self) -> PredictorSpec:
        tok = self._current
        if tok.is_keyword("LV"):
            self._advance()
            self._expect_punct("[")
            depth = self._expect_number("a predictor depth")
            self._expect_punct("]")
            return PredictorSpec(PredictorKind.LV, order=0, depth=depth)
        if tok.is_keyword("FCM") or tok.is_keyword("DFCM"):
            kind = PredictorKind(self._advance().text)
            order = self._expect_number("a predictor order")
            self._expect_punct("[")
            depth = self._expect_number("a predictor depth")
            self._expect_punct("]")
            return PredictorSpec(kind, order=order, depth=depth)
        raise self._fail("expected a predictor (LV, FCM, or DFCM)")


def parse_spec(text: str, validate: bool = True) -> TraceSpec:
    """Parse specification text into a :class:`TraceSpec`.

    With ``validate`` (the default) the parsed specification is also
    semantically checked; see :func:`repro.spec.validate.validate_spec`.
    """
    spec = _Parser(tokenize(text)).parse_description()
    if validate:
        validate_spec(spec)
    return spec
