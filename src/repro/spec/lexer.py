"""Lexer for the trace-specification language.

The language is case sensitive, uses ``#`` comments to end of line, and has
three token classes: keywords, decimal numbers, and single-character
punctuation.  Predictor names written like ``DFCM3`` lex as the keyword
``DFCM`` followed by the number ``3``, matching the grammar's
``'DFCM' Number`` production.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.spec.tokens import KEYWORDS, PUNCTUATION, Token, TokenKind


def tokenize(text: str) -> list[Token]:
    """Split specification text into tokens, ending with a single EOF token.

    Raises :class:`~repro.errors.LexError` on any character or word that is
    not part of the language.
    """
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(text)

    def advance(count: int) -> None:
        nonlocal i, line, column
        for _ in range(count):
            if text[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < n:
        char = text[i]
        if char in " \t\r\n":
            advance(1)
            continue
        if char == "#":
            while i < n and text[i] != "\n":
                advance(1)
            continue
        if char in PUNCTUATION:
            tokens.append(Token(TokenKind.PUNCT, char, line, column))
            advance(1)
            continue
        if char.isdigit():
            start_line, start_column = line, column
            start = i
            while i < n and text[i].isdigit():
                advance(1)
            tokens.append(Token(TokenKind.NUMBER, text[start:i], start_line, start_column))
            continue
        if char.isalpha():
            start_line, start_column = line, column
            start = i
            while i < n and text[i].isalpha():
                advance(1)
            word = text[start:i]
            if word == "L" and i < n and text[i] in "12":
                # 'L1' / 'L2' are keywords that embed a digit.
                advance(1)
                word = text[start:i]
            if word not in KEYWORDS:
                raise LexError(f"unknown word {word!r}", start_line, start_column)
            tokens.append(Token(TokenKind.KEYWORD, word, start_line, start_column))
            continue
        raise LexError(f"unexpected character {char!r}", line, column)

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
