"""Token definitions for the trace-specification language."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    KEYWORD = auto()
    NUMBER = auto()
    PUNCT = auto()
    EOF = auto()


#: The language's case-sensitive keywords (Figure 4 of the paper).
KEYWORDS = frozenset(
    {
        "TCgen",
        "Trace",
        "Specification",
        "Bit",
        "Header",
        "Field",
        "PC",
        "L1",
        "L2",
        "LV",
        "FCM",
        "DFCM",
    }
)

#: Single-character punctuation tokens.
PUNCTUATION = frozenset(";-={}:,[]")


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_punct(self, char: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == char

    def __str__(self) -> str:
        if self.kind is TokenKind.EOF:
            return "end of input"
        return repr(self.text)
