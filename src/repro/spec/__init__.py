"""The TCgen trace-specification language.

This package implements the input language from the paper's Figure 4: a
small, case-sensitive description of a binary trace format (header plus
fixed-width record fields) together with the value predictors used to
compress each field.

Typical use::

    from repro.spec import parse_spec

    spec = parse_spec('''
        TCgen Trace Specification;
        32-Bit Header;
        32-Bit Field 1 = {L1 = 1, L2 = 131072: FCM3[2], FCM1[2]};
        64-Bit Field 2 = {L1 = 65536, L2 = 131072:
                          DFCM3[2], DFCM1[2], FCM1[2], LV[4]};
        PC = Field 1;
    ''')
"""

from repro.spec.ast import FieldSpec, PredictorKind, PredictorSpec, TraceSpec
from repro.spec.canonical import format_spec
from repro.spec.parser import parse_spec
from repro.spec.presets import TCGEN_A_SPEC, TCGEN_B_SPEC, tcgen_a, tcgen_b
from repro.spec.validate import validate_spec

__all__ = [
    "FieldSpec",
    "PredictorKind",
    "PredictorSpec",
    "TraceSpec",
    "format_spec",
    "parse_spec",
    "validate_spec",
    "TCGEN_A_SPEC",
    "TCGEN_B_SPEC",
    "tcgen_a",
    "tcgen_b",
]
