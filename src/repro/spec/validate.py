"""Semantic validation of parsed trace specifications.

The parser only checks syntax; this module enforces the rules the paper
states in Section 4:

- field widths are 8, 16, 32, or 64 bits (the smallest-sufficient-type
  machinery targets power-of-two byte widths);
- the header width is a multiple of 8;
- L1 and L2 sizes are powers of two ("to make the modulo computations
  fast");
- every field has at least one predictor;
- field numbers are consecutive starting at 1;
- the PC definition names an existing field;
- the PC field's L1 size is 1 ("no index is available and the level-one
  predictor size has to be set to one");
- FCM/DFCM orders and all predictor depths are at least 1, with sanity
  ceilings to keep table allocations bounded.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.spec.ast import FieldSpec, PredictorKind, TraceSpec

#: Widths the record machinery supports.
ALLOWED_FIELD_BITS = (8, 16, 32, 64)
#: Ceiling on FCM/DFCM order; the paper's configurations use up to 3.
MAX_ORDER = 8
#: Ceiling on predictor depth (values retained per table line).
MAX_DEPTH = 16
#: Ceiling on table line counts (2^28 lines keeps allocations sane).
MAX_TABLE_LINES = 1 << 28


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def _validate_field(field: FieldSpec, is_pc: bool) -> None:
    where = f"field {field.index}"
    if field.bits not in ALLOWED_FIELD_BITS:
        raise ValidationError(
            f"{where}: width must be one of {ALLOWED_FIELD_BITS} bits, got {field.bits}"
        )
    if not field.predictors:
        raise ValidationError(f"{where}: at least one predictor is required")
    for size, name in ((field.l1, "L1"), (field.l2, "L2")):
        if size is None:
            continue
        if not _is_power_of_two(size):
            raise ValidationError(f"{where}: {name} = {size} is not a power of two")
        if size > MAX_TABLE_LINES:
            raise ValidationError(
                f"{where}: {name} = {size} exceeds the {MAX_TABLE_LINES}-line limit"
            )
    if is_pc and field.l1_size != 1:
        raise ValidationError(
            f"{where} holds the PC, so its L1 size must be 1 (got {field.l1_size}); "
            "the PC field cannot be indexed by itself"
        )
    for pred in field.predictors:
        if pred.kind is not PredictorKind.LV:
            if not 1 <= pred.order <= MAX_ORDER:
                raise ValidationError(
                    f"{where}: {pred} order must be in 1..{MAX_ORDER}"
                )
            l2_lines = field.l2_size << (pred.order - 1)
            if l2_lines > MAX_TABLE_LINES:
                raise ValidationError(
                    f"{where}: {pred} needs an L2 table of {l2_lines} lines, "
                    f"exceeding the {MAX_TABLE_LINES}-line limit"
                )
        if not 1 <= pred.depth <= MAX_DEPTH:
            raise ValidationError(f"{where}: {pred} depth must be in 1..{MAX_DEPTH}")


def validate_spec(spec: TraceSpec) -> TraceSpec:
    """Check semantic rules; return the spec unchanged if it is valid."""
    if spec.header_bits % 8:
        raise ValidationError(
            f"header width {spec.header_bits} is not a multiple of 8 bits"
        )
    indices = [f.index for f in spec.fields]
    if indices != list(range(1, len(indices) + 1)):
        raise ValidationError(
            f"field numbers must be consecutive starting at 1, got {indices}"
        )
    if not any(f.index == spec.pc_field for f in spec.fields):
        raise ValidationError(
            f"PC definition names field {spec.pc_field}, which does not exist"
        )
    for field in spec.fields:
        _validate_field(field, is_pc=field.index == spec.pc_field)
    return spec
