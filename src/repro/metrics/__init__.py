"""Performance metrics and result tables (paper Section 6.5).

Three higher-is-better metrics, inversely normalized to the uncompressed
trace size (so they are independent of trace length, and the harmonic mean
is the natural average):

- **compression rate** = uncompressed size / compressed size (unitless);
- **decompression speed** = uncompressed size / decompression time (B/s);
- **compression speed** = uncompressed size / compression time (B/s).
"""

from repro.metrics.perf import (
    Measurement,
    ResultTable,
    harmonic_mean,
    measure,
    verify_roundtrip,
)

__all__ = [
    "Measurement",
    "ResultTable",
    "harmonic_mean",
    "measure",
    "verify_roundtrip",
]
