"""Measurement harness: run a compressor on a trace, collect the metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
import time

from repro.errors import ReproError


def harmonic_mean(values: list[float]) -> float:
    """The paper's average for inversely normalized metrics."""
    if not values:
        raise ReproError("harmonic mean of an empty list")
    if any(v <= 0 for v in values):
        raise ReproError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


@dataclass
class Measurement:
    """One (compressor, trace) measurement."""

    algorithm: str
    workload: str
    kind: str
    uncompressed_bytes: int
    compressed_bytes: int
    compress_seconds: float
    decompress_seconds: float

    @property
    def compression_rate(self) -> float:
        return self.uncompressed_bytes / self.compressed_bytes

    @property
    def compression_speed(self) -> float:
        """Bytes of original trace compressed per second."""
        return self.uncompressed_bytes / self.compress_seconds

    @property
    def decompression_speed(self) -> float:
        """Bytes of original trace regenerated per second."""
        return self.uncompressed_bytes / self.decompress_seconds


def verify_roundtrip(compressor, raw: bytes, blob: bytes) -> None:
    """The paper's post-run "diff": decompress and compare byte-for-byte."""
    out = compressor.decompress(blob)
    if out != raw:
        raise ReproError(
            f"{compressor.name}: decompressed trace differs from the original "
            f"({len(out)} vs {len(raw)} bytes)"
        )


def measure(
    compressor, raw: bytes, workload: str = "?", kind: str = "?", verify: bool = True
) -> Measurement:
    """Time one compress/decompress cycle (CPU-side, no disk I/O)."""
    start = time.perf_counter()
    blob = compressor.compress(raw)
    compress_seconds = time.perf_counter() - start

    start = time.perf_counter()
    out = compressor.decompress(blob)
    decompress_seconds = time.perf_counter() - start
    if verify and out != raw:
        raise ReproError(
            f"{compressor.name} on {workload}/{kind}: roundtrip mismatch"
        )
    return Measurement(
        algorithm=compressor.name,
        workload=workload,
        kind=kind,
        uncompressed_bytes=len(raw),
        compressed_bytes=len(blob),
        compress_seconds=max(compress_seconds, 1e-9),
        decompress_seconds=max(decompress_seconds, 1e-9),
    )


@dataclass
class ResultTable:
    """A collection of measurements with paper-style summaries."""

    measurements: list[Measurement] = field(default_factory=list)

    def add(self, measurement: Measurement) -> None:
        self.measurements.append(measurement)

    def algorithms(self) -> list[str]:
        seen: list[str] = []
        for m in self.measurements:
            if m.algorithm not in seen:
                seen.append(m.algorithm)
        return seen

    def kinds(self) -> list[str]:
        seen: list[str] = []
        for m in self.measurements:
            if m.kind not in seen:
                seen.append(m.kind)
        return seen

    def select(self, algorithm: str | None = None, kind: str | None = None):
        return [
            m
            for m in self.measurements
            if (algorithm is None or m.algorithm == algorithm)
            and (kind is None or m.kind == kind)
        ]

    def summary(self, metric: str) -> dict[tuple[str, str], float]:
        """Harmonic-mean ``metric`` per (algorithm, trace kind)."""
        result: dict[tuple[str, str], float] = {}
        for algorithm in self.algorithms():
            for kind in self.kinds():
                values = [getattr(m, metric) for m in self.select(algorithm, kind)]
                if values:
                    result[(algorithm, kind)] = harmonic_mean(values)
        return result

    def render(self, metric: str, relative_to: str | None = None) -> str:
        """Text table of harmonic means; optionally relative to one
        algorithm (the paper's figures normalize to TCgen)."""
        summary = self.summary(metric)
        kinds = self.kinds()
        algorithms = self.algorithms()
        width = max(len(a) for a in algorithms) + 2
        header = " " * width + "".join(f"{k:>24s}" for k in kinds)
        lines = [header]
        for algorithm in algorithms:
            cells = []
            for kind in kinds:
                value = summary.get((algorithm, kind))
                if value is None:
                    cells.append(f"{'-':>24s}")
                    continue
                if relative_to:
                    base = summary[(relative_to, kind)]
                    cells.append(f"{value / base:>23.3f}x")
                else:
                    cells.append(f"{value:>24.3f}")
            lines.append(f"{algorithm:<{width}s}" + "".join(cells))
        return "\n".join(lines)
