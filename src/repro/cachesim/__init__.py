"""Data-cache simulation.

The paper's cache-miss-address traces record the loads and stores that
miss in a simulated 16kB, direct-mapped, 64-byte-line, write-allocate data
cache (Section 6.3); the cache acts as a filter that distorts the access
patterns and makes the traces harder to compress.  This package provides
that simulator: a vectorized direct-mapped model for bulk trace filtering
and a general set-associative model with LRU/FIFO replacement for
finer-grained experiments.
"""

from repro.cachesim.cache import (
    CacheConfig,
    DirectMappedCache,
    SetAssociativeCache,
    PAPER_CACHE,
)

__all__ = [
    "CacheConfig",
    "DirectMappedCache",
    "SetAssociativeCache",
    "PAPER_CACHE",
]
