"""Set-associative and direct-mapped cache models."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a cache: total size, line size, and associativity."""

    size_bytes: int
    line_bytes: int
    ways: int = 1

    def __post_init__(self) -> None:
        for name, value in (
            ("size_bytes", self.size_bytes),
            ("line_bytes", self.line_bytes),
            ("ways", self.ways),
        ):
            if not _is_power_of_two(value):
                raise ReproError(f"cache {name} must be a power of two, got {value}")
        if self.size_bytes < self.line_bytes * self.ways:
            raise ReproError("cache smaller than one set")

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def line_bits(self) -> int:
        return self.line_bytes.bit_length() - 1

    @property
    def set_bits(self) -> int:
        return self.sets.bit_length() - 1


#: The paper's configuration: 16kB, direct-mapped, 64-byte lines,
#: write-allocate (Section 6.3).
PAPER_CACHE = CacheConfig(size_bytes=16 * 1024, line_bytes=64, ways=1)


class DirectMappedCache:
    """A direct-mapped, write-allocate cache with vectorized filtering.

    Because a direct-mapped set holds exactly one line, an access misses
    iff it is the first touch of its set or the previous access to the
    same set carried a different tag.  That property lets
    :meth:`miss_mask` classify a whole access sequence with numpy
    (sort-by-set, compare neighbours, scatter back) instead of a per-access
    Python loop.
    """

    def __init__(self, config: CacheConfig = PAPER_CACHE) -> None:
        if config.ways != 1:
            raise ReproError("DirectMappedCache requires ways == 1")
        self.config = config
        self._tags = np.full(config.sets, -1, dtype=np.int64)

    def reset(self) -> None:
        self._tags.fill(-1)

    def miss_mask(self, addresses: np.ndarray) -> np.ndarray:
        """Boolean mask: True where the access misses (updates cache state)."""
        config = self.config
        addresses = np.asarray(addresses, dtype=np.uint64)
        lines = addresses >> np.uint64(config.line_bits)
        sets = (lines & np.uint64(config.sets - 1)).astype(np.int64)
        tags = (lines >> np.uint64(config.set_bits)).astype(np.int64)

        n = len(addresses)
        if n == 0:
            return np.zeros(0, dtype=bool)
        order = np.lexsort((np.arange(n), sets))
        sorted_sets = sets[order]
        sorted_tags = tags[order]

        # Previous tag within the same set; the first access of each set
        # compares against the resident tag carried over from before.
        prev_tags = np.empty(n, dtype=np.int64)
        prev_tags[1:] = sorted_tags[:-1]
        first_of_set = np.empty(n, dtype=bool)
        first_of_set[0] = True
        first_of_set[1:] = sorted_sets[1:] != sorted_sets[:-1]
        prev_tags[first_of_set] = self._tags[sorted_sets[first_of_set]]

        sorted_miss = sorted_tags != prev_tags
        misses = np.empty(n, dtype=bool)
        misses[order] = sorted_miss

        # Persist the final resident tag of every touched set.
        last_of_set = np.empty(n, dtype=bool)
        last_of_set[-1] = True
        last_of_set[:-1] = sorted_sets[1:] != sorted_sets[:-1]
        self._tags[sorted_sets[last_of_set]] = sorted_tags[last_of_set]
        return misses

    def access(self, address: int) -> bool:
        """Single access; returns True on a miss."""
        return bool(self.miss_mask(np.array([address], dtype=np.uint64))[0])


class SetAssociativeCache:
    """A general set-associative cache with LRU or FIFO replacement.

    Sequential (per-access) implementation; use :class:`DirectMappedCache`
    for bulk filtering when associativity is one.
    """

    def __init__(self, config: CacheConfig, policy: str = "lru") -> None:
        if policy not in ("lru", "fifo"):
            raise ReproError(f"unknown replacement policy {policy!r}")
        self.config = config
        self.policy = policy
        # Each set is an ordered list of tags, most recent first.
        self._sets: list[list[int]] = [[] for _ in range(config.sets)]
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.config.sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access one address; returns True on a miss."""
        config = self.config
        line = address >> config.line_bits
        set_index = line & (config.sets - 1)
        tag = line >> config.set_bits
        entries = self._sets[set_index]
        if tag in entries:
            self.hits += 1
            if self.policy == "lru":
                entries.remove(tag)
                entries.insert(0, tag)
            return False
        self.misses += 1
        entries.insert(0, tag)
        if len(entries) > config.ways:
            entries.pop()
        return True

    def miss_mask(self, addresses) -> np.ndarray:
        """Per-access miss mask (sequential loop)."""
        return np.array([self.access(int(a)) for a in addresses], dtype=bool)

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
