"""Codec registry for the post-compression stage."""

from __future__ import annotations

import bz2
from dataclasses import dataclass
import lzma
from typing import Callable
import zlib

from repro.errors import CompressedFormatError


@dataclass(frozen=True)
class Codec:
    """A general-purpose stream compressor with a stable wire id.

    ``fresh_decompressor`` builds a new incremental decompressor object
    (with a ``decompress(data, max_length)`` method) so callers can bound
    output size; ``None`` for codecs that cannot expand (identity).
    """

    codec_id: int
    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]
    fresh_decompressor: "Callable[[], object] | None" = None


_CODECS = (
    Codec(0, "identity", lambda data: data, lambda data: data),
    # The paper's choice: BZIP2 1.0.2 with --best (compresslevel 9).
    Codec(
        1,
        "bzip2",
        lambda data: bz2.compress(data, 9),
        bz2.decompress,
        bz2.BZ2Decompressor,
    ),
    Codec(
        2,
        "zlib",
        lambda data: zlib.compress(data, 9),
        zlib.decompress,
        zlib.decompressobj,
    ),
    Codec(3, "lzma", lzma.compress, lzma.decompress, lzma.LZMADecompressor),
)

_BY_ID = {codec.codec_id: codec for codec in _CODECS}
_BY_NAME = {codec.name: codec for codec in _CODECS}


def available_codecs() -> tuple[str, ...]:
    """Names of all registered codecs."""
    return tuple(_BY_NAME)


def codec_by_name(name: str) -> Codec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise CompressedFormatError(
            f"unknown codec {name!r}; available: {', '.join(_BY_NAME)}"
        ) from None


def codec_by_id(codec_id: int) -> Codec:
    try:
        return _BY_ID[codec_id]
    except KeyError:
        raise CompressedFormatError(f"unknown codec id {codec_id}") from None


def decompress_bounded(codec: Codec, data: bytes, max_output: int) -> bytes:
    """Decompress ``data``, refusing to produce more than ``max_output`` bytes.

    Container metadata declares each stream's decompressed length before
    the payload; decompressing with that declaration as a hard output cap
    means a hostile payload (a "decompression bomb" whose few stored bytes
    expand to gigabytes) fails with :class:`CompressedFormatError` after
    allocating at most ``max_output + 1`` bytes, instead of exhausting
    memory first and being length-checked after.
    """
    if codec.fresh_decompressor is None:
        if len(data) > max_output:
            raise CompressedFormatError(
                f"{codec.name} stream holds {len(data)} bytes, "
                f"more than the declared {max_output}"
            )
        return bytes(data)
    decomp = codec.fresh_decompressor()
    budget = max_output + 1
    out = bytearray(decomp.decompress(data, budget))
    while len(out) < budget:
        # zlib parks unconsumed input in .unconsumed_tail; bz2/lzma signal
        # pending output via needs_input=False before eof.
        tail = getattr(decomp, "unconsumed_tail", b"")
        if tail:
            chunk = decomp.decompress(tail, budget - len(out))
        elif not getattr(decomp, "eof", True) and not getattr(decomp, "needs_input", True):
            chunk = decomp.decompress(b"", budget - len(out))
        else:
            break
        if not chunk:
            break
        out += chunk
    if len(out) > max_output:
        raise CompressedFormatError(
            f"{codec.name} stream decompressed past its declared "
            f"{max_output}-byte length"
        )
    return bytes(out)
