"""Codec registry for the post-compression stage."""

from __future__ import annotations

import bz2
import lzma
import zlib
from dataclasses import dataclass
from typing import Callable

from repro.errors import CompressedFormatError


@dataclass(frozen=True)
class Codec:
    """A general-purpose stream compressor with a stable wire id."""

    codec_id: int
    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]


_CODECS = (
    Codec(0, "identity", lambda data: data, lambda data: data),
    # The paper's choice: BZIP2 1.0.2 with --best (compresslevel 9).
    Codec(1, "bzip2", lambda data: bz2.compress(data, 9), bz2.decompress),
    Codec(2, "zlib", lambda data: zlib.compress(data, 9), zlib.decompress),
    Codec(3, "lzma", lzma.compress, lzma.decompress),
)

_BY_ID = {codec.codec_id: codec for codec in _CODECS}
_BY_NAME = {codec.name: codec for codec in _CODECS}


def available_codecs() -> tuple[str, ...]:
    """Names of all registered codecs."""
    return tuple(_BY_NAME)


def codec_by_name(name: str) -> Codec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise CompressedFormatError(
            f"unknown codec {name!r}; available: {', '.join(_BY_NAME)}"
        ) from None


def codec_by_id(codec_id: int) -> Codec:
    try:
        return _BY_ID[codec_id]
    except KeyError:
        raise CompressedFormatError(f"unknown codec id {codec_id}") from None
