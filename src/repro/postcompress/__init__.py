"""Pluggable general-purpose post-compressors.

TCgen's first stage converts a trace into highly compressible streams; a
general-purpose compressor then squeezes each stream.  The paper uses BZIP2
but notes "users are free to select any other algorithm" — this registry
provides bzip2 (the default), zlib, lzma, and an identity codec, each with
a stable one-byte codec id stored per stream in the container.
"""

from repro.postcompress.codecs import (
    Codec,
    available_codecs,
    codec_by_id,
    codec_by_name,
    decompress_bounded,
)

__all__ = [
    "Codec",
    "available_codecs",
    "codec_by_id",
    "codec_by_name",
    "decompress_bounded",
]
