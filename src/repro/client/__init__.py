"""Synchronous client for the trace-compression service.

:class:`TraceClient` speaks the framed protocol of
:mod:`repro.server.protocol` over a plain TCP socket.  It is built for
the service's robustness contract:

- **connect retries** — bounded exponential backoff on refused/ dropped
  connections (the server may still be starting, or mid-restart);
- **backpressure retries** — a ``backpressure`` error frame carries the
  server's retry-after hint; the client sleeps (at least the hint,
  growing exponentially across consecutive rejections) and resubmits,
  up to ``retries`` attempts, then raises
  :class:`~repro.errors.BackpressureError`;
- **typed errors** — every other error frame is raised as the same
  exception type the local library would have raised
  (:class:`~repro.errors.ChecksumError` for a corrupt v3 section, and
  so on), so calling code cannot tell a remote decode from a local one;
- **streaming** — payloads move in bounded DATA frames both ways;
  :meth:`compress_stream`/:meth:`decompress_stream` pipe file objects
  without materializing the input *and* output at once;
- **worker awareness** — against a ``tcgen-serve`` worker pool, each
  response carries the answering worker's id; the client records it
  (:attr:`TraceClient.last_worker_id`) and counts reconnects that
  landed on a different worker (:attr:`TraceClient.worker_switches`),
  which is how tests and operators observe crash-failover actually
  happening.  A reconnect after a mid-request worker crash resubmits
  the request wholesale — ops are pure, so whichever worker the kernel
  hands the new connection to produces byte-identical results.

Usage::

    from repro.client import TraceClient
    from repro.spec.presets import TCGEN_A_SPEC

    with TraceClient("127.0.0.1", 8737) as client:
        blob = client.compress(TCGEN_A_SPEC, raw, chunk_records="auto")
        assert client.decompress(TCGEN_A_SPEC, blob) == raw

Deadlines are cooperative: pass ``deadline=seconds`` per call and the
server aborts the work at the next chunk boundary once it fires,
answering with a ``deadline_exceeded`` error frame (raised here as
:class:`~repro.errors.DeadlineExceededError`) while the connection stays
usable.
"""

from __future__ import annotations

import socket
import time
from typing import BinaryIO, Callable, Iterable

from repro.errors import (
    BackpressureError,
    ProtocolError,
    ServiceUnavailableError,
    StreamClosedError,
)
from repro.server import protocol
from repro.server.protocol import (
    DEFAULT_PORT,
    RequestHeader,
    decode_json_payload,
    encode_frame,
    encode_json_frame,
    exception_for,
    report_from_dict,
)
from repro.streaming import StreamWatermark
from repro.tio.container import DecodeReport

__all__ = ["RemoteStream", "TraceClient", "DEFAULT_PORT"]

#: File-object streaming reads use this chunk size (one DATA frame each).
_STREAM_CHUNK = protocol.DATA_CHUNK


class TraceClient:
    """A connection to a ``tcgen-serve`` daemon (context-managed).

    ``retries`` bounds *extra* attempts after the first, applied
    independently to connection establishment and backpressure
    rejections.  ``backoff`` is the starting delay, doubling per
    consecutive failure and capped at ``max_backoff``; a server-supplied
    retry-after hint is respected when larger.  ``io_timeout`` bounds
    every socket operation so a hung server surfaces as
    :class:`~repro.errors.ServiceUnavailableError` instead of a stuck
    process.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        connect_timeout: float = 5.0,
        io_timeout: float = 120.0,
        retries: int = 5,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._sock: socket.socket | None = None
        self._next_id = 1
        #: Reused DATA frame-header buffer (one allocation per client,
        #: not one ``header + chunk`` concatenation per 256 KiB frame).
        self._scratch = bytearray(protocol.HEADER_SIZE)
        #: Worker id that answered the most recent request (``None``
        #: against a single-process daemon or before the first response).
        self.last_worker_id: int | None = None
        #: Responses that came from a different worker than the previous
        #: one — failovers observed by this client.
        self.worker_switches = 0

    # -- connection management ----------------------------------------------

    def __enter__(self) -> "TraceClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def _sleep(self, attempt: int, floor: float = 0.0) -> None:
        delay = min(self.backoff * (2**attempt), self.max_backoff)
        delay = max(delay, floor)
        if delay > 0:
            time.sleep(delay)

    def connect(self) -> None:
        """Open the connection, retrying with exponential backoff."""
        if self._sock is not None:
            return
        last: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
                sock.settimeout(self.io_timeout)
                self._sock = sock
                return
            except OSError as exc:
                last = exc
                if attempt < self.retries:
                    self._sleep(attempt)
        raise ServiceUnavailableError(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.retries + 1} attempts: {last}"
        )

    # -- frame I/O -----------------------------------------------------------

    def _recv_exact(self, length: int) -> bytes:
        assert self._sock is not None
        chunks = []
        remaining = length
        while remaining:
            try:
                piece = self._sock.recv(min(remaining, 1 << 16))
            except socket.timeout as exc:
                raise ServiceUnavailableError(
                    f"server did not respond within {self.io_timeout}s"
                ) from exc
            if not piece:
                raise ConnectionError("server closed the connection mid-frame")
            chunks.append(piece)
            remaining -= len(piece)
        return b"".join(chunks)

    def _read_frame(self) -> tuple[int, bytes]:
        frame_type, length = protocol.decode_header(
            self._recv_exact(protocol.HEADER_SIZE)
        )
        payload = self._recv_exact(length) if length else b""
        return frame_type, payload

    def _send(self, data: bytes) -> None:
        assert self._sock is not None
        try:
            self._sock.sendall(data)
        except socket.timeout as exc:
            raise ServiceUnavailableError(
                f"server did not accept data within {self.io_timeout}s"
            ) from exc

    def _send_data_frames(self, chunk: bytes) -> None:
        """Stream ``chunk`` as DATA frames without copying it.

        The frame header is packed into the reused scratch buffer and
        handed to ``sendmsg`` alongside a memoryview slice of the chunk
        (scatter-gather: two buffers, one syscall, zero concatenation).
        Falls back to two ``sendall`` calls where ``sendmsg`` is missing.
        """
        sock = self._sock
        assert sock is not None
        scratch = self._scratch
        view = memoryview(chunk)
        use_sendmsg = hasattr(sock, "sendmsg")
        try:
            for start in range(0, len(chunk), protocol.DATA_CHUNK):
                piece = view[start : start + protocol.DATA_CHUNK]
                protocol.pack_header_into(scratch, protocol.DATA, len(piece))
                if not use_sendmsg:
                    sock.sendall(scratch)
                    sock.sendall(piece)
                    continue
                sent = sock.sendmsg([scratch, piece])
                expected = protocol.HEADER_SIZE + len(piece)
                if sent < expected:  # partial scatter-gather send
                    if sent < protocol.HEADER_SIZE:
                        sock.sendall(scratch[sent:])
                        sock.sendall(piece)
                    else:
                        sock.sendall(piece[sent - protocol.HEADER_SIZE :])
        except socket.timeout as exc:
            raise ServiceUnavailableError(
                f"server did not accept data within {self.io_timeout}s"
            ) from exc

    # -- the request state machine ------------------------------------------

    def _note_worker(self, header: dict) -> None:
        worker = header.get("worker")
        if not isinstance(worker, int):
            return
        if self.last_worker_id is not None and worker != self.last_worker_id:
            self.worker_switches += 1
        self.last_worker_id = worker

    def _raise_error(self, payload: bytes) -> None:
        header = decode_json_payload(payload)
        self._note_worker(header)
        raise exception_for(
            str(header.get("code", "internal")),
            str(header.get("message", "unknown server error")),
            header.get("retry_after_ms"),
        )

    def _read_result_payload(
        self, declared: int, sink: Callable[[bytes], None]
    ) -> int:
        total = 0
        while True:
            frame_type, data = self._read_frame()
            if frame_type == protocol.END:
                break
            if frame_type != protocol.DATA:
                raise ProtocolError(
                    f"expected DATA or END from server, got type {frame_type}"
                )
            total += len(data)
            sink(data)
        if total != declared:
            raise ProtocolError(
                f"server declared {declared} response bytes but sent {total}"
            )
        return total

    def _attempt(
        self,
        op: str,
        params: dict,
        payload_chunks: Iterable[bytes],
        payload_size: int | None,
        deadline: float | None,
        sink: Callable[[bytes], None],
    ) -> dict:
        self.connect()
        request_id = self._next_id
        self._next_id += 1
        header = RequestHeader(
            op=op,
            request_id=request_id,
            payload_size=payload_size,
            deadline_ms=None if deadline is None else max(1, int(deadline * 1000)),
            params=params,
        )
        self._send(header.encode())
        # Every op except health/metrics does the CONTINUE handshake, even
        # for an empty payload (the server reads DATA frames until END).
        if op not in protocol.PAYLOADLESS_OPS:
            frame_type, frame_payload = self._read_frame()
            if frame_type == protocol.ERROR:
                self._raise_error(frame_payload)
            if frame_type != protocol.CONTINUE:
                raise ProtocolError(
                    f"expected CONTINUE or ERROR, got frame type {frame_type}"
                )
            for chunk in payload_chunks:
                self._send_data_frames(chunk)
            self._send(encode_frame(protocol.END))
        frame_type, frame_payload = self._read_frame()
        if frame_type == protocol.ERROR:
            self._raise_error(frame_payload)
        if frame_type != protocol.RESPONSE:
            raise ProtocolError(
                f"expected RESPONSE or ERROR, got frame type {frame_type}"
            )
        response = decode_json_payload(frame_payload)
        self._note_worker(response)
        declared = response.get("payload_size", 0)
        if not isinstance(declared, int) or declared < 0:
            raise ProtocolError(f"bad response payload_size {declared!r}")
        self._read_result_payload(declared, sink)
        meta = response.get("meta") or {}
        if not isinstance(meta, dict):
            raise ProtocolError("response meta must be a JSON object")
        return meta

    def _request(
        self,
        op: str,
        params: dict,
        payload: bytes | None = b"",
        *,
        deadline: float | None = None,
        payload_chunks: Iterable[bytes] | None = None,
        payload_size: int | None = 0,
        sink: Callable[[bytes], None] | None = None,
    ) -> tuple[dict, bytes]:
        """One request with backpressure/reconnect retries.

        Retrying a request wholesale is safe because every op is pure:
        the server holds no per-request state once it has answered (or
        failed to).  Streamed payloads (``payload_chunks``) are retried
        only when the chunk source is re-iterable; one-shot streams
        surface the error instead.
        """
        if payload is not None:
            payload_chunks = (payload,)
            payload_size = len(payload)
        assert payload_chunks is not None
        collected: list[bytes] = []
        out_sink = sink or collected.append
        backpressure_attempt = 0
        connection_attempt = 0
        while True:
            try:
                meta = self._attempt(
                    op, params, payload_chunks, payload_size, deadline, out_sink
                )
                return meta, b"".join(collected)
            except BackpressureError as exc:
                if backpressure_attempt >= self.retries or sink is not None:
                    raise
                collected.clear()
                self._sleep(backpressure_attempt, floor=exc.retry_after)
                backpressure_attempt += 1
            except (ConnectionError, OSError):
                # Dropped mid-request: reconnect and resubmit (pure ops).
                self.close()
                if connection_attempt >= self.retries or sink is not None:
                    raise
                collected.clear()
                self._sleep(connection_attempt)
                connection_attempt += 1

    # -- public ops ----------------------------------------------------------

    def compress(
        self,
        spec_text: str,
        raw: bytes,
        *,
        chunk_records: int | str | None = None,
        codec: str = "bzip2",
        workers: int | None = None,
        deadline: float | None = None,
    ) -> bytes:
        """Compress ``raw`` remotely; bytes are identical to a local
        :class:`~repro.runtime.engine.TraceEngine` with the same options."""
        params: dict = {"spec": spec_text, "codec": codec}
        if chunk_records is not None:
            params["chunk_records"] = chunk_records
        if workers is not None:
            params["workers"] = workers
        _, blob = self._request("compress", params, raw, deadline=deadline)
        return blob

    def decompress(
        self,
        spec_text: str,
        blob: bytes,
        *,
        codec: str = "bzip2",
        workers: int | None = None,
        deadline: float | None = None,
    ) -> bytes:
        """Strict remote decode; corruption raises the same typed errors
        as a local decode (:class:`~repro.errors.ChecksumError`, ...)."""
        params: dict = {"spec": spec_text, "codec": codec}
        if workers is not None:
            params["workers"] = workers
        _, raw = self._request("decompress", params, blob, deadline=deadline)
        return raw

    def salvage(
        self,
        spec_text: str,
        blob: bytes,
        *,
        codec: str = "bzip2",
        deadline: float | None = None,
    ) -> tuple[bytes, DecodeReport]:
        """Best-effort remote decode: every intact chunk, plus the report."""
        params = {"spec": spec_text, "codec": codec}
        meta, raw = self._request("salvage", params, blob, deadline=deadline)
        report = report_from_dict(meta.get("report") or {})
        return raw, report

    def analyze(
        self,
        raw: bytes,
        *,
        budget_bytes: int = 64 << 20,
        deadline: float | None = None,
    ) -> tuple[str, str]:
        """Remote trace analysis: ``(statistics text, recommended spec)``."""
        meta, text = self._request(
            "analyze", {"budget_bytes": budget_bytes}, raw, deadline=deadline
        )
        return text.decode(), str(meta.get("recommended_spec", ""))

    def query(
        self,
        spec_text: str,
        blob: bytes,
        where: str | None = None,
        *,
        op: str = "select",
        limit: int | None = None,
        mode: str = "strict",
        codec: str = "bzip2",
        deadline: float | None = None,
    ) -> tuple[dict, bytes]:
        """Predicate-pushdown query over a compressed container.

        Returns ``(meta, payload)``: ``meta`` carries the match count and
        the planner's chunk statistics (``decoded_chunks``,
        ``skipped_chunks``, ...); for ``op="select"`` the payload is the
        matching records packed as raw little-endian record bytes (see
        :func:`repro.query.records_to_bytes`), otherwise empty.
        """
        params: dict = {"spec": spec_text, "codec": codec, "op": op, "mode": mode}
        if where is not None:
            params["where"] = where
        if limit is not None:
            params["limit"] = limit
        return self._request("query", params, blob, deadline=deadline)

    def health(self) -> dict:
        """Liveness + a flat snapshot of server counters."""
        meta, _ = self._request("health", {}, b"")
        return meta

    def metrics_text(self) -> str:
        """The server's Prometheus text exposition."""
        _, payload = self._request("metrics", {}, b"")
        return payload.decode()

    # -- streaming helpers ---------------------------------------------------

    def compress_stream(
        self,
        spec_text: str,
        source: BinaryIO,
        destination: BinaryIO,
        *,
        chunk_records: int | str | None = "auto",
        codec: str = "bzip2",
        deadline: float | None = None,
    ) -> int:
        """Compress a file object into another without buffering either side.

        The upload is streamed with an undeclared size (the server
        enforces its payload cap cumulatively) and the result is written
        to ``destination`` as DATA frames arrive.  Returns the number of
        compressed bytes written.  Not retried on backpressure — the
        source may not be re-readable; wrap in your own retry if it is.
        """
        params: dict = {"spec": spec_text, "codec": codec}
        if chunk_records is not None:
            params["chunk_records"] = chunk_records
        written = 0

        def sink(data: bytes) -> None:
            nonlocal written
            destination.write(data)
            written += len(data)

        self._request(
            "compress",
            params,
            None,
            payload_chunks=iter(lambda: source.read(_STREAM_CHUNK), b""),
            payload_size=None,
            deadline=deadline,
            sink=sink,
        )
        return written

    def decompress_stream(
        self,
        spec_text: str,
        source: BinaryIO,
        destination: BinaryIO,
        *,
        codec: str = "bzip2",
        deadline: float | None = None,
    ) -> int:
        """Strict decode of a container file object into ``destination``."""
        written = 0

        def sink(data: bytes) -> None:
            nonlocal written
            destination.write(data)
            written += len(data)

        self._request(
            "decompress",
            {"spec": spec_text, "codec": codec},
            None,
            payload_chunks=iter(lambda: source.read(_STREAM_CHUNK), b""),
            payload_size=None,
            deadline=deadline,
            sink=sink,
        )
        return written

    # -- streaming ingestion -------------------------------------------------

    def open_stream(
        self,
        spec_text: str,
        stream_id: str,
        *,
        codec: str = "bzip2",
        chunk_records: int | None = None,
        fsync: bool | None = None,
        max_records: int | None = None,
        max_bytes: int | None = None,
        max_latency_ms: int | None = None,
        deadline: float | None = None,
    ) -> "RemoteStream":
        """Open (or resume) a durable server-side stream (see
        :class:`RemoteStream`).

        ``stream_id`` names the archive under the server's stream
        directory; reopening the same id resumes its durable prefix.  The
        ``max_*`` knobs set the server-side flush policy; without them the
        stream flushes on explicit :meth:`RemoteStream.flush` calls and
        when a chunk fills.  ``deadline`` bounds the whole session
        (server default 300 s) — long-lived producers should pass a
        larger one and expect to resume across it.
        """
        params: dict = {"spec": spec_text, "codec": codec, "stream": stream_id}
        if chunk_records is not None:
            params["chunk_records"] = chunk_records
        if fsync is not None:
            params["fsync"] = bool(fsync)
        for name, value in (
            ("max_records", max_records),
            ("max_bytes", max_bytes),
            ("max_latency_ms", max_latency_ms),
        ):
            if value is not None:
                params[name] = value
        from repro.spec import parse_spec

        spec = parse_spec(spec_text)
        header_bytes = spec.header_bits // 8
        record_bytes = sum(f.bits for f in spec.fields) // 8
        return RemoteStream(self, params, deadline, header_bytes, record_bytes)


def _watermark_from(data: dict) -> StreamWatermark:
    return StreamWatermark(
        records=int(data.get("records", 0)),
        bytes=int(data.get("bytes", 0)),
        chunks=int(data.get("chunks", 0)),
    )


class RemoteStream:
    """A crash-safe ``stream-compress`` session (create via
    :meth:`TraceClient.open_stream`).

    The writer appends raw trace bytes and drives durability with
    :meth:`flush`: every flush is acked by the server with the durable
    watermark — records at or below it survive any subsequent crash of
    the server *or* this client.  Raw bytes past the last acked
    watermark are retained locally; when the connection drops (worker
    crash, network, server drain) the next operation transparently
    reconnects, reopens the stream (the server recovers the durable
    prefix and reports its watermark), replays exactly the unacked
    suffix, and carries on.  Because chunk-frame boundaries are set by
    flush positions, a resumed run that flushes at the same record
    counts produces a byte-identical archive to an uninterrupted one.

    On first open against an already-populated stream the server's
    recovered watermark becomes the starting position: check
    :attr:`skip_bytes` and skip that many bytes of your source before
    appending the rest.

    ``close()`` seals the archive with its trailer; ``detach()`` ends
    the session leaving the stream open for a later writer.
    """

    def __init__(
        self,
        client: TraceClient,
        params: dict,
        deadline: float | None,
        header_bytes: int,
        record_bytes: int,
    ) -> None:
        self._client = client
        self._params = params
        self._deadline_ms = (
            None if deadline is None else max(1, int(deadline * 1000))
        )
        self._header_bytes = header_bytes
        self._record_bytes = record_bytes
        #: Logical position: total raw bytes this stream holds, counting
        #: everything durable on the server plus everything appended here.
        self._appended = 0
        #: The unacked suffix of the logical stream, kept for replay.
        self._buffer = bytearray()
        self._acked = StreamWatermark(0, 0, 0)
        self.closed = False
        #: True when the server recovered an existing archive at open.
        self.resumed = False
        #: Times the session was re-established after a drop (0 = the
        #: initial open never failed over); tests read this to assert a
        #: failover actually happened.
        self.reconnects = -1
        self._open()
        #: Logical bytes already durable when this writer attached —
        #: skip this many source bytes before appending.
        self.skip_bytes = self._appended

    # -- positions -----------------------------------------------------------

    @property
    def acked(self) -> StreamWatermark:
        """The last durable watermark the server acked."""
        return self._acked

    @property
    def unacked_bytes(self) -> int:
        """Raw bytes buffered locally awaiting a durable ack."""
        return len(self._buffer)

    def _logical_durable(self, mark: StreamWatermark) -> int:
        """Map a server watermark onto a logical raw-byte position."""
        if mark.bytes <= 0:
            return 0
        # A non-empty archive always holds the prologue, hence the header.
        return self._header_bytes + mark.records * self._record_bytes

    # -- session establishment ----------------------------------------------

    def _open(self) -> None:
        """Open the session, retrying busy/unreachable servers."""
        attempt = 0
        while True:
            try:
                self._client.connect()
                self._handshake()
                self.reconnects += 1
                return
            except BackpressureError as exc:
                # Queue full, or the stream lock is held by a session the
                # server has not reaped yet (our own previous one).
                if attempt >= self._client.retries:
                    raise
                self._client._sleep(attempt, floor=exc.retry_after)
            except (ConnectionError, OSError, ServiceUnavailableError):
                self._client.close()
                if attempt >= self._client.retries:
                    raise
                self._client._sleep(attempt)
            attempt += 1

    def _handshake(self) -> None:
        client = self._client
        request_id = client._next_id
        client._next_id += 1
        header = RequestHeader(
            op="stream-compress",
            request_id=request_id,
            payload_size=None,
            deadline_ms=self._deadline_ms,
            params=self._params,
        )
        client._send(header.encode())
        frame_type, payload = client._read_frame()
        if frame_type == protocol.ERROR:
            client._raise_error(payload)
        if frame_type != protocol.CONTINUE:
            raise ProtocolError(
                f"expected CONTINUE or ERROR, got frame type {frame_type}"
            )
        hello = decode_json_payload(payload)
        client._note_worker(hello)
        self.resumed = bool(hello.get("resumed"))
        mark = _watermark_from(hello.get("watermark") or {})
        durable = self._logical_durable(mark)
        start = self._appended - len(self._buffer)
        if self.reconnects < 0:
            # First open: adopt the server's recovered position wholesale.
            self._appended = durable
        elif durable < start:
            raise ProtocolError(
                f"server stream lost acked data: durable through byte "
                f"{durable}, but bytes before {start} were already acked"
            )
        elif durable > self._appended:
            raise ProtocolError(
                f"server stream is ahead of this writer (byte {durable} "
                f"> {self._appended}): another producer wrote it"
            )
        else:
            # Drop what the server already holds; keep the rest for replay.
            del self._buffer[: durable - start]
        self._acked = mark
        if self._buffer:
            client._send_data_frames(bytes(self._buffer))

    def _reconnect(self) -> None:
        """Reopen after a drop, tolerating a close that already landed."""
        self._client.close()
        try:
            self._open()
        except StreamClosedError:
            # The trailer hit the disk before the connection died: the
            # stream is complete and every appended record is durable.
            records = max(
                0, (self._appended - self._header_bytes) // self._record_bytes
            )
            self._acked = StreamWatermark(
                records=records, bytes=self._acked.bytes, chunks=self._acked.chunks
            )
            self._buffer.clear()
            self.closed = True

    # -- the write path ------------------------------------------------------

    def append(self, data: bytes) -> None:
        """Buffer and send raw trace bytes (not yet durable — see
        :meth:`flush`)."""
        if self.closed:
            raise ValueError("stream is closed")
        if not data:
            return
        self._appended += len(data)
        self._buffer += data
        try:
            self._client._send_data_frames(data)
        except (ConnectionError, OSError, ServiceUnavailableError):
            self._reconnect()

    def flush(self) -> StreamWatermark:
        """Make everything appended durable; returns the acked watermark."""
        return self._flush(close=False)

    def close(self) -> StreamWatermark:
        """Flush, seal the archive with its trailer, and end the session."""
        if self.closed:
            return self._acked
        mark = self._flush(close=True)
        self.closed = True
        self._finish_session()
        return mark

    def detach(self) -> StreamWatermark:
        """Flush and end the session, leaving the stream open on the
        server — a later :meth:`TraceClient.open_stream` resumes it."""
        if self.closed:
            return self._acked
        mark = self._flush(close=False)
        self.closed = True
        self._finish_session()
        return mark

    def __enter__(self) -> "RemoteStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            # Leave the stream open and durable through the last ack;
            # dropping the connection is exactly the crash the server
            # is built to recover from.
            self._client.close()

    # -- internals -----------------------------------------------------------

    def _flush(self, close: bool) -> StreamWatermark:
        directive = {"close": True} if close else {}
        while True:
            try:
                self._client._send(encode_json_frame(protocol.FLUSH, directive))
                frame_type, payload = self._client._read_frame()
                if frame_type == protocol.ERROR:
                    self._client._raise_error(payload)
                if frame_type != protocol.ACK:
                    raise ProtocolError(
                        f"expected ACK or ERROR, got frame type {frame_type}"
                    )
                ack = decode_json_payload(payload)
                mark = _watermark_from(ack.get("watermark") or {})
                durable = self._logical_durable(mark)
                start = self._appended - len(self._buffer)
                if durable > start:
                    del self._buffer[: durable - start]
                self._acked = mark
                return mark
            except (ConnectionError, OSError, ServiceUnavailableError):
                self._reconnect()
                if self.closed:
                    return self._acked

    def _finish_session(self) -> None:
        """Best-effort END/RESPONSE teardown; durability already landed."""
        client = self._client
        try:
            client._send(encode_frame(protocol.END))
            frame_type, payload = client._read_frame()
            if frame_type == protocol.ERROR:
                client._raise_error(payload)
            if frame_type != protocol.RESPONSE:
                raise ProtocolError(
                    f"expected RESPONSE or ERROR, got frame type {frame_type}"
                )
            response = decode_json_payload(payload)
            client._note_worker(response)
            declared = response.get("payload_size", 0)
            if isinstance(declared, int) and declared >= 0:
                client._read_result_payload(declared, lambda _data: None)
        except (ConnectionError, OSError, ServiceUnavailableError):
            client.close()
