"""Repository self-check: the lint gate CI runs (``python -m repro.lint``).

Four stages, any error fails the run:

1. **Spec lint** over every shipped preset (:mod:`repro.spec.presets`);
2. **Spec lint** over every specification embedded in ``examples/`` and
   ``docs/`` (extracted textually, diagnostics reported at the real file
   line);
3. **Codegen invariant verification** of all three backends (python, c,
   c-library) for every preset;
4. **Concurrency lint** over ``src/repro``.

Warnings are reported but do not fail the gate (pass ``--strict`` to
change that); the shipped specs must stay error-free.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

from repro.lint.asynccheck import check_paths
from repro.lint.diagnostics import Diagnostic, Severity, render_text
from repro.lint.genverify import verify_generated
from repro.lint.speclint import lint_spec_text

#: A complete specification embedded in a Python/Markdown file.
_EMBEDDED_SPEC_RE = re.compile(
    r"TCgen Trace Specification;.*?PC = Field \d+;", re.DOTALL
)


def iter_embedded_specs(path: str) -> list[tuple[int, str]]:
    """Yield ``(1-based base line, spec text)`` for specs embedded in a file."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return [
        (text[: match.start()].count("\n") + 1, match.group(0))
        for match in _EMBEDDED_SPEC_RE.finditer(text)
    ]


def lint_embedded(path: str) -> list[Diagnostic]:
    """Lint every embedded spec in ``path``, rebasing spans to file lines."""
    out: list[Diagnostic] = []
    for base_line, spec_text in iter_embedded_specs(path):
        for diag in lint_spec_text(spec_text, path=path):
            out.append(
                Diagnostic(
                    diag.path, diag.line + base_line - 1, diag.col,
                    diag.code, diag.severity, diag.message,
                )
            )
    return out


def _preset_specs() -> dict[str, str]:
    from repro.spec.presets import TCGEN_A_SPEC, TCGEN_B_SPEC

    return {"TCgen(A)": TCGEN_A_SPEC, "TCgen(B)": TCGEN_B_SPEC}


def run_selfcheck(
    root: str = ".", strict: bool = False, stream=None
) -> int:
    """Run all four stages; return a process exit status (0/3)."""
    stream = stream or sys.stderr
    diagnostics: list[Diagnostic] = []

    for name, text in _preset_specs().items():
        diagnostics += lint_spec_text(text, path=f"<preset {name}>")

    for directory in ("examples", "docs"):
        base = os.path.join(root, directory)
        if not os.path.isdir(base):
            continue
        for entry in sorted(os.listdir(base)):
            if entry.endswith((".py", ".md")):
                diagnostics += lint_embedded(os.path.join(base, entry))

    from repro.codegen import generate_c, generate_c_library, generate_python
    from repro.model import build_model
    from repro.spec import parse_spec

    for name, text in _preset_specs().items():
        model = build_model(parse_spec(text))
        for backend, generate in (
            ("python", generate_python),
            ("c", generate_c),
            ("c-library", generate_c_library),
        ):
            diagnostics += verify_generated(
                model, generate(model), backend=backend,
                path=f"<generated {backend} for {name}>",
            )

    src = os.path.join(root, "src", "repro")
    if os.path.isdir(src):
        diagnostics += check_paths([src])

    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    warnings = [d for d in diagnostics if d.severity is not Severity.ERROR]
    if diagnostics:
        print(render_text(diagnostics), file=stream)
    print(
        f"tcgen-lint self-check: {len(errors)} error(s), "
        f"{len(warnings)} warning(s)/note(s)",
        file=stream,
    )
    if errors or (strict and warnings):
        return 3
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Lint shipped specs, verify generated code, and run the "
        "concurrency lint over the repository sources.",
    )
    parser.add_argument(
        "--root", default=".", help="repository root (default: cwd)"
    )
    parser.add_argument(
        "--strict", action="store_true", help="warnings also fail the gate"
    )
    args = parser.parse_args(argv)
    return run_selfcheck(root=args.root, strict=args.strict)


if __name__ == "__main__":
    raise SystemExit(main())
