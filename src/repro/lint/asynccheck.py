"""Concurrency lint for this package's own source (codes ``TC2xx``).

The serving tier (:mod:`repro.server` — the asyncio daemon, the pre-fork
supervisor, the HTTP gateway, the stream registry, the engine cache) and
the worker pools (:mod:`repro.runtime.parallel`) mix three concurrency
regimes — the event loop, thread executors, and process pools — which is
exactly where silent hazards creep in during refactors.  This pass
parses Python source with :mod:`ast` and flags four of them:

``TC201``
    A known-blocking call (``time.sleep``, ``subprocess.run``, sync
    socket/urllib I/O, ``fcntl`` file locks) lexically inside an
    ``async def``.  Blocking the event loop stalls every connection, not
    just the offender's.
``TC202``
    An ``await`` inside a non-async ``with`` whose context manager looks
    like a synchronous lock.  Parking a coroutine while holding a
    ``threading.Lock`` deadlocks the executor threads that need it.
``TC203``
    A mutation of a lock-guarded attribute outside the lock's ``with``
    block.  An attribute counts as guarded when some method of the same
    class mutates it under ``with self.<lock>``; any unguarded mutation
    elsewhere (outside ``__init__``) is then a race.
``TC204``
    The task handle from ``asyncio.ensure_future`` /
    ``asyncio.create_task`` is discarded — used as a bare expression
    statement or returned from a ``lambda`` callback.  The event loop
    keeps only weak references to tasks, so a fire-and-forget task can
    be garbage-collected mid-flight and any exception it raises
    silently vanishes.  Keep a reference (a task set with a
    done-callback discard is the canonical shape).

CI runs this over ``src/repro`` (see ``python -m repro.lint``), so the
checks are tuned for zero false positives on the current codebase — they
are a regression gate, not a general-purpose analyzer.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable

from repro.lint.diagnostics import Diagnostic, Severity

#: Dotted call prefixes that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.waitpid",
        "socket.create_connection",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "fcntl.lockf",
        "fcntl.flock",
    }
)

#: Calls that spawn an asyncio task whose handle must be kept alive.
TASK_SPAWNERS = frozenset({"asyncio.ensure_future", "asyncio.create_task"})

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "remove", "discard", "pop",
        "popitem", "clear", "update", "setdefault", "move_to_end", "sort",
    }
)


def _dotted_name(node: ast.expr) -> str | None:
    """Render ``a.b.c`` call targets; None for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_lock_expr(node: ast.expr) -> bool:
    """Heuristic: does this context-manager expression name a sync lock?"""
    name = _dotted_name(node)
    if name is None:
        return False
    leaf = name.rsplit(".", 1)[-1].lower()
    return "lock" in leaf and "async" not in leaf


def _self_attr(node: ast.expr) -> str | None:
    """Return ``attr`` for a ``self.attr`` expression (through subscripts)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _FunctionChecker(ast.NodeVisitor):
    """Walks one function body tracking async-ness and held locks."""

    def __init__(self, path: str, out: list[Diagnostic]) -> None:
        self.path = path
        self.out = out
        self._async_depth = 0
        self._lock_depth = 0

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.out.append(
            Diagnostic(
                self.path, node.lineno, node.col_offset + 1, code,
                Severity.ERROR, message,
            )
        )

    # -- function nesting ----------------------------------------------------

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._async_depth += 1
        held = self._lock_depth
        self._lock_depth = 0  # a new frame does not inherit held locks
        self.generic_visit(node)
        self._lock_depth = held
        self._async_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        async_depth = self._async_depth
        held = self._lock_depth
        self._async_depth = 0  # sync helpers may block; they run on executors
        self._lock_depth = 0
        self.generic_visit(node)
        self._lock_depth = held
        self._async_depth = async_depth

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_lambda_spawn(node)
        async_depth = self._async_depth
        held = self._lock_depth
        self._async_depth = 0  # sync helpers may block; they run on executors
        self._lock_depth = 0
        self.generic_visit(node)
        self._lock_depth = held
        self._async_depth = async_depth

    # -- the three hazards ---------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self._async_depth:
            name = _dotted_name(node.func)
            if name in BLOCKING_CALLS:
                self._add(
                    node, "TC201",
                    f"blocking call {name}() inside an async function stalls "
                    f"the event loop",
                )
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        holds_lock = any(
            _is_lock_expr(item.context_expr) for item in node.items
        )
        if holds_lock:
            self._lock_depth += 1
        self.generic_visit(node)
        if holds_lock:
            self._lock_depth -= 1

    def visit_Await(self, node: ast.Await) -> None:
        if self._lock_depth:
            self._add(
                node, "TC202",
                "await while holding a synchronous lock can deadlock "
                "executor threads waiting for it",
            )
        self.generic_visit(node)

    # -- TC204: fire-and-forget tasks ----------------------------------------

    def _spawner_name(self, node: ast.expr) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        name = _dotted_name(node.func)
        if name is None:
            return None
        if name in TASK_SPAWNERS or name.endswith("loop.create_task"):
            return name
        return None

    def _flag_discarded_task(self, call: ast.expr, name: str) -> None:
        self._add(
            call, "TC204",
            f"{name}() result discarded: the loop holds only a weak "
            f"reference, so the task can be garbage-collected and its "
            f"exceptions lost — keep the handle",
        )

    def visit_Expr(self, node: ast.Expr) -> None:
        name = self._spawner_name(node.value)
        if name is not None:
            self._flag_discarded_task(node.value, name)
        self.generic_visit(node)

    def _check_lambda_spawn(self, node: ast.Lambda) -> None:
        # ``lambda: asyncio.ensure_future(...)`` handed to a callback API
        # (signal handlers, call_soon) returns the task to a caller that
        # drops it — same hazard as a bare expression statement.
        name = self._spawner_name(node.body)
        if name is not None:
            self._flag_discarded_task(node.body, name)


class _ClassSharedStateChecker:
    """Flags unguarded mutations of attributes a class guards with a lock."""

    def __init__(self, path: str, out: list[Diagnostic]) -> None:
        self.path = path
        self.out = out

    def check(self, cls: ast.ClassDef) -> None:
        lock_attrs = {
            attr
            for node in ast.walk(cls)
            if isinstance(node, ast.Assign)
            for target in node.targets
            if (attr := _self_attr(target)) is not None
            and "lock" in attr.lower()
        }
        if not lock_attrs:
            return
        guarded: set[str] = set()
        mutations: list[tuple[str, bool, ast.AST, str]] = []
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue
            self._scan(method.body, under_lock=False, method=method.name,
                       guarded=guarded, mutations=mutations)
        for attr, under_lock, node, method in mutations:
            if attr in guarded and not under_lock:
                self.out.append(
                    Diagnostic(
                        self.path, node.lineno, node.col_offset + 1, "TC203",
                        Severity.ERROR,
                        f"{cls.name}.{method} mutates self.{attr} outside "
                        f"the lock that guards it elsewhere",
                    )
                )

    #: Statements with no nested statement bodies: safe to walk whole.
    _SIMPLE = (
        ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.Return,
        ast.Delete, ast.Raise, ast.Assert,
    )

    def _scan(self, body, under_lock: bool, method: str,
              guarded: set[str], mutations: list) -> None:
        for stmt in body:
            if isinstance(stmt, ast.With):
                inner = under_lock or any(
                    _is_lock_expr(item.context_expr)
                    and _self_attr(item.context_expr) is not None
                    for item in stmt.items
                )
                self._scan(stmt.body, inner, method, guarded, mutations)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs run later, outside this lock scope
            if isinstance(stmt, self._SIMPLE):
                self._record(stmt, under_lock, method, guarded, mutations)
                continue
            # Compound statement: recurse into every nested body so that
            # with-blocks inside if/for/try are tracked correctly.
            for child_body in (
                getattr(stmt, "body", None),
                getattr(stmt, "orelse", None),
                getattr(stmt, "finalbody", None),
            ):
                if child_body:
                    self._scan(child_body, under_lock, method, guarded, mutations)
            for handler in getattr(stmt, "handlers", []) or []:
                self._scan(handler.body, under_lock, method, guarded, mutations)

    def _record(self, stmt, under_lock: bool, method: str,
                guarded: set[str], mutations: list) -> None:
        for node in ast.walk(stmt):
            attr = None
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = _self_attr(target)
                    if attr:
                        break
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
            ):
                attr = _self_attr(node.func.value)
            if attr is None or "lock" in attr.lower():
                continue
            if under_lock:
                guarded.add(attr)
            mutations.append((attr, under_lock, node, method))


def check_source(source: str, path: str = "<source>") -> list[Diagnostic]:
    """Run all three concurrency checks over one Python source text."""
    out: list[Diagnostic] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise ValueError(f"{path}: source does not parse: {exc}") from exc
    _FunctionChecker(path, out).visit(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            _ClassSharedStateChecker(path, out).check(node)
    return sorted(out)


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                files += [
                    os.path.join(root, name)
                    for name in names
                    if name.endswith(".py")
                ]
        else:
            files.append(path)
    return sorted(set(files))


def check_paths(paths: Iterable[str]) -> list[Diagnostic]:
    """Run the concurrency lint over ``.py`` files and directories."""
    out: list[Diagnostic] = []
    for filename in iter_python_files(paths):
        with open(filename, encoding="utf-8") as handle:
            out += check_source(handle.read(), path=filename)
    return sorted(out)
