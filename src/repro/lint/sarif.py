"""SARIF 2.1.0 rendering for ``tcgen-lint`` diagnostics.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
services ingest to annotate pull requests.  One run per invocation, one
rule per diagnostic code actually reported (with the registry summary as
the rule description), one result per diagnostic.  Output is
deterministic — diagnostics and rules are sorted — so CI uploads diff
cleanly run to run.
"""

from __future__ import annotations

import json

from repro import __version__
from repro.lint.diagnostics import CODES, Diagnostic, Severity

#: SARIF ``level`` per diagnostic severity.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

_INFO_URI = "https://github.com/tcgen/tcgen/blob/main/docs/LINT.md"


def render_sarif(diagnostics: list[Diagnostic]) -> str:
    """Render diagnostics as a SARIF 2.1.0 document (deterministic)."""
    ordered = sorted(diagnostics)
    rules = [
        {
            "id": code,
            "shortDescription": {"text": CODES[code]},
            "helpUri": f"{_INFO_URI}#{code.lower()}",
        }
        for code in sorted({d.code for d in ordered})
    ]
    results = [
        {
            "ruleId": diag.code,
            "level": _LEVELS[diag.severity],
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": diag.path},
                        "region": {
                            "startLine": max(1, diag.line),
                            "startColumn": max(1, diag.col),
                        },
                    }
                }
            ],
        }
        for diag in ordered
    ]
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "tcgen-lint",
                        "version": __version__,
                        "informationUri": _INFO_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
