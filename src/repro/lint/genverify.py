"""Codegen invariant verification (codes ``TC1xx`` and ``TC3xx``).

The paper argues four code-generation optimizations hold for every
generated compressor: smart update, type minimization, table sharing, and
the incremental hash with its ``L2 * 2**(x-1)`` sizing rule — plus
dead-code elimination (no last-value table without LV/DFCM, no stride
logic without DFCM, no header path without a header).  This module
machine-checks those claims against the *generated source itself*, not
against the structure plan that produced it, so a bug in the planner or a
backend cannot silently ship an unoptimized or wrongly-sized compressor.

Two layers of checks run over every backend's output:

- **Surface checks (TC1xx)** parse the source directly — the Python
  backend through :mod:`ast` (table allocations in ``_fresh_tables``),
  the C backends structurally (declarations and ``calloc`` calls) — and
  compare against the paper's own sizing rules, re-derived from the
  specification when the full optimization set is active.
- **IR-founded checks (TC3xx)** lower the model to the kernel IR
  (:mod:`repro.ir`), run the liveness/range/sharing analyses, and hold
  the emitted source to the *analyzed* facts: allocations must match the
  IR's table declarations (TC301), element widths the proven value
  ranges (TC302), and per-table update-store counts the liveness
  results (TC303) — an extra store is an injected dead update, a missing
  one a broken kernel.  Masks the range analysis proves redundant but
  the source retains are reported as TC305 warnings.  Both backends are
  checked against the same IR, not against each other.

:func:`verify_generated` returns diagnostics; :func:`assert_verified`
raises :class:`~repro.errors.CodegenError` on the first *error* and is
what ``generate_python(..., verify=True)`` calls.
"""

from __future__ import annotations

import ast
from dataclasses import replace
import re

from repro.codegen.plan import plan_field
from repro.errors import CodegenError
from repro.lint.diagnostics import Diagnostic, Severity
from repro.model.layout import CompressorModel, storage_bytes
from repro.spec.ast import PredictorKind

#: array typecode / C type per element width, kept in sync with the backends.
_PY_TYPECODES = {1: "B", 2: "H", 4: "I", 8: "Q"}
_PY_ELEM_BYTES = {code: nbytes for nbytes, code in _PY_TYPECODES.items()}
_C_TYPES = {1: "u8", 2: "u16", 4: "u32", 8: "u64"}


def _expected_tables(model: CompressorModel) -> dict[str, tuple[int, int]]:
    """Map table name -> (elem_bytes, element_count) the backend must emit.

    With the full optimization set the expectations are derived from the
    paper's rules, independently of :mod:`repro.codegen.plan`; otherwise
    the plan is authoritative (ablations intentionally de-share and
    de-minimize).
    """
    options = model.options
    if not (options.shared_tables and options.type_minimization):
        expected: dict[str, tuple[int, int]] = {}
        for layout in model.fields:
            plan = plan_field(layout, options)
            for last in plan.lasts:
                expected[last.name] = (last.elem_bytes, last.lines * last.depth)
            for chain in plan.chains:
                expected[chain.name] = (chain.elem_bytes, chain.lines * chain.span)
            for l2 in plan.l2s:
                expected[l2.name] = (l2.elem_bytes, l2.lines * l2.depth)
        return expected

    expected = {}
    for layout in model.fields:
        spec = layout.spec
        prefix = f"field{layout.index}"
        elem = spec.bytes  # smallest sufficient type: the field's own width
        lv_depths = [p.depth for p in spec.predictors if p.kind is PredictorKind.LV]
        fcm_orders = [p.order for p in spec.predictors if p.kind is PredictorKind.FCM]
        dfcm_orders = [p.order for p in spec.predictors if p.kind is PredictorKind.DFCM]
        # Shared last-value table: exists iff some predictor reads it
        # (dead-code elimination); DFCM needs at least one slot for strides.
        lv_depth = max(lv_depths, default=0)
        if dfcm_orders and lv_depth == 0:
            lv_depth = 1
        if lv_depth:
            expected[f"{prefix}_lastvalue"] = (elem, spec.l1_size * lv_depth)
        # Exactly one shared chain per predictor class, sized for the
        # highest configured order; elements hold the widest partial hash.
        k1 = spec.l2_size.bit_length() - 1
        for orders, label in ((fcm_orders, "fcm"), (dfcm_orders, "dfcm")):
            if not orders:
                continue
            top = max(orders)
            chain_elem = (
                storage_bytes(k1 + top - 1) if options.fast_hash else elem
            )
            expected[f"{prefix}_{label}_chain"] = (
                chain_elem, spec.l1_size * top,
            )
        # One second-level table per FCM/DFCM predictor, sized by the
        # paper's L2 * 2**(x-1) rule.
        used_names: set[str] = set()
        for slot, pred in enumerate(spec.predictors):
            if pred.kind is PredictorKind.LV:
                continue
            tag = str(pred).replace("[", "_").replace("]", "").lower()
            name = f"{prefix}_{tag}_l2"
            if name in used_names:
                name = f"{prefix}_p{slot}_{tag}_l2"
            used_names.add(name)
            expected[name] = (elem, (spec.l2_size << (pred.order - 1)) * pred.depth)
    return expected


def _eval_const_expr(node: ast.expr) -> int | None:
    """Fold the constant integer arithmetic the backend emits (a * b)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        left = _eval_const_expr(node.left)
        right = _eval_const_expr(node.right)
        if left is not None and right is not None:
            return left * right
    return None


def _python_tables(tree: ast.Module) -> dict[str, tuple[str, int, int]] | None:
    """Read ``name -> (typecode, line)`` allocations out of ``_fresh_tables``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "_fresh_tables":
            tables: dict[str, tuple[str, int, int]] = {}
            for stmt in node.body:
                if not (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.value.func, ast.Name)
                    and stmt.value.func.id == "array"
                ):
                    continue
                typecode = stmt.value.args[0]
                payload = stmt.value.args[1]
                if not (
                    isinstance(typecode, ast.Constant)
                    and isinstance(payload, ast.Call)
                    and isinstance(payload.func, ast.Name)
                    and payload.func.id == "bytes"
                ):
                    continue
                nbytes = _eval_const_expr(payload.args[0])
                if nbytes is None:
                    continue
                tables[stmt.targets[0].id] = (
                    typecode.value, stmt.lineno, nbytes,
                )
            return tables
    return None


def _verify_tables(
    actual: dict[str, tuple[int, int, int]],
    expected: dict[str, tuple[int, int]],
    model: CompressorModel,
    path: str,
    add,
) -> None:
    """Compare (elem_bytes, line, total_bytes) allocations to expectations."""
    for name, (elem, line, nbytes) in sorted(actual.items()):
        if name not in expected:
            code = "TC301"
            message = f"table {name} is declared but the model does not call for it"
            for layout in model.fields:
                only_fcm = all(
                    p.kind is PredictorKind.FCM for p in layout.spec.predictors
                )
                if name == f"field{layout.index}_lastvalue" and only_fcm:
                    code = "TC104"
                    message = (
                        f"field {layout.index} has only FCM predictors, yet a "
                        f"last-value table {name} was generated (dead-code "
                        f"elimination violated)"
                    )
            add(line, code, message)
            continue
        want_elem, want_count = expected[name]
        if elem != want_elem:
            code = "TC302" if elem > want_elem else "TC102"
            add(
                line, code,
                f"table {name} uses {elem}-byte elements; the smallest "
                f"sufficient type is {want_elem} byte(s)",
            )
        elif nbytes != want_elem * want_count:
            code = "TC108" if name.endswith("_l2") else (
                "TC107" if name.endswith("_chain") else "TC102"
            )
            add(
                line, code,
                f"table {name} holds {nbytes // elem} elements, "
                f"expected {want_count}",
            )
    for name in sorted(set(expected) - set(actual)):
        code = "TC107" if name.endswith("_chain") else "TC102"
        add(1, code, f"expected table {name} was not generated")


def verify_generated(
    model: CompressorModel,
    source: str,
    backend: str = "python",
    path: str = "<generated>",
) -> list[Diagnostic]:
    """Check generated source against the paper's invariants.

    Returns error diagnostics for every violated invariant (empty when the
    source is faithful to the model).
    """
    if backend == "python":
        out = _verify_python(model, source, path)
    elif backend == "c":
        out = _verify_c(model, source, path)
    elif backend == "c-library":
        out = _verify_c_library(model, source, path)
    else:
        raise ValueError(
            f"unknown backend {backend!r}; expected 'python', 'c', or 'c-library'"
        )
    out.extend(_verify_ir(model, source, backend, path))
    return sorted(out)


def assert_verified(
    model: CompressorModel, source: str, backend: str = "python"
) -> None:
    """Raise :class:`~repro.errors.CodegenError` on verification *errors*.

    Warnings (e.g. TC305 retained-redundant-mask) do not raise: the
    pre-IR output is legal, just unoptimized.
    """
    diagnostics = [
        d
        for d in verify_generated(model, source, backend=backend)
        if d.severity is Severity.ERROR
    ]
    if diagnostics:
        details = "; ".join(d.render() for d in diagnostics[:5])
        raise CodegenError(
            f"generated {backend} source violates {len(diagnostics)} "
            f"codegen invariant(s): {details}"
        )


def _any_dfcm(model: CompressorModel) -> bool:
    return any(
        p.kind is PredictorKind.DFCM
        for layout in model.fields
        for p in layout.spec.predictors
    )


def _verify_python(
    model: CompressorModel, source: str, path: str
) -> list[Diagnostic]:
    out: list[Diagnostic] = []

    def add(line: int, code: str, message: str) -> None:
        out.append(Diagnostic(path, line, 1, code, Severity.ERROR, message))

    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        add(exc.lineno or 1, "TC102", f"generated source does not parse: {exc}")
        return out

    tables = _python_tables(tree)
    if tables is None:
        add(1, "TC102", "generated module lacks a _fresh_tables function")
        return out
    actual = {
        name: (
            {"B": 1, "H": 2, "I": 4, "Q": 8}.get(typecode, 0), line, nbytes,
        )
        for name, (typecode, line, nbytes) in tables.items()
    }
    _verify_tables(actual, _expected_tables(model), model, path, add)

    # Dead-code facts checked against the emitted statements themselves.
    stride_lines = [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Assign)
        and any(
            isinstance(t, ast.Name) and re.fullmatch(r"stride\d+", t.id)
            for t in node.targets
        )
    ]
    if stride_lines and not _any_dfcm(model):
        add(
            stride_lines[0], "TC105",
            "stride computation emitted although no DFCM predictor is "
            "configured",
        )
    header_bytes = None
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "HEADER_BYTES"
                for t in node.targets
            )
            and isinstance(node.value, ast.Constant)
        ):
            header_bytes = node.value.value
    if header_bytes != model.spec.header_bytes:
        add(
            1, "TC106",
            f"HEADER_BYTES is {header_bytes}, specification says "
            f"{model.spec.header_bytes}",
        )
    if model.spec.header_bits == 0 and "head_pair" in source:
        line = source[: source.index("head_pair")].count("\n") + 1
        add(
            line, "TC106",
            "header-stream handling emitted for a headerless specification",
        )
    return out


_C_DECL_RE = re.compile(r"^static (u8|u16|u32|u64) \*(\w+);$", re.MULTILINE)
_C_CALLOC_RE = re.compile(
    r"^\s*(\w+) = \((u8|u16|u32|u64) \*\)calloc\((\d+), sizeof\((u8|u16|u32|u64)\)\);",
    re.MULTILINE,
)
_C_ELEM_BYTES = {"u8": 1, "u16": 2, "u32": 4, "u64": 8}


def _verify_c(model: CompressorModel, source: str, path: str) -> list[Diagnostic]:
    out: list[Diagnostic] = []

    def add(line: int, code: str, message: str) -> None:
        out.append(Diagnostic(path, line, 1, code, Severity.ERROR, message))

    def line_of(match_start: int) -> int:
        return source[:match_start].count("\n") + 1

    declared = {
        match.group(2): (_C_ELEM_BYTES[match.group(1)], line_of(match.start()))
        for match in _C_DECL_RE.finditer(source)
    }
    actual: dict[str, tuple[int, int, int]] = {}
    for match in _C_CALLOC_RE.finditer(source):
        name, ctype, count = match.group(1), match.group(2), int(match.group(3))
        elem = _C_ELEM_BYTES[ctype]
        decl = declared.get(name)
        line = decl[1] if decl else line_of(match.start())
        if decl is not None and decl[0] != elem:
            add(
                line, "TC302",
                f"table {name} is declared {decl[0]}-byte but allocated "
                f"{elem}-byte elements",
            )
        actual[name] = (elem, line, elem * count)
    _verify_tables(actual, _expected_tables(model), model, path, add)

    match = re.search(r"static const u64 header_bytes = (\d+);", source)
    header_bytes = int(match.group(1)) if match else None
    if header_bytes != model.spec.header_bytes:
        add(
            line_of(match.start()) if match else 1, "TC106",
            f"header_bytes is {header_bytes}, specification says "
            f"{model.spec.header_bytes}",
        )
    stride_match = re.search(r"\bstride\d+\b", source)
    if stride_match and not _any_dfcm(model):
        add(
            line_of(stride_match.start()), "TC105",
            "stride computation emitted although no DFCM predictor is "
            "configured",
        )
    return sorted(out)


#: Per-call heap tables in the shared-library backend: ``u32 *name = NULL;``
#: locals instead of the filter backend's file-scope statics.
_C_LIB_DECL_RE = re.compile(
    r"^\s*(u8|u16|u32|u64) \*(\w+) = NULL;$", re.MULTILINE
)

#: Every symbol the ctypes loader binds; a missing one is a broken ABI.
_C_LIB_EXPORTS = (
    "tcgen_abi_version",
    "tcgen_fingerprint",
    "tcgen_record_bytes",
    "tcgen_header_bytes",
    "tcgen_stream_count",
    "tcgen_compress",
    "tcgen_chunk_compress",
    "tcgen_decompress",
    "tcgen_chunk_decompress",
    "tcgen_batch_compress",
    "tcgen_batch_decompress",
    "tcgen_free",
)


def _verify_c_library(
    model: CompressorModel, source: str, path: str
) -> list[Diagnostic]:
    """Check the shared-library (ABI) emitter's output.

    The library allocates its predictor tables as per-call heap locals in
    *both* kernels (compress and decompress), so every table must appear
    with the same element type and byte size in each; the verified set is
    then held to the same TC10x expectations as the other backends, plus
    the completeness of the exported ABI (TC109).
    """
    out: list[Diagnostic] = []

    def add(line: int, code: str, message: str) -> None:
        out.append(Diagnostic(path, line, 1, code, Severity.ERROR, message))

    def line_of(match_start: int) -> int:
        return source[:match_start].count("\n") + 1

    declared: dict[str, tuple[int, int]] = {}
    for match in _C_LIB_DECL_RE.finditer(source):
        elem = _C_ELEM_BYTES[match.group(1)]
        name = match.group(2)
        previous = declared.get(name)
        if previous is not None and previous[0] != elem:
            add(
                line_of(match.start()), "TC302",
                f"table {name} is declared {previous[0]}-byte in one kernel "
                f"but {elem}-byte in another",
            )
        declared.setdefault(name, (elem, line_of(match.start())))
    actual: dict[str, tuple[int, int, int]] = {}
    for match in _C_CALLOC_RE.finditer(source):
        name, ctype, count = match.group(1), match.group(2), int(match.group(3))
        elem = _C_ELEM_BYTES[ctype]
        if name not in declared:
            continue  # not a table local (buffer internals etc.)
        decl_elem, decl_line = declared[name]
        if decl_elem != elem:
            add(
                decl_line, "TC302",
                f"table {name} is declared {decl_elem}-byte but allocated "
                f"{elem}-byte elements",
            )
        previous = actual.get(name)
        if previous is not None and previous != (elem, decl_line, elem * count):
            add(
                decl_line, "TC102",
                f"table {name} is allocated inconsistently between the "
                f"compress and decompress kernels",
            )
        actual[name] = (elem, decl_line, elem * count)
    _verify_tables(actual, _expected_tables(model), model, path, add)

    match = re.search(r"static const u64 header_bytes = (\d+);", source)
    header_bytes = int(match.group(1)) if match else None
    if header_bytes != model.spec.header_bytes:
        add(
            line_of(match.start()) if match else 1, "TC106",
            f"header_bytes is {header_bytes}, specification says "
            f"{model.spec.header_bytes}",
        )
    stride_match = re.search(r"\bstride\d+\b", source)
    if stride_match and not _any_dfcm(model):
        add(
            line_of(stride_match.start()), "TC105",
            "stride computation emitted although no DFCM predictor is "
            "configured",
        )
    for symbol in _C_LIB_EXPORTS:
        if not re.search(
            rf"^(?:int|void|u32|u64) {symbol}\(", source, re.MULTILINE
        ):
            add(
                1, "TC109",
                f"exported ABI symbol {symbol} is missing from the "
                f"generated library",
            )
    return sorted(out)


# ---------------------------------------------------------------------------
# IR-founded verification (TC3xx): the emitted source is held to the facts
# the dataflow analyses proved about the lowered kernel, for every backend.
# ---------------------------------------------------------------------------

#: The two table-updating kernels each backend emits; every per-record
#: table store appears exactly once in each.
_PY_KERNELS = ("_compress_chunk", "_decompress_chunk")


def _python_table_stores(source: str, tables: set[str]) -> dict[str, int]:
    """Count subscript-store statements per table across both kernels."""
    counts = {name: 0 for name in tables}
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return counts
    for node in ast.walk(tree):
        if not (isinstance(node, ast.FunctionDef) and node.name in _PY_KERNELS):
            continue
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign):
                continue
            for target in sub.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in counts
                ):
                    counts[target.value.id] += 1
    return counts


def _c_table_stores(source: str, tables: set[str]) -> dict[str, int]:
    """Count ``table[...] = `` statements per table (both C kernels)."""
    counts = {}
    for name in tables:
        pattern = re.compile(
            rf"^\s*{re.escape(name)}\[[^\]]*\] = ", re.MULTILINE
        )
        counts[name] = len(pattern.findall(source))
    return counts


def _source_line(source: str, start: int) -> int:
    return source[:start].count("\n") + 1


def _verify_ir(
    model: CompressorModel, source: str, backend: str, path: str
) -> list[Diagnostic]:
    """Check emitted source against the analyzed kernel IR (TC3xx).

    The IR analyses themselves contribute any model-level findings
    (range overflow, unprovable bounds, sharing violations); on top of
    those, the emitted allocations must match the IR's table
    declarations (TC301/TC302), the per-table store-statement counts
    must match IR liveness (TC303 — an extra store is an injected dead
    update), and masks the range analysis proved redundant but the
    source retains are flagged TC305 (warning: legal, just unoptimized).
    """
    from repro.ir import analyze_model

    facts = analyze_model(model)
    out: list[Diagnostic] = [replace(d, path=path) for d in facts.diagnostics]

    def add(
        line: int, code: str, message: str, severity: Severity = Severity.ERROR
    ) -> None:
        out.append(Diagnostic(path, line, 1, code, severity, message))

    # -- allocations against IR table declarations --------------------------
    actual: dict[str, tuple[int, int, int]] = {}
    if backend == "python":
        try:
            raw = _python_tables(ast.parse(source)) or {}
        except SyntaxError:
            return out
        for name, (typecode, line, nbytes) in raw.items():
            actual[name] = (_PY_ELEM_BYTES.get(typecode, 0), line, nbytes)
    else:
        for match in _C_CALLOC_RE.finditer(source):
            name, ctype, count = match.group(1), match.group(2), int(match.group(3))
            elem = _C_ELEM_BYTES[ctype]
            # The library allocates in both kernels; identically-sized
            # repeats collapse (inconsistency is the TC1xx layer's job).
            actual[name] = (elem, _source_line(source, match.start()), elem * count)

    for name, decl in sorted(facts.ir.tables.items()):
        found = actual.get(name)
        if found is None:
            add(
                1, "TC301",
                f"the analyzed IR declares table {name} "
                f"({decl.elements} x {decl.elem_bytes}-byte) but the "
                f"generated source does not allocate it",
            )
            continue
        elem, line, nbytes = found
        if elem != decl.elem_bytes:
            add(
                line, "TC302",
                f"table {name} is allocated with {elem}-byte elements; the "
                f"IR range analysis calls for {decl.elem_bytes} byte(s)",
            )
        elif nbytes != decl.total_bytes:
            add(
                line, "TC301",
                f"table {name} is allocated with {nbytes} bytes; the "
                f"analyzed IR calls for {decl.total_bytes}",
            )

    # -- per-table store counts against IR liveness --------------------------
    table_names = set(facts.ir.tables)
    stores = (
        _python_table_stores(source, table_names)
        if backend == "python"
        else _c_table_stores(source, table_names)
    )
    for name, per_record in sorted(facts.update_writes().items()):
        want = 2 * per_record  # one compress + one decompress kernel
        got = stores.get(name, 0)
        if got != want:
            kind = "dead update injected" if got > want else "update missing"
            add(
                1, "TC303",
                f"table {name} has {got} store statement(s) across both "
                f"kernels; IR liveness expects {want} ({kind})",
            )

    # -- masks the range analysis proved redundant (warnings) ----------------
    for fir in facts.ir.fields:
        ffacts = facts.fields[fir.index]
        for name in sorted(ffacts.redundant_chain_store_mask):
            if backend == "python":
                pattern = rf"^\s*{re.escape(name)}\[[^\]]*\] = fold_{re.escape(name)} & 0x"
            else:
                pattern = (
                    rf"^\s*{re.escape(name)}\[[^\]]*\] = "
                    rf"\(u\d+\)\(fold_{re.escape(name)} & 0x"
                )
            match = re.search(pattern, source, re.MULTILINE)
            if match is not None:
                add(
                    _source_line(source, match.start()), "TC305",
                    f"level-1 store into {name} retains a mask the range "
                    f"analysis proves redundant (fold is already narrower)",
                    Severity.WARNING,
                )
        if ffacts.elide_line_mask:
            l1 = fir.l1_lines - 1
            if backend == "python":
                pattern = rf"^\s*line{fir.index} = \w+ & {l1}$"
            else:
                pattern = rf"line{fir.index} = \w+ & {l1}ULL;"
            match = re.search(pattern, source, re.MULTILINE)
            if match is not None:
                add(
                    _source_line(source, match.start()), "TC305",
                    f"field {fir.index} line index retains a mask the range "
                    f"analysis proves redundant (PC is narrower than L1)",
                    Severity.WARNING,
                )
    return out
