"""Diagnostics framework for the ``repro.lint`` subsystem.

Every analysis pass (specification lint, codegen invariant verification,
concurrency lint) reports problems as :class:`Diagnostic` records with a
stable code, a severity, and a source span.  Codes are grouped by pass:

- ``TC0xx`` — specification lint (:mod:`repro.lint.speclint`);
- ``TC1xx`` — codegen invariant verification (:mod:`repro.lint.genverify`);
- ``TC2xx`` — concurrency lint (:mod:`repro.lint.asynccheck`).

Rendering follows ruff's conventions: the text renderer prints one
``path:line:col: CODE message`` line per diagnostic, and the JSON renderer
emits a deterministic (sorted, stable-key) document so CI diffs are
reproducible run to run.

Inline suppression uses the specification language's comment syntax::

    64-Bit Field 2 = {L2 = 1024: FCM1[2], FCM1[2]};  # tcgen: disable=TC020

A ``# tcgen: disable=CODE[,CODE...]`` (or ``disable=all``) comment mutes
matching diagnostics reported on that source line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
import json
import re


class Severity(str, Enum):
    """How bad a diagnostic is.

    ``ERROR`` diagnostics describe specifications or generated code that
    are wrong (they mirror conditions the library rejects at runtime);
    ``WARNING`` diagnostics describe legal-but-wasteful constructs;
    ``INFO`` diagnostics are advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


#: Registry of every stable diagnostic code with a one-line summary.
#: ``docs/LINT.md`` catalogues these with bad/good examples; a test
#: asserts the two stay in sync.
CODES: dict[str, str] = {
    # -- TC0xx: specification lint -------------------------------------------
    "TC001": "duplicate field number",
    "TC002": "field numbers are not consecutive starting at 1",
    "TC003": "unsupported field width",
    "TC004": "header width is not a multiple of 8 bits",
    "TC005": "table size is not a power of two",
    "TC006": "table allocation exceeds the line ceiling",
    "TC007": "field declares no predictors",
    "TC008": "FCM/DFCM order out of range (order 0 is meaningless)",
    "TC009": "predictor depth out of range",
    "TC010": "PC definition names a field that does not exist",
    "TC011": "PC field's L1 size must be 1",
    "TC012": "specification fails to lex",
    "TC013": "specification fails to parse",
    "TC020": "predictor aliases an identical shared table and can never win",
    "TC021": "dominated predictor: every prediction is shadowed by an earlier one",
    "TC022": "degenerate type minimization: L2 table larger than the context space",
    "TC023": "zero-width header clause has no effect",
    "TC024": "PC field indexes no table: every other field has L1 = 1",
    "TC025": "explicit table size repeats the default",
    "TC026": "flush window too small: tiny streaming chunks compress poorly",
    "TC027": "disable comment names an unknown or retired diagnostic code",
    "TC028": "all fields are scalar-bound: the numpy backend cannot vectorize this spec",
    # -- TC1xx: codegen invariant verification --------------------------------
    "TC102": "generated table missing or sized wrong",
    "TC104": "last-value table generated for a field without LV/DFCM predictors",
    "TC105": "stride code generated for a specification without DFCM predictors",
    "TC106": "header handling generated for a headerless specification",
    "TC107": "first-level chain not shared or not sized for the highest order",
    "TC108": "second-level table size violates the L2 * 2**(x-1) rule",
    "TC109": "exported ABI symbol missing from the generated shared library",
    # -- TC2xx: concurrency lint ----------------------------------------------
    "TC201": "blocking call inside an async function",
    "TC202": "await while holding a synchronous lock",
    "TC203": "lock-guarded attribute mutated outside its lock's with block",
    "TC204": "task handle discarded: spawned task may be garbage-collected",
    # -- TC3xx: IR-founded verification (:mod:`repro.ir.analysis`) -------------
    "TC301": "generated state allocation contradicts the analyzed IR",
    "TC302": "element width contradicts the proven value range",
    "TC303": "table store count contradicts IR liveness (dead or missing update)",
    "TC304": "table index not provably within [0, lines)",
    "TC305": "redundant mask the range analysis proves elidable",
    "TC306": "table sharing violates the L2 * 2**(x-1) structural rule",
}

#: Codes that existed in earlier releases but were superseded.  They stay
#: known to the suppression checker so a stale ``# tcgen: disable=`` names
#: the replacement instead of being reported as a typo.
RETIRED_CODES: dict[str, str] = {
    "TC101": "superseded by TC301 (allocation checked against the analyzed IR)",
    "TC103": "superseded by TC302 (element widths checked against proven ranges)",
}


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One reported problem, ordered for deterministic output."""

    path: str
    line: int
    col: int
    code: str
    severity: Severity = field(compare=False)
    message: str

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    def render(self) -> str:
        """Ruff-style ``path:line:col: CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def has_errors(diagnostics: list[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diagnostics)


def render_text(diagnostics: list[Diagnostic]) -> str:
    """One line per diagnostic, sorted by position then code."""
    return "\n".join(d.render() for d in sorted(diagnostics))


def render_json(diagnostics: list[Diagnostic]) -> str:
    """Deterministic JSON document: sorted diagnostics, sorted keys."""
    payload = {
        "diagnostics": [
            {
                "path": d.path,
                "line": d.line,
                "col": d.col,
                "code": d.code,
                "severity": d.severity.value,
                "message": d.message,
            }
            for d in sorted(diagnostics)
        ],
        "errors": sum(d.severity is Severity.ERROR for d in diagnostics),
        "warnings": sum(d.severity is Severity.WARNING for d in diagnostics),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: ``# tcgen: disable=TC020`` or ``# tcgen: disable=TC020,TC022`` or ``=all``.
_SUPPRESS_RE = re.compile(r"#\s*tcgen:\s*disable=([A-Za-z0-9_,\s]+)")


def suppressed_codes_by_line(text: str) -> dict[int, set[str]]:
    """Map 1-based line numbers to the codes suppressed on that line."""
    suppressions: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = {part.strip() for part in match.group(1).split(",") if part.strip()}
        suppressions[lineno] = codes
    return suppressions


def apply_suppressions(
    diagnostics: list[Diagnostic], text: str
) -> list[Diagnostic]:
    """Drop diagnostics muted by ``# tcgen: disable=`` comments in ``text``."""
    suppressions = suppressed_codes_by_line(text)
    if not suppressions:
        return diagnostics
    kept = []
    for diag in diagnostics:
        muted = suppressions.get(diag.line, ())
        if diag.code in muted or "all" in muted:
            continue
        kept.append(diag)
    return kept


def check_suppressions(text: str, path: str) -> list[Diagnostic]:
    """TC027: flag ``# tcgen: disable=`` comments that suppress nothing.

    A typo'd or retired code in a disable comment silently mutes nothing
    while looking like it does; retired codes additionally name their
    replacement so the comment can be fixed rather than deleted.
    """
    out: list[Diagnostic] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        col = match.start() + 1
        for part in match.group(1).split(","):
            code = part.strip()
            if not code or code == "all" or code in CODES:
                continue
            if code in RETIRED_CODES:
                message = (
                    f"disable comment names retired code {code}: "
                    f"{RETIRED_CODES[code]}"
                )
            else:
                message = (
                    f"disable comment names unknown code {code}: "
                    f"it suppresses nothing"
                )
            out.append(
                Diagnostic(path, lineno, col, "TC027", Severity.WARNING, message)
            )
    return out
