"""Static analysis for TCgen: spec lint, codegen verification, async lint.

Three passes over three layers of the system, one diagnostics framework:

- :mod:`repro.lint.speclint` (``TC0xx``) — semantic lint of trace
  specifications, beyond hard validation: aliased/dominated predictors,
  degenerate table sizing, dead clauses, with source spans and inline
  ``# tcgen: disable=`` suppression;
- :mod:`repro.lint.genverify` (``TC1xx``) — machine-checks the paper's
  code-generation invariants (dead-code elimination, table sharing, type
  minimization, ``L2 * 2**(x-1)`` sizing) against generated Python/C
  source;
- :mod:`repro.lint.asynccheck` (``TC2xx``) — concurrency lint over this
  package's own server/runtime code, run in CI as a regression gate.

The ``tcgen-lint`` console script fronts all three;
``python -m repro.lint`` runs the repository self-check CI uses.
"""

from repro.lint.asynccheck import check_paths, check_source
from repro.lint.diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    apply_suppressions,
    has_errors,
    render_json,
    render_text,
)
from repro.lint.genverify import assert_verified, verify_generated
from repro.lint.speclint import lint_spec, lint_spec_text

__all__ = [
    "CODES",
    "Diagnostic",
    "Severity",
    "apply_suppressions",
    "assert_verified",
    "check_paths",
    "check_source",
    "has_errors",
    "lint_spec",
    "lint_spec_text",
    "render_json",
    "render_text",
    "verify_generated",
]
