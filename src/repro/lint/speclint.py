"""Semantic lint for trace specifications (codes ``TC0xx``).

:mod:`repro.spec.validate` enforces the paper's hard rules fail-fast (the
first violation raises).  This linter reports *every* problem at once,
attaches source spans recovered from the lexer's tokens, and goes beyond
validation with warnings about legal-but-wasteful configurations:

- predictors that alias an identical shared table (redundant under the
  table-sharing optimization, Section 5.2);
- dominated predictors that can never win the code selection;
- second-level tables larger than the field's context space (type
  minimization cannot shrink what can never be filled);
- header and level-size clauses that have no effect.

Two entry points: :func:`lint_spec_text` lints source text (with spans and
``# tcgen: disable=`` suppression support); :func:`lint_spec` lints an
already-parsed :class:`~repro.spec.ast.TraceSpec` (spans degrade to 1:1).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.errors import LexError, ParseError
from repro.lint.diagnostics import (
    Diagnostic,
    Severity,
    apply_suppressions,
    check_suppressions,
)
from repro.spec.ast import DEFAULT_L1, DEFAULT_L2, PredictorKind, TraceSpec
from repro.spec.tokens import Token
from repro.spec.validate import (
    ALLOWED_FIELD_BITS,
    MAX_DEPTH,
    MAX_ORDER,
    MAX_TABLE_LINES,
)

Span = tuple[int, int]

_DEFAULT_SPAN: Span = (1, 1)


@dataclass
class _FieldSpans:
    """Source positions inside one field declaration."""

    decl: Span = _DEFAULT_SPAN
    l1: Span | None = None
    l2: Span | None = None
    predictors: list[Span] = dc_field(default_factory=list)

    def predictor(self, slot: int) -> Span:
        if slot < len(self.predictors):
            return self.predictors[slot]
        return self.decl


@dataclass
class _SpanMap:
    """Source positions recovered from the token stream."""

    header: Span | None = None
    fields: list[_FieldSpans] = dc_field(default_factory=list)
    pc: Span | None = None

    def field(self, position: int) -> _FieldSpans:
        if position < len(self.fields):
            return self.fields[position]
        return _FieldSpans()


def _span_of(token: Token) -> Span:
    return (token.line, token.column)


def _build_span_map(tokens: list[Token]) -> _SpanMap:
    """Scan the token stream for declaration positions.

    The scan is forgiving: it only recognizes the anchoring keywords, so a
    token stream that fails to parse still yields partial spans.
    """
    spans = _SpanMap()
    current: _FieldSpans | None = None
    for i, tok in enumerate(tokens):
        if tok.is_keyword("Header") and i >= 3:
            spans.header = _span_of(tokens[i - 3])
        elif tok.is_keyword("Field") and i >= 1 and tokens[i - 1].is_keyword("Bit"):
            current = _FieldSpans(decl=_span_of(tokens[i - 3]) if i >= 3 else _span_of(tok))
            spans.fields.append(current)
        elif tok.is_keyword("PC"):
            spans.pc = _span_of(tok)
            current = None
        elif current is not None:
            if tok.is_keyword("L1") and current.l1 is None:
                current.l1 = _span_of(tok)
            elif tok.is_keyword("L2") and current.l2 is None:
                current.l2 = _span_of(tok)
            elif any(tok.is_keyword(kind) for kind in ("LV", "FCM", "DFCM")):
                current.predictors.append(_span_of(tok))
    return spans


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def lint_spec_text(text: str, path: str = "<spec>") -> list[Diagnostic]:
    """Lint specification source text; returns all diagnostics, sorted.

    Lex and parse failures are reported as ``TC012``/``TC013`` diagnostics
    at the failing position instead of raising.  ``# tcgen: disable=CODE``
    comments mute diagnostics on their line; disable comments naming
    unknown or retired codes are themselves flagged (``TC027``).
    """
    from repro.spec.lexer import tokenize
    from repro.spec.parser import _Parser

    meta = check_suppressions(text, path)
    try:
        tokens = tokenize(text)
    except LexError as exc:
        return sorted(
            [Diagnostic(path, exc.line, exc.column, "TC012", Severity.ERROR, str(exc))]
            + meta
        )
    spans = _build_span_map(tokens)
    try:
        spec = _Parser(tokens).parse_description()
    except ParseError as exc:
        return sorted(
            [Diagnostic(path, exc.line, exc.column, "TC013", Severity.ERROR, str(exc))]
            + meta
        )
    diagnostics = _lint_parsed(spec, spans, path) + meta
    if spans.header is not None and spec.header_bits == 0:
        diagnostics.append(
            Diagnostic(
                path, *spans.header, "TC023", Severity.INFO,
                "a 0-Bit Header clause is equivalent to omitting the header",
            )
        )
    return sorted(apply_suppressions(diagnostics, text))


def lint_spec(spec: TraceSpec, path: str = "<spec>") -> list[Diagnostic]:
    """Lint a parsed specification (no source text, so spans are 1:1)."""
    return sorted(_lint_parsed(spec, _SpanMap(), path))


#: Streaming flush windows below this many records compress poorly: the
#: per-chunk predictor reset means every chunk pays the cold-start of all
#: tables, and the post-compression codec never sees enough context.
MIN_FLUSH_WINDOW_RECORDS = 64

#: Recognized ``--flush-policy`` keys (``rate`` is records per second,
#: used to turn ``max_latency_ms`` into a window size).
FLUSH_POLICY_KEYS = ("max_records", "max_bytes", "max_latency_ms", "rate")


def lint_flush_policy(
    spec: TraceSpec, policy: dict, path: str = "<spec>"
) -> list[Diagnostic]:
    """Check a streaming flush policy against the spec (code ``TC026``).

    ``policy`` maps :data:`FLUSH_POLICY_KEYS` to positive integers.  The
    effective flush window — the fewest records between durable chunk
    boundaries — is the tightest of ``max_records``, ``max_bytes``
    divided by the record size, and the records arriving within
    ``max_latency_ms`` at ``rate`` records/second.  Windows under
    :data:`MIN_FLUSH_WINDOW_RECORDS` records warn: container v4 resets
    all predictor state at each chunk boundary, so tiny chunks pay the
    full table cold-start over and over and compress badly.
    """
    record_bytes = sum(f.bits for f in spec.fields) // 8
    windows: list[tuple[int, str]] = []
    max_records = policy.get("max_records")
    if max_records is not None:
        windows.append((int(max_records), f"max_records={max_records}"))
    max_bytes = policy.get("max_bytes")
    if max_bytes is not None and record_bytes:
        windows.append(
            (
                int(max_bytes) // record_bytes,
                f"max_bytes={max_bytes} over {record_bytes}-byte records",
            )
        )
    latency = policy.get("max_latency_ms")
    rate = policy.get("rate")
    if latency is not None and rate is not None:
        windows.append(
            (
                int(latency) * int(rate) // 1000,
                f"max_latency_ms={latency} at {rate} records/s",
            )
        )
    if not windows:
        return []
    window, cause = min(windows)
    if window >= MIN_FLUSH_WINDOW_RECORDS:
        return []
    return [
        Diagnostic(
            path, *_DEFAULT_SPAN, "TC026", Severity.WARNING,
            f"flush policy yields chunks of about {window} records "
            f"({cause}), below the {MIN_FLUSH_WINDOW_RECORDS}-record "
            f"floor: per-chunk predictor resets leave the tables cold "
            f"and the chunks compress poorly",
        )
    ]


def _lint_parsed(spec: TraceSpec, spans: _SpanMap, path: str) -> list[Diagnostic]:
    out: list[Diagnostic] = []

    def add(span: Span, code: str, severity: Severity, message: str) -> None:
        out.append(Diagnostic(path, span[0], span[1], code, severity, message))

    # -- field numbering (TC001/TC002) --------------------------------------
    seen: set[int] = set()
    duplicates = False
    for position, fld in enumerate(spec.fields):
        if fld.index in seen:
            duplicates = True
            add(
                spans.field(position).decl, "TC001", Severity.ERROR,
                f"field {fld.index} is declared more than once",
            )
        seen.add(fld.index)
    if not duplicates and sorted(seen) != list(range(1, len(spec.fields) + 1)):
        add(
            spans.field(0).decl, "TC002", Severity.ERROR,
            f"field numbers must be consecutive starting at 1, "
            f"got {[f.index for f in spec.fields]}",
        )

    # -- header (TC004) -------------------------------------------------------
    if spec.header_bits % 8:
        add(
            spans.header or _DEFAULT_SPAN, "TC004", Severity.ERROR,
            f"header width {spec.header_bits} is not a multiple of 8 bits",
        )

    # -- PC definition (TC010/TC011/TC024) -----------------------------------
    pc_span = spans.pc or _DEFAULT_SPAN
    pc_exists = any(f.index == spec.pc_field for f in spec.fields)
    if not pc_exists:
        add(
            pc_span, "TC010", Severity.ERROR,
            f"PC definition names field {spec.pc_field}, which does not exist",
        )
    if len(spec.fields) > 1 and all(
        f.l1_size == 1 for f in spec.fields if f.index != spec.pc_field
    ):
        add(
            pc_span, "TC024", Severity.INFO,
            "every non-PC field has L1 = 1, so the PC value indexes no table",
        )

    # -- per-field checks -----------------------------------------------------
    for position, fld in enumerate(spec.fields):
        fspans = spans.field(position)
        where = f"field {fld.index}"
        if fld.bits not in ALLOWED_FIELD_BITS:
            add(
                fspans.decl, "TC003", Severity.ERROR,
                f"{where}: width must be one of {ALLOWED_FIELD_BITS} bits, "
                f"got {fld.bits}",
            )
        if not fld.predictors:
            add(
                fspans.decl, "TC007", Severity.ERROR,
                f"{where}: at least one predictor is required",
            )
        for size, name, span in (
            (fld.l1, "L1", fspans.l1),
            (fld.l2, "L2", fspans.l2),
        ):
            if size is None:
                continue
            span = span or fspans.decl
            if not _is_power_of_two(size):
                add(
                    span, "TC005", Severity.ERROR,
                    f"{where}: {name} = {size} is not a power of two",
                )
            elif size > MAX_TABLE_LINES:
                add(
                    span, "TC006", Severity.ERROR,
                    f"{where}: {name} = {size} exceeds the "
                    f"{MAX_TABLE_LINES}-line limit",
                )
        if fld.l1 == DEFAULT_L1 and not (pc_exists and fld.index == spec.pc_field):
            add(
                fspans.l1 or fspans.decl, "TC025", Severity.INFO,
                f"{where}: L1 = {DEFAULT_L1} repeats the default",
            )
        if fld.l2 == DEFAULT_L2:
            add(
                fspans.l2 or fspans.decl, "TC025", Severity.INFO,
                f"{where}: L2 = {DEFAULT_L2} repeats the default",
            )
        if pc_exists and fld.index == spec.pc_field and fld.l1_size != 1:
            add(
                fspans.l1 or fspans.decl, "TC011", Severity.ERROR,
                f"{where} holds the PC, so its L1 size must be 1 "
                f"(got {fld.l1_size})",
            )
        _lint_predictors(fld, fspans, where, add)

    # -- vectorizability (TC028) ---------------------------------------------
    # Mirrors repro.ir.vector at the spec level: a field's compress loop
    # vectorizes when every predictor is a pure last-value predictor and
    # the L1 line index is constant (single line, or the PC field).
    def _vectorizes(fld) -> bool:
        return all(p.kind is PredictorKind.LV for p in fld.predictors) and (
            fld.l1_size == 1 or (pc_exists and fld.index == spec.pc_field)
        )

    if (
        spec.fields
        and all(f.predictors for f in spec.fields)
        and not any(_vectorizes(f) for f in spec.fields)
    ):
        add(
            spans.field(0).decl, "TC028", Severity.INFO,
            "every field carries a hash-table predictor or a per-record L1 "
            "line index, so no field vectorizes: backend=\"numpy\" degrades "
            "to per-field scalar loops and backend=\"auto\" will not pick it",
        )
    return out


def _lint_predictors(fld, fspans: _FieldSpans, where: str, add) -> None:
    l2_valid = fld.l2 is None or _is_power_of_two(fld.l2)
    for slot, pred in enumerate(fld.predictors):
        span = fspans.predictor(slot)
        if pred.kind is not PredictorKind.LV and not 1 <= pred.order <= MAX_ORDER:
            detail = (
                "an order-0 context predicts from no history"
                if pred.order < 1
                else f"orders above {MAX_ORDER} are not supported"
            )
            add(
                span, "TC008", Severity.ERROR,
                f"{where}: {pred} order must be in 1..{MAX_ORDER} ({detail})",
            )
        if not 1 <= pred.depth <= MAX_DEPTH:
            add(
                span, "TC009", Severity.ERROR,
                f"{where}: {pred} depth must be in 1..{MAX_DEPTH}",
            )
        if (
            pred.kind is not PredictorKind.LV
            and pred.order >= 1
            and l2_valid
            and fld.l2_size << (pred.order - 1) > MAX_TABLE_LINES
        ):
            add(
                span, "TC006", Severity.ERROR,
                f"{where}: {pred} needs an L2 table of "
                f"{fld.l2_size << (pred.order - 1)} lines, exceeding the "
                f"{MAX_TABLE_LINES}-line limit",
            )
        # Degenerate type minimization: an order-x context over a w-bit
        # field has at most 2**(w*x) distinct values; index space beyond
        # that can never be reached, so the L2 lines are dead weight.
        if (
            pred.kind is not PredictorKind.LV
            and pred.order >= 1
            and l2_valid
            and fld.bits * pred.order < (fld.l2_size << (pred.order - 1)).bit_length() - 1
        ):
            contexts = 1 << (fld.bits * pred.order)
            add(
                span, "TC022", Severity.WARNING,
                f"{where}: {pred} has {fld.l2_size << (pred.order - 1)} L2 "
                f"lines but only {contexts} distinct order-{pred.order} "
                f"contexts exist for a {fld.bits}-bit field",
            )
        # Aliasing/domination against every earlier predictor.
        for earlier in fld.predictors[:slot]:
            if earlier.kind is pred.kind and earlier.order == pred.order:
                if pred.kind is PredictorKind.LV:
                    if pred.depth <= earlier.depth:
                        add(
                            span, "TC021", Severity.WARNING,
                            f"{where}: {pred} re-reads last-value slots "
                            f"already predicted by {earlier} and can never "
                            f"win the code selection",
                        )
                elif pred.depth <= earlier.depth:
                    add(
                        span, "TC020", Severity.WARNING,
                        f"{where}: {pred} aliases the shared table of "
                        f"{earlier} (identical updates, identical "
                        f"predictions) and can never win the code selection",
                    )
                break
