"""``python -m repro.lint`` — run the repository lint self-check."""

from repro.lint.selfcheck import main

if __name__ == "__main__":
    raise SystemExit(main())
