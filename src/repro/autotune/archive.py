"""Self-describing adaptive archives (the paper's Section 7.5 proposal)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompressedFormatError
from repro.model.optimize import OptimizationOptions
from repro.runtime.engine import TraceEngine
from repro.runtime.stats import UsageReport
from repro.spec.ast import FieldSpec, TraceSpec
from repro.spec.canonical import format_spec
from repro.spec.parser import parse_spec
from repro.spec.presets import tcgen_a, tcgen_b
from repro.tio.blockio import ByteReader, ByteWriter

#: Archive magic ("TCgen Adaptive").
MAGIC = b"TCGA"

#: Predictors whose codes together serve less than this share of records
#: are dropped during usage-based refinement.
PRUNE_THRESHOLD = 0.02


@dataclass
class AdaptiveResult:
    """Outcome of an adaptive compression: archive plus provenance."""

    archive: bytes
    spec: TraceSpec
    candidate_sizes: dict[str, int]  # canonical spec text -> blob size

    @property
    def spec_text(self) -> str:
        return format_spec(self.spec)


def default_candidates() -> list[TraceSpec]:
    """A cheap-to-wide ladder of configurations for the evaluation format.

    Ordered so that earlier (cheaper) candidates win ties.
    """
    minimal = parse_spec(
        "TCgen Trace Specification;\n"
        "32-Bit Header;\n"
        "32-Bit Field 1 = {L1 = 1, L2 = 65536: FCM2[2]};\n"
        "64-Bit Field 2 = {L1 = 65536, L2 = 65536: DFCM1[2], LV[2]};\n"
        "PC = Field 1;\n"
    )
    return [minimal, tcgen_a(), tcgen_b()]


def prune_by_usage(spec: TraceSpec, usage: UsageReport, threshold: float = PRUNE_THRESHOLD) -> TraceSpec:
    """Drop predictors whose prediction codes are nearly unused.

    Implements the paper's recommendation to "eliminate the useless
    predictors as determined by the predictor usage information output
    after each compression".  Every field keeps at least its most-used
    predictor.
    """
    new_fields = []
    for field, field_usage in zip(spec.fields, usage.fields):
        total = max(field_usage.records, 1)
        hits_per_predictor = []
        code = 0
        for predictor in field.predictors:
            hits = sum(
                field_usage.counts[code + slot] for slot in range(predictor.depth)
            )
            hits_per_predictor.append(hits)
            code += predictor.depth
        kept = tuple(
            predictor
            for predictor, hits in zip(field.predictors, hits_per_predictor)
            if hits / total >= threshold
        )
        if not kept:
            best = max(
                range(len(field.predictors)), key=lambda i: hits_per_predictor[i]
            )
            kept = (field.predictors[best],)
        new_fields.append(
            FieldSpec(
                bits=field.bits, index=field.index, predictors=kept,
                l1=field.l1, l2=field.l2,
            )
        )
    return TraceSpec(
        header_bits=spec.header_bits, fields=tuple(new_fields), pc_field=spec.pc_field
    )


def _pack_archive(spec: TraceSpec, blob: bytes) -> bytes:
    writer = ByteWriter()
    writer.write_bytes(MAGIC)
    text = format_spec(spec).encode()
    writer.write_varint(len(text))
    writer.write_bytes(text)
    writer.write_bytes(blob)
    return writer.getvalue()


def read_archive_spec(archive: bytes) -> tuple[TraceSpec, bytes]:
    """Split an adaptive archive into its specification and payload."""
    reader = ByteReader(archive)
    if reader.read_bytes(4) != MAGIC:
        raise CompressedFormatError("not a TCgen adaptive archive")
    length = reader.read_varint()
    text = reader.read_bytes(length).decode()
    spec = parse_spec(text)
    payload = archive[reader.position :]
    return spec, payload


def compress_adaptive(
    raw: bytes,
    candidates: list[TraceSpec] | None = None,
    options: OptimizationOptions | None = None,
    codec: str = "bzip2",
    refine: bool = True,
    *,
    chunk_records: int | str | None = None,
    workers: int | None = None,
    executor: str | None = None,
    backend: str = "auto",
) -> AdaptiveResult:
    """Pick the best specification for this trace and embed it.

    Tries every candidate, then (with ``refine``) additionally prunes the
    best candidate's unused predictors using the usage feedback and keeps
    the pruned variant if it does not lose compression.  Ties go to the
    configuration with the smaller predictor-table footprint.

    ``chunk_records``, ``workers``, and ``executor`` are forwarded to
    every candidate's :meth:`~repro.runtime.engine.TraceEngine.compress`
    call, so candidate evaluation runs on the parallel pipeline and the
    winning payload can be a chunked v3 container (salvageable with
    :func:`salvage_adaptive`).  The winner is chosen on the same settings
    the archive is written with, keeping the embedded payload identical
    to the measured one.  ``backend`` picks the kernel stage for every
    candidate run (``"auto"``/``"python"``/``"native"``); candidate sizes
    and the winning payload are byte-identical for every backend.
    """
    candidates = candidates or default_candidates()
    options = options or OptimizationOptions.full()

    def run(spec: TraceSpec) -> tuple[bytes, UsageReport]:
        engine = TraceEngine(spec, options, codec=codec, backend=backend)
        blob = engine.compress(
            raw, chunk_records=chunk_records, workers=workers, executor=executor
        )
        return blob, engine.last_usage

    sizes: dict[str, int] = {}
    best_spec: TraceSpec | None = None
    best_blob: bytes | None = None
    best_usage: UsageReport | None = None
    for spec in candidates:
        blob, usage = run(spec)
        sizes[format_spec(spec)] = len(blob)
        if best_blob is None or len(blob) < len(best_blob):
            best_spec, best_blob, best_usage = spec, blob, usage

    if refine and best_usage is not None:
        pruned = prune_by_usage(best_spec, best_usage)
        if pruned != best_spec:
            blob, _ = run(pruned)
            sizes[format_spec(pruned)] = len(blob)
            if len(blob) <= len(best_blob):
                best_spec, best_blob = pruned, blob

    return AdaptiveResult(
        archive=_pack_archive(best_spec, best_blob),
        spec=best_spec,
        candidate_sizes=sizes,
    )


def decompress_adaptive(
    archive: bytes,
    options: OptimizationOptions | None = None,
    codec: str = "bzip2",
    *,
    workers: int | None = None,
    executor: str | None = None,
    backend: str = "auto",
) -> bytes:
    """Regenerate the matching decompressor from the embedded spec and run it."""
    spec, payload = read_archive_spec(archive)
    engine = TraceEngine(
        spec, options or OptimizationOptions.full(), codec=codec, backend=backend
    )
    return engine.decompress(payload, workers=workers, executor=executor)


def salvage_adaptive(
    archive: bytes,
    options: OptimizationOptions | None = None,
    codec: str = "bzip2",
    *,
    workers: int | None = None,
    executor: str | None = None,
    backend: str = "auto",
):
    """Best-effort decode of a damaged adaptive archive.

    Like :func:`decompress_adaptive` but runs the embedded decompressor in
    salvage mode: damaged chunks of a v3 payload are skipped instead of
    failing the whole decode.  Returns ``(recovered_bytes, report)`` where
    ``report`` is the engine's :class:`~repro.tio.container.DecodeReport`.
    The archive preamble (magic + embedded spec) has no redundancy, so
    damage there still raises :class:`CompressedFormatError`.
    """
    spec, payload = read_archive_spec(archive)
    engine = TraceEngine(
        spec, options or OptimizationOptions.full(), codec=codec, backend=backend
    )
    recovered = engine.decompress(
        payload, workers=workers, executor=executor, mode="salvage"
    )
    return recovered, engine.last_report
