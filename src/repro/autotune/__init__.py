"""Per-trace predictor optimization with self-describing archives.

The paper's Section 7.5 closes with a proposal it leaves as future work:

    "the above approach could be used to optimize the predictor selection
    for each trace individually.  Doing so would require the inclusion of
    the predictor configuration in the compressed trace so that a
    suitable decompressor can be generated when a trace needs to be read.
    This would incur an overhead of a few tens of bytes and about a
    second of CPU time to synthesize and compile the decompressor."

This package implements that proposal:

- :func:`compress_adaptive` tries candidate specifications (a default
  ladder from cheap to wide, plus a usage-pruned refinement of the best
  candidate), picks the smallest output, and embeds the winning
  specification's canonical text in the archive;
- :func:`decompress_adaptive` reads the embedded specification, generates
  a matching decompressor on the fly, and reconstructs the trace;
- :func:`salvage_adaptive` does the same in salvage mode, skipping
  damaged chunks of a v3 payload and returning the engine's
  :class:`~repro.tio.container.DecodeReport` alongside the bytes.

Both compression and decompression accept ``workers=`` (and
``compress_adaptive`` additionally ``chunk_records=``) so adaptive
archives ride the same parallel pipeline and chunked v3 container as the
direct engine API.

The embedded configuration costs a few tens of bytes (the canonical spec
text, usually < 200 characters) and regenerating the decompressor costs a
few milliseconds — both exactly in the ballpark the paper predicted.
"""

from repro.autotune.archive import (
    AdaptiveResult,
    compress_adaptive,
    decompress_adaptive,
    default_candidates,
    prune_by_usage,
    read_archive_spec,
    salvage_adaptive,
)

__all__ = [
    "AdaptiveResult",
    "compress_adaptive",
    "decompress_adaptive",
    "default_candidates",
    "prune_by_usage",
    "read_archive_spec",
    "salvage_adaptive",
]
