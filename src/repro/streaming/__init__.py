"""Crash-safe streaming compression: the container v4 writer.

The paper's generated compressors run offline — read a whole trace, emit a
whole container.  This package provides the live-capture mode: a
:class:`StreamingCompressor` accepts raw trace bytes incrementally and
appends self-framed v4 chunk frames (see :mod:`repro.tio.streamv4`) to a
file, so a crash at any byte loses at most the records that were never
flushed.  Every ``flush()`` makes a durable promise — the returned
:class:`StreamWatermark` names exactly the records, bytes, and chunks that
will survive any subsequent failure (with ``fsync=True`` in the policy,
even power loss).

Flush timing is governed by a :class:`FlushPolicy`:

- ``max_records`` — flush once this many complete records are pending,
- ``max_bytes`` — flush once the pending raw bytes reach this size,
- ``max_latency_ms`` — a record never waits longer than this before it is
  durable; the writer tracks the deadline and callers poll
  :meth:`StreamingCompressor.latency_due` (the server's stream loop uses
  its socket read timeout for this),
- ``fsync`` — call ``os.fsync`` after every flush so the watermark holds
  across power loss, not just process death.

``close()`` appends the optional trailer (fast seeks for readers) and is
the only way to mark a stream complete; a crashed writer leaves an *open*
stream that :meth:`TraceEngine.open_stream(..., resume=True)
<repro.runtime.engine.TraceEngine.open_stream>` recovers — any torn tail
is truncated back to the last durable frame boundary and writing
continues with the next chunk index.

Predictor state resets at every chunk boundary exactly as in v2/v3, which
is what lets each flush compress independently — and lets the native
kernel's ``compress_chunk`` entry point be reused unchanged, one flushed
chunk at a time.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.errors import CompressedFormatError, StreamClosedError
from repro.tio.container import ContainerChunk, StreamPayload
from repro.tio.skipindex import (
    ChunkSummary,
    SkipIndex,
    encode_index_frame,
    summarize_raw,
)
from repro.tio.streamv4 import (
    encode_chunk_frame,
    encode_prologue,
    encode_trailer,
    scan_stream,
)
from repro.tio.traceformat import TraceFormat, unpack_records

__all__ = ["FlushPolicy", "StreamWatermark", "StreamingCompressor"]


@dataclass(frozen=True)
class FlushPolicy:
    """When a streaming compressor turns buffered records into durable chunks.

    All three triggers are optional and combine with OR; with none set the
    stream flushes only on explicit ``flush()``/``close()`` or when the
    chunk-record cap fills.  ``fsync`` upgrades every flush from
    crash-durable (survives the process dying) to power-loss-durable.
    """

    max_records: int | None = None
    max_bytes: int | None = None
    max_latency_ms: int | None = None
    fsync: bool = False

    def __post_init__(self) -> None:
        for name in ("max_records", "max_bytes", "max_latency_ms"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise ValueError(f"{name} must be a positive int or None, got {value!r}")


@dataclass(frozen=True)
class StreamWatermark:
    """A durable point in a stream: what is promised to survive a crash.

    ``records`` counts trace records inside flushed chunk frames,
    ``bytes`` is the durable file length, and ``chunks`` the number of
    flushed frames (also the next frame's index).  Watermarks from one
    stream are totally ordered; the server acks one per flush so clients
    can resume from the greatest ack after a dropped connection.
    """

    records: int
    bytes: int
    chunks: int

    def as_dict(self) -> dict:
        return {"records": self.records, "bytes": self.bytes, "chunks": self.chunks}


class StreamingCompressor:
    """Incremental v4 writer over a :class:`~repro.runtime.engine.TraceEngine`.

    Construct via :meth:`TraceEngine.open_stream
    <repro.runtime.engine.TraceEngine.open_stream>`.  ``sink`` is a
    filesystem path or a writable binary file object (which must also be
    readable and seekable when ``resume=True``).

    Lifecycle::

        stream = engine.open_stream(path, policy=FlushPolicy(max_latency_ms=50))
        stream.append(raw_bytes)        # buffers; flushes when policy fires
        mark = stream.flush()           # explicit durable point
        mark = stream.close()           # trailer + final durable point

    A stream that was never ``close()``d is *open*: every flushed chunk is
    recoverable (strict and salvage decode both accept it) and
    ``resume=True`` continues it.  Partial record bytes at the tail of the
    internal buffer are never written — a frame always ends on a record
    boundary, which is what makes the watermark exact.
    """

    def __init__(
        self,
        engine,
        sink,
        *,
        chunk_records: int,
        policy: FlushPolicy | None = None,
        resume: bool = False,
        skip_index: bool = False,
    ) -> None:
        if not isinstance(chunk_records, int) or chunk_records < 1:
            raise ValueError(f"chunk_records must be a positive int, got {chunk_records!r}")
        self.engine = engine
        self.policy = policy or FlushPolicy()
        self.chunk_records = chunk_records
        fmt = engine.format
        self._record_bytes = fmt.record_bytes
        self._chunk_format = (
            TraceFormat(header_bits=0, field_bits=fmt.field_bits, pc_field=fmt.pc_field)
            if fmt.header_bits
            else fmt
        )
        self._header_want = fmt.header_bytes
        self._header = bytearray()
        self._body = bytearray()
        self._prologue_written = False
        self._next_index = 0
        self._records = 0
        self._durable_bytes = 0
        self._unflushed = 0  # bytes written to the file but not yet flushed
        self._table: list[tuple[int, int]] = []
        self._first_pending: float | None = None
        self._closed = False
        # Skip-index accumulation: one summary per flushed chunk, written
        # as a TCIX frame just before the trailer at close().  Chunks that
        # were already durable when a stream was resumed get unsummarized
        # placeholders — the raw bytes are gone, the query planner simply
        # scans those chunks.
        self._indexing = skip_index
        self._summaries: list[ChunkSummary] = []

        if isinstance(sink, (str, os.PathLike)):
            path = os.fspath(sink)
            self._file = open(path, "r+b" if resume else "wb")
            self._owns_file = True
        else:
            self._file = sink
            self._owns_file = False

        try:
            if resume:
                self._resume()
        except BaseException:
            if self._owns_file:
                self._file.close()
            raise

    # -- construction helpers ------------------------------------------------

    def _resume(self) -> None:
        """Recover an interrupted stream: keep the durable prefix, drop the tear."""
        self._file.seek(0)
        blob = self._file.read()
        scan = scan_stream(blob, expected_fingerprint=self.engine.model.fingerprint())
        if scan.closed:
            raise StreamClosedError(
                "stream is already closed (trailer present); nothing to resume"
            )
        expected_globals = 1 if self._header_want else 0
        if len(scan.global_streams) != expected_globals:
            raise CompressedFormatError(
                f"stream carries {len(scan.global_streams)} global streams, "
                f"this format wants {expected_globals}"
            )
        if scan.data_end < len(blob):
            # Torn tail from the crash: cut back to the last frame boundary.
            self._file.truncate(scan.data_end)
            self._file.flush()
            if self.policy.fsync:
                self._fsync()
        self._file.seek(scan.data_end)
        # The prologue fixed the chunk-record cap for the whole stream;
        # whatever the caller asked for now, the file wins.
        self.chunk_records = scan.chunk_records
        self._header_want = 0  # header (if any) is already durable
        self._prologue_written = True
        self._next_index = scan.chunk_count
        self._records = scan.records
        self._durable_bytes = scan.data_end
        self._table = [(count, end - start) for (_, count, start, end) in scan.frames]
        if self._indexing:
            self._summaries = [
                ChunkSummary(count, None) for (_, count, _, _) in scan.frames
            ]

    # -- inspection ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def watermark(self) -> StreamWatermark:
        """The last durable point (what a crash right now would preserve)."""
        return StreamWatermark(
            records=self._records, bytes=self._durable_bytes, chunks=self._next_index
        )

    @property
    def pending_records(self) -> int:
        """Complete records buffered but not yet flushed."""
        return len(self._body) // self._record_bytes

    @property
    def pending_bytes(self) -> int:
        """Raw bytes buffered but not yet flushed (header + records + tail)."""
        header = 0 if self._prologue_written else len(self._header)
        return header + len(self._body)

    def latency_due(self, now: float | None = None) -> bool:
        """True when ``max_latency_ms`` has elapsed for a pending record."""
        deadline = self.next_deadline()
        if deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= deadline

    def next_deadline(self) -> float | None:
        """Monotonic time by which the pending records must be flushed."""
        if self.policy.max_latency_ms is None or self._first_pending is None:
            return None
        return self._first_pending + self.policy.max_latency_ms / 1000.0

    # -- the write path ------------------------------------------------------

    def append(self, data: bytes) -> StreamWatermark:
        """Buffer raw trace bytes; flush whenever the policy fires.

        The first ``header_bytes`` of the stream form the trace header
        (written with the prologue as the global stream); everything after
        is record bytes.  Data may be sliced at arbitrary byte positions —
        partial records simply wait in the buffer.  Returns the current
        (possibly advanced) durable watermark.
        """
        self._check_open()
        view = memoryview(data)
        missing = self._header_want - len(self._header)
        if missing > 0:
            take = min(missing, len(view))
            self._header += view[:take]
            view = view[take:]
        if view:
            self._body += view
            if self._first_pending is None and self.pending_records:
                self._first_pending = time.monotonic()
        self._write_prologue_if_ready()

        policy = self.policy
        if (
            (policy.max_records is not None and self.pending_records >= policy.max_records)
            or (policy.max_bytes is not None and len(self._body) >= policy.max_bytes)
            or self.pending_records >= self.chunk_records
            or self.latency_due()
        ):
            return self.flush()
        return self.watermark

    def flush(self) -> StreamWatermark:
        """Make every complete pending record durable; return the watermark.

        Pending records drain into one or more chunk frames of at most
        ``chunk_records`` records each (predictor state resets per frame).
        Partial trailing record bytes stay buffered.  A flush with nothing
        complete to write is a no-op that still flushes file buffers.
        """
        self._check_open()
        self._write_prologue_if_ready()
        record_bytes = self._record_bytes
        while len(self._body) >= record_bytes:
            count = min(len(self._body) // record_bytes, self.chunk_records)
            take = count * record_bytes
            chunk_raw = bytes(self._body[:take])
            del self._body[:take]
            if self._indexing:
                self._summaries.append(summarize_raw(self._chunk_format, chunk_raw))
            frame = self._encode_frame(chunk_raw, count)
            self._file.write(frame)
            self._unflushed += len(frame)
            self._table.append((count, len(frame)))
            self._next_index += 1
            self._records += count
        # Whatever remains is a partial record: the latency clock restarts
        # when a future append completes it into a pending record.
        self._first_pending = None
        self._make_durable()
        return self.watermark

    def close(self) -> StreamWatermark:
        """Flush, append the seek trailer, and mark the stream complete.

        Raises :class:`~repro.errors.CompressedFormatError` if the header
        never completed or partial record bytes remain — a closed stream
        is always an exact whole trace.
        """
        self._check_open()
        if self._header_want and len(self._header) < self._header_want:
            raise CompressedFormatError(
                f"cannot close: trace header incomplete "
                f"({len(self._header)}/{self._header_want} bytes)"
            )
        self.flush()
        if self._body:
            raise CompressedFormatError(
                f"cannot close: {len(self._body)} trailing bytes do not form "
                f"a whole {self._record_bytes}-byte record"
            )
        if self._indexing and self._summaries:
            index = SkipIndex(
                field_count=len(self._chunk_format.field_bits),
                chunks=self._summaries,
            )
            frame = encode_index_frame(index)
            self._file.write(frame)
            self._unflushed += len(frame)
        trailer = encode_trailer(self._records, self._table)
        self._file.write(trailer)
        self._unflushed += len(trailer)
        self._make_durable()
        self._closed = True
        if self._owns_file:
            self._file.close()
        return self.watermark

    def abort(self) -> None:
        """Stop writing without a trailer; the stream stays open/resumable."""
        if self._closed:
            return
        self._closed = True
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "StreamingCompressor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            if not self._closed:
                self.close()
        else:
            self.abort()

    # -- internals -----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("stream is closed")

    def _write_prologue_if_ready(self) -> None:
        if self._prologue_written:
            return
        if self._header_want and len(self._header) < self._header_want:
            return
        engine = self.engine
        globals_: list[StreamPayload] = []
        if self._header_want:
            raw = bytes(self._header)
            globals_.append(
                StreamPayload(
                    codec_id=engine.codec.codec_id,
                    raw_length=len(raw),
                    data=engine.codec.compress(raw),
                )
            )
        prologue = encode_prologue(
            engine.model.fingerprint(), self.chunk_records, globals_
        )
        self._file.write(prologue)
        self._unflushed += len(prologue)
        self._prologue_written = True

    def _encode_frame(self, chunk_raw: bytes, count: int) -> bytes:
        """Compress one chunk of raw records into a self-framed v4 chunk."""
        engine = self.engine
        decision = engine._backend()
        if decision.kernel is not None:
            # Chunk-at-a-time native reuse: the compiled kernel's existing
            # compress_chunk entry point — no ABI change.
            streams, usage = decision.kernel.compress_chunk(chunk_raw)
        else:
            from repro.runtime.engine import _compress_chunk

            _, columns = unpack_records(self._chunk_format, chunk_raw, copy=False)
            streams, usage = _compress_chunk(engine.model, engine.update_policy, columns)
        payloads = [
            StreamPayload(
                codec_id=engine.codec.codec_id,
                raw_length=len(stream),
                data=engine.codec.compress(stream),
            )
            for stream in streams
        ]
        chunk = ContainerChunk(record_count=count, streams=payloads)
        return encode_chunk_frame(self._next_index, chunk)

    def _make_durable(self) -> None:
        if self._unflushed:
            self._durable_bytes += self._unflushed
            self._unflushed = 0
        self._file.flush()
        if self.policy.fsync:
            self._fsync()

    def _fsync(self) -> None:
        try:
            fd = self._file.fileno()
        except (AttributeError, OSError, ValueError):
            return  # in-memory sink: nothing OS-level to sync
        os.fsync(fd)
