"""SEQUITUR grammar-based compression (Nevill-Manning & Witten), adapted.

SEQUITUR infers a context-free grammar from a sequence online, maintaining
two invariants: every digram (pair of adjacent symbols) appears at most
once in the grammar (*digram uniqueness*), and every rule is used more
than once (*rule utility*).  Repeated structure condenses into rules,
compressing the sequence.

The paper's adaptations, reproduced here:

- 64-bit trace entries are mapped to unique dense symbol ids;
- two grammars are built, one over the PC entries and one over the data
  entries;
- to cap the (input-dependent) memory usage, a new grammar segment is
  started when the current one grows past configurable symbol/unique-value
  limits — the scaled-down analog of the paper's 8M-unique-symbol /
  384MB cutoffs;
- decompression (grammar expansion) is included;
- a BZIP2 post-compression stage follows.
"""

from __future__ import annotations

from repro.baselines.common import (
    TraceCompressor,
    join_trace,
    post_compress,
    post_decompress,
    split_trace,
)
from repro.errors import CompressedFormatError
from repro.tio.blockio import ByteReader, ByteWriter

_TAG = b"SQT1"


class _Symbol:
    """A grammar symbol in a doubly linked rule body.

    ``terminal`` holds the value id for terminals; ``rule`` points to the
    referenced :class:`_Rule` for nonterminals; guard symbols delimit rule
    bodies and have ``guard_of`` set.
    """

    __slots__ = ("grammar", "next", "prev", "terminal", "rule", "guard_of")

    def __init__(self, grammar: "Grammar", terminal=None, rule=None, guard_of=None):
        self.grammar = grammar
        self.next: "_Symbol | None" = None
        self.prev: "_Symbol | None" = None
        self.terminal = terminal
        self.rule: "_Rule | None" = rule
        self.guard_of: "_Rule | None" = guard_of
        if rule is not None:
            rule.count += 1

    # -- classification ----------------------------------------------------

    def is_guard(self) -> bool:
        return self.guard_of is not None

    def is_nonterminal(self) -> bool:
        return self.rule is not None

    def key(self):
        """Hashable identity used in the digram index."""
        if self.rule is not None:
            return ("r", self.rule.id)
        return ("t", self.terminal)

    # -- linking -----------------------------------------------------------

    def join(self, right: "_Symbol") -> None:
        """Link ``self -> right``, retiring any digram ``self`` started."""
        if self.next is not None:
            self.delete_digram(repair_overlap=True)
        self.next = right
        right.prev = self

    def delete_digram(self, repair_overlap: bool = False) -> None:
        """Remove the digram starting at ``self`` from the index.

        With ``repair_overlap`` (the relink path, where ``self`` survives
        with a new right neighbour), a same-key overlapping predecessor
        occurrence — the unindexed middle of a run like "aaa" — inherits
        the index entry, so digram uniqueness keeps holding after the
        indexed occurrence is retired.
        """
        if self.is_guard() or self.next is None or self.next.is_guard():
            return
        digrams = self.grammar.digrams
        key = (self.key(), self.next.key())
        if digrams.get(key) is self:
            del digrams[key]
            if repair_overlap:
                prev = self.prev
                if (
                    prev is not None
                    and not prev.is_guard()
                    and (prev.key(), self.key()) == key
                ):
                    digrams[key] = prev

    def insert_after(self, symbol: "_Symbol") -> None:
        symbol.join(self.next)
        self.join(symbol)

    def unlink(self) -> None:
        """Remove ``self`` from its rule, maintaining the digram index."""
        self.prev.join(self.next)
        if not self.is_guard():
            self.delete_digram()
            # Overlap repair: in a run "aaa" only the first "aa" is
            # indexed.  When that indexed occurrence dies, the surviving
            # overlapping occurrence (starting at our old right
            # neighbour) must take its place, or a later "aa" elsewhere
            # is never matched and digram uniqueness silently breaks.
            follower = self.next
            if (
                follower is not None
                and not follower.is_guard()
                and follower.next is not None
                and not follower.next.is_guard()
                and self.key() == follower.key() == follower.next.key()
            ):
                self.grammar.digrams.setdefault(
                    (follower.key(), follower.next.key()), follower
                )
            if self.rule is not None:
                self.rule.count -= 1

    # -- the two invariants --------------------------------------------------

    def check(self) -> bool:
        """Enforce digram uniqueness for the digram starting at ``self``."""
        if self.is_guard() or self.next is None or self.next.is_guard():
            return False
        digrams = self.grammar.digrams
        key = (self.key(), self.next.key())
        match = digrams.get(key)
        if match is None:
            digrams[key] = self
            return False
        if match is self or match.next is self:
            # The same or an overlapping occurrence (e.g. "aaa").
            return False
        self._process_match(match)
        return True

    def _process_match(self, match: "_Symbol") -> None:
        grammar = self.grammar
        if match.prev.is_guard() and match.next.next.is_guard():
            # The matching digram is a complete rule body: reuse that rule.
            rule = match.prev.guard_of
            self._substitute(rule)
        else:
            rule = _Rule(grammar)
            rule.append(_Symbol(grammar, terminal=self.terminal, rule=self.rule))
            rule.append(
                _Symbol(grammar, terminal=self.next.terminal, rule=self.next.rule)
            )
            match._substitute(rule)
            self._substitute(rule)
            first = rule.first()
            grammar.digrams[(first.key(), first.next.key())] = first
        # Rule utility: a rule referenced exactly once gets inlined.  Any
        # rule that just became under-used necessarily has its remaining
        # reference inside ``rule``'s (two-symbol) body, so scanning the
        # body until it is clean restores the invariant.  (The original
        # C++ implementation checks only the first body symbol and can
        # leave a once-used rule behind when it sits in the second slot.)
        expanded = True
        while expanded:
            expanded = False
            symbol = rule.first()
            while not symbol.is_guard():
                if symbol.is_nonterminal() and symbol.rule.count == 1:
                    symbol.expand()
                    expanded = True
                    break
                symbol = symbol.next

    def _substitute(self, rule: "_Rule") -> None:
        """Replace the digram starting at ``self`` with a rule reference."""
        grammar = self.grammar
        prev = self.prev
        self.unlink()
        prev.next.unlink()
        replacement = _Symbol(grammar, rule=rule)
        prev.insert_after(replacement)
        if not prev.check():
            replacement.check()

    def expand(self) -> None:
        """Inline this (sole) reference to its rule (rule utility)."""
        rule = self.rule
        left = self.prev
        right = self.next
        first = rule.first()
        last = rule.last()
        self.delete_digram()
        digrams = self.grammar.digrams
        key = (self.key(), right.key()) if not right.is_guard() else None
        if key is not None and digrams.get(key) is self:
            del digrams[key]
        self.grammar.rules.discard(rule)
        left.join(first)
        last.join(right)
        if not last.is_guard() and not right.is_guard():
            digrams[(last.key(), right.key())] = last


class _Rule:
    """One grammar rule: a circular list of symbols around a guard."""

    def __init__(self, grammar: "Grammar") -> None:
        self.id = grammar.next_rule_id
        grammar.next_rule_id += 1
        self.count = 0  # references from other rules
        self.guard = _Symbol(grammar, guard_of=self)
        self.guard.next = self.guard
        self.guard.prev = self.guard
        grammar.rules.add(self)

    def first(self) -> _Symbol:
        return self.guard.next

    def last(self) -> _Symbol:
        return self.guard.prev

    def append(self, symbol: _Symbol) -> None:
        self.last().insert_after(symbol)


class Grammar:
    """An online SEQUITUR grammar over integer symbols."""

    def __init__(self) -> None:
        self.digrams: dict = {}
        self.rules: set[_Rule] = set()
        self.next_rule_id = 0
        self.start = _Rule(self)
        self.symbol_count = 0

    def push(self, value: int) -> None:
        """Append one terminal to the sequence and restore the invariants."""
        self.start.append(_Symbol(self, terminal=value))
        last = self.start.last()
        if last.prev is not self.start.guard:
            last.prev.check()
        self.symbol_count += 1

    # -- introspection used by tests -----------------------------------------

    def rule_bodies(self) -> dict[int, list]:
        """Map rule id -> list of symbol keys (terminals and rule refs)."""
        bodies: dict[int, list] = {}
        for rule in self.rules:
            body = []
            symbol = rule.first()
            while not symbol.is_guard():
                body.append(symbol.key())
                symbol = symbol.next
            bodies[rule.id] = body
        return bodies

    def expand_start(self) -> list[int]:
        """The full sequence the grammar represents."""
        out: list[int] = []
        stack = [self.start.first()]
        while stack:
            symbol = stack.pop()
            while symbol is not None and not symbol.is_guard():
                if symbol.is_nonterminal():
                    stack.append(symbol.next)
                    symbol = symbol.rule.first()
                    continue
                out.append(symbol.terminal)
                symbol = symbol.next
        return out


def _serialize_grammar(grammar: Grammar, writer: ByteWriter) -> None:
    """Emit one grammar: rule count, then each body as symbol codes.

    Terminals encode as ``value_id * 2`` and rule references as
    ``dense_rule_number * 2 + 1``; the start rule is rule number 0.
    """
    order: list[_Rule] = [grammar.start]
    numbers: dict[int, int] = {grammar.start.id: 0}
    cursor = 0
    while cursor < len(order):
        rule = order[cursor]
        cursor += 1
        symbol = rule.first()
        while not symbol.is_guard():
            if symbol.is_nonterminal() and symbol.rule.id not in numbers:
                numbers[symbol.rule.id] = len(order)
                order.append(symbol.rule)
            symbol = symbol.next
    writer.write_varint(len(order))
    for rule in order:
        body: list[int] = []
        symbol = rule.first()
        while not symbol.is_guard():
            if symbol.is_nonterminal():
                body.append(numbers[symbol.rule.id] * 2 + 1)
            else:
                body.append(symbol.terminal * 2)
            symbol = symbol.next
        writer.write_varint(len(body))
        for code in body:
            writer.write_varint(code)


def _deserialize_sequence(reader: ByteReader) -> list[int]:
    """Read one grammar and expand it to its value-id sequence."""
    rule_count = reader.read_varint()
    bodies: list[list[int]] = []
    for _ in range(rule_count):
        length = reader.read_varint()
        bodies.append([reader.read_varint() for _ in range(length)])
    if not bodies:
        return []
    out: list[int] = []
    # Iterative expansion of rule 0 (stack of (body, position) frames).
    stack: list[tuple[list[int], int]] = [(bodies[0], 0)]
    while stack:
        body, position = stack.pop()
        while position < len(body):
            code = body[position]
            position += 1
            if code & 1:
                rule_number = code >> 1
                if rule_number >= len(bodies):
                    raise CompressedFormatError(
                        f"SEQUITUR: rule {rule_number} out of range"
                    )
                stack.append((body, position))
                body, position = bodies[rule_number], 0
                continue
            out.append(code >> 1)
    return out


class SequiturCompressor(TraceCompressor):
    """SEQUITUR over PC and data entry sequences with BZIP2 post-stage."""

    name = "SEQUITUR"

    def __init__(
        self, max_symbols_per_grammar: int = 1 << 20, max_unique_values: int = 1 << 18
    ) -> None:
        self.max_symbols = max_symbols_per_grammar
        self.max_unique = max_unique_values

    def _compress_sequence(self, values: list[int], writer: ByteWriter) -> None:
        """Build grammar segments over ``values`` and serialize them."""
        value_ids: dict[int, int] = {}
        table: list[int] = []
        segments: list[Grammar] = []
        grammar = Grammar()
        segment_unique = 0
        for value in values:
            value_id = value_ids.get(value)
            if value_id is None:
                value_id = len(table)
                value_ids[value] = value_id
                table.append(value)
                segment_unique += 1
            grammar.push(value_id)
            if (
                grammar.symbol_count >= self.max_symbols
                or segment_unique >= self.max_unique
            ):
                segments.append(grammar)
                grammar = Grammar()
                segment_unique = 0
        if grammar.symbol_count or not segments:
            segments.append(grammar)
        writer.write_varint(len(table))
        for value in table:
            writer.write_u64(value)
        writer.write_varint(len(segments))
        for segment in segments:
            _serialize_grammar(segment, writer)

    def _decompress_sequence(self, reader: ByteReader) -> list[int]:
        table_size = reader.read_varint()
        table = [reader.read_u64() for _ in range(table_size)]
        segment_count = reader.read_varint()
        out: list[int] = []
        for _ in range(segment_count):
            for value_id in _deserialize_sequence(reader):
                if value_id >= len(table):
                    raise CompressedFormatError("SEQUITUR: value id out of range")
                out.append(table[value_id])
        return out

    def compress(self, raw: bytes) -> bytes:
        header, pcs, data = split_trace(raw)
        writer = ByteWriter()
        writer.write_bytes(header)
        writer.write_varint(len(pcs))
        self._compress_sequence(pcs, writer)
        self._compress_sequence(data, writer)
        return post_compress(_TAG, writer.getvalue())

    def decompress(self, blob: bytes) -> bytes:
        reader = ByteReader(post_decompress(_TAG, blob))
        header = reader.read_bytes(4)
        count = reader.read_varint()
        pcs = self._decompress_sequence(reader)
        data = self._decompress_sequence(reader)
        if len(pcs) != count or len(data) != count:
            raise CompressedFormatError(
                f"SEQUITUR: expected {count} records, got {len(pcs)} PCs "
                f"and {len(data)} data values"
            )
        return join_trace(header, pcs, data)
