"""Common interface and helpers for the comparison compressors."""

from __future__ import annotations

from abc import ABC, abstractmethod
import bz2

import numpy as np

from repro.errors import CompressedFormatError
from repro.tio.traceformat import VPC_FORMAT, pack_records, unpack_records


class TraceCompressor(ABC):
    """A single-pass, lossless trace compressor (paper Section 2.1).

    All implementations consume and produce raw trace bytes in the
    evaluation format (:data:`~repro.tio.traceformat.VPC_FORMAT`):
    ``compress(decompress(blob)) == blob`` framing is private per
    algorithm, but ``decompress(compress(raw)) == raw`` always holds.
    """

    #: Short display name used in result tables.
    name: str = "abstract"

    @abstractmethod
    def compress(self, raw: bytes) -> bytes:
        """Compress raw trace bytes into an opaque blob."""

    @abstractmethod
    def decompress(self, blob: bytes) -> bytes:
        """Reconstruct the exact original trace bytes."""


def split_trace(raw: bytes) -> tuple[bytes, list[int], list[int]]:
    """Split a VPC-format trace into (header, pc list, data list)."""
    header, columns = unpack_records(VPC_FORMAT, raw)
    return bytes(header), columns[0].tolist(), columns[1].tolist()


def join_trace(header: bytes, pcs: list[int], data: list[int]) -> bytes:
    """Inverse of :func:`split_trace`."""
    return pack_records(
        VPC_FORMAT,
        header,
        [np.array(pcs, dtype=np.uint64), np.array(data, dtype=np.uint64)],
    )


def post_compress(tag: bytes, payload: bytes) -> bytes:
    """Apply the shared BZIP2 post-compression stage with a format tag."""
    return tag + bz2.compress(payload, 9)


def post_decompress(tag: bytes, blob: bytes) -> bytes:
    """Undo :func:`post_compress`, validating the format tag."""
    if blob[: len(tag)] != tag:
        raise CompressedFormatError(
            f"blob does not start with tag {tag!r} (got {blob[:len(tag)]!r})"
        )
    return bz2.decompress(blob[len(tag) :])


def all_baselines() -> list[TraceCompressor]:
    """Fresh instances of the six comparison algorithms, paper order."""
    from repro.baselines.bzip2_only import Bzip2Compressor
    from repro.baselines.mache import MacheCompressor
    from repro.baselines.pdats import PdatsCompressor
    from repro.baselines.sbc import SbcCompressor
    from repro.baselines.sequitur import SequiturCompressor
    from repro.baselines.vpc3 import Vpc3Compressor

    return [
        Bzip2Compressor(),
        MacheCompressor(),
        PdatsCompressor(),
        SequiturCompressor(),
        SbcCompressor(),
        Vpc3Compressor(),
    ]


def all_compressors(
    chunk_records: int | str | None = None,
    workers: int = 1,
    backend: str = "auto",
) -> list[TraceCompressor]:
    """The six baselines plus the TCgen(A) generated compressor.

    ``chunk_records``, ``workers``, and ``backend`` configure only the
    TCgen entry: a chunked (v2) container, a parallel post-compression
    stage, and the kernel-stage backend (python or in-process native).
    The baselines ignore them, so the comparison stays apples-to-apples
    on the input side.
    """
    from repro.baselines.tcgen import TCgenCompressor

    return all_baselines() + [
        TCgenCompressor(
            chunk_records=chunk_records, workers=workers, backend=backend
        )
    ]
