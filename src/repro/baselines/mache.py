"""MACHE trace compaction (Samples 1989), adapted as in the paper.

MACHE keeps one *base* per entry type and emits each entry either as a
one-byte difference from the base or, when the difference does not fit, as
an escape byte followed by the full value.  The paper's adaptations, kept
here:

- PC and data entries alternate in the trace format, so no type labels are
  needed;
- for PC entries the base is updated only when a full address is emitted
  (the original policy);
- for data entries the base is *always* updated, which handles the
  frequently encountered stride behaviour much better.

A BZIP2 post-compression stage is applied, as for every special-purpose
algorithm in the evaluation.
"""

from __future__ import annotations

from repro.baselines.common import (
    TraceCompressor,
    join_trace,
    post_compress,
    post_decompress,
    split_trace,
)
from repro.errors import CompressedFormatError

_TAG = b"MCH1"
#: Escape byte announcing a full value; differences use the remaining
#: 255 byte values, biased by 128 (so representable deltas are -128..126).
_ESCAPE = 0xFF
_BIAS = 128
_MASK64 = (1 << 64) - 1
_MASK32 = (1 << 32) - 1


def _encode_entry(out: bytearray, value: int, base: int, width: int) -> bool:
    """Emit one entry; return True when a full value (escape) was written."""
    mask = _MASK32 if width == 4 else _MASK64
    delta = (value - base) & mask
    # Interpret the delta as signed and test the single-byte range.
    if delta > mask // 2:
        delta -= mask + 1
    if -_BIAS <= delta < _ESCAPE - _BIAS:
        out.append(delta + _BIAS)
        return False
    out.append(_ESCAPE)
    out += value.to_bytes(width, "little")
    return True


class MacheCompressor(TraceCompressor):
    """MACHE with the paper's base-update policies and BZIP2 post-stage."""

    name = "MACHE"

    def compress(self, raw: bytes) -> bytes:
        header, pcs, data = split_trace(raw)
        out = bytearray()
        out += header
        pc_base = 0
        data_base = 0
        for pc, value in zip(pcs, data):
            if _encode_entry(out, pc, pc_base, 4):
                pc_base = pc  # original policy: update on escape only
            _encode_entry(out, value, data_base, 8)
            data_base = value  # paper's adaptation: always update
        return post_compress(_TAG, bytes(out))

    def decompress(self, blob: bytes) -> bytes:
        encoded = post_decompress(_TAG, blob)
        header = encoded[:4]
        pos = 4
        pcs: list[int] = []
        data: list[int] = []
        pc_base = 0
        data_base = 0
        length = len(encoded)
        while pos < length:
            byte = encoded[pos]
            pos += 1
            if byte == _ESCAPE:
                pc = int.from_bytes(encoded[pos : pos + 4], "little")
                pos += 4
                pc_base = pc
            else:
                pc = (pc_base + byte - _BIAS) & _MASK32
            if pos >= length:
                raise CompressedFormatError("MACHE stream ends mid-record")
            byte = encoded[pos]
            pos += 1
            if byte == _ESCAPE:
                value = int.from_bytes(encoded[pos : pos + 8], "little")
                pos += 8
            else:
                value = (data_base + byte - _BIAS) & _MASK64
            data_base = value
            pcs.append(pc)
            data.append(value)
        return join_trace(header, pcs, data)
