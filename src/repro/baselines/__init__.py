"""The six comparison compressors from the paper's Section 2.1.

Every baseline implements :class:`~repro.baselines.common.TraceCompressor`
and operates on the evaluation trace format (32-bit header, records of a
32-bit PC and a 64-bit data value).  As in the paper, each special-purpose
algorithm is adapted to this format and extended with a BZIP2
post-compression stage; BZIP2 itself is evaluated standalone.

====================  ====================================================
:class:`Bzip2Compressor`      general-purpose block-sorting baseline
:class:`MacheCompressor`      base + one-byte differences (Samples 1989)
:class:`PdatsCompressor`      PDATS II header-byte offset records
:class:`SequiturCompressor`   digram-unique context-free grammars
:class:`SbcCompressor`        stream-based compression (Milenkovic 2003)
:class:`Vpc3Compressor`       value-prediction compressor TCgen emulates
:class:`TCgenCompressor`      this paper's generated compressor
====================  ====================================================
"""

from repro.baselines.common import TraceCompressor, all_baselines, all_compressors
from repro.baselines.bzip2_only import Bzip2Compressor
from repro.baselines.mache import MacheCompressor
from repro.baselines.pdats import PdatsCompressor
from repro.baselines.sbc import SbcCompressor
from repro.baselines.sequitur import SequiturCompressor
from repro.baselines.tcgen import TCgenCompressor
from repro.baselines.vpc3 import Vpc3Compressor

__all__ = [
    "TraceCompressor",
    "all_baselines",
    "all_compressors",
    "Bzip2Compressor",
    "MacheCompressor",
    "PdatsCompressor",
    "SbcCompressor",
    "SequiturCompressor",
    "TCgenCompressor",
    "Vpc3Compressor",
]
