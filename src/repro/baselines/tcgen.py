"""The TCgen-generated compressor, wrapped in the comparison interface.

This is the paper's artifact under evaluation: the *generated* compressor
(Python backend) for a given specification with full optimizations.  The
default configuration is TCgen(A) (paper Figure 5); pass
``spec=tcgen_b()`` for the TCgen(B) sensitivity configuration, or any
custom :class:`~repro.spec.TraceSpec`.
"""

from __future__ import annotations

from repro.baselines.common import TraceCompressor
from repro.codegen.compile import load_python_module
from repro.codegen.python_backend import generate_python
from repro.model.layout import build_model
from repro.model.optimize import OptimizationOptions
from repro.spec.ast import TraceSpec
from repro.spec.presets import tcgen_a


class TCgenCompressor(TraceCompressor):
    """A generated TCgen compressor (default: TCgen(A), fully optimized)."""

    name = "TCgen"

    def __init__(
        self,
        spec: TraceSpec | None = None,
        options: OptimizationOptions | None = None,
        name: str | None = None,
        chunk_records: int | str | None = None,
        workers: int = 1,
        backend: str = "auto",
    ) -> None:
        spec = spec or tcgen_a()
        self.model = build_model(spec, options or OptimizationOptions.full())
        self._module = load_python_module(generate_python(self.model))
        self.chunk_records = chunk_records
        self.workers = workers
        self.backend = backend
        if name:
            self.name = name

    def compress(self, raw: bytes) -> bytes:
        return self._module.compress(
            raw,
            chunk_records=self.chunk_records,
            workers=self.workers,
            backend=self.backend,
        )

    def decompress(self, blob: bytes) -> bytes:
        return self._module.decompress(
            blob, workers=self.workers, backend=self.backend
        )

    def usage_report(self) -> str:
        """Predictor-usage feedback from the most recent compression."""
        return self._module.usage_report()
