"""VPC3 (Burtscher 2004): the algorithm TCgen emulates and improves.

VPC3 is the fixed-configuration value-prediction compressor the paper uses
as its starting point.  It is exactly the TCgen(A) predictor configuration
(paper Figure 5) run with VPC3's original policies: predictor tables are
*always* updated (no smart update) and the hash uses the fixed one-bit
shift (no small-field adaptation).  The differences between this baseline
and :class:`~repro.baselines.tcgen.TCgenCompressor` are therefore
precisely the paper's Section 5.3 algorithmic enhancements.

Like the original (a hand-optimized C tool), this baseline runs as
compiled specialized code — the generated-Python backend with VPC3's
policies — rather than the generic interpreted engine, so speed
comparisons against TCgen isolate the *algorithmic* differences.
"""

from __future__ import annotations

from repro.baselines.common import TraceCompressor
from repro.codegen.compile import load_python_module
from repro.codegen.python_backend import generate_python
from repro.model.layout import build_model
from repro.model.optimize import OptimizationOptions
from repro.spec.presets import tcgen_a


class Vpc3Compressor(TraceCompressor):
    """VPC3: the Figure 5 configuration with always-update policies."""

    name = "VPC3"

    def __init__(self) -> None:
        model = build_model(tcgen_a(), OptimizationOptions.vpc3())
        self._module = load_python_module(generate_python(model))

    def compress(self, raw: bytes) -> bytes:
        return self._module.compress(raw)

    def decompress(self, blob: bytes) -> bytes:
        return self._module.decompress(blob)
