"""PDATS II address-trace compression (Johnson 1999), paper-adapted.

Every output record describes one or more input records with a header byte
followed by optional offset bytes and an optional repeat count:

- *PC offsets* are stored in units of the default instruction stride
  (4 bytes), in 0, 1, 2, or 4 bytes (code in header bits 0-1);
- *data offsets* use header bits 2-5: six codes for the common offsets
  ±16, ±32 and ±64 the paper packs into the header byte, a zero-offset
  code, and sized codes for 1-, 2-, 4-, 6- and 8-byte signed offsets
  (the 6- and 8-byte extensions are the paper's);
- *repeat counts*: runs of records with identical PC and data deltas
  collapse into one record (PDATS II's combined jump + strided-sequence
  records); header bits 6-7 select a 0-, 1-, 2-, or 4-byte count.

Read and write references are not distinguished (the paper's traces have
only one reference type, freeing the header bit used for the ±16/32/64
codes).  A BZIP2 post-compression stage follows.
"""

from __future__ import annotations

from repro.baselines.common import (
    TraceCompressor,
    join_trace,
    post_compress,
    post_decompress,
    split_trace,
)
from repro.errors import CompressedFormatError

_TAG = b"PDT2"
_MASK64 = (1 << 64) - 1
_MASK32 = (1 << 32) - 1

#: Data-offset codes 0..5 are these common offsets, stored entirely in the
#: header byte; 6 = zero offset; 7..11 = 1/2/4/6/8-byte signed offsets.
_SPECIAL_OFFSETS = (16, -16, 32, -32, 64, -64)
_DATA_SIZED_BYTES = {7: 1, 8: 2, 9: 4, 10: 6, 11: 8}

#: PC-offset codes: units of the 4-byte instruction stride.
_PC_SIZED_BYTES = {1: 1, 2: 2, 3: 4}


def _signed(value: int, mask: int) -> int:
    """Reinterpret a masked unsigned delta as signed."""
    if value > mask // 2:
        return value - mask - 1
    return value


def _fits(value: int, nbytes: int) -> bool:
    limit = 1 << (8 * nbytes - 1)
    return -limit <= value < limit


class PdatsCompressor(TraceCompressor):
    """PDATS II with the paper's modifications and BZIP2 post-stage."""

    name = "PDATS II"

    def compress(self, raw: bytes) -> bytes:
        header, pcs, data = split_trace(raw)
        out = bytearray()
        out += header
        count = len(pcs)
        prev_pc = 0
        prev_data = 0
        i = 0
        while i < count:
            pc_delta = _signed((pcs[i] - prev_pc) & _MASK32, _MASK32)
            data_delta = _signed((data[i] - prev_data) & _MASK64, _MASK64)
            # Run detection: identical (pc, data) deltas repeat.
            run = 1
            rp, rd = pcs[i], data[i]
            while i + run < count:
                next_pc_delta = _signed((pcs[i + run] - rp) & _MASK32, _MASK32)
                next_data_delta = _signed((data[i + run] - rd) & _MASK64, _MASK64)
                if next_pc_delta != pc_delta or next_data_delta != data_delta:
                    break
                rp, rd = pcs[i + run], data[i + run]
                run += 1
            repeats = run - 1

            pc_code, pc_payload = self._encode_pc_delta(pc_delta, pcs[i])
            data_code, data_payload = self._encode_data_delta(data_delta)
            if repeats == 0:
                repeat_code, repeat_payload = 0, b""
            elif repeats < 1 << 8:
                repeat_code, repeat_payload = 1, repeats.to_bytes(1, "little")
            elif repeats < 1 << 16:
                repeat_code, repeat_payload = 2, repeats.to_bytes(2, "little")
            else:
                repeat_code, repeat_payload = 3, repeats.to_bytes(4, "little")

            out.append(pc_code | (data_code << 2) | (repeat_code << 6))
            out += pc_payload
            out += data_payload
            out += repeat_payload

            prev_pc, prev_data = rp, rd
            i += run
        return post_compress(_TAG, bytes(out))

    def _encode_pc_delta(self, delta: int, pc: int) -> tuple[int, bytes]:
        if delta % 4 == 0:
            units = delta // 4
            for code, nbytes in _PC_SIZED_BYTES.items():
                if _fits(units, nbytes):
                    return code, (units & ((1 << (8 * nbytes)) - 1)).to_bytes(
                        nbytes, "little"
                    )
        # Unaligned or huge jump: code 0 stores the absolute 4-byte PC.
        return 0, pc.to_bytes(4, "little")

    def _encode_data_delta(self, delta: int) -> tuple[int, bytes]:
        if delta == 0:
            return 6, b""
        for code, special in enumerate(_SPECIAL_OFFSETS):
            if delta == special:
                return code, b""
        for code, nbytes in _DATA_SIZED_BYTES.items():
            if _fits(delta, nbytes):
                return code, (delta & ((1 << (8 * nbytes)) - 1)).to_bytes(
                    nbytes, "little"
                )
        raise AssertionError("64-bit offsets always fit in 8 bytes")

    def decompress(self, blob: bytes) -> bytes:
        encoded = post_decompress(_TAG, blob)
        header = encoded[:4]
        pos = 4
        length = len(encoded)
        pcs: list[int] = []
        data: list[int] = []
        prev_pc = 0
        prev_data = 0
        while pos < length:
            head = encoded[pos]
            pos += 1
            pc_code = head & 0x3
            data_code = (head >> 2) & 0xF
            repeat_code = (head >> 6) & 0x3

            if pc_code == 0:
                pc = int.from_bytes(encoded[pos : pos + 4], "little")
                pos += 4
                pc_delta = _signed((pc - prev_pc) & _MASK32, _MASK32)
            else:
                nbytes = _PC_SIZED_BYTES[pc_code]
                units = _signed(
                    int.from_bytes(encoded[pos : pos + nbytes], "little"),
                    (1 << (8 * nbytes)) - 1,
                )
                pos += nbytes
                pc_delta = units * 4
                pc = (prev_pc + pc_delta) & _MASK32

            if data_code < 6:
                data_delta = _SPECIAL_OFFSETS[data_code]
            elif data_code == 6:
                data_delta = 0
            elif data_code in _DATA_SIZED_BYTES:
                nbytes = _DATA_SIZED_BYTES[data_code]
                data_delta = _signed(
                    int.from_bytes(encoded[pos : pos + nbytes], "little"),
                    (1 << (8 * nbytes)) - 1,
                )
                pos += nbytes
            else:
                raise CompressedFormatError(f"PDATS II: bad data code {data_code}")
            value = (prev_data + data_delta) & _MASK64

            if repeat_code == 0:
                repeats = 0
            else:
                nbytes = {1: 1, 2: 2, 3: 4}[repeat_code]
                repeats = int.from_bytes(encoded[pos : pos + nbytes], "little")
                pos += nbytes

            pcs.append(pc)
            data.append(value)
            for _ in range(repeats):
                pc = (pc + pc_delta) & _MASK32
                value = (value + data_delta) & _MASK64
                pcs.append(pc)
                data.append(value)
            prev_pc, prev_data = pc, value
        return join_trace(header, pcs, data)
