"""Standalone BZIP2 (paper Section 2.1).

The general-purpose block-sorting baseline: the whole raw trace is handed
to BZIP2 at byte granularity with the ``--best`` block size, with no
trace-aware preprocessing at all.
"""

from __future__ import annotations

import bz2

from repro.baselines.common import TraceCompressor


class Bzip2Compressor(TraceCompressor):
    """BZIP2 1.0-style compression of the raw trace bytes."""

    name = "BZIP2"

    def compress(self, raw: bytes) -> bytes:
        return bz2.compress(raw, 9)

    def decompress(self, blob: bytes) -> bytes:
        return bz2.decompress(blob)
