"""Stream-Based Compression (Milenkovic & Milenkovic 2003), paper-adapted.

SBC splits a trace into *instruction streams* and replaces groups of
records belonging to the same stream with a stream-table index; data
addresses attached to a stream are compressed with per-slot stride
prediction.  The paper's adaptation for traces that contain only some
instructions, kept here: a stream is a maximal sequence in which each
subsequent PC is strictly greater than the previous one and the difference
between subsequent PCs is below a threshold of four instructions (16
bytes), which the authors found to give the best compression rate.

Compression state per stream-table entry and per slot in the stream is the
last data address and the last stride; a data value that equals
``last + stride`` costs one flag bit-byte, anything else emits the full
value and retrains the stride.  The encoded streams (stream ids, new
stream definitions, flags, and missed values) pass through the shared
BZIP2 post-compression stage.
"""

from __future__ import annotations

from repro.baselines.common import (
    TraceCompressor,
    join_trace,
    post_compress,
    post_decompress,
    split_trace,
)
from repro.errors import CompressedFormatError
from repro.tio.blockio import ByteReader, ByteWriter

_TAG = b"SBC1"
_MASK64 = (1 << 64) - 1

#: Maximum PC gap (bytes) inside one instruction stream: four instructions.
_STREAM_GAP = 16


def _split_streams(pcs: list[int]) -> list[tuple[int, int]]:
    """Split record indices into (start, length) runs forming streams."""
    runs: list[tuple[int, int]] = []
    count = len(pcs)
    start = 0
    while start < count:
        end = start + 1
        while (
            end < count
            and pcs[end] > pcs[end - 1]
            and pcs[end] - pcs[end - 1] <= _STREAM_GAP
        ):
            end += 1
        runs.append((start, end - start))
        start = end
    return runs


class _StreamEntry:
    """Stream-table entry: the PC signature plus per-slot stride state."""

    __slots__ = ("pcs", "last_values", "strides")

    def __init__(self, pcs: tuple[int, ...]) -> None:
        self.pcs = pcs
        self.last_values = [0] * len(pcs)
        self.strides = [0] * len(pcs)

    def predict(self, slot: int) -> int:
        return (self.last_values[slot] + self.strides[slot]) & _MASK64

    def train(self, slot: int, value: int) -> None:
        self.strides[slot] = (value - self.last_values[slot]) & _MASK64
        self.last_values[slot] = value


class SbcCompressor(TraceCompressor):
    """SBC with the paper's redefined streams and BZIP2 post-stage."""

    name = "SBC"

    def compress(self, raw: bytes) -> bytes:
        header, pcs, data = split_trace(raw)
        runs = _split_streams(pcs)

        table: dict[tuple[int, ...], int] = {}
        entries: list[_StreamEntry] = []
        ids = ByteWriter()  # stream index sequence (varints)
        definitions = ByteWriter()  # new stream signatures
        flags = bytearray()  # one byte per record: 1 = stride predicted
        misses = ByteWriter()  # full values for unpredicted data

        for start, length in runs:
            signature = tuple(pcs[start : start + length])
            index = table.get(signature)
            if index is None:
                index = len(entries)
                table[signature] = index
                entries.append(_StreamEntry(signature))
                ids.write_varint(0)  # 0 announces a new stream definition
                definitions.write_varint(length)
                for pc in signature:
                    definitions.write_u32(pc)
            else:
                ids.write_varint(index + 1)
            entry = entries[index]
            for slot in range(length):
                value = data[start + slot]
                if value == entry.predict(slot):
                    flags.append(1)
                else:
                    flags.append(0)
                    misses.write_u64(value)
                entry.train(slot, value)

        writer = ByteWriter()
        writer.write_bytes(header)
        writer.write_varint(len(pcs))
        writer.write_varint(len(runs))
        for section in (ids, definitions, misses):
            payload = section.getvalue()
            writer.write_varint(len(payload))
            writer.write_bytes(payload)
        writer.write_varint(len(flags))
        writer.write_bytes(bytes(flags))
        return post_compress(_TAG, writer.getvalue())

    def decompress(self, blob: bytes) -> bytes:
        reader = ByteReader(post_decompress(_TAG, blob))
        header = reader.read_bytes(4)
        record_count = reader.read_varint()
        run_count = reader.read_varint()
        sections = []
        for _ in range(3):
            length = reader.read_varint()
            sections.append(ByteReader(reader.read_bytes(length)))
        ids, definitions, misses = sections
        flag_count = reader.read_varint()
        flags = reader.read_bytes(flag_count)

        entries: list[_StreamEntry] = []
        pcs: list[int] = []
        data: list[int] = []
        flag_pos = 0
        for _ in range(run_count):
            token = ids.read_varint()
            if token == 0:
                length = definitions.read_varint()
                signature = tuple(definitions.read_u32() for _ in range(length))
                entries.append(_StreamEntry(signature))
                entry = entries[-1]
            else:
                if token > len(entries):
                    raise CompressedFormatError(f"SBC: stream id {token} out of range")
                entry = entries[token - 1]
            for slot, pc in enumerate(entry.pcs):
                if flag_pos >= flag_count:
                    raise CompressedFormatError("SBC: flag stream exhausted")
                predicted = flags[flag_pos]
                flag_pos += 1
                if predicted:
                    value = entry.predict(slot)
                else:
                    value = misses.read_u64()
                entry.train(slot, value)
                pcs.append(pc)
                data.append(value)
        if len(pcs) != record_count:
            raise CompressedFormatError(
                f"SBC: reconstructed {len(pcs)} records, expected {record_count}"
            )
        return join_trace(header, pcs, data)
