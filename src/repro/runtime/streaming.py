"""Streaming access to compressed traces.

Section 7.2 of the paper observes that TCgen decompresses faster than many
disks and networks deliver, "suggesting that it may be faster to drive
simulators and other trace-consumption tools by TCgen rather than from an
uncompressed file on the hard drive".  This module provides that
consumption path: :func:`iter_records` decodes a compressed container
record by record, yielding field-value tuples without ever materializing
the uncompressed trace bytes.

With a **v2 chunked container** the iteration is additionally lazy at
chunk granularity: a chunk's streams are only post-decompressed when the
iterator reaches it, so stopping early — or starting late via ``start=`` —
never pays for chunks it does not visit.  Predictor state resets at every
chunk boundary, which is what makes mid-trace entry possible: seeking to
record ``n`` replays at most ``chunk_records - 1`` predecessor records
instead of the whole prefix.

Like every kernel-running entry point, :func:`iter_records` accepts
``backend="auto" | "python" | "numpy" | "native"``; ``auto`` resolves
native -> numpy -> python per the dispatch rules in
:mod:`repro.runtime.dispatch`, and the decoded records are identical
for every backend.

Example::

    from repro.runtime.streaming import iter_records
    from repro.cachesim import SetAssociativeCache, CacheConfig

    cache = SetAssociativeCache(CacheConfig(32 * 1024, 64, 4))
    for pc, address in iter_records(spec, blob):
        cache.access(address)
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import CompressedFormatError
from repro.model.layout import build_model
from repro.model.optimize import OptimizationOptions
from repro.postcompress import codec_by_id, decompress_bounded
from repro.runtime.dispatch import resolve_backend, validate_backend
from repro.runtime.kernel import FieldKernel
from repro.spec.ast import TraceSpec
from repro.tio.container import (
    DecodeReport,
    StreamContainer,
    as_chunked,
    decode_container,
)


def iter_records(
    spec: TraceSpec,
    blob: bytes,
    options: OptimizationOptions | None = None,
    start: int = 0,
    *,
    mode: str = "strict",
    report: "DecodeReport | None" = None,
    backend: str = "auto",
) -> Iterator[tuple[int, ...]]:
    """Yield one tuple of field values per record, in record-field order.

    The header bytes (if any) are skipped; use :func:`read_header` when
    they are needed.  State is reconstructed incrementally, so the caller
    can stop early without paying for the rest of the trace: with a
    chunked container, chunks past the stopping point are never
    post-decompressed.

    ``start`` begins the iteration at that record index (0-based).  For a
    chunked container whole chunks before the target are skipped undecoded;
    only the records between the containing chunk's boundary and ``start``
    are replayed (decoded but not yielded) to rebuild predictor state.

    ``mode="salvage"`` degrades gracefully on a damaged container: each
    damaged chunk is skipped and iteration resynchronizes at the next
    intact chunk boundary (chunks reset predictor state, so later chunks
    decode independently of the lost ones).  Pass a
    :class:`~repro.tio.container.DecodeReport` as ``report`` to learn
    which chunks were lost and why.  In salvage mode ``start`` indexes the
    *surviving* record sequence.

    ``backend`` picks the per-chunk kernel stage exactly as in
    :class:`~repro.runtime.engine.TraceEngine`: ``"native"`` decodes each
    visited chunk with the in-process compiled kernel (and raises
    :class:`~repro.errors.NativeBackendError` when it is unavailable),
    ``"auto"`` does so when a compiler is present and falls back to the
    Python kernels otherwise.  Salvage mode always uses the Python
    kernels — damage diagnosis happens in the interpreter.  The yielded
    tuples are identical for every backend.
    """
    if start < 0:
        raise ValueError(f"start must be >= 0, got {start}")
    salvage = mode == "salvage"
    model = build_model(spec, options)
    if salvage:
        validate_backend(backend)
        kernel = None
    else:
        kernel = resolve_backend(backend, model).kernel
    report = report if report is not None else DecodeReport()
    container = decode_container(
        blob, expected_fingerprint=model.fingerprint(), mode=mode, report=report
    )
    header_streams = 1 if model.spec.header_bits else 0
    per_chunk = 2 * len(model.fields)
    if isinstance(container, StreamContainer):
        if len(container.streams) != model.stream_count:
            if salvage:
                if report.recovered_chunks:
                    report.demote(
                        report.recovered_chunks[0],
                        container.record_count,
                        "container stream layout unusable",
                    )
                return
            raise CompressedFormatError(
                f"expected {model.stream_count} streams, found {len(container.streams)}"
            )
        chunked = as_chunked(container, header_streams)
    else:
        chunked = container
        if len(chunked.global_streams) != header_streams and not salvage:
            raise CompressedFormatError(
                f"expected {header_streams} global streams, "
                f"found {len(chunked.global_streams)}"
            )

    # In salvage mode the container holds only the surviving chunks;
    # report.recovered_chunks maps them back to original indices.
    indices = list(report.recovered_chunks) if salvage else range(len(chunked.chunks))
    absolute = 0
    for position, chunk in zip(indices, chunked.chunks):
        if absolute + chunk.record_count <= start:
            absolute += chunk.record_count  # skipped: never post-decompressed
            continue
        if salvage:
            # Decode the whole chunk up front: either every record in it is
            # recovered or the chunk is reported lost — never a partial
            # yield that silently ends mid-chunk.
            try:
                decoded = list(_iter_chunk(model, chunk, position, per_chunk))
            except Exception as exc:
                report.demote(position, chunk.record_count, f"chunk decode failed: {exc}")
                continue
            for record in decoded:
                if absolute >= start:
                    yield record
                absolute += 1
        else:
            records = (
                _iter_chunk_native(model, kernel, chunk, position, per_chunk)
                if kernel is not None
                else _iter_chunk(model, chunk, position, per_chunk)
            )
            for record in records:
                if absolute >= start:
                    yield record
                absolute += 1


_STRUCT_CODES = {1: "B", 2: "H", 4: "I", 8: "Q"}


def _chunk_raw(kernel, chunk, position: int, per_chunk: int) -> bytes:
    """Decode one chunk to raw record bytes via a kernel (native or numpy)."""
    if len(chunk.streams) != per_chunk:
        raise CompressedFormatError(
            f"chunk {position}: expected {per_chunk} streams, "
            f"found {len(chunk.streams)}"
        )
    codes = [_decode(payload) for payload in chunk.streams[0::2]]
    values = [_decode(payload) for payload in chunk.streams[1::2]]
    return kernel.decompress_chunk(chunk.record_count, codes, values)


def _iter_chunk_native(
    model, kernel, chunk, position: int, per_chunk: int
) -> Iterator[tuple[int, ...]]:
    """Decode one chunk with an accelerated kernel, then unpack records."""
    raw = _chunk_raw(kernel, chunk, position, per_chunk)
    fmt = "<" + "".join(_STRUCT_CODES[f.spec.bytes] for f in model.fields)
    return struct.iter_unpack(fmt, raw)


def _iter_chunk(model, chunk, position: int, per_chunk: int) -> Iterator[tuple[int, ...]]:
    """Decode one chunk's records from fresh predictor state."""
    if len(chunk.streams) != per_chunk:
        raise CompressedFormatError(
            f"chunk {position}: expected {per_chunk} streams, "
            f"found {len(chunk.streams)}"
        )
    order = model.process_order
    record_order = [f.index for f in model.fields]
    codes: dict[int, bytes] = {}
    values: dict[int, bytes] = {}
    for layout, stream_pair in zip(
        model.fields,
        zip(chunk.streams[0::2], chunk.streams[1::2]),
    ):
        codes[layout.index] = _decode(stream_pair[0])
        values[layout.index] = _decode(stream_pair[1])
        expected = chunk.record_count * layout.code_bytes
        if len(codes[layout.index]) != expected:
            raise CompressedFormatError(
                f"field {layout.index} code stream holds "
                f"{len(codes[layout.index])} bytes, expected {expected}"
            )

    # Fresh predictor state at the chunk boundary: chunks are
    # independent, which is exactly what makes skip and salvage legal.
    kernels = {f.index: FieldKernel(f, model.options) for f in model.fields}
    value_pos = {f.index: 0 for f in model.fields}

    for i in range(chunk.record_count):
        pc = 0
        current: dict[int, int] = {}
        for layout in order:
            findex = layout.index
            kernel = kernels[findex]
            predictions = kernel.begin(0 if layout.is_pc else pc)
            cb = layout.code_bytes
            code = int.from_bytes(codes[findex][i * cb : (i + 1) * cb], "little")
            if code < layout.miss_code:
                value = predictions[code]
            elif code == layout.miss_code:
                vb = layout.value_bytes
                pos = value_pos[findex]
                piece = values[findex][pos : pos + vb]
                if len(piece) != vb:
                    raise CompressedFormatError(
                        f"field {findex} value stream exhausted at record {i}"
                    )
                value = int.from_bytes(piece, "little") & layout.mask
                value_pos[findex] = pos + vb
            else:
                raise CompressedFormatError(
                    f"field {findex} record {i}: code {code} out of range"
                )
            kernel.commit(value)
            current[findex] = value
            if layout.is_pc:
                pc = value
        yield tuple(current[index] for index in record_order)


def read_header(spec: TraceSpec, blob: bytes) -> bytes:
    """The header bytes stored in a compressed container (b'' if none)."""
    model = build_model(spec)
    container = decode_container(blob, expected_fingerprint=model.fingerprint())
    if not model.spec.header_bits:
        return b""
    chunked = as_chunked(container, 1)
    if not chunked.global_streams:
        raise CompressedFormatError("container holds no header stream")
    header = _decode(chunked.global_streams[0])
    if len(header) != model.spec.header_bytes:
        raise CompressedFormatError(
            f"header stream holds {len(header)} bytes, "
            f"format wants {model.spec.header_bytes}"
        )
    return header


def record_count(spec: TraceSpec, blob: bytes) -> int:
    """Number of records in a compressed container, without decoding them."""
    model = build_model(spec)
    container = decode_container(blob, expected_fingerprint=model.fingerprint())
    return container.record_count


def chunk_count(spec: TraceSpec, blob: bytes) -> int:
    """Number of independent chunks in a container (1 for v1 blobs)."""
    model = build_model(spec)
    container = decode_container(blob, expected_fingerprint=model.fingerprint())
    if isinstance(container, StreamContainer):
        return 1 if container.record_count else 0
    return len(container.chunks)


def _decode(payload) -> bytes:
    codec = codec_by_id(payload.codec_id)
    data = decompress_bounded(codec, payload.data, payload.raw_length)
    if len(data) != payload.raw_length:
        raise CompressedFormatError(
            f"stream decompressed to {len(data)} bytes, expected {payload.raw_length}"
        )
    return data
