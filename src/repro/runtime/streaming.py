"""Streaming access to compressed traces.

Section 7.2 of the paper observes that TCgen decompresses faster than many
disks and networks deliver, "suggesting that it may be faster to drive
simulators and other trace-consumption tools by TCgen rather than from an
uncompressed file on the hard drive".  This module provides that
consumption path: :func:`iter_records` decodes a compressed container
record by record, yielding field-value tuples without ever materializing
the uncompressed trace bytes.

Example::

    from repro.runtime.streaming import iter_records
    from repro.cachesim import SetAssociativeCache, CacheConfig

    cache = SetAssociativeCache(CacheConfig(32 * 1024, 64, 4))
    for pc, address in iter_records(spec, blob):
        cache.access(address)
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import CompressedFormatError
from repro.model.layout import build_model
from repro.model.optimize import OptimizationOptions
from repro.postcompress import codec_by_id
from repro.runtime.kernel import FieldKernel
from repro.spec.ast import TraceSpec
from repro.tio.container import StreamContainer


def iter_records(
    spec: TraceSpec,
    blob: bytes,
    options: OptimizationOptions | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield one tuple of field values per record, in record-field order.

    The header bytes (if any) are skipped; use :func:`read_header` when
    they are needed.  State is reconstructed incrementally, so the caller
    can stop early without paying for the rest of the trace (beyond the
    up-front per-stream post-decompression).
    """
    model = build_model(spec, options)
    container = StreamContainer.decode(blob, expected_fingerprint=model.fingerprint())
    if len(container.streams) != model.stream_count:
        raise CompressedFormatError(
            f"expected {model.stream_count} streams, found {len(container.streams)}"
        )

    cursor = 1 if model.spec.header_bits else 0
    codes: dict[int, bytes] = {}
    values: dict[int, bytes] = {}
    for layout in model.fields:
        codes[layout.index] = _decode(container.streams[cursor])
        values[layout.index] = _decode(container.streams[cursor + 1])
        cursor += 2

    kernels = {f.index: FieldKernel(f, model.options) for f in model.fields}
    value_pos = {f.index: 0 for f in model.fields}
    order = model.process_order
    record_order = [f.index for f in model.fields]

    for i in range(container.record_count):
        pc = 0
        current: dict[int, int] = {}
        for layout in order:
            findex = layout.index
            kernel = kernels[findex]
            predictions = kernel.begin(0 if layout.is_pc else pc)
            cb = layout.code_bytes
            code = int.from_bytes(codes[findex][i * cb : (i + 1) * cb], "little")
            if code < layout.miss_code:
                value = predictions[code]
            elif code == layout.miss_code:
                vb = layout.value_bytes
                pos = value_pos[findex]
                chunk = values[findex][pos : pos + vb]
                if len(chunk) != vb:
                    raise CompressedFormatError(
                        f"field {findex} value stream exhausted at record {i}"
                    )
                value = int.from_bytes(chunk, "little") & layout.mask
                value_pos[findex] = pos + vb
            else:
                raise CompressedFormatError(
                    f"field {findex} record {i}: code {code} out of range"
                )
            kernel.commit(value)
            current[findex] = value
            if layout.is_pc:
                pc = value
        yield tuple(current[index] for index in record_order)


def read_header(spec: TraceSpec, blob: bytes) -> bytes:
    """The header bytes stored in a compressed container (b'' if none)."""
    model = build_model(spec)
    container = StreamContainer.decode(blob, expected_fingerprint=model.fingerprint())
    if not model.spec.header_bits:
        return b""
    header = _decode(container.streams[0])
    if len(header) != model.spec.header_bytes:
        raise CompressedFormatError(
            f"header stream holds {len(header)} bytes, "
            f"format wants {model.spec.header_bytes}"
        )
    return header


def record_count(spec: TraceSpec, blob: bytes) -> int:
    """Number of records in a compressed container, without decoding them."""
    model = build_model(spec)
    container = StreamContainer.decode(blob, expected_fingerprint=model.fingerprint())
    return container.record_count


def _decode(payload) -> bytes:
    codec = codec_by_id(payload.codec_id)
    data = codec.decompress(payload.data)
    if len(data) != payload.raw_length:
        raise CompressedFormatError(
            f"stream decompressed to {len(data)} bytes, expected {payload.raw_length}"
        )
    return data
