"""Predictor-usage statistics.

After each compression TCgen's generated code prints how often every
predictor identification code was used; the paper recommends starting from
a wide predictor selection and pruning the useless ones based on this
feedback (Section 7.5).  :class:`UsageReport` carries the same information
programmatically and renders the same human-readable report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.layout import CompressorModel


@dataclass
class FieldUsage:
    """Hit counts per identification code for one field.

    ``counts[code]`` is how many records used that code; the final slot
    (the miss code) counts unpredictable values.
    """

    field_index: int
    counts: list[int]

    @property
    def records(self) -> int:
        return sum(self.counts)

    @property
    def misses(self) -> int:
        return self.counts[-1]

    @property
    def hit_ratio(self) -> float:
        total = self.records
        return (total - self.misses) / total if total else 0.0


@dataclass
class UsageReport:
    """Per-field usage statistics for one compression run."""

    fields: list[FieldUsage] = field(default_factory=list)

    def render(self, model: CompressorModel) -> str:
        """Human-readable report matching the generated code's output."""
        lines = ["predictor usage:"]
        for usage, layout in zip(self.fields, model.fields):
            lines.append(
                f"  field {usage.field_index} "
                f"({layout.width_bits}-bit{', PC' if layout.is_pc else ''}): "
                f"{usage.hit_ratio:.1%} predicted"
            )
            code = 0
            for resolved in layout.predictors:
                for slot in range(resolved.spec.depth):
                    share = usage.counts[code] / usage.records if usage.records else 0.0
                    lines.append(
                        f"    code {code:2d} {resolved.spec!s:>9s} "
                        f"slot {slot}: {usage.counts[code]:10d} ({share:.1%})"
                    )
                    code += 1
            lines.append(
                f"    code {code:2d} {'miss':>9s}        : "
                f"{usage.counts[code]:10d} ({(usage.misses / usage.records if usage.records else 0.0):.1%})"
            )
        return "\n".join(lines)
