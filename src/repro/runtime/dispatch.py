"""Backend dispatch: choose the Python, NumPy, or native kernel stage.

Every entry point that runs prediction kernels (:class:`TraceEngine`,
streaming, the generated Python modules, the server, ``autotune``)
accepts ``backend="auto" | "python" | "numpy" | "native"``:

- ``"python"`` always runs the pure-Python :class:`FieldKernel` loop;
- ``"numpy"`` runs the columnar chunk kernels
  (:mod:`repro.codegen.numpy_backend`) and raises
  :class:`~repro.errors.NumpyBackendError` when disabled;
- ``"native"`` requires the in-process compiled kernel and raises
  :class:`~repro.errors.NativeBackendError` when it cannot be built or
  loaded;
- ``"auto"`` (the default) tries native first, then numpy when the
  spec's IR-proven vectorizable fraction clears
  :data:`repro.ir.vector.AUTO_NUMPY_THRESHOLD` (a mostly scalar-bound
  spec gains nothing from columnar dispatch overhead), then Python —
  with the reason logged once per resolution and carried in the
  returned decision (surfaced as the ``backend`` label on server
  metrics).

Resolution is the *only* observable difference between backends — the
compressed output is byte-identical every way, so ``backend=`` can only
ever change throughput, never results.
"""

from __future__ import annotations

from dataclasses import dataclass
import logging
from typing import TYPE_CHECKING

from repro.errors import NativeBackendError, NumpyBackendError
from repro.model.layout import CompressorModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.codegen.native import NativeKernel
    from repro.codegen.numpy_backend import NumpyKernel

#: Accepted values for every ``backend=`` parameter.
BACKENDS = ("auto", "python", "numpy", "native")

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class BackendDecision:
    """The resolved backend plus why it was chosen."""

    backend: str  # "python", "numpy", or "native" — never "auto"
    reason: str
    kernel: "NativeKernel | NumpyKernel | None" = None


def validate_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


def resolve_backend(
    requested: str,
    model: CompressorModel,
    update_policy=None,
    compiler: str | None = None,
) -> BackendDecision:
    """Resolve ``auto``/``python``/``numpy``/``native`` to a decision.

    ``update_policy`` forces Python when set: a custom table-update
    policy is an interpreter-only experiment knob the generated C and
    the columnar kernels do not model (both bake in
    ``options.smart_update``).
    """
    validate_backend(requested)
    if requested == "python":
        return BackendDecision(backend="python", reason="requested")
    if update_policy is not None:
        if requested == "native":
            raise NativeBackendError(
                "a custom update_policy requires the python kernels"
            )
        if requested == "numpy":
            raise NumpyBackendError(
                "a custom update_policy requires the python kernels"
            )
        return BackendDecision(
            backend="python",
            reason="custom update_policy requires the python kernels",
        )
    if requested == "numpy":
        from repro.codegen.numpy_backend import load_numpy_kernel

        return BackendDecision(
            backend="numpy", reason="requested", kernel=load_numpy_kernel(model)
        )
    from repro.codegen.native import load_native_kernel

    try:
        kernel = load_native_kernel(model, compiler=compiler)
    except NativeBackendError as exc:
        if requested == "native":
            raise
        return _auto_fallback(model, str(exc))
    return BackendDecision(
        backend="native",
        reason="requested" if requested == "native" else "compiler available, build ok",
        kernel=kernel,
    )


def _auto_fallback(model: CompressorModel, native_reason: str) -> BackendDecision:
    """``auto`` with no native build: numpy when the IR says it pays."""
    from repro.ir.vector import AUTO_NUMPY_THRESHOLD, vectorizable_fraction

    fraction = vectorizable_fraction(model)
    if fraction >= AUTO_NUMPY_THRESHOLD:
        from repro.codegen.numpy_backend import load_numpy_kernel

        try:
            kernel = load_numpy_kernel(model)
        except NumpyBackendError as exc:
            reason = f"{native_reason}; numpy unavailable: {exc}"
            logger.info("falling back to python kernels: %s", reason)
            return BackendDecision(backend="python", reason=reason)
        reason = (
            f"{native_reason}; vectorizable fraction {fraction:.2f} >= "
            f"{AUTO_NUMPY_THRESHOLD:.2f}, using numpy columnar kernels"
        )
        logger.info("native backend unavailable, using numpy: %s", reason)
        return BackendDecision(backend="numpy", reason=reason, kernel=kernel)
    reason = (
        f"{native_reason}; vectorizable fraction {fraction:.2f} < "
        f"{AUTO_NUMPY_THRESHOLD:.2f}, using python kernels"
    )
    logger.info("native backend unavailable, using python: %s", reason)
    return BackendDecision(backend="python", reason=reason)
