"""Backend dispatch: choose the Python or native kernel stage.

Every entry point that runs prediction kernels (:class:`TraceEngine`,
streaming, the generated Python modules, the server, ``autotune``)
accepts ``backend="auto" | "python" | "native"``:

- ``"python"`` always runs the pure-Python :class:`FieldKernel` loop;
- ``"native"`` requires the in-process compiled kernel and raises
  :class:`~repro.errors.NativeBackendError` when it cannot be built or
  loaded;
- ``"auto"`` (the default) tries native and falls back to Python, with
  the reason logged once per resolution and carried in the returned
  decision (surfaced as the ``backend`` label on server metrics).

Resolution is the *only* observable difference between backends — the
compressed output is byte-identical either way, so ``backend=`` can only
ever change throughput, never results.
"""

from __future__ import annotations

from dataclasses import dataclass
import logging
from typing import TYPE_CHECKING

from repro.errors import NativeBackendError
from repro.model.layout import CompressorModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.codegen.native import NativeKernel

#: Accepted values for every ``backend=`` parameter.
BACKENDS = ("auto", "python", "native")

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class BackendDecision:
    """The resolved backend plus why it was chosen."""

    backend: str  # "python" or "native" — never "auto"
    reason: str
    kernel: "NativeKernel | None" = None


def validate_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


def resolve_backend(
    requested: str,
    model: CompressorModel,
    update_policy=None,
    compiler: str | None = None,
) -> BackendDecision:
    """Resolve ``auto``/``python``/``native`` to a concrete decision.

    ``update_policy`` forces Python when set: a custom table-update
    policy is an interpreter-only experiment knob the generated C does
    not model (the generated backends bake in ``options.smart_update``).
    """
    validate_backend(requested)
    if requested == "python":
        return BackendDecision(backend="python", reason="requested")
    if update_policy is not None:
        if requested == "native":
            raise NativeBackendError(
                "a custom update_policy requires the python kernels"
            )
        return BackendDecision(
            backend="python",
            reason="custom update_policy requires the python kernels",
        )
    from repro.codegen.native import load_native_kernel

    try:
        kernel = load_native_kernel(model, compiler=compiler)
    except NativeBackendError as exc:
        if requested == "native":
            raise
        reason = str(exc)
        logger.info("native backend unavailable, using python: %s", reason)
        return BackendDecision(backend="python", reason=reason)
    return BackendDecision(
        backend="native",
        reason="requested" if requested == "native" else "compiler available, build ok",
        kernel=kernel,
    )
