"""The interpreted trace compressor.

:class:`TraceEngine` runs a resolved model directly: it splits the trace
into per-field code and value streams using the prediction kernels, then
post-compresses every stream with the selected general-purpose codec
(BZIP2 by default).  Decompression replays the same kernels to rebuild the
exact original bytes.

Two container formats are supported (see :mod:`repro.tio.container`):

- **v1** (the default): one code and one value stream per field covering
  the whole trace — the format the generated C backend reads and writes;
- **v2** (``chunk_records=``): the trace is split into fixed-size record
  chunks, each with its own streams and fresh predictor state, so chunks
  are fully independent — compressible and decompressible in parallel and
  seekable without decoding their predecessors.

The ``workers=`` option parallelizes the post-compression stage with a
thread pool (``bz2``/``zlib``/``lzma`` release the GIL); the pure-Python
prediction-kernel stage can additionally run chunk-parallel in a process
pool via ``executor="process"``.  Output is byte-identical regardless of
worker count: chunks and streams are always assembled in deterministic
order.

The ``backend=`` option selects the kernel-stage implementation (see
:mod:`repro.runtime.dispatch`): ``"auto"`` (default) compiles the spec's
generated C into an in-process shared library when a compiler is
available, falls back to the NumPy columnar kernels when the spec's
IR-proven vectorizable fraction clears the dispatch threshold, and runs
the pure-Python kernels otherwise; ``"python"``, ``"numpy"``, and
``"native"`` force one implementation.  The choice never changes output
bytes — only throughput.  With the native kernel active the chunk stage
runs thread-parallel (the C code releases the GIL) and chunks are
submitted in batches of :data:`NATIVE_BATCH_CHUNKS` per FFI call to
amortize the crossing cost.  Salvage decode always runs the Python
kernels: it is a recovery path, not a throughput path.

This engine is the reference semantics; the generated Python and C
compressors are specialized versions of this loop and must produce
byte-identical containers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompressedFormatError
from repro.model.layout import CompressorModel, build_model
from repro.model.optimize import OptimizationOptions
from repro.postcompress import codec_by_id, codec_by_name, decompress_bounded
from repro.predictors.tables import UpdatePolicy
from repro.runtime.dispatch import BackendDecision, resolve_backend, validate_backend
from repro.runtime.kernel import FieldKernel
from repro.runtime.parallel import check_cancel, chunk_spans, map_ordered, resolve_workers
from repro.runtime.stats import FieldUsage, UsageReport
from repro.spec.ast import TraceSpec
from repro.tio.container import (
    DEFAULT_MAX_CHUNK_BYTES,
    FORMAT_VERSION_2,
    FORMAT_VERSION_3,
    FORMAT_VERSION_4,
    ChunkedContainer,
    ContainerChunk,
    DecodeReport,
    StreamContainer,
    StreamPayload,
    as_chunked,
    decode_container,
    default_chunk_records,
)
from repro.tio.traceformat import TraceFormat, pack_records, unpack_records

_UNSET = object()

#: Chunks submitted per native FFI call (batched entry points, ABI 2).
#: The effective batch additionally shrinks so every worker thread still
#: gets work; batching only amortizes call overhead, never serializes.
NATIVE_BATCH_CHUNKS = 8


def _batch_spans(items: list, workers: int) -> list[list]:
    """Split ``items`` into order-preserving batches for the native path."""
    size = max(1, min(NATIVE_BATCH_CHUNKS, -(-len(items) // max(1, workers))))
    return [items[i : i + size] for i in range(0, len(items), size)]


class TraceEngine:
    """Compress and decompress traces matching one specification.

    The engine is stateless between calls: every :meth:`compress` and
    :meth:`decompress` starts from fresh (zeroed) predictor tables, exactly
    like running a newly started generated binary.  With ``chunk_records``
    the tables additionally reset at every chunk boundary, which is what
    makes chunks independent.
    """

    def __init__(
        self,
        spec: TraceSpec,
        options: OptimizationOptions | None = None,
        codec: str = "bzip2",
        update_policy: "UpdatePolicy | None" = None,
        chunk_records: int | str | None = None,
        workers: int | None = 1,
        executor: str = "thread",
        container_version: int = FORMAT_VERSION_3,
        backend: str = "auto",
        skip_index: bool = False,
    ) -> None:
        if container_version not in (FORMAT_VERSION_2, FORMAT_VERSION_3, FORMAT_VERSION_4):
            raise ValueError(
                f"container_version must be {FORMAT_VERSION_2}, {FORMAT_VERSION_3}, "
                f"or {FORMAT_VERSION_4}, got {container_version!r}"
            )
        self.backend_requested = validate_backend(backend)
        self._backend_decision: BackendDecision | None = None
        self.model: CompressorModel = build_model(spec, options)
        self.codec = codec_by_name(codec)
        self.update_policy = update_policy
        self.format = TraceFormat(
            header_bits=spec.header_bits,
            field_bits=tuple(f.bits for f in spec.fields),
            pc_field=spec.pc_field,
        )
        self.chunk_records = chunk_records
        self.workers = workers
        self.executor = executor
        self.container_version = container_version
        # Opt-in: emitting a skip index changes the output bytes (an extra
        # TCIX frame), so it must never be on by default — byte-identity
        # with the generated compressors is a tested invariant.
        self.skip_index = skip_index
        self.last_usage: UsageReport | None = None
        self.last_report: DecodeReport | None = None

    def _backend(self) -> BackendDecision:
        """Resolve ``backend=`` lazily (first compress/decompress call).

        Lazy so constructing an engine never pays a compile, and memoized
        so the build/probe cost is once per engine (server engine caches
        share the decision through ``copy.copy``).
        """
        if self._backend_decision is None:
            self._backend_decision = resolve_backend(
                self.backend_requested, self.model, update_policy=self.update_policy
            )
        return self._backend_decision

    @property
    def backend(self) -> str:
        """The resolved backend: ``"python"``, ``"numpy"``, or ``"native"``."""
        return self._backend().backend

    @property
    def backend_reason(self) -> str:
        """Why the resolved backend was chosen (fallbacks carry the cause)."""
        return self._backend().reason

    def _resolve_chunk_records(self, chunk_records: int | str | None) -> int | None:
        """Normalize the chunking option: None = v1, 'auto'/0 = ~1 MB chunks."""
        if chunk_records is None:
            return None
        if chunk_records == "auto" or chunk_records == 0:
            return default_chunk_records(self.format.record_bytes)
        if not isinstance(chunk_records, int) or chunk_records < 1:
            raise ValueError(
                f"chunk_records must be a positive int, 0/'auto', or None; "
                f"got {chunk_records!r}"
            )
        return chunk_records

    # -- compression ---------------------------------------------------------

    def compress(
        self,
        raw: bytes,
        *,
        chunk_records: int | str | None = _UNSET,
        workers: int | None = None,
        executor: str | None = None,
        container_version: int | None = None,
        skip_index: bool | None = None,
        cancel=None,
    ) -> bytes:
        """Compress raw trace bytes into a container blob.

        Keyword arguments override the engine-level defaults for this call.
        Without ``chunk_records`` the output is a v1 container, bit-for-bit
        what this engine has always produced; with it, a chunked container —
        v3 (CRC32C integrity framing) by default, or legacy v2 via
        ``container_version=2``.

        ``cancel`` is an optional zero-argument predicate polled at chunk
        granularity; when it returns true the call aborts with
        :class:`~repro.errors.OperationCancelled` (used by the service
        layer to stop work whose deadline already fired).

        ``skip_index=True`` additionally emits a chunk skip index
        (:mod:`repro.tio.skipindex`) so :meth:`query` can prune chunks;
        v1/v2 containers have nowhere to put one and ignore the flag.
        """
        model = self.model
        if chunk_records is _UNSET:
            chunk_records = self.chunk_records
        chunk_records = self._resolve_chunk_records(chunk_records)
        workers = resolve_workers(self.workers if workers is None else workers)
        executor = executor or self.executor
        version = self.container_version if container_version is None else container_version
        if version not in (FORMAT_VERSION_2, FORMAT_VERSION_3, FORMAT_VERSION_4):
            raise ValueError(
                f"container_version must be {FORMAT_VERSION_2}, {FORMAT_VERSION_3}, "
                f"or {FORMAT_VERSION_4}, got {version!r}"
            )

        decision = self._backend()
        if decision.kernel is not None:
            # Native path: the kernel reads raw record bytes directly, so
            # the numpy unpack (and its .tolist()) is skipped entirely.
            record_count = self.format.record_count(raw)
            header = raw[: self.format.header_bytes]
            columns: list = []
        else:
            header, columns = unpack_records(self.format, raw, copy=False)
            record_count = len(columns[0]) if columns else 0

        if chunk_records is None:
            spans = [(0, record_count)]
        else:
            spans = chunk_spans(record_count, chunk_records) if record_count else []

        if decision.kernel is not None:
            kernel = decision.kernel
            base = self.format.header_bytes
            record_size = self.format.record_bytes

            def native_chunk(span: tuple[int, int]):
                start, count = span
                lo = base + start * record_size
                return kernel.compress_chunk(raw[lo : lo + count * record_size])

            if chunk_records is None:
                results = [kernel.compress_trace(raw)]
            elif hasattr(kernel, "compress_batch") and len(spans) > 1:
                # Batched ABI: N chunks per GIL-release call.  Per-chunk
                # state still resets inside the library, so the streams
                # are identical to per-chunk calls.
                def native_batch(batch):
                    return kernel.compress_batch(
                        [
                            raw[base + start * record_size :
                                base + (start + count) * record_size]
                            for start, count in batch
                        ]
                    )

                grouped = map_ordered(
                    native_batch,
                    _batch_spans(spans, workers),
                    workers,
                    kind="thread",
                    cancel=cancel,
                )
                results = [result for group in grouped for result in group]
            else:
                # The C kernel releases the GIL, so the chunk stage scales
                # with a plain thread pool — no pickling, no process pool.
                results = map_ordered(
                    native_chunk, spans, workers, kind="thread", cancel=cancel
                )
        elif executor == "process" and workers > 1 and len(spans) > 1:
            tasks = [
                (
                    model.spec,
                    model.options,
                    self.update_policy,
                    [np.ascontiguousarray(col[start : start + count]) for col in columns],
                )
                for start, count in spans
            ]
            results = map_ordered(
                _compress_chunk_task, tasks, workers, kind="process", cancel=cancel
            )
        else:
            # The kernel stage is pure Python: threads cannot speed it up,
            # so it runs serially here and the thread pool is spent on the
            # post-compression stage below.
            results = []
            for start, count in spans:
                check_cancel(cancel)
                results.append(
                    _compress_chunk(
                        model,
                        self.update_policy,
                        [col[start : start + count] for col in columns],
                    )
                )

        self.last_usage = _merge_usage(model, [usage for _, usage in results])

        raws: list[bytes] = []
        if model.spec.header_bits:
            raws.append(bytes(header))
        for streams, _ in results:
            raws.extend(streams)
        payloads = map_ordered(
            self.codec.compress, raws, workers, kind="thread", cancel=cancel
        )
        stored = [
            StreamPayload(codec_id=self.codec.codec_id, raw_length=len(raw_stream), data=payload)
            for raw_stream, payload in zip(raws, payloads)
        ]

        cursor = 1 if model.spec.header_bits else 0
        if chunk_records is None:
            container = StreamContainer(
                fingerprint=model.fingerprint(),
                record_count=record_count,
                streams=stored,
            )
            return container.encode()
        per_chunk = 2 * len(model.fields)
        chunks = []
        for (start, count), _ in zip(spans, results):
            chunks.append(
                ContainerChunk(
                    record_count=count,
                    streams=stored[cursor : cursor + per_chunk],
                )
            )
            cursor += per_chunk
        chunked = ChunkedContainer(
            fingerprint=model.fingerprint(),
            record_count=record_count,
            chunk_records=chunk_records,
            global_streams=stored[:1] if model.spec.header_bits else [],
            chunks=chunks,
            version=version,
        )
        if skip_index is None:
            skip_index = self.skip_index
        if skip_index and version != FORMAT_VERSION_2 and spans:
            from repro.tio.skipindex import build_index

            chunked.skip_index = build_index(self.format, raw, spans)
        return chunked.encode()

    # -- streaming -------------------------------------------------------------

    def open_stream(
        self,
        sink,
        *,
        chunk_records: int | str | None = _UNSET,
        policy=None,
        resume: bool = False,
        skip_index: bool | None = None,
    ):
        """Open a crash-safe v4 streaming compressor writing to ``sink``.

        ``sink`` is a filesystem path (opened for append) or a writable
        binary file object.  ``policy`` is a
        :class:`~repro.streaming.FlushPolicy`; ``resume=True`` recovers a
        stream interrupted mid-write (truncating a torn tail) and
        continues after its last durable chunk.  See
        :class:`~repro.streaming.StreamingCompressor`.
        """
        from repro.streaming import StreamingCompressor

        if chunk_records is _UNSET:
            chunk_records = self.chunk_records
        resolved = self._resolve_chunk_records(chunk_records)
        if resolved is None:
            resolved = default_chunk_records(self.format.record_bytes)
        return StreamingCompressor(
            self,
            sink,
            chunk_records=resolved,
            policy=policy,
            resume=resume,
            skip_index=self.skip_index if skip_index is None else skip_index,
        )

    # -- decompression ---------------------------------------------------------

    def decompress(
        self,
        blob: bytes,
        *,
        workers: int | None = None,
        executor: str | None = None,
        mode: str = "strict",
        max_chunk_bytes: int = DEFAULT_MAX_CHUNK_BYTES,
        cancel=None,
    ) -> bytes:
        """Rebuild the exact original trace bytes from a container blob.

        The container version is detected from the blob; v1, v2, and v3
        all decode losslessly.  ``mode="strict"`` (default) raises a typed
        :class:`~repro.errors.CompressedFormatError` on any corruption;
        ``mode="salvage"`` returns the records of every chunk that
        survived intact (resynchronizing at chunk boundaries) and leaves a
        :class:`~repro.tio.container.DecodeReport` describing the damage
        in ``self.last_report``.  Both modes fill ``last_report``.
        """
        model = self.model
        workers = resolve_workers(self.workers if workers is None else workers)
        executor = executor or self.executor

        report = DecodeReport()
        self.last_report = report
        container = decode_container(
            blob,
            expected_fingerprint=model.fingerprint(),
            mode=mode,
            max_chunk_bytes=max_chunk_bytes,
            report=report,
        )
        header_streams = 1 if model.spec.header_bits else 0
        per_chunk = 2 * len(model.fields)
        if mode == "salvage":
            return self._decompress_salvage(container, report, header_streams, per_chunk)
        if isinstance(container, StreamContainer):
            if len(container.streams) != model.stream_count:
                raise CompressedFormatError(
                    f"expected {model.stream_count} streams, found {len(container.streams)}"
                )
            chunked = as_chunked(container, header_streams)
        else:
            chunked = container
            if len(chunked.global_streams) != header_streams:
                raise CompressedFormatError(
                    f"expected {header_streams} global streams, "
                    f"found {len(chunked.global_streams)}"
                )
            for position, chunk in enumerate(chunked.chunks):
                if len(chunk.streams) != per_chunk:
                    raise CompressedFormatError(
                        f"chunk {position}: expected {per_chunk} streams, "
                        f"found {len(chunk.streams)}"
                    )

        if model.spec.header_bits:
            header = self._decode_stream(chunked.global_streams[0], "header")
            if len(header) != model.spec.header_bytes:
                raise CompressedFormatError(
                    f"header stream holds {len(header)} bytes, "
                    f"format wants {model.spec.header_bytes}"
                )
        else:
            header = b""

        # Post-decompress every chunk payload (GIL-free, thread-parallel).
        flat = [stream for chunk in chunked.chunks for stream in chunk.streams]
        labels = []
        for position, chunk in enumerate(chunked.chunks):
            for layout in model.fields:
                labels.append(f"chunk {position} field {layout.index} codes")
                labels.append(f"chunk {position} field {layout.index} values")
        decoded = map_ordered(
            lambda pair: self._decode_stream(pair[0], pair[1]),
            list(zip(flat, labels)),
            workers,
            kind="thread",
            cancel=cancel,
        )

        chunk_inputs = []
        cursor = 0
        for chunk in chunked.chunks:
            streams = decoded[cursor : cursor + per_chunk]
            cursor += per_chunk
            codes = streams[0::2]
            values = streams[1::2]
            for layout, code_stream in zip(model.fields, codes):
                expected = chunk.record_count * layout.code_bytes
                if len(code_stream) != expected:
                    raise CompressedFormatError(
                        f"field {layout.index} code stream holds "
                        f"{len(code_stream)} bytes, expected {expected}"
                    )
            chunk_inputs.append((chunk.record_count, codes, values))

        decision = self._backend()
        if decision.kernel is not None:
            kernel = decision.kernel
            if hasattr(kernel, "decompress_batch") and len(chunk_inputs) > 1:
                grouped = map_ordered(
                    kernel.decompress_batch,
                    _batch_spans(chunk_inputs, workers),
                    workers,
                    kind="thread",
                    cancel=cancel,
                )
                pieces = [piece for group in grouped for piece in group]
            else:
                pieces = map_ordered(
                    lambda item: kernel.decompress_chunk(*item),
                    chunk_inputs,
                    workers,
                    kind="thread",
                    cancel=cancel,
                )
            # The kernel emits exactly the little-endian packed record
            # bytes pack_records would produce — concatenation is the
            # whole assembly step.
            return header + b"".join(pieces)

        if executor == "process" and workers > 1 and len(chunk_inputs) > 1:
            tasks = [
                (model.spec, model.options, self.update_policy, count, codes, values)
                for count, codes, values in chunk_inputs
            ]
            chunk_columns = map_ordered(
                _decompress_chunk_task, tasks, workers, kind="process", cancel=cancel
            )
        else:
            chunk_columns = []
            for count, codes, values in chunk_inputs:
                check_cancel(cancel)
                chunk_columns.append(
                    _decompress_chunk(model, self.update_policy, count, codes, values)
                )

        merged: list[list[int]] = [[] for _ in model.fields]
        for columns in chunk_columns:
            for position, column in enumerate(columns):
                merged[position].extend(column)
        ordered = [np.array(column, dtype=np.uint64) for column in merged]
        return pack_records(self.format, header, ordered)

    def _decompress_salvage(
        self,
        container: "StreamContainer | ChunkedContainer",
        report: DecodeReport,
        header_streams: int,
        per_chunk: int,
    ) -> bytes:
        """Best-effort decode: keep every chunk that survives end to end.

        The container layer already dropped chunks with bad framing; this
        layer additionally demotes chunks whose codec payloads or kernel
        streams turn out to be damaged despite intact framing (possible on
        v1/v2, which carry no checksums).  Runs serially — salvage is a
        recovery path, not a throughput path.
        """
        model = self.model
        try:
            chunked = as_chunked(container, header_streams)
        except CompressedFormatError as exc:
            # Fewer streams than the format's global section needs: nothing
            # in the blob is attributable to fields, so nothing survives.
            report.notes.append(str(exc))
            for index, count in zip(
                list(report.recovered_chunks),
                [c.record_count for c in as_chunked(container, 0).chunks],
            ):
                report.demote(index, count, "container stream layout unusable")
            chunked = ChunkedContainer(
                fingerprint=0, record_count=0, chunk_records=0, version=0
            )

        header = b""
        if model.spec.header_bits:
            header_problem = None
            if len(chunked.global_streams) != header_streams:
                header_problem = (
                    f"expected {header_streams} global streams, "
                    f"found {len(chunked.global_streams)}"
                )
            else:
                try:
                    header = self._decode_stream(chunked.global_streams[0], "header")
                    if len(header) != model.spec.header_bytes:
                        raise CompressedFormatError(
                            f"header stream holds {len(header)} bytes, "
                            f"format wants {model.spec.header_bytes}"
                        )
                except Exception as exc:
                    header_problem = str(exc)
            if header_problem is not None:
                header = bytes(model.spec.header_bytes)
                if not report.header_stream_lost:
                    report.header_stream_lost = True
                    report.notes.append(
                        f"trace header unrecoverable, zero-filled: {header_problem}"
                    )

        indices = list(report.recovered_chunks)
        chunk_columns: list[list[list[int]]] = []
        for index, chunk in zip(indices, chunked.chunks):
            try:
                if len(chunk.streams) != per_chunk:
                    raise CompressedFormatError(
                        f"expected {per_chunk} streams, found {len(chunk.streams)}"
                    )
                decoded = [
                    self._decode_stream(stream, f"chunk {index} stream {position}")
                    for position, stream in enumerate(chunk.streams)
                ]
                codes = decoded[0::2]
                values = decoded[1::2]
                for layout, code_stream in zip(model.fields, codes):
                    expected = chunk.record_count * layout.code_bytes
                    if len(code_stream) != expected:
                        raise CompressedFormatError(
                            f"field {layout.index} code stream holds "
                            f"{len(code_stream)} bytes, expected {expected}"
                        )
                columns = _decompress_chunk(
                    model, self.update_policy, chunk.record_count, codes, values
                )
            except Exception as exc:
                report.demote(index, chunk.record_count, f"chunk decode failed: {exc}")
                continue
            chunk_columns.append(columns)

        merged: list[list[int]] = [[] for _ in model.fields]
        for columns in chunk_columns:
            for position, column in enumerate(columns):
                merged[position].extend(column)
        ordered = [np.array(column, dtype=np.uint64) for column in merged]
        return pack_records(self.format, header, ordered)

    def _decode_stream(self, payload: StreamPayload, what: str) -> bytes:
        codec = codec_by_id(payload.codec_id)
        try:
            # Bounded by the declared raw length: a lying payload that
            # would expand past it fails fast instead of exhausting memory.
            data = decompress_bounded(codec, payload.data, payload.raw_length)
        except Exception as exc:
            raise CompressedFormatError(f"{what}: post-decompression failed: {exc}") from exc
        if len(data) != payload.raw_length:
            raise CompressedFormatError(
                f"{what}: decompressed to {len(data)} bytes, expected {payload.raw_length}"
            )
        return data

    # -- reporting -------------------------------------------------------------

    # -- querying --------------------------------------------------------------

    def query(
        self,
        blob: bytes,
        where: "str | None" = None,
        *,
        op: str = "select",
        limit: int | None = None,
        mode: str = "strict",
        max_chunk_bytes: int = DEFAULT_MAX_CHUNK_BYTES,
        cancel=None,
    ):
        """Run a predicate query against a container without full decompression.

        ``where`` is a predicate in the :mod:`repro.query` language (or an
        already-parsed AST; ``None`` matches every record).  ``op`` selects
        what comes back: ``"select"`` materializes matching records,
        ``"count"`` only counts them, ``"stats"`` adds per-field min/max
        over the matches.  When the container carries a skip index, chunks
        the predicate provably cannot match are never decoded; results are
        identical either way.  Returns a :class:`repro.query.QueryResult`.
        """
        from repro.query import run_query

        return run_query(
            self,
            blob,
            where,
            op=op,
            limit=limit,
            mode=mode,
            max_chunk_bytes=max_chunk_bytes,
            cancel=cancel,
        )

    def usage_report(self) -> str:
        """The paper's post-compression predictor-usage feedback."""
        if self.last_usage is None:
            return "no compression has run yet"
        return self.last_usage.render(self.model)


# -- chunk workers (module-level so the process pool can pickle them) --------


def _compress_chunk(
    model: CompressorModel,
    policy: "UpdatePolicy | None",
    columns: list,
) -> tuple[list[bytes], list[list[int]]]:
    """Compress one chunk with fresh predictor state.

    ``columns`` are per-field numpy slices in record order.  Returns the
    interleaved (codes, values) streams in record-field order plus the
    per-field usage counts.
    """
    count = len(columns[0]) if columns else 0
    column_by_index = {
        layout.index: column for layout, column in zip(model.fields, columns)
    }
    # One tuple of per-field locals, bound once, consumed by the record
    # loop below — no dict lookups or attribute chases in the hot path.
    states = []
    for layout in model.process_order:
        kernel = FieldKernel(layout, model.options, policy=policy)
        states.append(
            (
                kernel.begin,
                kernel.commit,
                column_by_index[layout.index].tolist(),
                bytearray(),  # code stream
                bytearray(),  # value stream
                [0] * (layout.total_predictions + 1),
                layout.miss_code,
                layout.code_bytes,
                layout.value_bytes,
                layout.is_pc,
            )
        )
    pc_values = states[0][2]  # process order puts the PC field first

    for i in range(count):
        pc = pc_values[i]
        for begin, commit, values, codes, misses, counts, miss, cb, vb, is_pc in states:
            value = values[i]
            predictions = begin(0 if is_pc else pc)
            try:
                code = predictions.index(value)
            except ValueError:
                code = miss
                misses += value.to_bytes(vb, "little")
            if cb == 1:
                codes.append(code)
            else:
                codes += code.to_bytes(cb, "little")
            counts[code] += 1
            commit(value)

    by_index = {
        layout.index: state for layout, state in zip(model.process_order, states)
    }
    streams: list[bytes] = []
    usage: list[list[int]] = []
    for layout in model.fields:
        state = by_index[layout.index]
        streams.append(bytes(state[3]))
        streams.append(bytes(state[4]))
        usage.append(state[5])
    return streams, usage


def _compress_chunk_task(task) -> tuple[list[bytes], list[list[int]]]:
    """Process-pool entry: rebuild the model in the worker, then compress."""
    spec, options, policy, columns = task
    return _compress_chunk(build_model(spec, options), policy, columns)


def _decompress_chunk(
    model: CompressorModel,
    policy: "UpdatePolicy | None",
    count: int,
    codes_by_field: list[bytes],
    values_by_field: list[bytes],
) -> list[list[int]]:
    """Decode one chunk with fresh predictor state; returns per-field columns."""
    codes_by_index = {
        layout.index: stream for layout, stream in zip(model.fields, codes_by_field)
    }
    values_by_index = {
        layout.index: stream for layout, stream in zip(model.fields, values_by_field)
    }
    states = []
    for layout in model.process_order:
        kernel = FieldKernel(layout, model.options, policy=policy)
        states.append(
            [
                kernel.begin,
                kernel.commit,
                codes_by_index[layout.index],
                values_by_index[layout.index],
                [0] * count,  # decoded column
                0,  # value-stream position
                layout.miss_code,
                layout.code_bytes,
                layout.value_bytes,
                layout.mask,
                layout.is_pc,
                layout.index,
            ]
        )

    int_from_bytes = int.from_bytes
    for i in range(count):
        pc = 0
        for state in states:
            (begin, commit, codes, values, column, pos, miss, cb, vb, mask, is_pc, findex) = state
            predictions = begin(0 if is_pc else pc)
            code = codes[i] if cb == 1 else int_from_bytes(codes[i * cb : (i + 1) * cb], "little")
            if code < miss:
                value = predictions[code]
            elif code == miss:
                piece = values[pos : pos + vb]
                if len(piece) != vb:
                    raise CompressedFormatError(
                        f"field {findex} value stream exhausted at record {i}"
                    )
                value = int_from_bytes(piece, "little") & mask
                state[5] = pos + vb
            else:
                raise CompressedFormatError(
                    f"field {findex} record {i}: code {code} out of range 0..{miss}"
                )
            commit(value)
            column[i] = value
            if is_pc:
                pc = value

    for state in states:
        values, pos, findex = state[3], state[5], state[11]
        if pos != len(values):
            raise CompressedFormatError(
                f"field {findex} value stream has {len(values) - pos} unconsumed bytes"
            )

    by_index = {state[11]: state[4] for state in states}
    return [by_index[layout.index] for layout in model.fields]


def _decompress_chunk_task(task) -> list[list[int]]:
    """Process-pool entry: rebuild the model in the worker, then decode."""
    spec, options, policy, count, codes, values = task
    return _decompress_chunk(build_model(spec, options), policy, count, codes, values)


def _merge_usage(model: CompressorModel, chunk_usages: list[list[list[int]]]) -> UsageReport:
    """Sum per-chunk usage counts into one deterministic report."""
    totals = [
        [0] * (layout.total_predictions + 1) for layout in model.fields
    ]
    for usage in chunk_usages:
        for field_counts, chunk_counts in zip(totals, usage):
            for code, count in enumerate(chunk_counts):
                field_counts[code] += count
    return UsageReport(
        fields=[
            FieldUsage(layout.index, counts)
            for layout, counts in zip(model.fields, totals)
        ]
    )
