"""The interpreted trace compressor.

:class:`TraceEngine` runs a resolved model directly: it splits the trace
into per-field code and value streams using the prediction kernels, then
post-compresses every stream with the selected general-purpose codec
(BZIP2 by default).  Decompression replays the same kernels to rebuild the
exact original bytes.

This engine is the reference semantics; the generated Python and C
compressors are specialized versions of this loop and must produce
byte-identical containers.
"""

from __future__ import annotations

from repro.errors import CompressedFormatError
from repro.model.layout import CompressorModel, build_model
from repro.model.optimize import OptimizationOptions
from repro.postcompress import codec_by_id, codec_by_name
from repro.predictors.tables import UpdatePolicy
from repro.runtime.kernel import FieldKernel
from repro.runtime.stats import FieldUsage, UsageReport
from repro.spec.ast import TraceSpec
from repro.tio.container import StreamContainer, StreamPayload
from repro.tio.traceformat import TraceFormat, pack_records, unpack_records

import numpy as np


class TraceEngine:
    """Compress and decompress traces matching one specification.

    The engine is stateless between calls: every :meth:`compress` and
    :meth:`decompress` starts from fresh (zeroed) predictor tables, exactly
    like running a newly started generated binary.
    """

    def __init__(
        self,
        spec: TraceSpec,
        options: OptimizationOptions | None = None,
        codec: str = "bzip2",
        update_policy: "UpdatePolicy | None" = None,
    ) -> None:
        self.model: CompressorModel = build_model(spec, options)
        self.codec = codec_by_name(codec)
        self.update_policy = update_policy
        self.format = TraceFormat(
            header_bits=spec.header_bits,
            field_bits=tuple(f.bits for f in spec.fields),
            pc_field=spec.pc_field,
        )
        self.last_usage: UsageReport | None = None

    # -- compression ---------------------------------------------------------

    def compress(self, raw: bytes) -> bytes:
        """Compress raw trace bytes into a stream-container blob."""
        model = self.model
        header, columns = unpack_records(self.format, raw)
        values_by_field = {
            layout.index: column.tolist()
            for layout, column in zip(model.fields, columns)
        }
        record_count = len(columns[0]) if columns else 0

        kernels = {
            f.index: FieldKernel(f, model.options, policy=self.update_policy)
            for f in model.fields
        }
        code_streams = {f.index: bytearray() for f in model.fields}
        value_streams = {f.index: bytearray() for f in model.fields}
        usage = UsageReport(
            fields=[
                FieldUsage(f.index, [0] * (f.total_predictions + 1))
                for f in model.fields
            ]
        )
        usage_by_field = {u.field_index: u for u in usage.fields}

        order = model.process_order
        pc_index = model.pc_field.index
        pc_values = values_by_field[pc_index]

        for i in range(record_count):
            pc = pc_values[i]
            for layout in order:
                findex = layout.index
                value = values_by_field[findex][i]
                kernel = kernels[findex]
                predictions = kernel.begin(0 if layout.is_pc else pc)
                try:
                    code = predictions.index(value)
                except ValueError:
                    code = layout.miss_code
                    value_streams[findex] += value.to_bytes(
                        layout.value_bytes, "little"
                    )
                code_streams[findex] += code.to_bytes(layout.code_bytes, "little")
                usage_by_field[findex].counts[code] += 1
                kernel.commit(value)

        self.last_usage = usage
        streams: list[StreamPayload] = []
        if model.spec.header_bits:
            streams.append(self._encode_stream(bytes(header)))
        for layout in model.fields:
            streams.append(self._encode_stream(bytes(code_streams[layout.index])))
            streams.append(self._encode_stream(bytes(value_streams[layout.index])))
        container = StreamContainer(
            fingerprint=model.fingerprint(),
            record_count=record_count,
            streams=streams,
        )
        return container.encode()

    def _encode_stream(self, data: bytes) -> StreamPayload:
        return StreamPayload(
            codec_id=self.codec.codec_id,
            raw_length=len(data),
            data=self.codec.compress(data),
        )

    # -- decompression ---------------------------------------------------------

    def decompress(self, blob: bytes) -> bytes:
        """Rebuild the exact original trace bytes from a container blob."""
        model = self.model
        container = StreamContainer.decode(blob, expected_fingerprint=model.fingerprint())
        if len(container.streams) != model.stream_count:
            raise CompressedFormatError(
                f"expected {model.stream_count} streams, found {len(container.streams)}"
            )

        cursor = 0
        if model.spec.header_bits:
            header = self._decode_stream(container.streams[0], "header")
            if len(header) != model.spec.header_bytes:
                raise CompressedFormatError(
                    f"header stream holds {len(header)} bytes, "
                    f"format wants {model.spec.header_bytes}"
                )
            cursor = 1
        else:
            header = b""

        codes: dict[int, bytes] = {}
        values: dict[int, bytes] = {}
        for layout in model.fields:
            codes[layout.index] = self._decode_stream(
                container.streams[cursor], f"field {layout.index} codes"
            )
            values[layout.index] = self._decode_stream(
                container.streams[cursor + 1], f"field {layout.index} values"
            )
            cursor += 2

        record_count = container.record_count
        for layout in model.fields:
            expected = record_count * layout.code_bytes
            if len(codes[layout.index]) != expected:
                raise CompressedFormatError(
                    f"field {layout.index} code stream holds "
                    f"{len(codes[layout.index])} bytes, expected {expected}"
                )

        kernels = {
            f.index: FieldKernel(f, model.options, policy=self.update_policy)
            for f in model.fields
        }
        columns: dict[int, list[int]] = {f.index: [0] * record_count for f in model.fields}
        value_pos = {f.index: 0 for f in model.fields}

        order = model.process_order
        for i in range(record_count):
            pc = 0
            for layout in order:
                findex = layout.index
                kernel = kernels[findex]
                predictions = kernel.begin(0 if layout.is_pc else pc)
                cb = layout.code_bytes
                code = int.from_bytes(codes[findex][i * cb : (i + 1) * cb], "little")
                if code < layout.miss_code:
                    value = predictions[code]
                elif code == layout.miss_code:
                    vb = layout.value_bytes
                    pos = value_pos[findex]
                    chunk = values[findex][pos : pos + vb]
                    if len(chunk) != vb:
                        raise CompressedFormatError(
                            f"field {findex} value stream exhausted at record {i}"
                        )
                    value = int.from_bytes(chunk, "little") & layout.mask
                    value_pos[findex] = pos + vb
                else:
                    raise CompressedFormatError(
                        f"field {findex} record {i}: code {code} out of range "
                        f"0..{layout.miss_code}"
                    )
                kernel.commit(value)
                columns[findex][i] = value
                if layout.is_pc:
                    pc = value

        for layout in model.fields:
            if value_pos[layout.index] != len(values[layout.index]):
                raise CompressedFormatError(
                    f"field {layout.index} value stream has "
                    f"{len(values[layout.index]) - value_pos[layout.index]} "
                    "unconsumed bytes"
                )

        ordered = [np.array(columns[f.index], dtype=np.uint64) for f in model.fields]
        return pack_records(self.format, header, ordered)

    def _decode_stream(self, payload: StreamPayload, what: str) -> bytes:
        codec = codec_by_id(payload.codec_id)
        try:
            data = codec.decompress(payload.data)
        except Exception as exc:
            raise CompressedFormatError(f"{what}: post-decompression failed: {exc}") from exc
        if len(data) != payload.raw_length:
            raise CompressedFormatError(
                f"{what}: decompressed to {len(data)} bytes, expected {payload.raw_length}"
            )
        return data

    # -- reporting -------------------------------------------------------------

    def usage_report(self) -> str:
        """The paper's post-compression predictor-usage feedback."""
        if self.last_usage is None:
            return "no compression has run yet"
        return self.last_usage.render(self.model)
