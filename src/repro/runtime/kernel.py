"""Per-field prediction kernel.

A :class:`FieldKernel` owns all predictor state for one record field and
drives it through the two-phase protocol used by both compression and
decompression:

1. :meth:`begin` — given the current record's PC, compute all table
   indices and return the flattened prediction list (one entry per
   identification code);
2. :meth:`commit` — given the true field value, update every table so the
   state after the record is identical on the compressing and the
   decompressing side.

Sharing semantics follow the paper exactly: with ``shared_tables`` one
last-value table serves every LV and DFCM predictor of the field, one
first-level chain serves all FCM orders and one all DFCM orders; without
it, every predictor owns private (redundantly updated) copies.  Predictions
are identical either way — only speed and memory differ, which is the
point of Table 2's ablation.
"""

from __future__ import annotations

from repro.model.layout import FieldLayout
from repro.model.optimize import OptimizationOptions
from repro.predictors.hashing import HashParams
from repro.predictors.tables import UpdatePolicy, ValueTable
from repro.spec.ast import PredictorKind


class _Chain:
    """First-level hash state for one (D)FCM family of a field.

    With ``fast_hash`` each line stores the partial hashes ``h[1..max]``;
    without it, each line stores the raw recent-value history and hashes
    are recomputed from scratch on demand.
    """

    __slots__ = ("params", "lines", "fast", "state")

    def __init__(self, params: HashParams, lines: int, fast: bool) -> None:
        self.params = params
        self.lines = lines
        self.fast = fast
        if fast:
            self.state = [params.initial_chain() for _ in range(lines)]
        else:
            self.state = [[] for _ in range(lines)]

    def index(self, line: int, order: int) -> int:
        if self.fast:
            return self.state[line][order - 1]
        return self.params.scratch_hash(self.state[line], order)

    def absorb(self, line: int, value: int) -> None:
        if self.fast:
            self.params.absorb(self.state[line], value)
        else:
            history = self.state[line]
            history.insert(0, value)
            del history[self.params.max_order :]


class _BoundPredictor:
    """One predictor bound to its (shared or private) state structures."""

    __slots__ = ("kind", "order", "depth", "l2", "chain", "last")

    def __init__(
        self,
        kind: PredictorKind,
        order: int,
        depth: int,
        l2: ValueTable | None,
        chain: _Chain | None,
        last: ValueTable | None,
    ) -> None:
        self.kind = kind
        self.order = order
        self.depth = depth
        self.l2 = l2
        self.chain = chain
        self.last = last


class FieldKernel:
    """All predictor state and logic for one field."""

    def __init__(
        self,
        layout: FieldLayout,
        options: OptimizationOptions,
        policy: UpdatePolicy | None = None,
    ) -> None:
        self.layout = layout
        self.mask = layout.mask
        self.l1_lines = layout.l1_lines
        # ``policy`` overrides the options-derived policy; used to exercise
        # VPC2's SEARCH policy, which the options dataclass (mirroring the
        # paper's Table 2 switches) does not model.
        self.policy = policy or options.update_policy
        self.shared = options.shared_tables
        fast = options.fast_hash

        shared_last: ValueTable | None = None
        shared_fcm: _Chain | None = None
        shared_dfcm: _Chain | None = None
        if self.shared:
            if layout.lv_depth:
                shared_last = ValueTable(self.l1_lines, layout.lv_depth, self.mask)
            if layout.fcm_params is not None:
                shared_fcm = _Chain(layout.fcm_params, self.l1_lines, fast)
            if layout.dfcm_params is not None:
                shared_dfcm = _Chain(layout.dfcm_params, self.l1_lines, fast)

        self.predictors: list[_BoundPredictor] = []
        for resolved in layout.predictors:
            spec = resolved.spec
            l2 = None
            chain = None
            last = None
            if spec.kind is PredictorKind.LV:
                last = shared_last or ValueTable(self.l1_lines, spec.depth, self.mask)
            elif spec.kind is PredictorKind.FCM:
                l2 = ValueTable(resolved.l2_lines, spec.depth, self.mask)
                chain = shared_fcm or _Chain(layout.fcm_params, self.l1_lines, fast)
            else:  # DFCM
                l2 = ValueTable(resolved.l2_lines, spec.depth, self.mask)
                chain = shared_dfcm or _Chain(layout.dfcm_params, self.l1_lines, fast)
                last = shared_last or ValueTable(self.l1_lines, 1, self.mask)
            self.predictors.append(
                _BoundPredictor(spec.kind, spec.order, spec.depth, l2, chain, last)
            )

        # Distinct structures, each updated exactly once per record.
        self._lasts = _dedup(p.last for p in self.predictors)
        self._fcm_chains = _dedup(
            p.chain for p in self.predictors if p.kind is PredictorKind.FCM
        )
        self._dfcm_chains = _dedup(
            p.chain for p in self.predictors if p.kind is PredictorKind.DFCM
        )

        # Per-record scratch filled by begin() and consumed by commit().
        self._line = 0
        self._indices: list[int] = [0] * len(self.predictors)
        # Preallocated prediction list, reused (and overwritten) every
        # record; slot spans are fixed by the dense code assignment.
        self._predictions: list[int] = [0] * layout.total_predictions
        spans = []
        position = 0
        for pred in self.predictors:
            spans.append((position, position + pred.depth))
            position += pred.depth
        self._spans: list[tuple[int, int]] = spans

    # -- the two-phase protocol ---------------------------------------------

    def begin(self, pc: int) -> list[int]:
        """Compute indices and return the flattened prediction list.

        The returned list is owned by the kernel and reused on the next
        ``begin`` call; callers must consume it before then.
        """
        line = pc % self.l1_lines
        self._line = line
        predictions = self._predictions
        mask = self.mask
        for slot, pred in enumerate(self.predictors):
            lo, hi = self._spans[slot]
            if pred.kind is PredictorKind.LV:
                predictions[lo:hi] = pred.last.read(line, pred.depth)
            elif pred.kind is PredictorKind.FCM:
                index = pred.chain.index(line, pred.order)
                self._indices[slot] = index
                predictions[lo:hi] = pred.l2.read(index, pred.depth)
            else:  # DFCM
                index = pred.chain.index(line, pred.order)
                self._indices[slot] = index
                last = pred.last.first(line)
                predictions[lo:hi] = [
                    (last + stride) & mask for stride in pred.l2.read(index, pred.depth)
                ]
        return predictions

    def commit(self, value: int) -> None:
        """Update all tables with the true value of the current record."""
        line = self._line
        value &= self.mask
        stride = 0
        if self.layout.needs_stride:
            # Any bound last-value structure holds the most recent value.
            stride = (value - self._lasts[0].first(line)) & self.mask

        for slot, pred in enumerate(self.predictors):
            if pred.kind is PredictorKind.FCM:
                pred.l2.update(self._indices[slot], value, self.policy)
            elif pred.kind is PredictorKind.DFCM:
                pred.l2.update(self._indices[slot], stride, self.policy)

        for chain in self._fcm_chains:
            chain.absorb(line, value)
        for chain in self._dfcm_chains:
            chain.absorb(line, stride)
        for last in self._lasts:
            last.update(line, value, self.policy)


def _dedup(items) -> list:
    """Unique items by identity, preserving order, skipping ``None``."""
    seen_ids: set[int] = set()
    unique: list = []
    for item in items:
        if item is not None and id(item) not in seen_ids:
            seen_ids.add(id(item))
            unique.append(item)
    return unique
