"""The interpreted compression engine.

:class:`~repro.runtime.engine.TraceEngine` executes a resolved
:class:`~repro.model.CompressorModel` directly, without code generation.
It is the semantic oracle for the whole system: the generated Python and C
compressors must produce byte-identical output, and the differential tests
enforce exactly that.  It also produces the per-predictor usage feedback
the paper describes ("to help the user select the most effective
predictors").
"""

from repro.runtime.engine import TraceEngine
from repro.runtime.kernel import FieldKernel
from repro.runtime.parallel import available_parallelism, map_ordered, resolve_workers
from repro.runtime.stats import FieldUsage, UsageReport
from repro.runtime.streaming import chunk_count, iter_records, read_header, record_count

__all__ = [
    "TraceEngine",
    "FieldKernel",
    "FieldUsage",
    "UsageReport",
    "available_parallelism",
    "chunk_count",
    "iter_records",
    "map_ordered",
    "read_header",
    "record_count",
    "resolve_workers",
]
