"""Worker-pool execution for the chunked compression pipeline.

The v2 container format (:mod:`repro.tio.container`) splits a trace into
independent record chunks, which exposes two kinds of parallelism:

- the **post-compression stage**: ``bz2``, ``zlib``, and ``lzma`` all
  release the GIL inside their C cores, so a plain thread pool scales the
  codec stage across cores with zero serialization cost;
- the **prediction-kernel stage**: pure Python, so threads cannot speed it
  up; an optional process pool ships whole chunks to worker interpreters
  instead (at pickling cost, worthwhile for large chunks).

Everything here is *deterministic*: results always come back in submission
order, so compressed output is byte-identical regardless of worker count.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Executor kinds accepted by :func:`map_ordered`.
EXECUTOR_KINDS = ("thread", "process")


def available_parallelism() -> int:
    """Number of CPUs the process may use (affinity-aware, >= 1)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count option.

    ``None`` and ``1`` mean serial execution; ``0`` means "one worker per
    available CPU"; any other positive integer is taken literally.
    """
    if workers is None:
        return 1
    if workers == 0:
        return available_parallelism()
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def map_ordered(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    workers: int | None = 1,
    kind: str = "thread",
) -> list[R]:
    """Apply ``fn`` to every item, returning results in item order.

    With ``workers`` <= 1 (or fewer than two items) this is a plain serial
    map — no pool is spun up, so the common single-threaded path pays
    nothing.  Otherwise a thread pool (default) or process pool executes
    the calls concurrently; ``Executor.map`` guarantees result order
    matches submission order, which keeps chunk assembly deterministic.

    The process kind requires ``fn`` and the items to be picklable.
    """
    if kind not in EXECUTOR_KINDS:
        raise ValueError(f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}")
    items = list(items)
    count = resolve_workers(workers)
    if count <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    count = min(count, len(items))
    if kind == "process":
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=count) as pool:
            return list(pool.map(fn, items))
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=count) as pool:
        return list(pool.map(fn, items))


def chunk_spans(record_count: int, chunk_records: int) -> list[tuple[int, int]]:
    """Split ``record_count`` records into ``(start, count)`` spans.

    Every span but the last holds exactly ``chunk_records`` records — the
    invariant the v2 chunk table encodes and random access relies on.
    """
    if chunk_records < 1:
        raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
    return [
        (start, min(chunk_records, record_count - start))
        for start in range(0, record_count, chunk_records)
    ]
